"""Integration: credentials decide the access path a user gets.

§3.2's three access levels map to concrete runtime shapes in this
reproduction:

- PROXY (remote access only)  -> a networked RemoteClient against a
  service colocated with the original component: no local data at all;
- CUSTOMIZATION (local run)   -> a TravelAgent view with its own cache
  manager: local working copy kept coherent by Flecc.

The test drives both users through the same reservation flow and
verifies the structural difference (who holds local state, who pays
network round trips per call).
"""

import pytest

from repro.apps.airline import (
    Flight,
    FlightDatabase,
    RemoteClient,
    TravelAgentService,
    build_airline_system,
)
from repro.core import Mode
from repro.core.system import run_all_scripts
from repro.psf import (
    AccessPolicy,
    AccessRule,
    Credentials,
    ViewKind,
    select_view,
)
from repro.psf.component import ComponentType, Interface


def airline_component_type():
    return ComponentType.make(
        "FlightDatabase",
        implements=[Interface.make("AirlineReservation")],
        functions={"browse", "confirm_tickets"},
        variables={"flights"},
        sensitive=True,
    )


@pytest.fixture()
def world():
    airline = build_airline_system(
        FlightDatabase([Flight("UA100", "NYC", "SFO", 50, 50, 99.0)])
    )
    policy = AccessPolicy(
        [
            AccessRule(ViewKind.PROXY),
            AccessRule(
                ViewKind.CUSTOMIZATION,
                required_role="travel-agent",
                require_trusted_host=True,
            ),
        ]
    )
    return airline, policy


def test_untrusted_user_gets_proxy_path(world):
    airline, policy = world
    guest = Credentials.make("guest")
    view_type = select_view(airline_component_type(), guest, policy)
    assert view_type.variables == frozenset()  # PROXY: no local data

    # Runtime shape for a proxy: a hub agent colocated with the
    # database serves networked requests; the guest holds nothing.
    hub_agent, hub_cm = airline.add_travel_agent("hub", ["UA100"], mode=Mode.WEAK)

    def setup():
        yield hub_cm.start()
        yield hub_cm.init_image()

    run_all_scripts(airline.transport, [setup()])
    service = TravelAgentService(airline.transport, hub_agent, hub_cm)
    client = RemoteClient(airline.transport, guest.user, service.address)

    before = airline.stats.total

    def session():
        r1 = yield client.browse("UA100")
        r2 = yield client.buy("UA100", seats=2)
        return r1, r2

    [(browse, buy)] = run_all_scripts(airline.transport, [session()])
    assert browse["flight"]["seats_available"] == 50
    assert buy["seats_left"] == 48
    # Every proxy operation crossed the network.
    assert airline.stats.total - before >= 4


def test_trusted_agent_gets_customization_path(world):
    airline, policy = world
    agent_creds = Credentials.make(
        "pro", roles=["travel-agent"], trusted_host=True
    )
    view_type = select_view(airline_component_type(), agent_creds, policy)
    assert view_type.variables == {"flights"}  # full local working data

    # Runtime shape for a customization: a local view + cache manager.
    agent, cm = airline.add_travel_agent(
        agent_creds.user, ["UA100"], mode=Mode.WEAK
    )

    def session():
        yield cm.start()
        yield cm.init_image()
        before = airline.stats.total
        # Local operations: browsing costs no messages at all.
        yield cm.start_use_image()
        for _ in range(5):
            agent.browse("UA100")
        cm.end_use_image()
        return airline.stats.total - before

    [delta] = run_all_scripts(airline.transport, [session()])
    assert delta == 0
    assert agent.local["UA100"].seats_available == 50  # data held locally


def test_policy_denies_unknown_population(world):
    _, _ = world
    closed = AccessPolicy([AccessRule(ViewKind.PROXY, required_role="member")])
    from repro.errors import ViewError

    with pytest.raises(ViewError, match="access denied"):
        select_view(
            airline_component_type(), Credentials.make("stranger"), closed
        )
