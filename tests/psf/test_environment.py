"""Unit tests for repro.psf.environment."""

import pytest

from repro.errors import PlanningError
from repro.net.topology import wan_topology
from repro.psf import Environment


def wan_env():
    topo = wan_topology(
        {"d1": ["a1", "a2"], "d2": ["b1"]},
        internet_latency=20.0,
        lan_latency=0.5,
    )
    env = Environment(topo)
    for host, trusted, cap in [("a1", True, 2), ("a2", False, 1), ("b1", True, 4)]:
        topo.graph.nodes[host]["trusted"] = trusted
        topo.graph.nodes[host]["capacity"] = cap
    return env


def test_single_lan_factory():
    env = Environment.single_lan(["h1", "h2"], capacity=3)
    assert sorted(env.hosts()) == ["h1", "h2"]
    assert env.is_trusted("h1")
    assert env.capacity_of("h1") == 3
    assert env.latency("h1", "h2") == 1.0


def test_hosts_excludes_switches_and_core():
    env = wan_env()
    assert sorted(env.hosts()) == ["a1", "a2", "b1"]


def test_occupancy_tracking():
    env = wan_env()
    assert env.has_room("a2")
    env.occupy("a2")
    assert not env.has_room("a2")
    with pytest.raises(PlanningError, match="capacity"):
        env.occupy("a2")
    env.vacate("a2")
    assert env.has_room("a2")


def test_vacate_empty_rejected():
    with pytest.raises(PlanningError):
        wan_env().vacate("a1")


def test_reset_occupancy():
    env = wan_env()
    env.occupy("a1")
    env.reset_occupancy()
    assert env.load_of("a1") == 0


def test_candidate_hosts_filters_trust_and_room():
    env = wan_env()
    assert sorted(env.candidate_hosts(sensitive=True)) == ["a1", "b1"]
    env.occupy("a2")
    assert sorted(env.candidate_hosts()) == ["a1", "b1"]


def test_candidate_hosts_sorted_by_distance():
    env = wan_env()
    assert env.candidate_hosts(near="a1") == ["a1", "a2", "b1"]
    assert env.candidate_hosts(near="b1")[0] == "b1"


def test_insecure_links_between():
    env = wan_env()
    insecure = env.insecure_links_between("a1", "b1")
    assert len(insecure) == 2  # both backbone hops
    assert env.insecure_links_between("a1", "a2") == []
