"""Planner dependency-aware placement: components land near the
providers of their required interfaces."""

import pytest

from repro.net.topology import wan_topology
from repro.psf import (
    ApplicationSpec,
    ComponentType,
    Environment,
    Interface,
    Planner,
)


def make_env():
    topo = wan_topology(
        {"dc": ["server", "dc-2"], "edge": ["edge-1", "edge-2"]},
        internet_latency=30.0,
        lan_latency=0.5,
    )
    env = Environment(topo)
    for host in env.hosts():
        topo.graph.nodes[host]["trusted"] = True
        topo.graph.nodes[host]["capacity"] = 4
    return env


def chain_spec():
    """frontend requires Middle; middleware requires Store; db pinned."""
    db = ComponentType.make(
        "DB", implements=[Interface.make("Store")], pinned_to="server"
    )
    mid = ComponentType.make(
        "Middleware", implements=[Interface.make("Middle")], requires={"Store"}
    )
    front = ComponentType.make(
        "Frontend", implements=[Interface.make("Svc")], requires={"Middle"}
    )
    return ApplicationSpec.build("chain", [db, mid, front], service_interface="Svc")


def test_dependency_order_providers_first():
    spec = chain_spec()
    planner = Planner(spec, make_env())
    order = [c.name for c in planner._dependency_order()]
    assert order.index("DB") < order.index("Middleware") < order.index("Frontend")


def test_chain_colocates_near_dependencies():
    spec = chain_spec()
    plan = Planner(spec, make_env()).plan([])
    nodes = {p.type_name: p.node for p in plan.all_placements()}
    assert nodes["DB"] == "server"
    # Middleware lands in the dc domain (near the DB), not at the edge.
    assert nodes["Middleware"] in ("server", "dc-2")
    assert nodes["Frontend"] in ("server", "dc-2")


def test_independent_component_uses_capacity_heuristic():
    solo = ComponentType.make("Solo", implements=[Interface.make("Svc")])
    spec = ApplicationSpec.build("solo", [solo], service_interface="Svc")
    plan = Planner(spec, make_env()).plan([])
    [p] = plan.instances_of_type("Solo")
    assert p.node in ("dc-2", "edge-1", "edge-2", "server")


def test_cycle_does_not_hang():
    a = ComponentType.make(
        "A", implements=[Interface.make("IA"), Interface.make("Svc")],
        requires={"IB"},
    )
    b = ComponentType.make("B", implements=[Interface.make("IB")], requires={"IA"})
    spec = ApplicationSpec.build("cyc", [a, b], service_interface="Svc")
    plan = Planner(spec, make_env()).plan([])
    assert len(plan.all_placements()) == 2


def test_dependency_on_pinned_component_attracts_placement():
    env = make_env()
    spec = chain_spec()
    plan = Planner(spec, env).plan([])
    mid = plan.instances_of_type("Middleware")[0]
    # Latency from middleware to the pinned DB is intra-domain.
    assert env.latency(mid.node, "server") <= 1.0
