"""Tests for the remote-invocation runtime behind PROXY views."""

import pytest

from repro.core.system import run_all_scripts
from repro.errors import ReproError
from repro.net import SimTransport, TcpTransport
from repro.psf.remote import ComponentServer, RemoteCallError, RemoteStub, expose
from repro.sim import SimKernel


class Calculator:
    def __init__(self):
        self.memory = 0.0

    def add(self, a, b):
        return a + b

    def store(self, value):
        self.memory = value

    def recall(self):
        return self.memory

    def explode(self):
        raise ValueError("kaboom")

    def _secret(self):  # never exposed
        return 42


def make_sim():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    server = expose(transport, "calc", Calculator(), ["add", "store", "recall", "explode"])
    stub = RemoteStub(transport, "client", "calc")
    return kernel, transport, server, stub


def test_basic_call_roundtrip():
    kernel, transport, server, stub = make_sim()

    def script():
        result = yield stub.call("add", 2, 3)
        return result

    [result] = run_all_scripts(transport, [script()])
    assert result == 5
    assert server.calls_served == 1


def test_attribute_sugar_and_kwargs():
    kernel, transport, server, stub = make_sim()

    def script():
        yield stub.store(value=7.5)
        got = yield stub.recall()
        return got

    [got] = run_all_scripts(transport, [script()])
    assert got == 7.5


def test_remote_exception_propagates_by_name():
    kernel, transport, server, stub = make_sim()

    def script():
        try:
            yield stub.explode()
        except RemoteCallError as exc:
            return exc.remote_type, exc.remote_message

    [(rtype, rmsg)] = run_all_scripts(transport, [script()])
    assert rtype == "ValueError" and rmsg == "kaboom"


def test_unexposed_method_rejected():
    kernel, transport, server, stub = make_sim()

    def script():
        try:
            yield stub.call("_secret")
        except RemoteCallError as exc:
            return exc.remote_type

    [rtype] = run_all_scripts(transport, [script()])
    assert rtype == "PermissionError"


def test_expose_validates_methods():
    kernel = SimKernel()
    transport = SimTransport(kernel)
    with pytest.raises(ReproError, match="no callable"):
        expose(transport, "x", Calculator(), ["ghost_method"])
    with pytest.raises(ReproError, match="at least one"):
        expose(transport, "y", Calculator(), [])


def test_whitelist_from_proxy_view_functions():
    """The access-control tie-in: a PROXY view's functions set is the
    server whitelist, so users can only call what the view grants."""
    from repro.psf import AccessPolicy, Credentials, select_view
    from repro.psf.component import ComponentType, Interface

    ctype = ComponentType.make(
        "Calc", implements=[Interface.make("Math")],
        functions={"add", "recall"}, variables={"memory"},
    )
    view = select_view(ctype, Credentials.make("guest"), AccessPolicy.default_open())
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    expose(transport, "calc", Calculator(), view.functions)
    stub = RemoteStub(transport, "client", "calc")

    def script():
        ok = yield stub.add(1, 1)
        try:
            yield stub.store(9)  # not in the view's functions
        except RemoteCallError as exc:
            return ok, exc.remote_type

    [(ok, denied)] = run_all_scripts(transport, [script()])
    assert ok == 2 and denied == "PermissionError"


def test_remote_calls_over_tcp():
    transport = TcpTransport()
    try:
        expose(transport, "calc", Calculator(), ["add"])
        stub = RemoteStub(transport, "client", "calc")

        def script():
            r = yield stub.add(20, 22)
            return r

        [result] = run_all_scripts(transport, [script()])
        assert result == 42
    finally:
        transport.close()
