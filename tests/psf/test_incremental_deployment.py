"""Incremental redeployment: plan diff -> apply_diff -> live adaptation."""

import pytest

from repro.errors import DeploymentError
from repro.net import SimTransport
from repro.psf import Deployer, Monitor, Planner, QoSRequirement, diff_plans
from repro.psf.monitoring import AdaptationLoop
from repro.sim import SimKernel

from tests.psf.test_planning import make_world


def deploy_world(clients):
    spec, env = make_world()
    planner = Planner(spec, env)
    plan = planner.plan(clients)
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=env.topology)
    created, closed = [], []

    def factory(name):
        def make(placement):
            class Instance:
                type_name = name
                node = placement.node

                def close(self):
                    closed.append(placement.instance_id)

            inst = Instance()
            created.append((name, placement.node))
            return inst

        return make

    deployer = Deployer(
        transport,
        factories={t: factory(t) for t in ("DB", "Agent", "Enc", "Dec")},
    )
    app = deployer.deploy(plan)
    return spec, env, planner, deployer, app, created, closed


def test_apply_diff_adds_new_view():
    near = QoSRequirement(client_node="spare", max_latency=10.0)
    far = QoSRequirement(client_node="edge1", max_latency=5.0)
    spec, env, planner, deployer, app, created, closed = deploy_world([near])
    assert not app.by_type("Agent")
    new_plan = planner.plan([near, far])
    diff = diff_plans(app.plan, new_plan)
    deployer.apply_diff(app, diff, new_plan)
    assert len(app.by_type("Agent")) == 1
    assert closed == []
    serving = app.serving_instance_for("edge1")
    assert serving.type_name == "Agent"
    # The untouched DB instance still resolves through the new plan.
    assert app.serving_instance_for("spare").type_name == "DB"


def test_apply_diff_removes_obsolete_view():
    near = QoSRequirement(client_node="spare", max_latency=10.0)
    far = QoSRequirement(client_node="edge1", max_latency=5.0)
    spec, env, planner, deployer, app, created, closed = deploy_world([near, far])
    assert len(app.by_type("Agent")) == 1
    new_plan = planner.plan([near])  # the edge client left
    diff = diff_plans(app.plan, new_plan)
    deployer.apply_diff(app, diff, new_plan)
    assert app.by_type("Agent") == []
    assert len(closed) == 1  # the view instance was closed


def test_apply_diff_missing_instance_rejected():
    near = QoSRequirement(client_node="spare", max_latency=10.0)
    spec, env, planner, deployer, app, *_ = deploy_world([near])
    from repro.psf.planning import Placement

    ghost_diff = {"add": [], "remove": [Placement("x#9", "Agent", "edge1")]}
    with pytest.raises(DeploymentError, match="no matching deployed"):
        deployer.apply_diff(app, ghost_diff)


def test_live_adaptation_end_to_end():
    """Monitor -> re-plan -> diff -> incremental redeploy, while the
    original instances keep running."""
    spec, env = make_world()
    planner = Planner(spec, env)
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=env.topology)
    deployer = Deployer(
        transport,
        factories={
            t: (lambda name: (lambda p: {"type": name, "node": p.node}))(t)
            for t in ("DB", "Agent", "Enc", "Dec")
        },
    )
    client = QoSRequirement(client_node="edge1", max_latency=80.0)
    monitor = Monitor(env)
    loop = AdaptationLoop(monitor, planner, [client])
    app = deployer.deploy(loop.current_plan)
    db_instance = app.by_type("DB")[0].instance

    applied = []

    def on_adapt(diff):
        new_plan = loop.current_plan
        deployer.apply_diff(app, diff, new_plan)
        applied.append(diff)

    loop.on_adapt = on_adapt
    monitor.set_link_attr("edge-switch", "internet", "latency", 300.0)
    assert len(applied) == 1
    assert app.serving_instance_for("edge1")["type"] == "Agent"
    # The database instance object is the same one — never redeployed.
    assert app.by_type("DB")[0].instance is db_instance
