"""Unit tests for PSF monitoring, adaptation, and deployment."""

import pytest

from repro.errors import DeploymentError
from repro.net import SimTransport
from repro.psf import Deployer, Monitor, QoSRequirement
from repro.psf.monitoring import AdaptationLoop
from repro.psf.planning import Planner
from repro.sim import SimKernel

from tests.psf.test_planning import make_world


class TestMonitor:
    def test_link_change_published_and_recorded(self):
        _, env = make_world()
        mon = Monitor(env)
        seen = []
        mon.subscribe(seen.append)
        mon.set_link_attr("dc-switch", "internet", "latency", 99.0)
        assert len(seen) == 1
        ev = seen[0]
        assert ev.kind == "link" and ev.attribute == "latency"
        assert ev.old_value == 20.0 and ev.new_value == 99.0
        assert env.latency("server", "edge1") > 100  # cache invalidated

    def test_no_op_change_not_published(self):
        _, env = make_world()
        mon = Monitor(env)
        seen = []
        mon.subscribe(seen.append)
        mon.set_link_attr("dc-switch", "internet", "latency", 20.0)  # unchanged
        assert seen == []

    def test_node_change(self):
        _, env = make_world()
        mon = Monitor(env)
        mon.set_node_attr("edge1", "trusted", False)
        assert not env.is_trusted("edge1")
        assert mon.history[-1].kind == "node"

    def test_unsubscribe(self):
        _, env = make_world()
        mon = Monitor(env)
        seen = []
        unsub = mon.subscribe(seen.append)
        unsub()
        mon.set_node_attr("edge1", "capacity", 9)
        assert seen == []


class TestAdaptationLoop:
    def test_latency_degradation_triggers_view_deployment(self):
        """The PSF adaptation story: the backbone slows down, so the
        planner moves service into the client's domain."""
        spec, env = make_world()
        mon = Monitor(env)
        clients = [QoSRequirement(client_node="edge1", max_latency=50.0)]
        loop = AdaptationLoop(mon, Planner(spec, env), clients)
        # Initially the DB (41 units away) fits the 50-unit budget.
        serving = loop.current_plan.placement_of(
            loop.current_plan.client_bindings["edge1"]
        )
        assert serving.type_name == "DB"
        # Backbone degrades: direct access now exceeds the budget.
        mon.set_link_attr("edge-switch", "internet", "latency", 80.0)
        assert len(loop.adaptations) == 1
        added = loop.adaptations[0]["add"]
        assert [p.type_name for p in added] == ["Agent"]
        serving = loop.current_plan.placement_of(
            loop.current_plan.client_bindings["edge1"]
        )
        assert serving.type_name == "Agent"

    def test_client_qos_change_triggers_replan(self):
        spec, env = make_world()
        mon = Monitor(env)
        loose = [QoSRequirement(client_node="edge1", max_latency=100.0)]
        loop = AdaptationLoop(mon, Planner(spec, env), loose)
        tight = [QoSRequirement(client_node="edge1", max_latency=5.0)]
        loop.update_clients(tight)
        assert loop.adaptations  # the view had to move closer
        assert loop.current_plan.estimated_latency["edge1"] <= 5.0

    def test_irrelevant_change_produces_no_adaptation(self):
        spec, env = make_world()
        mon = Monitor(env)
        clients = [QoSRequirement(client_node="spare", max_latency=10.0)]
        loop = AdaptationLoop(mon, Planner(spec, env), clients)
        mon.set_node_attr("edge2", "capacity", 99)
        assert loop.adaptations == []

    def test_stop_detaches_loop(self):
        spec, env = make_world()
        mon = Monitor(env)
        loop = AdaptationLoop(
            mon, Planner(spec, env),
            [QoSRequirement(client_node="edge1", max_latency=50.0)],
        )
        loop.stop()
        mon.set_link_attr("edge-switch", "internet", "latency", 500.0)
        assert loop.adaptations == []


class TestDeployer:
    def _deploy(self):
        spec, env = make_world()
        plan = Planner(spec, env).plan(
            [QoSRequirement(client_node="edge1", max_latency=5.0, privacy=True)]
        )
        kernel = SimKernel()
        transport = SimTransport(kernel, topology=env.topology)
        created = []

        def factory(name):
            def make(placement):
                created.append((name, placement.node))
                return {"type": name, "node": placement.node}
            return make

        deployer = Deployer(
            transport,
            factories={t: factory(t) for t in ("DB", "Agent", "Enc", "Dec")},
        )
        return plan, transport, deployer.deploy(plan), created

    def test_every_placement_instantiated(self):
        plan, _, app, created = self._deploy()
        assert len(app.instances) == len(plan.all_placements())
        assert ("DB", "server") in created

    def test_addresses_placed_on_topology_nodes(self):
        plan, transport, app, _ = self._deploy()
        db = plan.instances_of_type("DB")[0]
        deployed = app.instances[db.instance_id]
        assert transport.node_of(deployed.address) == "server"

    def test_serving_instance_lookup(self):
        _, _, app, _ = self._deploy()
        serving = app.serving_instance_for("edge1")
        assert serving["type"] == "Agent"

    def test_missing_factory_rejected(self):
        spec, env = make_world()
        plan = Planner(spec, env).plan([])
        kernel = SimKernel()
        transport = SimTransport(kernel)
        deployer = Deployer(transport, factories={})
        with pytest.raises(DeploymentError, match="no factory"):
            deployer.deploy(plan)

    def test_undeploy_calls_close_and_forgets(self):
        plan, transport, app, _ = self._deploy()
        closed = []

        class Closeable:
            def close(self):
                closed.append(True)

        db_iid = plan.instances_of_type("DB")[0].instance_id
        app.instances[db_iid].instance = Closeable()
        deployer = Deployer(transport, factories={})
        deployer.undeploy(app, db_iid)
        assert closed == [True]
        with pytest.raises(DeploymentError):
            app.instance_of(db_iid)

    def test_unknown_client_binding_rejected(self):
        _, _, app, _ = self._deploy()
        with pytest.raises(DeploymentError, match="no binding"):
            app.serving_instance_for("nowhere")
