"""Unit tests for the PSF planner (latency + privacy adaptations, §3.1)."""

import pytest

from repro.errors import PlanningError
from repro.net.topology import wan_topology
from repro.psf import (
    ApplicationSpec,
    ComponentType,
    Environment,
    Interface,
    Planner,
    QoSRequirement,
    ViewKind,
    derive_view,
    diff_plans,
)


def make_world(insecure_backbone=True, with_view=True, with_codecs=True):
    topo = wan_topology(
        {"dc": ["server", "spare"], "edge": ["edge1", "edge2"]},
        internet_latency=20.0,
        lan_latency=0.5,
        insecure_backbone=insecure_backbone,
    )
    env = Environment(topo)
    for host in ["server", "spare", "edge1", "edge2"]:
        topo.graph.nodes[host]["trusted"] = True
        topo.graph.nodes[host]["capacity"] = 4

    db = ComponentType.make(
        "DB",
        implements=[Interface.make("Svc")],
        functions={"browse", "reserve"},
        variables={"flights"},
        sensitive=True,
        pinned_to="server",
    )
    components = [db]
    if with_view:
        components.append(
            derive_view(db, ViewKind.CUSTOMIZATION, name="Agent")
        )
    if with_codecs:
        components.append(ComponentType.make("Enc", implements=[Interface.make("Codec")]))
        components.append(ComponentType.make("Dec", implements=[Interface.make("Codec")]))
    spec = ApplicationSpec.build(
        "app",
        components,
        service_interface="Svc",
        encryptor="Enc" if with_codecs else None,
        decryptor="Dec" if with_codecs else None,
    )
    return spec, env


def test_pinned_component_placed_at_its_node():
    spec, env = make_world()
    plan = Planner(spec, env).plan([])
    [db] = plan.instances_of_type("DB")
    assert db.node == "server"


def test_nearby_client_served_directly():
    spec, env = make_world()
    qos = QoSRequirement(client_node="spare", max_latency=10.0)
    plan = Planner(spec, env).plan([qos])
    serving = plan.placement_of(plan.client_bindings["spare"])
    assert serving.type_name == "DB"
    assert plan.estimated_latency["spare"] == 1.0
    assert plan.instances_of_type("Agent") == []


def test_remote_client_gets_view_near_it():
    """The paper's latency adaptation: cache component near the client."""
    spec, env = make_world()
    qos = QoSRequirement(client_node="edge1", max_latency=5.0)
    plan = Planner(spec, env).plan([qos])
    serving = plan.placement_of(plan.client_bindings["edge1"])
    assert serving.type_name == "Agent"
    assert serving.node in ("edge1", "edge2")
    assert plan.estimated_latency["edge1"] <= 5.0
    assert serving.serves_client == "edge1"


def test_remote_client_with_loose_budget_served_directly():
    spec, env = make_world()
    qos = QoSRequirement(client_node="edge1", max_latency=100.0)
    plan = Planner(spec, env).plan([qos])
    serving = plan.placement_of(plan.client_bindings["edge1"])
    assert serving.type_name == "DB"


def test_no_view_type_and_tight_budget_fails():
    spec, env = make_world(with_view=False)
    qos = QoSRequirement(client_node="edge1", max_latency=5.0)
    with pytest.raises(PlanningError, match="no mobile view"):
        Planner(spec, env).plan([qos])


def test_impossible_budget_fails():
    spec, env = make_world()
    # The Agent view inherits the DB's sensitivity, so untrusting the
    # edge hosts forces placement across the backbone — over budget.
    for host in ("edge1", "edge2"):
        env.topology.graph.nodes[host]["trusted"] = False
    qos = QoSRequirement(client_node="edge1", max_latency=5.0)
    with pytest.raises(PlanningError, match="exceeds budget"):
        Planner(spec, env).plan([qos])


def test_privacy_inserts_codec_pairs_on_insecure_links():
    """The paper's security adaptation: encryptor/decryptor around
    insecure links (here: the view<->original backbone path)."""
    spec, env = make_world()
    qos = QoSRequirement(client_node="edge1", max_latency=5.0, privacy=True)
    plan = Planner(spec, env).plan([qos])
    assert len(plan.codec_pairs) == 2  # two insecure backbone hops
    for pair in plan.codec_pairs:
        assert pair.encryptor.type_name == "Enc"
        assert pair.decryptor.type_name == "Dec"
    links = {pair.link for pair in plan.codec_pairs}
    assert links == {("dc-switch", "internet"), ("edge-switch", "internet")}


def test_privacy_on_secure_network_adds_nothing():
    spec, env = make_world(insecure_backbone=False)
    qos = QoSRequirement(client_node="edge1", max_latency=5.0, privacy=True)
    plan = Planner(spec, env).plan([qos])
    assert plan.codec_pairs == []


def test_privacy_without_codec_types_fails():
    spec, env = make_world(with_codecs=False)
    qos = QoSRequirement(client_node="edge1", max_latency=5.0, privacy=True)
    with pytest.raises(PlanningError, match="no encryptor/decryptor"):
        Planner(spec, env).plan([qos])


def test_two_clients_one_remote_one_local():
    spec, env = make_world()
    plan = Planner(spec, env).plan(
        [
            QoSRequirement(client_node="spare", max_latency=10.0),
            QoSRequirement(client_node="edge1", max_latency=5.0),
        ]
    )
    assert plan.placement_of(plan.client_bindings["spare"]).type_name == "DB"
    assert plan.placement_of(plan.client_bindings["edge1"]).type_name == "Agent"


def test_second_remote_client_reuses_nearby_view():
    spec, env = make_world()
    plan = Planner(spec, env).plan(
        [
            QoSRequirement(client_node="edge1", max_latency=5.0),
            QoSRequirement(client_node="edge2", max_latency=5.0),
        ]
    )
    # A single Agent instance in the edge domain serves both clients.
    assert len(plan.instances_of_type("Agent")) == 1
    assert (
        plan.client_bindings["edge1"] == plan.client_bindings["edge2"]
    )


def test_plan_is_deterministic():
    spec1, env1 = make_world()
    spec2, env2 = make_world()
    clients = [QoSRequirement(client_node="edge1", max_latency=5.0, privacy=True)]
    p1 = Planner(spec1, env1).plan(clients)
    p2 = Planner(spec2, env2).plan(clients)
    shapes = lambda p: sorted(
        (pl.type_name, pl.node) for pl in p.all_placements()
    )
    assert shapes(p1) == shapes(p2)


def test_diff_plans_reports_adds_and_removes():
    spec, env = make_world()
    planner = Planner(spec, env)
    base = planner.plan([QoSRequirement(client_node="spare", max_latency=10.0)])
    grown = planner.plan(
        [
            QoSRequirement(client_node="spare", max_latency=10.0),
            QoSRequirement(client_node="edge1", max_latency=5.0),
        ]
    )
    diff = diff_plans(base, grown)
    assert [p.type_name for p in diff["add"]] == ["Agent"]
    assert diff["remove"] == []
    # Reverse direction removes the view.
    diff_back = diff_plans(grown, base)
    assert [p.type_name for p in diff_back["remove"]] == ["Agent"]


def test_diff_of_identical_plans_is_empty():
    spec, env = make_world()
    planner = Planner(spec, env)
    clients = [QoSRequirement(client_node="edge1", max_latency=5.0)]
    d = diff_plans(planner.plan(clients), planner.plan(clients))
    assert d == {"add": [], "remove": []}
