"""Unit tests for repro.psf.specification."""

import pytest

from repro.errors import PlanningError
from repro.psf import ApplicationSpec, ComponentType, Interface, ViewKind, derive_view


def make_spec():
    db = ComponentType.make(
        "DB",
        implements=[Interface.make("Svc")],
        functions={"f", "g"},
        variables={"x"},
        pinned_to="server",
    )
    agent = derive_view(db, ViewKind.CUSTOMIZATION, name="Agent")
    enc = ComponentType.make("Enc", implements=[Interface.make("Codec")])
    dec = ComponentType.make("Dec", implements=[Interface.make("Codec")])
    return ApplicationSpec.build(
        "app", [db, agent, enc, dec], service_interface="Svc",
        encryptor="Enc", decryptor="Dec",
    )


def test_build_validates_ok():
    spec = make_spec()
    assert sorted(spec.components) == ["Agent", "DB", "Dec", "Enc"]


def test_providers_and_views():
    spec = make_spec()
    assert [c.name for c in spec.providers_of("Svc")] == ["Agent", "DB"]
    assert [c.name for c in spec.views_of("DB")] == ["Agent"]
    assert [c.name for c in spec.service_providers()] == ["Agent", "DB"]


def test_unknown_component_lookup():
    with pytest.raises(PlanningError, match="unknown component"):
        make_spec().component("Ghost")


def test_missing_service_provider_rejected():
    c = ComponentType.make("C", implements=[Interface.make("Other")])
    with pytest.raises(PlanningError, match="nothing implements"):
        ApplicationSpec.build("app", [c], service_interface="Svc")


def test_unsatisfied_requires_rejected():
    c = ComponentType.make(
        "C", implements=[Interface.make("Svc")], requires={"Missing"}
    )
    with pytest.raises(PlanningError, match="unimplemented"):
        ApplicationSpec.build("app", [c], service_interface="Svc")


def test_requires_satisfied_by_other_component():
    a = ComponentType.make("A", implements=[Interface.make("Svc")], requires={"Store"})
    b = ComponentType.make("B", implements=[Interface.make("Store")])
    spec = ApplicationSpec.build("app", [a, b], service_interface="Svc")
    assert spec.component("A").requires == {"Store"}


def test_view_of_unknown_component_rejected():
    v = ComponentType.make(
        "V", implements=[Interface.make("Svc")], view_of="Ghost"
    )
    with pytest.raises(PlanningError, match="view of unknown"):
        ApplicationSpec.build("app", [v], service_interface="Svc")


def test_unknown_codec_rejected():
    c = ComponentType.make("C", implements=[Interface.make("Svc")])
    with pytest.raises(PlanningError, match="encryptor"):
        ApplicationSpec.build("app", [c], service_interface="Svc", encryptor="Nope")
