"""Unit tests for the PSF component model and views (§3.1, §3.2)."""

import pytest

from repro.errors import ViewError
from repro.psf import ComponentType, Interface, ViewKind, derive_view, is_view_of


def make_db():
    return ComponentType.make(
        "FlightDatabase",
        implements=[Interface.make("AirlineReservation", version=1)],
        functions={"browse", "reserve", "confirm"},
        variables={"flights", "seats"},
        sensitive=True,
        pinned_to="server",
    )


class TestComponentType:
    def test_make_and_queries(self):
        db = make_db()
        assert db.provides("AirlineReservation")
        assert not db.provides("Nothing")
        assert db.implemented_names() == {"AirlineReservation"}
        assert not db.is_view()

    def test_interface_properties(self):
        i = Interface.make("I", secure=True, version=2)
        assert i.property_dict() == {"secure": True, "version": 2}

    def test_empty_name_rejected(self):
        with pytest.raises(ViewError):
            ComponentType.make("")

    def test_frozen(self):
        db = make_db()
        with pytest.raises(AttributeError):
            db.name = "other"


class TestViewPredicate:
    def test_shared_functions_is_view(self):
        db = make_db()
        v = ComponentType.make("V", functions={"browse"}, variables=set())
        assert is_view_of(v, db)

    def test_shared_variables_is_view(self):
        db = make_db()
        v = ComponentType.make("V", functions=set(), variables={"seats"})
        assert is_view_of(v, db)

    def test_disjoint_is_not_view(self):
        db = make_db()
        v = ComponentType.make("V", functions={"other"}, variables={"other"})
        assert not is_view_of(v, db)


class TestDeriveView:
    def test_proxy_defaults(self):
        db = make_db()
        proxy = derive_view(db, ViewKind.PROXY)
        assert proxy.functions == db.functions
        assert proxy.variables == frozenset()
        assert proxy.view_of == "FlightDatabase"
        assert proxy.mobile and not proxy.sensitive
        assert proxy.requires == frozenset()  # proxies only forward

    def test_customization_defaults_and_narrowing(self):
        db = make_db()
        cust = derive_view(
            db, ViewKind.CUSTOMIZATION, name="TravelAgent",
            functions={"browse", "reserve"}, variables={"flights"},
        )
        assert cust.name == "TravelAgent"
        assert cust.functions == {"browse", "reserve"}
        assert cust.variables == {"flights"}
        assert cust.sensitive == db.sensitive

    def test_partial_requires_explicit_subsets(self):
        db = make_db()
        with pytest.raises(ViewError, match="explicit"):
            derive_view(db, ViewKind.PARTIAL)
        partial = derive_view(
            db, ViewKind.PARTIAL, functions={"browse"}, variables={"flights"}
        )
        assert is_view_of(partial, db)

    def test_superset_functions_rejected(self):
        db = make_db()
        with pytest.raises(ViewError, match="not in original"):
            derive_view(db, ViewKind.CUSTOMIZATION, functions={"hack"})

    def test_superset_variables_rejected(self):
        db = make_db()
        with pytest.raises(ViewError, match="not in original"):
            derive_view(
                db, ViewKind.PARTIAL, functions={"browse"}, variables={"secrets"}
            )

    def test_degenerate_empty_view_rejected(self):
        db = make_db()
        with pytest.raises(ViewError, match="not a view"):
            derive_view(db, ViewKind.PARTIAL, functions=set(), variables=set())

    def test_default_view_name(self):
        db = make_db()
        assert derive_view(db, ViewKind.PROXY).name == "FlightDatabase.proxy"
