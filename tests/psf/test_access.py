"""Tests for credential-driven view selection (paper §3.2)."""

import pytest

from repro.errors import ViewError
from repro.psf import ComponentType, Interface, ViewKind
from repro.psf.access import (
    AccessPolicy,
    AccessRule,
    Credentials,
    select_view,
)


def make_db():
    return ComponentType.make(
        "FlightDatabase",
        implements=[Interface.make("Svc")],
        functions={"browse", "reserve", "confirm"},
        variables={"flights", "seats"},
        sensitive=True,
    )


class TestCredentials:
    def test_make_and_roles(self):
        c = Credentials.make("alice", roles=["agent", "admin"])
        assert c.has_role("agent") and not c.has_role("auditor")
        assert not c.trusted_host

    def test_frozen(self):
        c = Credentials.make("alice")
        with pytest.raises(AttributeError):
            c.user = "mallory"


class TestAccessRules:
    def test_unconditional_rule_matches_everyone(self):
        rule = AccessRule(ViewKind.PROXY)
        assert rule.matches(Credentials.make("anyone"))

    def test_role_requirement(self):
        rule = AccessRule(ViewKind.CUSTOMIZATION, required_role="agent")
        assert rule.matches(Credentials.make("a", roles=["agent"]))
        assert not rule.matches(Credentials.make("b"))

    def test_trusted_host_requirement(self):
        rule = AccessRule(ViewKind.PARTIAL, require_trusted_host=True)
        assert rule.matches(Credentials.make("a", trusted_host=True))
        assert not rule.matches(Credentials.make("a"))


class TestAccessPolicy:
    def test_most_capable_grant_wins(self):
        policy = AccessPolicy(
            [
                AccessRule(ViewKind.PROXY),
                AccessRule(ViewKind.CUSTOMIZATION, required_role="agent"),
            ]
        )
        assert policy.allowed_kind(Credentials.make("x")) is ViewKind.PROXY
        assert (
            policy.allowed_kind(Credentials.make("x", roles=["agent"]))
            is ViewKind.CUSTOMIZATION
        )

    def test_no_rule_means_denied(self):
        policy = AccessPolicy()
        assert policy.allowed_kind(Credentials.make("x")) is None

    def test_permits_is_downward_closed(self):
        policy = AccessPolicy([AccessRule(ViewKind.PARTIAL)])
        c = Credentials.make("x")
        assert policy.permits(c, ViewKind.PROXY)
        assert policy.permits(c, ViewKind.PARTIAL)
        assert not policy.permits(c, ViewKind.CUSTOMIZATION)

    def test_default_open_policy(self):
        policy = AccessPolicy.default_open()
        assert policy.allowed_kind(Credentials.make("x")) is ViewKind.PROXY
        assert (
            policy.allowed_kind(Credentials.make("x", trusted_host=True))
            is ViewKind.CUSTOMIZATION
        )


class TestSelectView:
    def test_proxy_for_untrusted_user(self):
        view = select_view(
            make_db(), Credentials.make("guest"), AccessPolicy.default_open()
        )
        assert view.view_of == "FlightDatabase"
        assert view.variables == frozenset()  # no local data for proxies
        assert "guest" in view.name

    def test_customization_for_trusted_host(self):
        view = select_view(
            make_db(),
            Credentials.make("agent1", trusted_host=True),
            AccessPolicy.default_open(),
        )
        assert view.functions == make_db().functions
        assert view.variables == make_db().variables

    def test_partial_with_explicit_shape(self):
        policy = AccessPolicy([AccessRule(ViewKind.PARTIAL)])
        view = select_view(
            make_db(), Credentials.make("x"), policy,
            partial_shape=({"browse"}, {"flights"}),
        )
        assert view.functions == {"browse"}
        assert view.variables == {"flights"}

    def test_partial_default_shape(self):
        policy = AccessPolicy([AccessRule(ViewKind.PARTIAL)])
        view = select_view(make_db(), Credentials.make("x"), policy)
        assert view.functions == make_db().functions
        assert len(view.variables) == 1

    def test_denied_raises(self):
        with pytest.raises(ViewError, match="access denied"):
            select_view(make_db(), Credentials.make("x"), AccessPolicy())

    def test_role_gated_escalation(self):
        policy = AccessPolicy(
            [
                AccessRule(ViewKind.PROXY),
                AccessRule(ViewKind.CUSTOMIZATION, required_role="travel-agent",
                           require_trusted_host=True),
            ]
        )
        guest = select_view(make_db(), Credentials.make("g"), policy)
        agent = select_view(
            make_db(),
            Credentials.make("a", roles=["travel-agent"], trusted_host=True),
            policy,
        )
        assert guest.variables == frozenset()
        assert agent.variables == make_db().variables
