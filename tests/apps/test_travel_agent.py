"""Unit + integration tests for the travel agent view."""

import pytest

from repro.apps.airline import (
    Flight,
    FlightDatabase,
    TravelAgent,
    build_airline_system,
)
from repro.apps.airline.flights import ReservationError
from repro.apps.airline.travel_agent import lifecycle
from repro.core import Mode, ObjectImage, PropertySet
from repro.core.system import run_all_scripts


def make_db(seats=100):
    return FlightDatabase(
        [
            Flight("FL0001", "NYC", "SFO", seats, seats, 250.0),
            Flight("FL0002", "NYC", "BOS", seats, seats, 99.0),
        ]
    )


class TestAgentLocalBehavior:
    def test_confirm_tickets_updates_local_copy(self):
        agent = TravelAgent("ta-1", ["FL0001"])
        agent.local["FL0001"] = Flight("FL0001", "NYC", "SFO", 10, 10, 1.0)
        agent.confirm_tickets(3, "FL0001")
        assert agent.local["FL0001"].seats_available == 7
        assert agent.reservations_made == 3

    def test_sold_out_locally(self):
        agent = TravelAgent("ta-1", ["FL0001"])
        agent.local["FL0001"] = Flight("FL0001", "NYC", "SFO", 10, 0, 1.0)
        with pytest.raises(ReservationError, match="sold out"):
            agent.confirm_tickets(1, "FL0001")

    def test_unserved_flight_rejected(self):
        agent = TravelAgent("ta-1", ["FL0001"])
        with pytest.raises(ReservationError, match="does not serve"):
            agent.browse("FL0002")

    def test_properties_cover_served_flights(self):
        agent = TravelAgent("ta-1", ["FL0002", "FL0001"])
        p = agent.properties().get("Flights")
        assert p.domain.contains("FL0001") and p.domain.contains("FL0002")
        assert not p.domain.contains("FL0003")

    def test_extract_merge_roundtrip(self):
        a1, a2 = TravelAgent("a", ["FL0001"]), TravelAgent("b", ["FL0001"])
        a1.local["FL0001"] = Flight("FL0001", "NYC", "SFO", 10, 4, 1.0)
        a2.merge_into_view(a1.extract_from_view(PropertySet()), PropertySet())
        assert a2.local["FL0001"] == a1.local["FL0001"]


class TestLifecycleIntegration:
    def test_fig3_lifecycle_commits_reservations(self):
        airline = build_airline_system(make_db())
        agent, cm = airline.add_travel_agent("ta-1", ["FL0001", "FL0002"])
        ops = [("reserve", "FL0001", 1)] * 3 + [("reserve", "FL0002", 2)]
        [made] = run_all_scripts(airline.transport, [lifecycle(cm, agent, ops)])
        assert made == 5
        assert airline.database.seats_available("FL0001") == 97
        assert airline.database.seats_available("FL0002") == 98

    def test_weak_mode_stale_push_cannot_resurrect_seats(self):
        """The seat conflict resolver keeps seats monotone: a stale
        push (fewer sales against an old base) must not overwrite a
        fresher, lower seat count."""
        def run(use_resolver):
            airline = build_airline_system(
                make_db(), use_conflict_resolver=use_resolver
            )
            a1, cm1 = airline.add_travel_agent("ta-1", ["FL0001"])
            a2, cm2 = airline.add_travel_agent("ta-2", ["FL0001"])

            def eager():  # sells 3, pushes immediately
                yield from lifecycle(cm1, a1, [("reserve", "FL0001", 3)],
                                     think_time=0.0)

            def laggard():  # pulls the same base, sells 1, pushes later
                yield cm2.start()
                yield cm2.init_image()          # base: 100 seats
                yield ("sleep", 30.0)           # eager's push lands first
                yield cm2.start_use_image()
                a2.confirm_tickets(1, "FL0001")
                cm2.end_use_image()
                yield cm2.push_image()          # stale push: 99 seats

            run_all_scripts(airline.transport, [eager(), laggard()])
            return airline.database.seats_available("FL0001")

        assert run(use_resolver=False) == 99  # LWW resurrects 2 sold seats
        assert run(use_resolver=True) == 97   # resolver keeps the floor

    def test_strong_mode_agents_fully_serialized(self):
        airline = build_airline_system(make_db())
        a1, cm1 = airline.add_travel_agent("ta-1", ["FL0001"], mode=Mode.STRONG)
        a2, cm2 = airline.add_travel_agent("ta-2", ["FL0001"], mode=Mode.STRONG)
        ops = [("reserve", "FL0001", 1)] * 5
        run_all_scripts(
            airline.transport,
            [lifecycle(cm1, a1, ops), lifecycle(cm2, a2, ops)],
        )
        assert airline.database.seats_available("FL0001") == 90
        airline.directory.check_invariants()

    def test_mode_switch_mid_lifecycle(self):
        airline = build_airline_system(make_db())
        agent, cm = airline.add_travel_agent("ta-1", ["FL0001"])
        ops = (
            [("reserve", "FL0001", 1)] * 2
            + [("set_mode", Mode.STRONG)]
            + [("reserve", "FL0001", 1)] * 2
            + [("set_mode", Mode.WEAK)]
            + [("reserve", "FL0001", 1)]
        )
        [made] = run_all_scripts(airline.transport, [lifecycle(cm, agent, ops)])
        assert made == 5
        assert airline.database.seats_available("FL0001") == 95

    def test_browse_ops_do_not_touch_database(self):
        airline = build_airline_system(make_db())
        agent, cm = airline.add_travel_agent("ta-1", ["FL0001"])
        ops = [("browse", "FL0001")] * 4
        run_all_scripts(airline.transport, [lifecycle(cm, agent, ops)])
        assert agent.browse_count == 4
        assert airline.database.seats_available("FL0001") == 100

    def test_unknown_operation_rejected(self):
        airline = build_airline_system(make_db())
        agent, cm = airline.add_travel_agent("ta-1", ["FL0001"])
        with pytest.raises(ValueError, match="unknown operation"):
            run_all_scripts(
                airline.transport, [lifecycle(cm, agent, [("dance",)])]
            )

    def test_agents_placed_on_lan_hosts_have_latency(self):
        airline = build_airline_system(make_db(), n_agent_hosts=2, lan_latency=0.5)
        agent, cm = airline.add_travel_agent("ta-1", ["FL0001"], node="agent-0")
        assert airline.transport.latency_between(cm.address, "dir") == 1.0
