"""Interval-domain flight properties: agents serving flight-number
*ranges* conflict exactly when the ranges overlap (Definition 3 with
``D_p = [d_min, d_max]`` exercised by a real application)."""

import pytest

from repro.apps.airline import FlightDatabase, build_airline_system, generate_flight_database
from repro.apps.airline.flights import (
    extract_from_database,
    flight_index_property,
    _flight_index,
)
from repro.apps.airline.travel_agent import TravelAgent, attach_cache_manager
from repro.core import messages as M
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet


def test_flight_index_parsing():
    assert _flight_index("FL0042") == 42
    assert _flight_index("UA100") is None
    assert _flight_index("FLxx") is None


def test_extract_respects_interval_slice():
    db = generate_flight_database(20, seed=0)
    img = extract_from_database(db, flight_index_property(5, 9))
    assert sorted(img.keys()) == [f"FL{i:04d}" for i in range(5, 10)]


def test_interval_properties_drive_conflicts():
    p_low = flight_index_property(0, 9)
    p_mid = flight_index_property(5, 14)
    p_high = flight_index_property(20, 29)
    assert p_low.conflicts_with(p_mid)       # [0,9] ∩ [5,14] ≠ ∅
    assert not p_low.conflicts_with(p_high)  # [0,9] ∩ [20,29] = ∅
    assert p_mid.conflicts_with(p_high) is False


class _RangeAgent(TravelAgent):
    """Travel agent whose property is an index interval."""

    def __init__(self, agent_id, lo, hi, db):
        served = [
            n for n in sorted(db.flights)
            if lo <= (_flight_index(n) or -1) <= hi
        ]
        super().__init__(agent_id, served)
        self._lo, self._hi = lo, hi

    def properties(self):
        return flight_index_property(self._lo, self._hi)


def test_range_agents_fetch_only_overlapping_ranges():
    db = generate_flight_database(30, seed=1)
    airline = build_airline_system(db)
    fresh = TriggerSet(validity="true")

    def add(agent_id, lo, hi, triggers=None):
        agent = _RangeAgent(agent_id, lo, hi, db)
        cm = attach_cache_manager(airline.system, agent, triggers=triggers)
        airline.agents[agent_id] = agent
        airline.cache_managers[agent_id] = cm
        return agent, cm

    a1, cm1 = add("range-0-9", 0, 9, triggers=fresh)
    a2, cm2 = add("range-5-14", 5, 14)
    a3, cm3 = add("range-20-29", 20, 29)

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    run_all_scripts(airline.transport, [setup(cm) for cm in (cm1, cm2, cm3)])
    before = airline.stats.snapshot()

    def puller():
        yield cm1.pull_image()

    run_all_scripts(airline.transport, [puller()])
    delta = airline.stats.snapshot().delta(before)
    # One fetch to the overlapping range agent, none to the disjoint one.
    assert delta.by_type.get(M.FETCH_REQ, 0) == 1
    assert (airline.directory.address, cm2.address) in delta.by_pair
    assert (airline.directory.address, cm3.address) not in delta.by_pair


def test_range_reservation_commits_to_correct_slice():
    db = generate_flight_database(10, seed=2)
    airline = build_airline_system(db)
    agent = _RangeAgent("r", 3, 6, db)
    cm = attach_cache_manager(airline.system, agent)
    flight = "FL0004"
    seats_before = db.seats_available(flight)

    def script():
        yield cm.start()
        yield cm.init_image()
        assert sorted(agent.local) == [f"FL{i:04d}" for i in range(3, 7)]
        yield cm.start_use_image()
        agent.confirm_tickets(2, flight)
        cm.end_use_image()
        yield cm.push_image()

    run_all_scripts(airline.transport, [script()])
    assert db.seats_available(flight) == seats_before - 2
