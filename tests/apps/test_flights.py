"""Unit tests for the flight database component."""

import pytest

from repro.apps.airline import (
    Flight,
    FlightDatabase,
    extract_from_database,
    flights_property,
    merge_into_database,
)
from repro.apps.airline.flights import ReservationError, seat_conflict_resolver
from repro.core import ObjectImage, PropertySet


def make_db():
    return FlightDatabase(
        [
            Flight("FL0001", "NYC", "SFO", 100, 100, 250.0),
            Flight("FL0002", "NYC", "BOS", 50, 10, 99.0),
            Flight("FL0003", "SFO", "LAX", 80, 0, 120.0),
        ]
    )


class TestDatabase:
    def test_browse_all_sorted(self):
        db = make_db()
        assert [f.number for f in db.browse()] == ["FL0001", "FL0002", "FL0003"]

    def test_browse_filtered(self):
        db = make_db()
        assert [f.number for f in db.browse(origin="NYC")] == ["FL0001", "FL0002"]
        assert [f.number for f in db.browse(origin="NYC", destination="BOS")] == ["FL0002"]

    def test_reserve_and_release(self):
        db = make_db()
        db.reserve("FL0001", 3)
        assert db.seats_available("FL0001") == 97
        db.release("FL0001", 2)
        assert db.seats_available("FL0001") == 99

    def test_reserve_sold_out(self):
        db = make_db()
        with pytest.raises(ReservationError, match="has 0 seats"):
            db.reserve("FL0003")

    def test_reserve_more_than_available(self):
        db = make_db()
        with pytest.raises(ReservationError):
            db.reserve("FL0002", 11)

    def test_reserve_invalid_count(self):
        db = make_db()
        with pytest.raises(ReservationError, match="invalid seat count"):
            db.reserve("FL0001", 0)

    def test_release_overflow_rejected(self):
        db = make_db()
        with pytest.raises(ReservationError, match="overflows"):
            db.release("FL0001", 1)

    def test_unknown_flight(self):
        db = make_db()
        with pytest.raises(ReservationError, match="unknown flight"):
            db.reserve("FL9999")

    def test_duplicate_flight_rejected(self):
        db = make_db()
        with pytest.raises(ReservationError, match="duplicate"):
            db.add_flight(Flight("FL0001", "A", "B", 1, 1, 1.0))

    def test_invalid_seat_invariant_rejected(self):
        with pytest.raises(ReservationError):
            FlightDatabase([Flight("F", "A", "B", 10, 11, 1.0)])

    def test_total_seats(self):
        assert make_db().total_seats_available() == 110


class TestFleccFunctions:
    def test_extract_respects_property_slice(self):
        db = make_db()
        props = flights_property(["FL0001", "FL0003"])
        img = extract_from_database(db, props)
        assert sorted(img.keys()) == ["FL0001", "FL0003"]
        assert img.get("FL0001")["seats_available"] == 100

    def test_extract_without_property_takes_all(self):
        img = extract_from_database(make_db(), PropertySet())
        assert len(img) == 3

    def test_merge_updates_database(self):
        db = make_db()
        cell = db.flights["FL0002"].to_cell()
        cell["seats_available"] = 1
        merge_into_database(db, ObjectImage({"FL0002": cell}), PropertySet())
        assert db.seats_available("FL0002") == 1

    def test_flight_cell_roundtrip(self):
        f = Flight("X", "A", "B", 10, 5, 42.5)
        assert Flight.from_cell(f.to_cell()) == f

    def test_extract_merge_roundtrip_preserves_state(self):
        db1, db2 = make_db(), FlightDatabase()
        props = flights_property(["FL0001", "FL0002", "FL0003"])
        merge_into_database(db2, extract_from_database(db1, props), props)
        assert db2.flights == db1.flights


class TestSeatConflictResolver:
    def test_takes_minimum_seats(self):
        current = Flight("F", "A", "B", 100, 90, 1.0).to_cell()
        pushed = Flight("F", "A", "B", 100, 95, 1.0).to_cell()
        merged = seat_conflict_resolver("F", current, pushed)
        assert merged["seats_available"] == 90

    def test_pushed_lower_wins(self):
        current = Flight("F", "A", "B", 100, 95, 1.0).to_cell()
        pushed = Flight("F", "A", "B", 100, 80, 1.0).to_cell()
        merged = seat_conflict_resolver("F", current, pushed)
        assert merged["seats_available"] == 80

    def test_preserves_other_fields(self):
        current = Flight("F", "A", "B", 100, 90, 1.0).to_cell()
        pushed = Flight("F", "A", "B", 100, 95, 2.0).to_cell()
        merged = seat_conflict_resolver("F", current, pushed)
        assert merged["price"] == 1.0  # lower-seat side's record kept
