"""Tests for the Zipf-skewed workload generator."""

from collections import Counter

import pytest

from repro.apps.airline.workload import zipf_reserve_operations


FLIGHTS = [f"FL{i:04d}" for i in range(10)]


def test_deterministic():
    a = zipf_reserve_operations(FLIGHTS, 50, seed=3, agent_index=1)
    b = zipf_reserve_operations(FLIGHTS, 50, seed=3, agent_index=1)
    assert a == b


def test_all_ops_are_reserves_on_served_flights():
    ops = zipf_reserve_operations(FLIGHTS, 100, seed=0)
    assert all(op[0] == "reserve" and op[1] in FLIGHTS for op in ops)


def test_skew_concentrates_on_head():
    ops = zipf_reserve_operations(FLIGHTS, 2000, skew=1.5, seed=0)
    counts = Counter(op[1] for op in ops)
    head = counts[FLIGHTS[0]]
    tail = counts[FLIGHTS[-1]]
    assert head > 5 * max(tail, 1)


def test_higher_skew_more_concentrated():
    def head_share(skew):
        ops = zipf_reserve_operations(FLIGHTS, 2000, skew=skew, seed=0)
        counts = Counter(op[1] for op in ops)
        return counts[FLIGHTS[0]] / 2000

    assert head_share(2.0) > head_share(0.5)


def test_invalid_skew_rejected():
    with pytest.raises(ValueError):
        zipf_reserve_operations(FLIGHTS, 10, skew=0.0)


def test_different_agents_get_different_streams():
    a = zipf_reserve_operations(FLIGHTS, 50, seed=0, agent_index=0)
    b = zipf_reserve_operations(FLIGHTS, 50, seed=0, agent_index=1)
    assert a != b
