"""Tests for the collaborative-document application (application-
neutrality check: a second app on the unmodified protocol)."""

import pytest

from repro.apps.docshare import (
    EditorView,
    SharedDocument,
    extract_from_document,
    line_merge_resolver,
    merge_into_document,
    sections_property,
)
from repro.apps.docshare.document import DocumentError
from repro.apps.docshare.editor import attach_editor
from repro.core import FleccSystem, Mode
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.net import SimTransport
from repro.sim import SimKernel


def make_doc():
    return SharedDocument(
        {"intro": "Line A", "body": "Line B", "outro": ""}
    )


def make_system(resolver=line_merge_resolver):
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    system = FleccSystem(
        transport, make_doc(), extract_from_document, merge_into_document,
        conflict_resolver=resolver,
    )
    return kernel, transport, system


class TestDocument:
    def test_sections_and_counts(self):
        doc = make_doc()
        assert doc.text_of("intro") == "Line A"
        assert doc.word_count() == 4
        assert doc.line_count() == 2

    def test_add_duplicate_rejected(self):
        with pytest.raises(DocumentError):
            make_doc().add_section("intro")

    def test_missing_section_rejected(self):
        with pytest.raises(DocumentError):
            make_doc().text_of("ghost")

    def test_extract_respects_property(self):
        img = extract_from_document(make_doc(), sections_property(["intro"]))
        assert sorted(img.keys()) == ["intro"]


class TestLineMergeResolver:
    def test_union_keeps_both_sides(self):
        merged = line_merge_resolver("s", "a\nb", "a\nc")
        assert merged.splitlines() == ["a", "b", "c"]

    def test_identical_texts_unchanged(self):
        assert line_merge_resolver("s", "a\nb", "a\nb") == "a\nb"

    def test_empty_sides(self):
        assert line_merge_resolver("s", "", "x") == "x"
        assert line_merge_resolver("s", "x", "") == "x"

    def test_idempotent(self):
        once = line_merge_resolver("s", "a\nb", "c")
        twice = line_merge_resolver("s", once, "c")
        assert once == twice


class TestEditorView:
    def test_append_and_read(self):
        e = EditorView("alice", ["intro"])
        e.local["intro"] = ""
        e.append_line("intro", "hello")
        e.append_line("intro", "world")
        assert e.lines("intro") == ["hello", "world"]
        assert e.unsaved_edits == 2

    def test_edit_without_local_copy_rejected(self):
        with pytest.raises(DocumentError):
            EditorView("alice", ["intro"]).append_line("intro", "x")


class TestCollaboration:
    def test_disjoint_editors_never_exchange_coherence_traffic(self):
        kernel, transport, system = make_system()
        alice = EditorView("alice", ["intro"])
        bob = EditorView("bob", ["outro"])
        cm_a = attach_editor(system, alice, triggers=TriggerSet(validity="true"))
        cm_b = attach_editor(system, bob)

        def edit(cm, editor, section, line):
            yield cm.start()
            yield cm.init_image()
            yield cm.pull_image()
            yield cm.start_use_image()
            editor.append_line(section, line)
            cm.end_use_image()
            yield cm.push_image()

        run_all_scripts(
            transport,
            [edit(cm_a, alice, "intro", "by alice"),
             edit(cm_b, bob, "outro", "by bob")],
        )
        from repro.core import messages as M

        assert M.FETCH_REQ not in transport.stats.by_type
        doc = system.directory.component
        assert "by alice" in doc.text_of("intro")
        assert "by bob" in doc.text_of("outro")

    def test_concurrent_edits_to_same_section_both_survive(self):
        """The write-write race the airline app cannot absorb is exactly
        what the docshare merge rule is built for."""
        kernel, transport, system = make_system()
        alice = EditorView("alice", ["body"])
        bob = EditorView("bob", ["body"])
        cm_a = attach_editor(system, alice)
        cm_b = attach_editor(system, bob)

        def edit(cm, editor, line, delay):
            yield cm.start()
            yield cm.init_image()      # both start from "Line B"
            yield cm.start_use_image()
            editor.append_line("body", line)
            cm.end_use_image()
            yield ("sleep", delay)     # stagger the pushes
            yield cm.push_image()

        run_all_scripts(
            transport,
            [edit(cm_a, alice, "alice was here", 5.0),
             edit(cm_b, bob, "bob was here", 15.0)],
        )
        final = system.directory.component.text_of("body").splitlines()
        assert "Line B" in final
        assert "alice was here" in final
        assert "bob was here" in final

    def test_without_resolver_concurrent_edit_is_lost(self):
        kernel, transport, system = make_system(resolver=None)
        alice = EditorView("alice", ["body"])
        bob = EditorView("bob", ["body"])
        cm_a = attach_editor(system, alice)
        cm_b = attach_editor(system, bob)

        def edit(cm, editor, line, delay):
            yield cm.start()
            yield cm.init_image()
            yield cm.start_use_image()
            editor.append_line("body", line)
            cm.end_use_image()
            yield ("sleep", delay)
            yield cm.push_image()

        run_all_scripts(
            transport,
            [edit(cm_a, alice, "alice was here", 5.0),
             edit(cm_b, bob, "bob was here", 15.0)],
        )
        final = system.directory.component.text_of("body")
        assert "alice was here" not in final  # clobbered by bob's LWW push
        assert "bob was here" in final

    def test_autosave_push_trigger_on_view_variable(self):
        """push="unsaved_edits >= 3" autosaves via reflection."""
        kernel, transport, system = make_system()
        alice = EditorView("alice", ["intro"])
        cm = attach_editor(
            system, alice,
            triggers=TriggerSet(push="unsaved_edits >= 3"),
            trigger_poll_period=10.0,
        )

        def setup():
            yield cm.start()
            yield cm.init_image()

        run_all_scripts(transport, [setup()])

        def edit_twice():
            yield cm.start_use_image()
            alice.append_line("intro", "one")
            alice.append_line("intro", "two")
            cm.end_use_image()

        run_all_scripts(transport, [edit_twice()])
        kernel.run(until=kernel.now + 100.0)
        # Two edits: below threshold, nothing pushed.
        assert "one" not in system.directory.component.text_of("intro")

        def edit_once_more():
            yield cm.start_use_image()
            alice.append_line("intro", "three")
            cm.end_use_image()

        run_all_scripts(transport, [edit_once_more()])
        kernel.run(until=kernel.now + 100.0)
        # Threshold reached: the trigger pushed all three lines.
        text = system.directory.component.text_of("intro")
        assert "one" in text and "three" in text
        alice.mark_saved()

    def test_strong_mode_review_lock(self):
        """An editor taking a strong-mode 'review lock' sees all prior
        edits and excludes concurrent editors."""
        kernel, transport, system = make_system()
        writer = EditorView("writer", ["body"])
        reviewer = EditorView("reviewer", ["body"])
        cm_w = attach_editor(system, writer)
        cm_r = attach_editor(system, reviewer, mode=Mode.STRONG)

        def write():
            yield cm_w.start()
            yield cm_w.init_image()
            yield cm_w.start_use_image()
            writer.append_line("body", "draft paragraph")
            cm_w.end_use_image()
            yield cm_w.push_image()

        def review():
            yield cm_r.start()
            yield cm_r.init_image()
            yield ("sleep", 20.0)
            yield cm_r.start_use_image()  # acquires: fresh data
            seen = reviewer.lines("body")
            cm_r.end_use_image()
            return seen

        _, seen = run_all_scripts(transport, [write(), review()])
        assert "draft paragraph" in seen
        system.directory.check_invariants()
