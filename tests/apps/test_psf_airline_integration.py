"""End-to-end: PSF plans and deploys the airline app, then Flecc keeps
the deployed travel-agent views coherent over the planned topology.

This is the full paper pipeline in one test module: declarative spec
(§3.1) -> QoS-driven plan (latency + privacy adaptations) -> deployment
onto the simulated WAN -> coherence traffic with topology latencies ->
run-time adaptation when the environment changes.
"""

import pytest

from repro.apps.airline import (
    Decryptor,
    Encryptor,
    TravelAgent,
    generate_flight_database,
)
from repro.apps.airline.app_spec import airline_spec
from repro.apps.airline.flights import (
    extract_from_database,
    merge_into_database,
)
from repro.apps.airline.travel_agent import (
    extract_from_agent,
    lifecycle,
    merge_into_agent,
)
from repro.core import FleccSystem, Mode
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.net.topology import wan_topology
from repro.psf import (
    Deployer,
    Environment,
    Monitor,
    Planner,
    QoSRequirement,
)
from repro.psf.monitoring import AdaptationLoop
from repro.sim import SimKernel


@pytest.fixture()
def world():
    topo = wan_topology(
        {"dc": ["db-server", "dc-spare"], "edge": ["edge-1", "edge-2"]},
        internet_latency=25.0,
        lan_latency=0.5,
        insecure_backbone=True,
    )
    env = Environment(topo)
    for host in env.hosts():
        topo.graph.nodes[host]["trusted"] = True
        topo.graph.nodes[host]["capacity"] = 8
    spec = airline_spec(database_node="db-server")
    return topo, env, spec


def _plan(spec, env, clients):
    return Planner(spec, env).plan(clients)


def test_plan_places_database_and_edge_view(world):
    topo, env, spec = world
    plan = _plan(
        spec, env,
        [QoSRequirement(client_node="edge-1", max_latency=5.0, privacy=True)],
    )
    [db] = plan.instances_of_type("FlightDatabase")
    assert db.node == "db-server"
    [agent] = plan.instances_of_type("TravelAgent")
    assert agent.node in ("edge-1", "edge-2")
    assert len(plan.codec_pairs) == 2  # both insecure backbone hops


def test_deployed_system_runs_coherently_over_planned_topology(world):
    topo, env, spec = world
    plan = _plan(
        spec, env,
        [QoSRequirement(client_node="edge-1", max_latency=5.0, privacy=True)],
    )
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=topo)
    database = generate_flight_database(5, seed=11)
    flecc = FleccSystem(
        transport, database, extract_from_database, merge_into_database
    )
    transport.place(flecc.directory.address, "db-server")

    deployed_agents = []

    def agent_factory(placement):
        agent = TravelAgent(placement.instance_id, sorted(database.flights))
        cm = flecc.add_view(
            placement.instance_id, agent, agent.properties(),
            extract_from_agent, merge_into_agent, mode=Mode.STRONG,
        )
        transport.place(cm.address, placement.node)
        deployed_agents.append((agent, cm, placement))
        return agent

    deployer = Deployer(
        transport,
        factories={
            "FlightDatabase": lambda p: database,
            "TravelAgent": agent_factory,
            "Encryptor": lambda p: Encryptor(),
            "Decryptor": lambda p: Decryptor(),
        },
    )
    app = deployer.deploy(plan)
    assert len(app.instances) == len(plan.all_placements())
    assert deployed_agents, "the plan should have deployed a TravelAgent view"

    # Run reservations through the deployed view; coherence traffic
    # crosses the WAN backbone the planner routed around.
    agent, cm, placement = deployed_agents[0]
    flight = sorted(database.flights)[0]
    seats_before = database.seats_available(flight)
    [made] = run_all_scripts(
        transport, [lifecycle(cm, agent, [("reserve", flight, 1)] * 3)]
    )
    assert made == 3
    assert database.seats_available(flight) == seats_before - 3
    # The coherence round-trips paid the backbone latency (view in the
    # edge domain, directory in the dc domain).
    assert transport.latency_between(cm.address, "dir") == pytest.approx(51.0)
    assert kernel.now > 100  # several WAN round trips elapsed


def test_codec_pair_from_plan_protects_backbone_payloads(world):
    topo, env, spec = world
    plan = _plan(
        spec, env,
        [QoSRequirement(client_node="edge-1", max_latency=5.0, privacy=True)],
    )
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=topo)
    database = generate_flight_database(3, seed=2)
    app = Deployer(
        transport,
        factories={
            "FlightDatabase": lambda p: database,
            "TravelAgent": lambda p: TravelAgent(p.instance_id, []),
            "Encryptor": lambda p: Encryptor(),
            "Decryptor": lambda p: Decryptor(),
        },
    ).deploy(plan)
    encs = app.by_type("Encryptor")
    decs = app.by_type("Decryptor")
    assert len(encs) == len(decs) == 2
    payload = "PULL_REQ view=ta-1 flight=FL0001"
    for enc, dec in zip(encs, decs):
        wire = enc.instance.encrypt(payload)
        assert payload not in wire
        assert dec.instance.decrypt(wire) == payload


def test_environment_change_triggers_replan_and_redeploy(world):
    topo, env, spec = world
    monitor = Monitor(env)
    client = QoSRequirement(client_node="edge-1", max_latency=80.0)
    planner = Planner(spec, env)
    loop = AdaptationLoop(monitor, planner, [client])
    # 51-unit direct latency fits the 80-unit budget: no view yet.
    assert loop.current_plan.instances_of_type("TravelAgent") == []
    monitor.set_link_attr("edge-switch", "internet", "latency", 200.0)
    assert len(loop.adaptations) == 1
    added = loop.adaptations[0]["add"]
    assert [p.type_name for p in added] == ["TravelAgent"]
    # The diff is deployable incrementally.
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=topo)
    deployer = Deployer(
        transport,
        factories={"TravelAgent": lambda p: TravelAgent(p.instance_id, [])},
    )
    for placement in added:
        instance = deployer.factories[placement.type_name](placement)
        assert isinstance(instance, TravelAgent)
