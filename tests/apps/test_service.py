"""Tests for the networked client/service layer (paper Fig 1's last hop)."""

import pytest

from repro.apps.airline import Flight, FlightDatabase, build_airline_system
from repro.apps.airline.flights import ReservationError
from repro.apps.airline.service import RemoteClient, TravelAgentService
from repro.core import Mode
from repro.core.system import run_all_scripts


def make_world(mode=Mode.WEAK, seats=20):
    airline = build_airline_system(
        FlightDatabase([Flight("UA100", "NYC", "SFO", seats, seats, 100.0)]),
        n_agent_hosts=1,
    )
    agent, cm = airline.add_travel_agent(
        "ta-1", ["UA100"], mode=mode, node="agent-0"
    )

    def setup():
        yield cm.start()
        yield cm.init_image()

    run_all_scripts(airline.transport, [setup()])
    service = TravelAgentService(airline.transport, agent, cm)
    client = RemoteClient(airline.transport, "c1", service.address)
    return airline, agent, cm, service, client


def test_browse_over_the_network():
    airline, agent, cm, service, client = make_world()

    def script():
        result = yield client.browse("UA100")
        return result

    [result] = run_all_scripts(airline.transport, [script()])
    assert result["flight"]["number"] == "UA100"
    assert result["flight"]["seats_available"] == 20
    assert service.requests_served == 1


def test_buy_weak_mode_pulls_then_commits():
    airline, agent, cm, service, client = make_world(mode=Mode.WEAK)

    def script():
        result = yield client.buy("UA100", seats=3)
        return result

    [result] = run_all_scripts(airline.transport, [script()])
    assert result == {"flight": "UA100", "seats": 3, "seats_left": 17}
    # The sale reached the primary copy (the BUY handler pushes).
    assert airline.database.seats_available("UA100") == 17


def test_buy_strong_mode_serializes_across_services():
    """Two services on conflicting agents; concurrent strong-mode buys
    through the network never lose a sale."""
    airline = build_airline_system(
        FlightDatabase([Flight("UA100", "NYC", "SFO", 50, 50, 100.0)])
    )
    clients = []
    for i in range(2):
        agent, cm = airline.add_travel_agent(f"ta-{i}", ["UA100"], mode=Mode.STRONG)

        def setup(cm=cm):
            yield cm.start()
            yield cm.init_image()

        run_all_scripts(airline.transport, [setup()])
        service = TravelAgentService(airline.transport, agent, cm)
        clients.append(RemoteClient(airline.transport, f"c{i}", service.address))

    def buyer(client):
        bought = 0
        for _ in range(4):
            result = yield client.buy("UA100", seats=1)
            bought += result["seats"]
        return bought

    results = run_all_scripts(airline.transport, [buyer(c) for c in clients])
    assert results == [4, 4]
    assert airline.database.seats_available("UA100") == 42


def test_sold_out_error_propagates_to_client():
    airline, agent, cm, service, client = make_world(seats=2)

    def script():
        yield client.buy("UA100", seats=2)
        try:
            yield client.buy("UA100", seats=1)
        except ReservationError as exc:
            return str(exc)
        return "no error"

    [err] = run_all_scripts(airline.transport, [script()])
    assert "sold out" in err


def test_unknown_flight_error():
    airline, agent, cm, service, client = make_world()

    def script():
        try:
            yield client.browse("ZZ999")
        except ReservationError as exc:
            return str(exc)

    [err] = run_all_scripts(airline.transport, [script()])
    assert "does not serve" in err


def test_switch_mode_through_service():
    airline, agent, cm, service, client = make_world(mode=Mode.WEAK)

    def script():
        result = yield client.switch_mode("strong")
        return result

    [result] = run_all_scripts(airline.transport, [script()])
    assert result == {"mode": "strong"}
    assert cm.mode is Mode.STRONG


def test_set_operation_implies_consistency_mode():
    """The §1 story end to end: browse -> weak, buy -> strong."""
    from repro.psf.qos import Operation

    airline, agent, cm, service, client = make_world(mode=Mode.WEAK)

    def script():
        yield client.set_operation(Operation.BUY)
        buying_mode = cm.mode
        yield client.buy("UA100", seats=1)
        yield client.set_operation("browse")
        return buying_mode, cm.mode

    [(buying, browsing)] = run_all_scripts(airline.transport, [script()])
    assert buying is Mode.STRONG
    assert browsing is Mode.WEAK
    assert airline.database.seats_available("UA100") == 19


def test_unknown_request_type_rejected():
    airline, agent, cm, service, client = make_world()

    def script():
        try:
            yield client._request("SVC_DANCE", {})
        except ReservationError as exc:
            return str(exc)

    [err] = run_all_scripts(airline.transport, [script()])
    assert "unknown request" in err


def test_client_latency_includes_both_hops():
    """Client -> service -> directory round trips accumulate LAN latency."""
    airline, agent, cm, service, client = make_world(mode=Mode.WEAK)
    t0 = airline.kernel.now

    def script():
        yield client.buy("UA100", seats=1)

    run_all_scripts(airline.transport, [script()])
    # buy = client->svc + pull round + push round + svc->client >= 6 hops
    assert airline.kernel.now - t0 >= 6.0
