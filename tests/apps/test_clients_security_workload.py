"""Tests for clients (viewer/buyer), security codecs, and workload gens."""

import pytest

from repro.apps.airline import (
    Buyer,
    Decryptor,
    Encryptor,
    Flight,
    FlightDatabase,
    Viewer,
    build_airline_system,
    generate_flight_database,
    make_agent_groups,
)
from repro.apps.airline.security import CipherError, make_pair
from repro.apps.airline.workload import (
    browse_buy_mix,
    flights_needed,
    reserve_operations,
)
from repro.core import Mode
from repro.core.system import run_all_scripts


def make_db():
    return FlightDatabase([Flight("FL0001", "NYC", "SFO", 100, 100, 250.0)])


class TestViewerBuyer:
    def _airline_with_agent(self):
        airline = build_airline_system(make_db())
        agent, cm = airline.add_travel_agent("ta-1", ["FL0001"])

        def setup():
            yield cm.start()
            yield cm.init_image()

        run_all_scripts(airline.transport, [setup()])
        return airline, agent, cm

    def test_viewer_browses_in_weak_mode(self):
        airline, agent, cm = self._airline_with_agent()
        viewer = Viewer("c1", agent, cm)
        [log] = run_all_scripts(
            airline.transport, [viewer.session(["FL0001"] * 3)]
        )
        assert len(log.browses) == 3
        assert cm.mode is Mode.WEAK
        assert all(seats == 100 for _, seats in log.browses)

    def test_buyer_purchases_in_strong_mode(self):
        airline, agent, cm = self._airline_with_agent()
        buyer = Buyer("c1", agent, cm)
        [log] = run_all_scripts(
            airline.transport, [buyer.session([("FL0001", 2), ("FL0001", 1)])]
        )
        assert log.purchases == [("FL0001", 2), ("FL0001", 1)]
        assert cm.mode is Mode.STRONG
        # Strong-mode sales are immediately visible at the primary once
        # the agent is revoked or pushes; force visibility via sync.
        assert agent.local["FL0001"].seats_available == 97

    def test_viewer_becomes_buyer_keeps_log(self):
        airline, agent, cm = self._airline_with_agent()
        viewer = Viewer("c1", agent, cm)
        run_all_scripts(airline.transport, [viewer.session(["FL0001"])])
        buyer = viewer.become_buyer()
        assert buyer.log is viewer.log
        [log] = run_all_scripts(airline.transport, [buyer.session([("FL0001", 1)])])
        assert len(log.browses) == 1 and len(log.purchases) == 1

    def test_buyer_failure_logged_not_raised(self):
        airline, agent, cm = self._airline_with_agent()
        buyer = Buyer("c1", agent, cm)
        [log] = run_all_scripts(
            airline.transport, [buyer.session([("FL0001", 101)])]
        )
        assert log.purchases == []
        assert len(log.failures) == 1 and "sold out" in log.failures[0]


class TestSecurity:
    def test_roundtrip(self):
        enc, dec = make_pair("k")
        msg = "reserve FL0001 for client-42"
        assert dec.decrypt(enc.encrypt(msg)) == msg
        assert enc.processed == 1 and dec.processed == 1

    def test_ciphertext_differs_from_plaintext(self):
        enc, _ = make_pair("k")
        assert "FL0001" not in enc.encrypt("reserve FL0001")

    def test_wrong_key_detected(self):
        enc = Encryptor("key-a")
        dec = Decryptor("key-b")
        with pytest.raises(CipherError, match="checksum"):
            dec.decrypt(enc.encrypt("secret"))

    def test_tampering_detected(self):
        enc, dec = make_pair()
        ct = enc.encrypt("hello world")
        head, hexdata = ct.split(":", 1)
        flipped = f"{head}:{'00' if hexdata[:2] != '00' else '11'}{hexdata[2:]}"
        with pytest.raises(CipherError):
            dec.decrypt(flipped)

    def test_malformed_ciphertext(self):
        _, dec = make_pair()
        with pytest.raises(CipherError, match="malformed"):
            dec.decrypt("garbage-without-separator!")

    def test_empty_string(self):
        enc, dec = make_pair()
        assert dec.decrypt(enc.encrypt("")) == ""

    def test_unicode(self):
        enc, dec = make_pair()
        assert dec.decrypt(enc.encrypt("vôl à Zürich ✈")) == "vôl à Zürich ✈"


class TestWorkload:
    def test_generate_database_deterministic(self):
        a = generate_flight_database(20, seed=7)
        b = generate_flight_database(20, seed=7)
        assert a.flights == b.flights
        assert len(a.flights) == 20

    def test_generate_database_seed_sensitive(self):
        a = generate_flight_database(20, seed=1)
        b = generate_flight_database(20, seed=2)
        assert a.flights != b.flights

    def test_database_invariants(self):
        db = generate_flight_database(50, seed=3)
        for f in db.flights.values():
            assert 0 <= f.seats_available <= f.capacity
            assert f.origin != f.destination
            assert f.price > 0

    def test_agent_groups_structure(self):
        groups = make_agent_groups(10, n_conflicting=4, flights_per_agent=3)
        assert len(groups) == 10
        shared = set(groups[0])
        for g in groups[1:4]:
            assert set(g) == shared
        disjoint = [set(g) for g in groups[4:]]
        for i, g in enumerate(disjoint):
            assert g.isdisjoint(shared)
            for other in disjoint[i + 1:]:
                assert g.isdisjoint(other)

    def test_agent_groups_bounds_checked(self):
        with pytest.raises(ValueError):
            make_agent_groups(5, n_conflicting=6)

    def test_flights_needed_covers_groups(self):
        n_agents, n_conf, fpa = 12, 5, 4
        groups = make_agent_groups(n_agents, n_conf, fpa)
        db = generate_flight_database(flights_needed(n_agents, n_conf, fpa))
        for g in groups:
            for number in g:
                assert number in db.flights

    def test_reserve_operations_deterministic_and_scoped(self):
        served = ["FL0001", "FL0002"]
        a = reserve_operations(served, 10, seed=5, agent_index=2)
        b = reserve_operations(served, 10, seed=5, agent_index=2)
        assert a == b
        assert all(op[0] == "reserve" and op[1] in served for op in a)
        c = reserve_operations(served, 10, seed=5, agent_index=3)
        assert a != c  # per-agent substreams differ

    def test_browse_buy_mix_fraction(self):
        ops = browse_buy_mix(["FL0001"], 400, buy_fraction=0.25, seed=1)
        buys = sum(1 for op in ops if op[0] == "reserve")
        assert 0.15 < buys / 400 < 0.35
