"""Tests for the directory's operational counters."""

from repro.core import Mode
from repro.testing import ProtocolFixture


def test_lifecycle_counters():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm, agent = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] = 2
        cm.end_use_image()
        yield cm.push_image()
        yield cm.kill_image()

    fx.run_scripts(script())
    c = fx.system.directory.counters
    assert c["registers"] == 1
    assert c["unregisters"] == 1
    assert c["pushes"] == 1
    assert c["commits"] == 1
    assert c["rounds"] == 0  # single view: no invalidate/fetch rounds
    assert c["grants"] == 0


def test_strong_contention_counters():
    fx = ProtocolFixture(store_cells={"a": 0})
    cms = [fx.add_agent(f"v{i}", ["a"], mode=Mode.STRONG) for i in range(3)]

    def script(cm, agent):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] += 1
        cm.end_use_image()
        yield ("sleep", 5.0)

    fx.run_scripts(*(script(cm, a) for cm, a in cms))
    c = fx.system.directory.counters
    assert c["grants"] == 3
    # Acquires revoke prior owners; interleaved inits may revoke too.
    assert c["invalidates_sent"] >= 2
    assert c["rounds"] >= 2
    assert c["round_timeouts"] == 0
    assert c["invalidates_sent"] == fx.stats.by_type["INVALIDATE"]


def test_fetch_counter():
    from repro.core.triggers import TriggerSet

    fx = ProtocolFixture(store_cells={"a": 0})
    cm1, _ = fx.add_agent("v1", ["a"], triggers=TriggerSet(validity="true"))
    cm2, _ = fx.add_agent("v2", ["a"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))

    def puller():
        yield cm1.pull_image()

    fx.run_scripts(puller())
    assert fx.system.directory.counters["fetches_sent"] == 1
