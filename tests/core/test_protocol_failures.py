"""Protocol robustness: duplicated messages, vanished views mid-round,
unknown message types, and trace bookkeeping."""

from repro.core import Mode
from repro.core import messages as M
from repro.errors import ProtocolError
from repro.net.message import Message

from tests.core.harness import ProtocolFixture


def test_unknown_message_type_answered_with_error():
    fx = ProtocolFixture()
    got = []
    ep = fx.transport.bind("rogue", lambda m: got.append(m))
    ep.send(Message("NOT_A_REAL_TYPE", "rogue", "dir", {"view_id": "x"}))
    fx.run()
    assert len(got) == 1 and got[0].msg_type == M.ERROR
    assert "unknown type" in got[0].payload["error"]


def test_duplicate_fetch_reply_ignored():
    """A duplicated FETCH_REPLY (network fault) must not corrupt a later round."""
    fx = ProtocolFixture(store_cells={"a": 10})
    from repro.core.triggers import TriggerSet

    cm1, _ = fx.add_agent("v1", ["a"], triggers=TriggerSet(validity="true"))
    cm2, _ = fx.add_agent("v2", ["a"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))

    # Duplicate every FETCH_REPLY from now on.
    fx.transport.fault_policy = (
        lambda m: "duplicate" if m.msg_type == M.FETCH_REPLY else "deliver"
    )

    def puller():
        img = yield cm1.pull_image()
        return img.get("a")

    [value] = fx.run_scripts(puller())
    assert value == 10
    # The duplicate was recorded as stale, not crashed on.
    assert fx.stats.duplicated == 1


def test_view_unregisters_while_targeted_by_invalidation_round():
    """v2 acquires; the directory invalidates v1 — but v1 has just
    killed itself.  The round must still complete via the unregister."""
    fx = ProtocolFixture(store_cells={"a": 1})
    cm1, a1 = fx.add_agent("v1", ["a"], mode=Mode.STRONG)
    cm2, a2 = fx.add_agent("v2", ["a"], mode=Mode.STRONG)

    def v1():
        yield cm1.start()
        yield cm1.init_image()
        yield cm1.start_use_image()
        cm1.end_use_image()
        # Kill at the same instant v2 acquires.
        yield ("sleep", 9.0)
        yield cm1.kill_image()

    def v2():
        yield cm2.start()
        yield cm2.init_image()
        yield ("sleep", 10.0)
        yield cm2.start_use_image()
        got = cm2.owner
        cm2.end_use_image()
        return got

    results = fx.run_scripts(v1(), v2())
    assert results[1] is True
    assert fx.system.directory.registered_views() == ["v2"]
    fx.system.directory.check_invariants()


def test_queued_op_from_killed_view_is_dropped():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm1, _ = fx.add_agent("v1", ["a"], mode=Mode.STRONG)
    cm2, _ = fx.add_agent("v2", ["a"], mode=Mode.STRONG)
    cm3, _ = fx.add_agent("v3", ["a"], mode=Mode.STRONG)

    def holder():
        yield cm1.start()
        yield cm1.init_image()
        yield cm1.start_use_image()
        yield ("sleep", 30.0)  # hold the token; others queue behind
        cm1.end_use_image()

    def acquirer_then_die(cm):
        yield cm.start()
        yield cm.init_image()
        yield ("sleep", 5.0)
        # ACQUIRE will queue behind v1's in-use defer; then unregister
        # races with the queued op.
        comp = cm._request(M.ACQUIRE, {})
        yield ("sleep", 1.0)
        yield cm._request(M.UNREGISTER, {})
        cm._shutdown()

    def bystander():
        yield cm3.start()
        yield cm3.init_image()
        yield ("sleep", 40.0)
        yield cm3.start_use_image()
        owner = cm3.owner
        cm3.end_use_image()
        return owner

    results = fx.run_scripts(holder(), acquirer_then_die(cm2), bystander())
    assert results[2] is True  # the system kept making progress
    fx.system.directory.check_invariants()


def test_trace_records_fig2_interaction():
    """The Fig 2 message sequence is observable in the trace log."""
    fx = ProtocolFixture(store_cells={"x": 1, "y": 2, "z": 3}, trace=True)
    cm1, a1 = fx.add_agent("v1", ["x", "y"], mode=Mode.STRONG)
    cm2, a2 = fx.add_agent("v2", ["x", "z"], mode=Mode.STRONG)

    def v1():
        yield cm1.start()
        yield cm1.init_image()
        yield cm1.start_use_image()
        cm1.end_use_image()
        yield ("sleep", 30.0)
        yield cm1.kill_image()

    def v2():
        yield cm2.start()
        yield cm2.init_image()
        yield ("sleep", 10.0)
        yield cm2.start_use_image()
        cm2.end_use_image()
        yield cm2.kill_image()

    fx.run_scripts(v1(), v2())
    events = [e.event for e in fx.trace.events if e.actor == "dir"]
    # Directory saw registrations, inits, the acquire, and the kill.
    assert events.count(M.REGISTER) == 2
    assert events.count(M.INIT_REQ) == 2
    assert M.ACQUIRE in events
    assert f"send:{M.INVALIDATE}" in events
    assert M.INVALIDATE_ACK in events
    assert events.count(M.UNREGISTER) == 2
    # Invalidation reached v1's cache manager.
    cm1_events = [e.event for e in fx.trace.events if e.actor == cm1.address]
    assert f"recv:{M.INVALIDATE}" in cm1_events


def test_error_reply_fails_the_waiting_completion():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"])

    def script():
        # PUSH before registering -> directory raises; but send a
        # message type the directory answers with ERROR for instead:
        try:
            yield cm._request("BOGUS_TYPE", {})
        except ProtocolError as e:
            return f"failed: {e}"
        return "no error"

    [result] = fx.run_scripts(script())
    assert result.startswith("failed:")


def test_stats_drop_accounting_for_closed_cm():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm, _ = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.kill_image()

    fx.run_scripts(script())
    # Directory replies after close would be drops; none expected in a
    # clean shutdown.
    assert fx.stats.dropped == 0
