"""Unit tests for repro.core.static_map."""

import numpy as np
import pytest

from repro.core import StaticSharingMap
from repro.core.static_map import Sharing
from repro.errors import PropertyError


def test_empty_map():
    m = StaticSharingMap()
    assert len(m) == 0 and m.view_ids() == []


def test_add_views_and_default_dynamic():
    m = StaticSharingMap(["v1", "v2"])
    assert m.get("v1", "v2") is Sharing.DYNAMIC
    assert m.get("v2", "v1") is Sharing.DYNAMIC


def test_default_none_option():
    m = StaticSharingMap(["a", "b"], default=Sharing.NONE)
    assert m.get("a", "b") is Sharing.NONE


def test_set_is_symmetric():
    m = StaticSharingMap(["a", "b", "c"])
    m.set("a", "c", Sharing.SHARED)
    assert m.get("c", "a") is Sharing.SHARED
    assert m.is_symmetric()


def test_self_cell_is_none_and_unsettable():
    m = StaticSharingMap(["a"])
    assert m.get("a", "a") is Sharing.NONE
    with pytest.raises(PropertyError):
        m.set("a", "a", Sharing.SHARED)


def test_duplicate_add_rejected():
    m = StaticSharingMap(["a"])
    with pytest.raises(PropertyError):
        m.add_view("a")


def test_unknown_view_rejected():
    m = StaticSharingMap(["a"])
    with pytest.raises(PropertyError):
        m.get("a", "ghost")
    with pytest.raises(PropertyError):
        m.remove_view("ghost")


def test_grow_preserves_existing_cells():
    m = StaticSharingMap(["a", "b"])
    m.set("a", "b", Sharing.SHARED)
    m.add_view("c")
    assert m.get("a", "b") is Sharing.SHARED
    assert m.get("a", "c") is Sharing.DYNAMIC
    assert m.is_symmetric()


def test_remove_view_reindexes():
    m = StaticSharingMap(["a", "b", "c"])
    m.set("a", "c", Sharing.SHARED)
    m.set("b", "c", Sharing.NONE)
    m.remove_view("b")
    assert m.view_ids() == ["a", "c"]
    assert m.get("a", "c") is Sharing.SHARED
    assert m.is_symmetric()


def test_statically_shared_with():
    m = StaticSharingMap(["a", "b", "c", "d"])
    m.set("a", "b", Sharing.SHARED)
    m.set("a", "c", Sharing.NONE)
    assert m.statically_shared_with("a") == ["b"]
    assert m.dynamic_pairs_of("a") == ["d"]


def test_as_array_copy():
    m = StaticSharingMap(["a", "b"])
    arr = m.as_array()
    arr[0, 1] = 99
    assert m.get("a", "b") is Sharing.DYNAMIC  # internal state untouched
    assert arr.dtype == np.int8
