"""Unit tests for the trigger lexer."""

import pytest

from repro.core.triggers import tokenize
from repro.errors import TriggerSyntaxError


def kinds_texts(src):
    return [(t.kind, t.text) for t in tokenize(src)]


def test_paper_example():
    # The trigger from Fig 3 of the paper.
    assert kinds_texts("(t > 1500)") == [
        ("op", "("),
        ("name", "t"),
        ("op", ">"),
        ("num", "1500"),
        ("op", ")"),
        ("end", ""),
    ]


def test_numbers_int_and_float():
    assert kinds_texts("3 2.5 .5")[:-1] == [
        ("num", "3"),
        ("num", "2.5"),
        ("num", ".5"),
    ]


def test_trailing_dot_rejected():
    with pytest.raises(TriggerSyntaxError, match="malformed number"):
        tokenize("3.")


def test_two_char_operators_win_over_one_char():
    assert kinds_texts("a<=b")[:-1] == [("name", "a"), ("op", "<="), ("name", "b")]
    assert kinds_texts("a==b")[1] == ("op", "==")
    assert kinds_texts("a&&b")[1] == ("op", "&&")


def test_keywords_vs_names():
    toks = kinds_texts("true and flights or not x")
    assert toks[:-1] == [
        ("kw", "true"),
        ("kw", "and"),
        ("name", "flights"),
        ("kw", "or"),
        ("kw", "not"),
        ("name", "x"),
    ]


def test_dotted_and_underscore_names():
    assert kinds_texts("db.seats _x")[:-1] == [("name", "db.seats"), ("name", "_x")]


def test_whitespace_insensitive():
    assert kinds_texts("t>5") == kinds_texts(" t  >  5 ")


def test_illegal_character():
    with pytest.raises(TriggerSyntaxError, match="illegal character"):
        tokenize("t @ 5")


def test_non_string_input():
    with pytest.raises(TriggerSyntaxError):
        tokenize(1500)  # type: ignore[arg-type]


def test_positions_recorded():
    toks = tokenize("ab + c")
    assert toks[0].pos == 0 and toks[1].pos == 3 and toks[2].pos == 5
