"""Property-based tests for the property/domain intersection algebra.

The paper's conflict computation hinges on this algebra behaving like
set intersection; hypothesis checks the algebraic laws over random
domains and property sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiscreteSet, Interval, Property, PropertySet
from repro.core.conflicts import dyn_confl
from repro.core.domains import Domain

# -- strategies -------------------------------------------------------------

ints = st.integers(min_value=-50, max_value=50)


@st.composite
def intervals(draw):
    a, b = draw(ints), draw(ints)
    return Interval(min(a, b), max(a, b))


discrete_sets = st.sets(ints, min_size=1, max_size=8).map(DiscreteSet)
domains = st.one_of(intervals(), discrete_sets)

names = st.sampled_from(["p", "q", "Flights", "Seats"])
properties = st.builds(Property, names, domains)


@st.composite
def property_sets(draw):
    props = draw(st.lists(properties, max_size=4))
    seen, unique = set(), []
    for p in props:
        if p.name not in seen:
            seen.add(p.name)
            unique.append(p)
    return PropertySet(unique)


# -- domain laws --------------------------------------------------------------


@given(domains, domains)
def test_domain_intersection_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(domains)
def test_domain_intersection_idempotent(a):
    assert a.intersect(a) == a


@given(domains, domains, domains)
@settings(max_examples=200)
def test_domain_intersection_associative(a, b, c):
    assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))


@given(domains, domains, ints)
def test_domain_intersection_is_conjunction_of_membership(a, b, x):
    common = a.intersect(b)
    assert common.contains(x) == (a.contains(x) and b.contains(x))


@given(domains)
def test_domain_jsonable_roundtrip(a):
    assert Domain.from_jsonable(a.to_jsonable()) == a


# -- property laws ---------------------------------------------------------------


@given(properties, properties)
def test_property_intersection_symmetric(p, q):
    r1, r2 = p.intersect(q), q.intersect(p)
    assert (r1 is None) == (r2 is None)
    if r1 is not None:
        assert r1 == r2


@given(properties)
def test_property_self_intersection(p):
    assert p.intersect(p) == p


@given(properties)
def test_property_jsonable_roundtrip(p):
    assert Property.from_jsonable(p.to_jsonable()) == p


# -- property-set laws (Definitions 1-2) -------------------------------------------


@given(property_sets(), property_sets())
def test_dyn_confl_symmetric(a, b):
    assert dyn_confl(a, b) == dyn_confl(b, a)


@given(property_sets(), property_sets())
def test_set_intersection_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(property_sets())
def test_set_self_intersection_idempotent(a):
    assert a.intersect(a) == a


@given(property_sets(), property_sets())
def test_intersection_subset_of_both_name_sets(a, b):
    common = a.intersect(b)
    for p in common:
        assert p.name in a and p.name in b


@given(property_sets(), property_sets(), property_sets())
@settings(max_examples=150)
def test_set_intersection_associative(a, b, c):
    assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))


@given(property_sets())
def test_empty_set_never_conflicts(a):
    assert dyn_confl(a, PropertySet()) == 0


@given(property_sets())
def test_set_jsonable_roundtrip(a):
    assert PropertySet.from_jsonable(a.to_jsonable()) == a
