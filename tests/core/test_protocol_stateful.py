"""Model-based protocol test (hypothesis stateful).

A rule machine drives arbitrary interleavings of view lifecycle
operations — register, strong increments, weak read-modify-write
cycles, property changes, kills — against the real protocol, while a
trivial sequential model tracks what the primary copy must contain.
Because every rule runs its scripts to completion (quiescent steps),
strong AND pull/modify/push weak cycles are both exactly sequential, so
the store must equal the model after every rule.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import Mode
from repro.testing import ProtocolFixture

VIEWS = [f"v{i}" for i in range(5)]
CELLS = ["a", "b"]


class FleccMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.fx = ProtocolFixture(store_cells={c: 0 for c in CELLS})
        self.model = {c: 0 for c in CELLS}
        self.live = {}  # view_id -> (cm, agent)

    # -- rules -------------------------------------------------------------
    @rule(
        view=st.sampled_from(VIEWS),
        cells=st.sets(st.sampled_from(CELLS), min_size=1),
        mode=st.sampled_from([Mode.WEAK, Mode.STRONG]),
    )
    def join(self, view, cells, mode):
        if view in self.live or self.fx.system.directory.views.get(view):
            return
        # A fresh CM instance per registration (ids can be reused after
        # a kill, like redeployed views in PSF).
        import itertools

        cm, agent = self.fx.add_agent(
            f"{view}.{next(self._joins)}", sorted(cells), mode=mode
        )
        cm.view_id_alias = view

        def setup():
            yield cm.start()
            yield cm.init_image()

        self.fx.run_scripts(setup())
        self.live[view] = (cm, agent)

    _joins = __import__("itertools").count()

    @rule(view=st.sampled_from(VIEWS), data=st.data())
    def strong_increment(self, view, data):
        entry = self.live.get(view)
        if entry is None:
            return
        cm, agent = entry
        if cm.mode is not Mode.STRONG:
            return
        cell = data.draw(st.sampled_from(sorted(agent.local.keys() or ["a"])))
        if cell not in agent.local:
            return

        def script():
            yield cm.start_use_image()
            agent.local[cell] += 1
            cm.end_use_image()

        self.fx.run_scripts(script())
        self.model[cell] += 1

    @rule(view=st.sampled_from(VIEWS), data=st.data())
    def weak_rmw(self, view, data):
        entry = self.live.get(view)
        if entry is None:
            return
        cm, agent = entry
        if cm.mode is not Mode.WEAK:
            return
        cell = data.draw(st.sampled_from(sorted(agent.local.keys() or ["a"])))
        if cell not in agent.local:
            return

        def script():
            yield cm.pull_image()
            yield cm.start_use_image()
            agent.local[cell] += 1
            cm.end_use_image()
            yield cm.push_image()

        self.fx.run_scripts(script())
        self.model[cell] += 1

    @rule(view=st.sampled_from(VIEWS), mode=st.sampled_from([Mode.WEAK, Mode.STRONG]))
    def switch_mode(self, view, mode):
        entry = self.live.get(view)
        if entry is None:
            return
        cm, _ = entry

        def script():
            yield cm.set_mode(mode)

        self.fx.run_scripts(script())

    @rule(view=st.sampled_from(VIEWS))
    def kill(self, view):
        entry = self.live.pop(view, None)
        if entry is None:
            return
        cm, _ = entry

        def script():
            yield cm.kill_image()

        self.fx.run_scripts(script())

    # -- invariants ----------------------------------------------------------
    @invariant()
    def store_matches_model(self):
        # The logical (one-copy) state: the primary copy overlaid with
        # the dirty slices of current exclusive owners — their local
        # copies ARE the authoritative data until revoked (any reader
        # would trigger an invalidation and observe exactly this).
        effective = dict(self.fx.store.cells)
        for cm, agent in self.live.values():
            if cm.owner:
                for cell, value in agent.local.items():
                    effective[cell] = value
        assert effective == self.model

    @invariant()
    def directory_invariants_hold(self):
        self.fx.system.directory.check_invariants()

    @invariant()
    def registered_views_match_live(self):
        assert len(self.fx.system.directory.views) == len(self.live)


TestFleccStateMachine = FleccMachine.TestCase
TestFleccStateMachine.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
