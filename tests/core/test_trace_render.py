"""Tests for the message-sequence chart renderer."""

from repro.core.messages import TraceLog
from repro.core.trace_render import render_annotations, render_sequence


def sample_trace():
    t = TraceLog()
    t.record(0.0, "cm:V1", "send:REGISTER", dst="dir")
    t.record(1.0, "dir", "REGISTER", view="V1")
    t.record(1.0, "dir", "send:REGISTER_ACK", dst="cm:V1")
    t.record(2.0, "cm:V1", "recv:REGISTER_ACK")
    return t


def test_arrows_point_the_right_way():
    out = render_sequence(sample_trace())
    lines = out.splitlines()
    assert "cm:V1" in lines[0] and "dir" in lines[0]
    # First message: left lane -> right lane.
    assert "REGISTER" in lines[1] and ">" in lines[1]
    # Reply: right lane -> left lane.
    assert "REGISTER_ACK" in lines[2] and "<" in lines[2]


def test_only_send_events_drawn():
    out = render_sequence(sample_trace())
    assert len(out.splitlines()) == 3  # header + 2 arrows


def test_explicit_actor_order():
    out = render_sequence(sample_trace(), actors=["dir", "cm:V1"])
    header = out.splitlines()[0]
    assert header.index("dir") < header.index("cm:V1")


def test_unknown_actors_skipped():
    t = sample_trace()
    t.record(3.0, "ghost", "send:PING", dst="nowhere")
    out = render_sequence(t, actors=["cm:V1", "dir"])
    assert "PING" not in out


def test_empty_trace():
    assert "(no messages" in render_sequence(TraceLog())


def test_long_label_omitted_but_arrow_drawn():
    t = TraceLog()
    t.record(0.0, "a", "send:A_VERY_LONG_MESSAGE_TYPE_NAME_INDEED", dst="b")
    out = render_sequence(t, lane_width=8)
    arrow_line = out.splitlines()[1]
    assert ">" in arrow_line  # arrow survives even when label can't fit


def test_times_prefixed():
    out = render_sequence(sample_trace())
    assert out.splitlines()[1].startswith("t=0")
    assert out.splitlines()[2].startswith("t=1")


def test_render_annotations_filters_kinds():
    t = sample_trace()
    out = render_annotations(t, ["REGISTER"])
    assert "REGISTER" in out and "ACK" not in out


def test_fig2_renders_invalidation():
    from repro.experiments.fig2_trace import run_fig2

    result = run_fig2()
    out = render_sequence(result.trace, actors=["cm:V1", "dir", "cm:V2"])
    assert "INVALIDATE" in out
    assert "GRANT" in out
    # V1's lifeline appears before dir's in every row.
    header = out.splitlines()[0]
    assert header.index("cm:V1") < header.index("dir") < header.index("cm:V2")
