"""Property-based tests for the trigger language.

Random ASTs are generated, unparsed, and reparsed — the parser must
recover the identical tree.  Random well-typed expressions are compared
against a reference evaluation built with plain Python operators.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.triggers import (
    BinOp,
    BoolLit,
    Name,
    NumLit,
    UnaryOp,
    parse_trigger,
)
from repro.core.triggers.ast import FuncCall
from repro.core.triggers.evaluator import evaluate
from repro.errors import TriggerEvalError

# -- AST strategies (type-correct by construction) ----------------------------

numbers = st.one_of(
    st.integers(min_value=0, max_value=1000).map(float),
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32).map(
        lambda f: float(round(f, 3))
    ),
)
num_names = st.sampled_from(["t", "x", "y"])
bool_names = st.sampled_from(["flag", "done"])


def numeric_exprs(depth):
    leaf = st.one_of(numbers.map(NumLit), num_names.map(Name))
    if depth <= 0:
        return leaf
    sub = numeric_exprs(depth - 1)
    calls = st.one_of(
        st.builds(lambda a: FuncCall("abs", (a,)), sub),
        st.builds(lambda a: FuncCall("floor", (a,)), sub),
        st.builds(lambda a, b: FuncCall("min", (a, b)), sub, sub),
        st.builds(lambda a, b: FuncCall("max", (a, b)), sub, sub),
    )
    return st.one_of(
        leaf,
        calls,
        st.builds(BinOp, st.sampled_from(["+", "-", "*"]), sub, sub),
        st.builds(UnaryOp, st.just("-"), sub),
    )


def bool_exprs(depth):
    leaf = st.one_of(st.booleans().map(BoolLit), bool_names.map(Name))
    nums = numeric_exprs(max(depth - 1, 0))
    cmp_ = st.builds(
        BinOp, st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), nums, nums
    )
    if depth <= 0:
        return st.one_of(leaf, cmp_)
    sub = bool_exprs(depth - 1)
    return st.one_of(
        leaf,
        cmp_,
        st.builds(BinOp, st.sampled_from(["&&", "||"]), sub, sub),
        st.builds(UnaryOp, st.just("!"), sub),
    )


ENV = {"t": 7.0, "x": 3.0, "y": 11.0, "flag": True, "done": False}


def reference_eval(node, env):
    """Independent evaluation used as the oracle."""
    if isinstance(node, NumLit):
        return node.value
    if isinstance(node, BoolLit):
        return node.value
    if isinstance(node, Name):
        return env[node.ident]
    if isinstance(node, UnaryOp):
        v = reference_eval(node.operand, env)
        return (not v) if node.op == "!" else -v
    if isinstance(node, FuncCall):
        import math

        args = [reference_eval(a, env) for a in node.args]
        fns = {"abs": abs, "floor": lambda x: float(math.floor(x)),
               "ceil": lambda x: float(math.ceil(x)), "min": min, "max": max}
        return fns[node.name](*args)
    ops = {
        "&&": lambda a, b: a and b,
        "||": lambda a, b: a or b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
    }
    return ops[node.op](
        reference_eval(node.left, env), reference_eval(node.right, env)
    )


@given(bool_exprs(3))
@settings(max_examples=300)
def test_unparse_parse_roundtrip(ast):
    assert parse_trigger(ast.unparse()) == ast


@given(numeric_exprs(3))
@settings(max_examples=300)
def test_numeric_unparse_parse_roundtrip(ast):
    assert parse_trigger(ast.unparse()) == ast


@given(bool_exprs(3))
@settings(max_examples=300)
def test_evaluator_matches_reference(ast):
    assert evaluate(ast, ENV) == reference_eval(ast, ENV)


@given(numeric_exprs(3))
@settings(max_examples=300)
def test_numeric_evaluator_matches_reference(ast):
    got = evaluate(ast, ENV)
    want = reference_eval(ast, ENV)
    assert got == want


def any_exprs(depth):
    """Arbitrarily *ill-typed* expressions: mixes bools and numbers."""
    leaf = st.one_of(
        numbers.map(NumLit), st.booleans().map(BoolLit),
        st.sampled_from(["t", "x", "flag"]).map(Name),
    )
    if depth <= 0:
        return leaf
    sub = any_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(
            BinOp,
            st.sampled_from(["&&", "||", "<", "<=", ">", ">=", "==", "!=",
                             "+", "-", "*", "/", "%"]),
            sub, sub,
        ),
        st.builds(UnaryOp, st.sampled_from(["!", "-"]), sub),
        st.builds(lambda a: FuncCall("abs", (a,)), sub),
        st.builds(lambda n, a: FuncCall(n, (a,)), st.sampled_from(["min", "ghost"]), sub),
    )


@given(any_exprs(3))
@settings(max_examples=400)
def test_evaluator_total_over_illtyped_inputs(ast):
    """Totality: any expression either evaluates to a bool/number or
    raises TriggerEvalError — never an arbitrary Python exception
    (division/modulo by zero, type mixes, bad arity, unknown fns)."""
    from repro.errors import TriggerEvalError

    try:
        result = evaluate(ast, ENV)
    except TriggerEvalError:
        return
    assert isinstance(result, (bool, int, float))


@given(bool_exprs(3))
def test_variables_are_exactly_free_names(ast):
    src = ast.unparse()
    reparsed = parse_trigger(src)
    for name in reparsed.variables():
        # Removing a variable from the env must raise.
        env = {k: v for k, v in ENV.items() if k != name}
        try:
            evaluate(reparsed, env)
        except TriggerEvalError:
            continue  # the variable genuinely needed (or short-circuited away)
        # Short-circuiting may skip a variable; that's fine — but then
        # evaluation with the full env must agree.
        assert evaluate(reparsed, ENV) == reference_eval(ast, ENV)
