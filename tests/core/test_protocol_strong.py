"""Protocol tests: strong mode — acquisition, invalidation, one-copy
serializability, deferred invalidation, mode switching (paper §4, Fig 2)."""

from repro.core import Mode
from repro.core import messages as M

from tests.core.harness import ProtocolFixture


def test_acquire_grants_exclusive_ownership():
    fx = ProtocolFixture()
    cm, agent = fx.add_agent("v1", ["a"], mode=Mode.STRONG)

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        owner_during = cm.owner
        cm.end_use_image()
        return owner_during

    [owner] = fx.run_scripts(script())
    assert owner
    assert fx.system.directory.exclusive_views() == ["v1"]


def test_second_acquire_invalidates_first(paper_fig2=True):
    """The Fig 2 scenario: V2's request revokes V1's control."""
    fx = ProtocolFixture(store_cells={"x": 1, "y": 2, "z": 3})
    cm1, a1 = fx.add_agent("v1", ["x", "y"], mode=Mode.STRONG)
    cm2, a2 = fx.add_agent("v2", ["x", "z"], mode=Mode.STRONG)

    def v1():
        yield cm1.start()
        yield cm1.init_image()
        yield cm1.start_use_image()
        a1.local["x"] = 100
        cm1.end_use_image()
        yield ("sleep", 50.0)
        return cm1.owner

    def v2():
        yield cm2.start()
        yield cm2.init_image()
        yield ("sleep", 20.0)  # let v1 acquire first
        yield cm2.start_use_image()
        got_x = a2.local["x"]
        cm2.end_use_image()
        return got_x

    v1_owner_after, v2_saw = fx.run_scripts(v1(), v2())
    assert not v1_owner_after           # v1 was invalidated
    assert v2_saw == 100                # v2 received v1's committed update
    assert fx.system.directory.exclusive_views() == ["v2"]
    assert fx.stats.by_type[M.INVALIDATE] >= 1
    assert fx.stats.by_type[M.INVALIDATE_ACK] >= 1


def test_one_copy_serializability_under_contention():
    """N strong agents decrementing a counter never lose an update."""
    fx = ProtocolFixture(store_cells={"a": 0})
    n_agents, n_ops = 5, 4
    cms = [fx.add_agent(f"v{i}", ["a"], mode=Mode.STRONG) for i in range(n_agents)]

    def script(cm, agent):
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_ops):
            yield cm.start_use_image()
            agent.local["a"] += 1
            yield ("sleep", 1.0)
            cm.end_use_image()
        yield cm.kill_image()

    fx.run_scripts(*(script(cm, a) for cm, a in cms))
    assert fx.store.cells["a"] == n_agents * n_ops
    fx.system.directory.check_invariants()


def test_invariant_holds_at_every_grant():
    fx = ProtocolFixture(store_cells={"a": 0})
    cms = [fx.add_agent(f"v{i}", ["a"], mode=Mode.STRONG) for i in range(3)]
    # check_invariants() runs inside _finalize_op already; this test
    # drives enough interleaving to exercise it repeatedly.
    def script(cm, agent):
        yield cm.start()
        yield cm.init_image()
        for _ in range(3):
            yield cm.start_use_image()
            agent.local["a"] += 1
            cm.end_use_image()
            yield ("sleep", 0.5)

    fx.run_scripts(*(script(cm, a) for cm, a in cms))
    fx.system.directory.check_invariants()


def test_invalidation_deferred_until_end_use():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm1, a1 = fx.add_agent("v1", ["a"], mode=Mode.STRONG)
    cm2, a2 = fx.add_agent("v2", ["a"], mode=Mode.STRONG)
    events = []

    def v1():
        yield cm1.start()
        yield cm1.init_image()
        yield cm1.start_use_image()
        a1.local["a"] = 77
        events.append(("v1-in-use", fx.kernel.now))
        yield ("sleep", 30.0)  # stay in use while v2 tries to acquire
        cm1.end_use_image()
        events.append(("v1-end-use", fx.kernel.now))

    def v2():
        yield cm2.start()
        yield cm2.init_image()
        yield ("sleep", 10.0)
        yield cm2.start_use_image()
        events.append(("v2-granted", fx.kernel.now))
        got = a2.local["a"]
        cm2.end_use_image()
        return got

    _, v2_saw = fx.run_scripts(v1(), v2())
    times = dict(events)
    # v2's grant happened only after v1 left its critical section.
    assert times["v2-granted"] >= times["v1-end-use"]
    # ... and carried v1's in-use modification.
    assert v2_saw == 77


def test_nonconflicting_strong_owners_coexist():
    fx = ProtocolFixture(store_cells={"a": 1, "z": 2})
    cm1, _ = fx.add_agent("v1", ["a"], mode=Mode.STRONG)
    cm2, _ = fx.add_agent("v2", ["z"], mode=Mode.STRONG)

    def script(cm):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        yield ("sleep", 20.0)
        cm.end_use_image()
        return cm.owner

    r1, r2 = fx.run_scripts(script(cm1), script(cm2))
    assert r1 and r2  # both kept ownership: no conflict between slices
    assert sorted(fx.system.directory.exclusive_views()) == ["v1", "v2"]
    assert M.INVALIDATE not in fx.stats.by_type


def test_repeated_use_by_owner_needs_no_messages():
    fx = ProtocolFixture()
    cm, agent = fx.add_agent("v1", ["a"], mode=Mode.STRONG)

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        cm.end_use_image()
        before = fx.stats.total
        for _ in range(5):
            yield cm.start_use_image()
            agent.local["a"] += 1
            cm.end_use_image()
        return fx.stats.total - before

    [delta] = fx.run_scripts(script())
    assert delta == 0  # ownership is sticky: no traffic while unchallenged


def test_switch_strong_to_weak_releases_ownership_and_pushes():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm, agent = fx.add_agent("v1", ["a"], mode=Mode.STRONG)

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] = 42
        cm.end_use_image()
        yield cm.set_mode(Mode.WEAK)
        return cm.mode, cm.owner

    [(mode, owner)] = fx.run_scripts(script())
    assert mode is Mode.WEAK and not owner
    assert fx.store.cells["a"] == 42  # dirty state pushed on the way out
    assert fx.system.directory.exclusive_views() == []
    assert fx.system.directory.views["v1"].mode is Mode.WEAK


def test_switch_weak_to_strong_acquires_on_next_use():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"], mode=Mode.WEAK)

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.set_mode(Mode.STRONG)
        yield cm.start_use_image()
        owner = cm.owner
        cm.end_use_image()
        return owner

    [owner] = fx.run_scripts(script())
    assert owner
    assert fx.stats.by_type[M.ACQUIRE] == 1
    assert fx.stats.by_type[M.GRANT] == 1


def test_weak_pull_revokes_conflicting_strong_owner():
    fx = ProtocolFixture(store_cells={"a": 1})
    strong_cm, strong_agent = fx.add_agent("vs", ["a"], mode=Mode.STRONG)
    weak_cm, weak_agent = fx.add_agent("vw", ["a"], mode=Mode.WEAK)

    def strong():
        yield strong_cm.start()
        yield strong_cm.init_image()
        yield strong_cm.start_use_image()
        strong_agent.local["a"] = 555
        strong_cm.end_use_image()
        yield ("sleep", 50.0)
        return strong_cm.owner

    def weak():
        yield weak_cm.start()
        yield ("sleep", 20.0)
        img = yield weak_cm.init_image()
        return img.get("a")

    owner_after, weak_saw = fx.run_scripts(strong(), weak())
    assert weak_saw == 555     # one-copy: weak reader saw the owner's write
    assert not owner_after     # owner was revoked by the weak pull
    fx.system.directory.check_invariants()
