"""The incremental conflict index and scoped invalidation (PR 9).

Two obligations, tested separately:

1. *Answers*: the inverted index is an internal accelerator — every
   conflict-set answer must equal a brute-force ``dynConfl``
   recomputation over the full registry, under any interleaving of
   register / unregister / property-update / static-map events (the
   hypothesis machine at the bottom).
2. *Scope*: invalidation stays local.  A membership event for view v
   must not evict cached answers of views outside v's conflict
   neighborhood, and the per-view set cache must be keyed by the
   membership epoch — no O(V) ``tuple(candidates)`` key on the indexed
   path.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import (
    DiscreteSet,
    Interval,
    Property,
    PropertySet,
    StaticSharingMap,
)
from repro.core.conflicts import ConflictIndex, ConflictPolicy
from repro.core.domains import EMPTY_DOMAIN
from repro.core.static_map import Sharing
from tests.core.harness import ProtocolFixture


def _ps(**domains) -> PropertySet:
    return PropertySet([Property(n, d) for n, d in domains.items()])


# -- Domain.index_keys hooks --------------------------------------------


def test_discrete_domain_enumerates_index_keys():
    assert set(DiscreteSet({1, 2, 3}).index_keys()) == {1, 2, 3}


def test_interval_domain_is_unenumerable():
    assert Interval(0, 10).index_keys() is None


def test_empty_domain_posts_nothing():
    assert list(EMPTY_DOMAIN.index_keys()) == []


def test_property_set_yields_name_key_pairs():
    ps = _ps(color=DiscreteSet({"red"}), range=Interval(0, 5))
    got = {name: keys for name, keys in ps.index_keys()}
    assert set(got["color"]) == {"red"}
    assert got["range"] is None


# -- ConflictIndex unit behaviour ---------------------------------------


def test_candidates_share_discrete_value():
    idx = ConflictIndex()
    idx.add("a", _ps(cells=DiscreteSet({1, 2})))
    idx.add("b", _ps(cells=DiscreteSet({2, 3})))
    idx.add("c", _ps(cells=DiscreteSet({9})))
    assert idx.candidates("a") == {"b"}
    assert idx.candidates("c") == set()


def test_interval_views_are_candidates_by_name():
    idx = ConflictIndex()
    idx.add("a", _ps(cells=DiscreteSet({1})))
    idx.add("i", _ps(cells=Interval(0, 100)))
    # Discrete query must consult the unenumerable postings and vice
    # versa: the index cannot know whether the interval covers 1.
    assert idx.candidates("a") == {"i"}
    assert idx.candidates("i") == {"a"}


def test_unknown_properties_are_universal():
    idx = ConflictIndex()
    idx.add("a", _ps(cells=DiscreteSet({1})))
    idx.add("u", None)
    assert idx.candidates("a") == {"u"}
    assert idx.candidates("u") == {"a"}


def test_disjoint_names_never_candidates():
    idx = ConflictIndex()
    idx.add("a", _ps(color=DiscreteSet({"red"})))
    idx.add("b", _ps(size=DiscreteSet({"red"})))  # same value, other name
    assert idx.candidates("a") == set()


def test_re_add_replaces_old_postings():
    idx = ConflictIndex()
    idx.add("a", _ps(cells=DiscreteSet({1})))
    idx.add("b", _ps(cells=DiscreteSet({1})))
    idx.add("a", _ps(cells=DiscreteSet({7})))  # moved away
    assert idx.candidates("b") == set()
    assert idx.candidates("a") == set()


def test_remove_cleans_empty_postings():
    idx = ConflictIndex()
    idx.add("a", _ps(cells=DiscreteSet({1}), r=Interval(0, 1)))
    idx.remove("a")
    assert len(idx) == 0
    assert idx._by_name == {}
    assert idx._by_value == {}
    assert idx._unenum == {}
    idx.remove("a")  # idempotent


# -- scoped invalidation ------------------------------------------------


def _indexed_policy(registry, static_map=None):
    pol = ConflictPolicy(static_map, registry.get, indexed=True)
    for vid, props in registry.items():
        pol.register_view(vid, props)
    return pol


def test_indexed_conflict_set_needs_no_candidate_list():
    registry = {
        "a": _ps(cells=DiscreteSet({1, 2})),
        "b": _ps(cells=DiscreteSet({2})),
        "c": _ps(cells=DiscreteSet({9})),
    }
    pol = _indexed_policy(registry)
    assert pol.conflict_set("a") == ["b"]
    # The legacy tuple-key cache is untouched: the indexed path keys by
    # (generation, membership stamp), not tuple(candidates).
    assert pol._set_cache == {}


def test_unindexed_policy_rejects_indexless_query():
    pol = ConflictPolicy(None, {}.get, indexed=False)
    with pytest.raises(ValueError):
        pol.conflict_set("a")


def test_unrelated_register_keeps_cached_set():
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({1})),
    }
    pol = _indexed_policy(registry)
    assert pol.conflict_set("a") == ["b"]
    hits = pol.cache_hits
    # A view in a disjoint neighborhood joins: a's epoch is untouched.
    registry["z"] = _ps(cells=DiscreteSet({99}))
    pol.register_view("z", registry["z"])
    stamp = pol.stamp_of("a")
    assert pol.conflict_set("a") == ["b"]
    assert pol.cache_hits == hits + 1  # served from the epoch cache
    assert pol.stamp_of("a") == stamp


def test_overlapping_register_bumps_neighborhood_epoch():
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({1})),
    }
    pol = _indexed_policy(registry)
    assert pol.conflict_set("a") == ["b"]
    registry["c"] = _ps(cells=DiscreteSet({1}))
    stamp = pol.stamp_of("a")
    pol.register_view("c", registry["c"])
    assert pol.stamp_of("a") == stamp + 1
    assert pol.conflict_set("a") == ["b", "c"]


def test_unregister_scopes_to_neighborhood():
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({1})),
        "z": _ps(cells=DiscreteSet({99})),
    }
    pol = _indexed_policy(registry)
    assert pol.conflict_set("a") == ["b"]
    assert pol.conflict_set("z") == []
    z_stamp = pol.stamp_of("z")
    del registry["b"]
    pol.unregister_view("b")
    assert pol.conflict_set("a") == []
    assert pol.stamp_of("z") == z_stamp
    assert pol.scoped_invalidations >= 4  # no whole-cache generation bumps
    assert pol.generation == 0


def test_property_update_invalidates_old_and_new_neighborhoods():
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({1})),
        "c": _ps(cells=DiscreteSet({2})),
    }
    pol = _indexed_policy(registry)
    assert pol.conflict_set("b") == ["a"]
    assert pol.conflict_set("c") == []
    registry["b"] = _ps(cells=DiscreteSet({2}))  # b moves from a to c
    pol.update_properties("b", registry["b"])
    assert pol.conflict_set("a") == []
    assert pol.conflict_set("b") == ["c"]
    assert pol.conflict_set("c") == ["b"]


def test_static_shared_partner_without_property_overlap():
    m = StaticSharingMap(["a", "b"])
    m.set("a", "b", Sharing.SHARED)
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({2})),  # no dynamic overlap
    }
    pol = _indexed_policy(registry, static_map=m)
    # The index sees no key overlap; the SHARED cell still conflicts.
    assert pol.conflict_set("a") == ["b"]
    assert pol.conflict_set("b") == ["a"]


def test_invalidate_pair_is_scoped():
    m = StaticSharingMap(["a", "b", "z"])
    m.set("a", "b", Sharing.SHARED)
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({2})),
        "z": _ps(cells=DiscreteSet({3})),
    }
    pol = _indexed_policy(registry, static_map=m)
    assert pol.conflict_set("a") == ["b"]
    z_stamp = pol.stamp_of("z")
    m.set("a", "b", Sharing.NONE)
    pol.invalidate_pair("a", "b")
    assert pol.conflict_set("a") == []
    assert pol.stamp_of("z") == z_stamp
    assert pol.generation == 0  # never a whole-cache bump


def test_global_invalidate_still_works_as_fallback():
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({1})),
    }
    pol = _indexed_policy(registry)
    assert pol.conflict_set("a") == ["b"]
    registry["b"] = _ps(cells=DiscreteSet({9}))
    pol.invalidate()  # blunt, but must stay correct (ablations use it)
    pol.reset_index(registry)
    assert pol.conflict_set("a") == []


def test_reset_index_rebuilds_from_scratch():
    pol = ConflictPolicy(None, {}.get, indexed=True)
    registry = {
        "a": _ps(cells=DiscreteSet({1})),
        "b": _ps(cells=DiscreteSet({1})),
    }
    pol.properties_of = registry.get
    pol.reset_index(registry)
    assert pol.conflict_set("a") == ["b"]


# -- directory-level: external-writer slice invalidation ----------------


def test_external_writer_slice_invalidation_with_index():
    """The multilevel coordinator's path: cells committed outside
    ``_commit`` must surface through ``invalidate_slice_index`` while
    the conflict index keeps serving scoped answers."""
    fx = ProtocolFixture(store_cells={"a": 1})
    cm, _ = fx.add_agent("v1", ["a", "b"])

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    directory = fx.system.directory
    assert directory.policy.indexed
    assert directory.slice_keys_of("v1") == ["a"]
    # An external writer (anti-entropy absorb) introduces cell "b".
    fx.store.cells["b"] = 42
    assert directory.slice_keys_of("v1") == ["a"]  # cached: stale
    directory.invalidate_slice_index()
    assert directory.slice_keys_of("v1") == ["a", "b"]
    assert directory.conflict_set_of("v1") == []


# -- hypothesis: churn equivalence vs brute force ------------------------

VIEW_POOL = [f"v{i}" for i in range(6)]

PROPS_POOL = st.sampled_from([
    None,  # unknown properties: conflicts with everyone
    _ps(cells=DiscreteSet({1})),
    _ps(cells=DiscreteSet({1, 2})),
    _ps(cells=DiscreteSet({3})),
    _ps(cells=Interval(0, 2)),
    _ps(cells=Interval(10, 20)),
    _ps(color=DiscreteSet({"red"})),
    _ps(cells=DiscreteSet({2}), color=DiscreteSet({"red"})),
    _ps(cells=EMPTY_DOMAIN),
])


class ConflictChurnMachine(RuleBasedStateMachine):
    """Random churn; the indexed policy must always equal brute force."""

    def __init__(self):
        super().__init__()
        self.static_map = StaticSharingMap()
        self.registry = {}
        self.policy = ConflictPolicy(
            self.static_map, self.registry.get, indexed=True
        )

    @rule(view=st.sampled_from(VIEW_POOL), props=PROPS_POOL)
    def register(self, view, props):
        if view in self.registry:
            return
        self.registry[view] = props
        if not self.static_map.has_view(view):
            self.static_map.add_view(view)
        self.policy.register_view(view, props)

    @rule(view=st.sampled_from(VIEW_POOL))
    def unregister(self, view):
        if view not in self.registry:
            return
        # Mirror the directory's ordering: the policy sees the event
        # while the static-map row still exists (SHARED partners).
        self.policy.unregister_view(view)
        del self.registry[view]
        self.static_map.remove_view(view)

    @rule(view=st.sampled_from(VIEW_POOL), props=PROPS_POOL)
    def update_properties(self, view, props):
        if view not in self.registry:
            return
        self.registry[view] = props
        self.policy.update_properties(view, props)

    @rule(
        a=st.sampled_from(VIEW_POOL),
        b=st.sampled_from(VIEW_POOL),
        value=st.sampled_from([Sharing.NONE, Sharing.SHARED, Sharing.DYNAMIC]),
    )
    def set_static_cell(self, a, b, value):
        if a == b or a not in self.registry or b not in self.registry:
            return
        self.static_map.set(a, b, value)
        self.policy.invalidate_pair(a, b)

    @rule(a=st.sampled_from(VIEW_POOL), b=st.sampled_from(VIEW_POOL))
    def query_pair(self, a, b):
        # Interleave reads so stale cache entries would be observed.
        if a in self.registry and b in self.registry:
            self.policy.conflicts(a, b)

    @invariant()
    def matches_brute_force(self):
        views = sorted(self.registry)
        brute = ConflictPolicy(
            self.static_map, self.registry.get, indexed=False
        )
        for vid in views:
            assert set(self.policy.conflict_set(vid)) == set(
                brute.conflict_set(vid, views)
            ), f"conflict set of {vid} diverged from brute force"
        assert self.policy.generation == 0  # always scoped, never global


TestConflictChurn = ConflictChurnMachine.TestCase
TestConflictChurn.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
