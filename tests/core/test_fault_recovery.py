"""End-to-end fault tolerance: lease expiry, quarantine, crash recovery,
graceful degradation, and duplicate-delivery idempotency."""

import pytest

from repro.core import Mode
from repro.core import messages as M
from repro.errors import ProtocolError
from repro.testing import (
    Agent,
    ProtocolFixture,
    extract_from_view,
    merge_into_view,
    props_for,
)


def add_view(fx, view_id, cells, **kw):
    """add_agent with the fault-tolerance CM knobs exposed."""
    agent = Agent()
    fx.agents[view_id] = agent
    cm = fx.system.add_view(
        view_id, agent, props_for(cells),
        extract_from_view, merge_into_view, **kw,
    )
    return cm, agent


def setup_script(cm):
    yield cm.start()
    yield cm.init_image()


# ---------------------------------------------------------------------------
# Lease-based failure detection (the acceptance scenario)
# ---------------------------------------------------------------------------

def test_lease_expiry_reclaims_strong_ownership_and_cm_recovers():
    """A CM crashes while holding STRONG exclusivity.  The directory's
    lease detector must evict it and reclaim exclusivity so others make
    progress; the restarted CM re-registers and re-syncs."""
    fx = ProtocolFixture(store_cells={"a": 0}, lease_duration=50.0)
    cm1, a1 = add_view(
        fx, "v1", ["a"], mode=Mode.STRONG, heartbeat_period=10.0
    )

    def grab_ownership():
        yield cm1.start()
        yield cm1.init_image()
        yield cm1.start_use_image()  # acquires exclusivity, never ends use

    fx.run_scripts(grab_ownership())
    assert fx.system.directory.exclusive_views() == ["v1"]

    cm1.crash()  # heartbeats stop; the lease is never renewed again
    fx.run(until=fx.kernel.now + 150.0)

    d = fx.system.directory
    assert "v1" not in d.views
    assert d.counters["leases_expired"] == 1
    assert d.exclusive_views() == []
    q = d.quarantined["v1"]
    assert q.reason == "lease-expired"
    assert q.image.cells == {"a": 0}  # last committed slice preserved

    # Exclusivity is reclaimable: a new strong view acquires and commits.
    cm2, a2 = add_view(fx, "v2", ["a"], mode=Mode.STRONG)

    def writer():
        yield cm2.start()
        yield cm2.init_image()
        yield cm2.start_use_image()
        a2.local["a"] += 5
        cm2.end_use_image()
        yield cm2.kill_image()

    fx.run_scripts(writer())
    assert fx.store.cells["a"] == 5
    d.check_invariants()

    # The crashed CM restarts: idempotent re-REGISTER + full re-sync.
    comp = cm1.recover()
    fx.run(until=fx.kernel.now + 50.0)
    assert comp.done
    image = comp.value
    assert image.cells == {"a": 5}  # synced past the write it missed
    assert a1.local["a"] == 5
    assert cm1.registered and not cm1.degraded
    assert d.counters["recoveries"] == 1
    assert "v1" not in d.quarantined  # stash consumed by the recovery
    assert cm1.counters["recoveries"] == 1


def test_recovered_cm_state_seq_fast_forwarded():
    """Post-recovery pushes must not be dropped as stale retransmissions:
    the REGISTER_ACK carries the directory's last_state_seq cursor."""
    fx = ProtocolFixture(store_cells={"a": 0}, lease_duration=40.0)
    cm, agent = add_view(fx, "v1", ["a"], mode=Mode.WEAK)

    def write(n):
        yield cm.start_use_image()
        agent.local["a"] += n
        cm.end_use_image()
        yield cm.push_image()

    fx.run_scripts(setup_script(cm))
    fx.run_scripts(write(3))
    assert fx.store.cells["a"] == 3

    cm.crash()
    fx.run(until=fx.kernel.now + 100.0)  # lease expires, view evicted
    assert "v1" in fx.system.directory.quarantined

    comp = cm.recover()
    fx.run(until=fx.kernel.now + 50.0)
    assert comp.done and comp.value.cells == {"a": 3}

    # A fresh process would restart state_seq at 0 and have this push
    # rejected; the fast-forward makes it land.
    fx.run_scripts(write(4))
    assert fx.store.cells["a"] == 7


def test_lease_checker_idle_directory_does_not_spin():
    """With every view unregistered the lease timer must disarm, so a
    bounded kernel run drains (nothing keeps the event queue alive)."""
    fx = ProtocolFixture(store_cells={"a": 0}, lease_duration=20.0)
    cm, _ = add_view(fx, "v1", ["a"])

    def lifecycle():
        yield cm.start()
        yield cm.init_image()
        yield cm.kill_image()

    fx.run_scripts(lifecycle())
    assert fx.system.directory.views == {}
    t = fx.kernel.now
    fx.run()  # terminates: no armed lease timer without views
    assert fx.kernel.now - t <= 20.0


# ---------------------------------------------------------------------------
# Round-timeout quarantine (data-loss fix)
# ---------------------------------------------------------------------------

def test_round_timeout_quarantines_silent_view_with_op_context():
    fx = ProtocolFixture(store_cells={"a": 1}, round_timeout=50.0)
    cm1, _ = add_view(fx, "v1", ["a"], mode=Mode.WEAK)
    cm2, a2 = add_view(fx, "v2", ["a"], mode=Mode.STRONG)
    fx.run_scripts(setup_script(cm1), setup_script(cm2))

    cm1.crash()  # active, conflicting, and silent

    def acquire():
        yield cm2.start_use_image()
        a2.local["a"] += 1
        cm2.end_use_image()
        yield cm2.kill_image()

    fx.run_scripts(acquire())
    d = fx.system.directory
    assert fx.store.cells["a"] == 2  # requester was not wedged
    assert d.counters["round_timeouts"] == 1
    assert d.counters["rounds_quarantined"] == 1
    q = d.quarantined["v1"]
    assert q.reason == "round-timeout"
    assert q.image.cells == {"a": 1}  # v1's last committed slice
    assert q.op_context == {"op_kind": "acquire", "requested_by": "v2"}


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------

def _silence_directory(fx):
    fx.transport.fault_policy = (
        lambda m: "drop" if m.dst == "dir" else "deliver"
    )


def test_degraded_weak_cm_serves_stale_reads_then_heals():
    fx = ProtocolFixture(store_cells={"a": 9})
    cm, agent = add_view(
        fx, "v1", ["a"], mode=Mode.WEAK, request_timeout=20.0, max_retries=1
    )
    fx.run_scripts(setup_script(cm))

    _silence_directory(fx)

    def failing_pull():
        try:
            yield cm.pull_image()
        except ProtocolError as exc:
            return str(exc)
        return None

    [err] = fx.run_scripts(failing_pull())
    assert "unanswered after 1 retries" in err
    assert cm.degraded and cm.counters["degradations"] == 1

    def stale_read():
        yield cm.start_use_image()  # resolves locally despite silence
        value = agent.local["a"]
        cm.end_use_image()
        return value

    [value] = fx.run_scripts(stale_read())
    assert value == 9
    assert cm.counters["stale_serves"] == 1

    # The link heals: the next answered request clears the flag.
    fx.transport.fault_policy = None

    def healthy_pull():
        yield cm.pull_image()

    fx.run_scripts(healthy_pull())
    assert not cm.degraded


def test_degraded_strong_cm_refuses_use():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm, _ = add_view(
        fx, "v1", ["a"], mode=Mode.STRONG, request_timeout=20.0, max_retries=1
    )
    fx.run_scripts(setup_script(cm))
    _silence_directory(fx)

    def try_use():
        errors = []
        try:
            yield cm.start_use_image()  # ACQUIRE goes unanswered
        except ProtocolError as exc:
            errors.append(str(exc))
        try:
            yield cm.start_use_image()  # now refused outright
        except ProtocolError as exc:
            errors.append(str(exc))
        return errors

    [errors] = fx.run_scripts(try_use())
    assert len(errors) == 2
    assert "unanswered" in errors[0]
    assert "strong-mode use refused" in errors[1]
    assert cm.degraded


# ---------------------------------------------------------------------------
# Duplicate delivery idempotency on the raw protocol (no sublayer):
# the directory's reply cache + state sequence numbers must absorb
# duplicated REGISTER, PUSH, PULL_REQ and round replies.
# ---------------------------------------------------------------------------

DUPLICATED = (M.REGISTER, M.PUSH, M.PULL_REQ, M.INVALIDATE_ACK, M.FETCH_REPLY)


def test_duplicated_protocol_messages_are_idempotent():
    fx = ProtocolFixture(store_cells={"a": 0})
    fx.transport.fault_policy = (
        lambda m: "duplicate" if m.msg_type in DUPLICATED else "deliver"
    )
    cm1, a1 = add_view(fx, "v1", ["a"], mode=Mode.STRONG)
    cm2, a2 = add_view(fx, "v2", ["a"], mode=Mode.STRONG)

    def writer(cm, agent, n_ops):
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_ops):
            yield cm.start_use_image()
            agent.local["a"] += 1
            cm.end_use_image()
        yield cm.kill_image()

    fx.run_scripts(writer(cm1, a1, 3), writer(cm2, a2, 3))
    assert fx.store.cells["a"] == 6
    assert fx.stats.duplicated > 0
    d = fx.system.directory
    assert d.counters["registers"] == 2  # duplicates replayed, not re-run
    d.check_invariants()


def test_duplicated_weak_push_and_pull_exact():
    fx = ProtocolFixture(store_cells={"a": 0})
    fx.transport.fault_policy = (
        lambda m: "duplicate" if m.msg_type in (M.PUSH, M.PULL_REQ) else "deliver"
    )
    cm1, a1 = add_view(fx, "v1", ["a"], mode=Mode.WEAK)
    cm2, a2 = add_view(fx, "v2", ["a"], mode=Mode.WEAK)

    def pusher():
        yield cm1.start()
        yield cm1.init_image()
        for _ in range(4):
            yield cm1.start_use_image()
            a1.local["a"] += 1
            cm1.end_use_image()
            yield cm1.push_image()
        yield cm1.kill_image()

    def puller():
        yield cm2.start()
        yield cm2.init_image()
        yield ("sleep", 200.0)
        img = yield cm2.pull_image()
        yield cm2.kill_image()
        return img.get("a")

    results = fx.run_scripts(pusher(), puller())
    # Duplicated pushes must not double-commit increments.
    assert fx.store.cells["a"] == 4
    assert results[1] == 4
