"""The directory op-path profiler (PR 9) and its scale guarantees.

Covers the pure pieces (histograms, profiler arithmetic, MessageStats
mirroring), the wiring (``profile=True`` through FleccSystem and the
sharded plane), and the two work-bound satellites: the lease-expiry
heap does per-expiry work — not per-tick registry scans — and
``check_invariants`` is driven by the exclusive set and the conflict
index, so both stay usable at thousands of registered views.
"""

import pytest

from repro.core import Mode
from repro.core.directory import DirectoryManager
from repro.core.profiling import PHASES, DirectoryProfiler, PhaseHistogram
from repro.core.property_set import PropertySet
from repro.core.sharding import ShardedFleccSystem
from repro.experiments.dm_profile import _BareDirHarness, _props_of, _vid
from repro.net.sim_transport import SimTransport
from repro.net.stats import MessageStats
from repro.sim import SimKernel
from repro.testing import (
    Agent,
    ProtocolFixture,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
)


# -- PhaseHistogram ------------------------------------------------------


def test_histogram_basic_stats():
    h = PhaseHistogram()
    for ns in (100, 200, 400):
        h.record(ns)
    assert h.count == 3
    assert h.total_ns == 700
    assert h.mean_ns == pytest.approx(700 / 3)
    assert h.max_ns == 400


def test_histogram_negative_and_zero_clamp():
    h = PhaseHistogram()
    h.record(0)
    h.record(-5)  # clock skew paranoia: clamped, never a crash
    assert h.count == 2
    assert h.total_ns == 0
    assert h.percentile_ns(0.5) == 0


def test_histogram_huge_sample_lands_in_top_bucket():
    h = PhaseHistogram()
    h.record(1 << 60)
    assert h.buckets[PhaseHistogram.NBUCKETS - 1] == 1


def test_histogram_percentile_brackets_samples():
    h = PhaseHistogram()
    for _ in range(99):
        h.record(1000)
    h.record(1_000_000)
    p50, p99 = h.percentile_ns(0.50), h.percentile_ns(0.99)
    # Power-of-two buckets: good to a factor of two around the sample.
    assert 500 <= p50 <= 2047
    assert p99 <= 2047 < h.max_ns


def test_histogram_merge_accumulates():
    a, b = PhaseHistogram(), PhaseHistogram()
    a.record(100)
    b.record(300)
    a.merge(b)
    assert a.count == 2
    assert a.total_ns == 400
    assert a.max_ns == 300
    d = a.as_dict()
    assert d["count"] == 2 and d["total_ns"] == 400


# -- DirectoryProfiler ---------------------------------------------------


def test_profiler_records_and_totals():
    p = DirectoryProfiler()
    p.record("conflict", 100)
    p.record("serve", 50)
    p.note_op()
    assert p.ops == 1
    assert p.total_ns() == 150
    assert p.total_ns("conflict") == 100
    assert p.total_ns("conflict", "serve", "missing") == 150


def test_profiler_total_excludes_wal_inside_commit():
    p = DirectoryProfiler()
    p.record("commit", 1000)  # includes the WAL append...
    p.record("wal", 400)      # ...also recorded on its own
    assert p.total_ns() == 1000          # not double-counted
    assert p.total_ns("wal") == 400      # explicit ask still works
    lone = DirectoryProfiler()
    lone.record("wal", 400)              # no commit phase recorded
    assert lone.total_ns() == 400


def test_profiler_merge_folds_phases_and_ops():
    a, b = DirectoryProfiler(), DirectoryProfiler()
    a.record("serve", 10)
    a.note_op()
    b.record("serve", 20)
    b.record("commit", 5)
    b.note_op()
    a.merge(b)
    assert a.ops == 2
    assert a.phases["serve"].count == 2
    assert a.phases["commit"].count == 1


def test_profiler_summary_names_phases():
    p = DirectoryProfiler()
    p.record("conflict", 1500)
    text = p.summary()
    assert "conflict" in text and "ops" in text


def test_profiler_as_dict_orders_canonical_phases_first():
    p = DirectoryProfiler()
    p.record("zz-custom", 1)
    for phase in reversed(PHASES):
        p.record(phase, 1)
    keys = list(p.as_dict())
    assert keys[: len(PHASES)] == list(PHASES)
    assert keys[-1] == "zz-custom"


def test_profiler_mirrors_into_message_stats():
    stats = MessageStats()
    p = DirectoryProfiler(stats=stats)
    p.record("conflict", 100)
    p.record("conflict", 300)
    assert stats.op_phase_ns["conflict"] == 400
    assert stats.op_phase_count["conflict"] == 2
    assert "op phase conflict" in stats.summary()
    other = MessageStats()
    other.record_op_phase("conflict", 100)
    other.record_op_phase("serve", 7)
    stats.merge(other)
    assert stats.op_phase_ns["conflict"] == 500
    assert stats.op_phase_count["serve"] == 1
    stats.reset()
    assert not stats.op_phase_ns and not stats.op_phase_count


# -- wiring: system / directory / sharded plane --------------------------


def test_directory_profiles_real_lifecycle():
    fx = ProtocolFixture(profile=True)
    cm, agent = fx.add_agent("v1", ["a"], mode=Mode.STRONG)

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] += 1
        cm.end_use_image()
        yield cm.kill_image()

    fx.run_scripts(script())
    prof = fx.system.directory.profiler
    assert prof is not None
    assert prof.ops >= 2  # init + acquire
    for phase in ("register", "conflict", "serve", "commit"):
        assert phase in prof.phases, phase
    # Samples surfaced through the transport's stats as well.
    assert fx.stats.op_phase_count["conflict"] == prof.phases["conflict"].count


def test_profiling_off_by_default():
    fx = ProtocolFixture()
    assert fx.system.directory.profiler is None
    assert fx.system.directory.policy.indexed  # index is the default


def test_conflict_index_opt_out_preserves_brute_force():
    fx = ProtocolFixture(conflict_index=False)
    assert not fx.system.directory.policy.indexed


def test_sharded_plane_merges_shard_profiles():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    store = Store({"k00": 0, "k01": 1})
    system = ShardedFleccSystem(
        transport, store, extract_from_object, merge_into_object,
        n_shards=2, extract_cells=extract_cells, profile=True,
    )
    agent = Agent()
    cm = system.add_view(
        "v1", agent, PropertySet(), extract_from_view, merge_into_view,
    )

    def script():
        yield cm.start()
        yield cm.init_image()

    from repro.core.system import run_all_scripts

    run_all_scripts(transport, [script()])
    merged = system.plane.merged_profile()
    assert merged is not None
    assert merged.ops >= sum(
        dm.profiler.ops for dm in system.plane.shards
    ) == merged.ops
    assert "register" in merged.phases


def test_sharded_plane_without_profiling_returns_none():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    system = ShardedFleccSystem(
        transport, Store({"k00": 0}), extract_from_object, merge_into_object,
        n_shards=2, extract_cells=extract_cells,
    )
    assert system.plane.merged_profile() is None


# -- work bounds at scale ------------------------------------------------

N_SCALE = 2000  # large enough that an O(V) or O(V^2) slip times out


def _settle(h, sim_seconds=1.0):
    """Deliver in-flight messages without draining the event queue.

    With leases armed the sweep timer re-schedules itself while views
    exist, so ``kernel.run()`` with no horizon would never go idle;
    a bounded run delivers traffic (latency 0.01) and stops.
    """
    h.kernel.run(until=h.transport.now() + sim_seconds)


def _lease_harness(n_views, lease_duration):
    h = _BareDirHarness(conflict_index=True)
    h.dm.lease_duration = lease_duration
    for i in range(n_views):
        h.register(_vid(i), _props_of(i))
    _settle(h)
    return h


def test_idle_lease_ticks_do_no_per_view_work():
    """A sweep tick before any lease expires inspects the heap head and
    stops: zero pops, no matter how many views are registered."""
    h = _lease_harness(N_SCALE, lease_duration=100.0)
    assert len(h.dm._lease_heap) == N_SCALE
    # Run three half-lease ticks' worth of sim time while every lease
    # is still current (renewed by the registration traffic at t~0).
    h.kernel.run(until=h.transport.now() + 99.0)
    assert h.dm.counters["lease_heap_pops"] == 0
    assert len(h.dm.views) == N_SCALE
    h.dm.close()


def test_expiry_work_is_per_expired_view_not_per_tick():
    """Each pop is either a genuine eviction or one stale-entry re-push
    (lazy deletion) — bounded by expiry events, not tick count x V."""
    h = _lease_harness(N_SCALE, lease_duration=100.0)
    # One view stays alive by renewing; everyone else goes silent.
    alive = _vid(0)
    for _ in range(4):
        h.kernel.run(until=h.transport.now() + 60.0)
        h.pull(alive)
        _settle(h)
    # Every silent view expired exactly once; the live view cost at
    # most one lazy re-push per sweep that caught its stale entry.
    assert len(h.dm.views) == 1 and alive in h.dm.views
    assert h.dm.counters["leases_expired"] == N_SCALE - 1
    pops = h.dm.counters["lease_heap_pops"]
    assert pops <= N_SCALE - 1 + 8, pops
    assert h.dm._lease_heaped == {alive}
    h.dm.close()


def test_renewals_never_grow_the_heap():
    h = _lease_harness(50, lease_duration=100.0)
    for _ in range(5):
        for i in range(50):
            h.pull(_vid(i))
        _settle(h)
    assert len(h.dm._lease_heap) == 50  # one entry per view, renewals free
    h.dm.close()


def test_check_invariants_cost_tracks_exclusive_degree():
    """At N views with no exclusive owner the invariant check touches
    nothing; with one owner it evaluates only that owner's conflict
    neighborhood — never O(V^2) pairs."""
    h = _BareDirHarness(conflict_index=True)
    for i in range(N_SCALE):
        h.register(_vid(i), _props_of(i))
    h.drain()
    dm = h.dm
    evals0 = dm.policy.dynamic_evals
    dm.check_invariants()  # no exclusive views: zero conflict work
    assert dm.policy.dynamic_evals == evals0
    # Direct flag mutation (the notifying-property path): one owner.
    dm.views[_vid(0)].active = True
    dm.views[_vid(0)].exclusive = True
    dm.check_invariants()
    evals = dm.policy.dynamic_evals - evals0
    assert evals <= 4, evals  # the owner's pair neighborhood only
    dm.close()


def test_activity_sets_follow_direct_flag_mutation():
    h = _BareDirHarness(conflict_index=True)
    h.register(_vid(0), _props_of(0))
    h.drain()
    rec = h.dm.views[_vid(0)]
    rec.active = True
    rec.exclusive = True
    assert h.dm.active_views() == [_vid(0)]
    assert h.dm.exclusive_views() == [_vid(0)]
    rec.exclusive = False
    assert h.dm.exclusive_views() == []
    h.dm._release(_vid(0))
    assert h.dm.active_views() == []
    h.dm.close()
