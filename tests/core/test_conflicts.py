"""Unit tests for repro.core.conflicts (static map + dynConfl interplay)."""

from repro.core import Property, PropertySet, StaticSharingMap
from repro.core.conflicts import ConflictPolicy, dyn_confl
from repro.core.static_map import Sharing


def _props(**kw):
    registry = {
        k: PropertySet([Property("Flights", v)]) if v is not None else None
        for k, v in kw.items()
    }
    return registry.get


def test_dyn_confl_basic():
    p = PropertySet([Property("Flights", (0, 10))])
    q = PropertySet([Property("Flights", (10, 20))])
    r = PropertySet([Property("Flights", (11, 20))])
    assert dyn_confl(p, q) == 1
    assert dyn_confl(p, r) == 0


def test_static_shared_short_circuits_dynamic():
    m = StaticSharingMap(["a", "b"])
    m.set("a", "b", Sharing.SHARED)
    # Properties would say "no conflict", but the static map wins.
    pol = ConflictPolicy(m, _props(a=(0, 1), b=(5, 6)))
    assert pol.conflicts("a", "b")
    assert pol.static_hits == 1 and pol.dynamic_evals == 0


def test_static_none_short_circuits_dynamic():
    m = StaticSharingMap(["a", "b"])
    m.set("a", "b", Sharing.NONE)
    pol = ConflictPolicy(m, _props(a=(0, 10), b=(0, 10)))
    assert not pol.conflicts("a", "b")
    assert pol.dynamic_evals == 0


def test_dynamic_cell_falls_through_to_properties():
    m = StaticSharingMap(["a", "b"])  # default DYNAMIC
    pol = ConflictPolicy(m, _props(a=(0, 10), b=(5, 6)))
    assert pol.conflicts("a", "b")
    assert pol.dynamic_evals == 1


def test_no_static_map_uses_properties():
    pol = ConflictPolicy(None, _props(a=(0, 10), b=(20, 30)))
    assert not pol.conflicts("a", "b")


def test_unknown_views_fall_back_to_dynamic():
    m = StaticSharingMap(["a"])  # 'b' never added
    pol = ConflictPolicy(m, _props(a=(0, 10), b=(5, 6)))
    assert pol.conflicts("a", "b")


def test_missing_properties_assume_worst_case():
    # Paper §4.1: without application information the protocol must
    # assume all views conflict.
    pol = ConflictPolicy(None, _props(a=(0, 1), b=None))
    assert pol.conflicts("a", "b")


def test_view_never_conflicts_with_itself():
    pol = ConflictPolicy(None, _props(a=(0, 10)))
    assert not pol.conflicts("a", "a")


def test_conflict_set_excludes_self_and_nonconflicting():
    pol = ConflictPolicy(None, _props(a=(0, 10), b=(5, 15), c=(20, 30)))
    assert pol.conflict_set("a", ["a", "b", "c"]) == ["b"]


def test_conflicts_symmetric():
    pol = ConflictPolicy(None, _props(a=(0, 10), b=(5, 15)))
    assert pol.conflicts("a", "b") == pol.conflicts("b", "a")
