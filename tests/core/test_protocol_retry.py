"""Tests: cache-manager retransmission + directory dedup = lossy-network
tolerance (effectively exactly-once request execution)."""

import pytest

from repro.core import Mode
from repro.core import messages as M
from repro.core.cache_manager import CacheManager
from repro.core.directory import DirectoryManager
from repro.core.system import run_all_scripts
from repro.errors import ProtocolError
from repro.net import SimTransport
from repro.sim import SimKernel

from tests.core.harness import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


def build(fault_policy=None, request_timeout=20.0, max_retries=3):
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, fault_policy=fault_policy)
    store = Store({"a": 1})
    directory = DirectoryManager(
        transport=transport, address="dir", component=store,
        extract_from_object=extract_from_object,
        merge_into_object=merge_into_object,
    )
    agent = Agent()
    cm = CacheManager(
        transport=transport, directory_address="dir", view_id="v1",
        view=agent, properties=props_for(["a"]),
        extract_from_view=extract_from_view, merge_into_view=merge_into_view,
        request_timeout=request_timeout, max_retries=max_retries,
    )
    return kernel, transport, store, directory, cm, agent


class _DropFirst:
    """Fault policy: drop the first delivery of each matching message."""

    def __init__(self, msg_types):
        self.msg_types = msg_types
        self.seen = set()

    def __call__(self, msg):
        if msg.msg_type in self.msg_types and msg.msg_id not in self.seen:
            self.seen.add(msg.msg_id)
            return "drop"
        return "deliver"


def test_lost_request_is_retransmitted_and_succeeds():
    kernel, transport, store, directory, cm, agent = build(
        fault_policy=_DropFirst({M.REGISTER, M.INIT_REQ})
    )

    def script():
        yield cm.start()
        img = yield cm.init_image()
        return img.get("a")

    [value] = run_all_scripts(transport, [script()])
    assert value == 1
    assert cm.counters["retries"] == 2  # one per dropped request
    assert transport.stats.dropped == 2


def test_lost_reply_is_recovered_via_dedup_cache():
    """The request arrives but the ACK is lost: the retry hits the
    directory's reply cache, so the operation executes exactly once."""

    class DropFirstReply:
        def __init__(self):
            self.dropped = False

        def __call__(self, msg):
            if msg.msg_type == M.PUSH_ACK and not self.dropped:
                self.dropped = True
                return "drop"
            return "deliver"

    kernel, transport, store, directory, cm, agent = build(
        fault_policy=DropFirstReply()
    )

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] = 99
        cm.end_use_image()
        committed = yield cm.push_image()
        return committed

    [committed] = run_all_scripts(transport, [script()])
    assert committed == 1
    assert store.cells["a"] == 99
    # Exactly one version bump: the retried PUSH was deduplicated.
    assert directory.master_versions.get("a") == 1


def test_retries_exhausted_fails_the_completion():
    kernel, transport, store, directory, cm, agent = build(
        fault_policy=lambda m: "drop" if m.msg_type == M.REGISTER else "deliver",
        request_timeout=10.0,
        max_retries=2,
    )

    def script():
        try:
            yield cm.start()
        except ProtocolError as exc:
            return str(exc)
        return "unexpectedly succeeded"

    [result] = run_all_scripts(transport, [script()])
    assert "unanswered after 2 retries" in result
    assert cm.counters["retries"] == 2


def test_lost_grant_does_not_split_ownership():
    """Regression: two agents whose GRANTs are both lost must not both
    end up believing they own after retrying — the duplicate ACQUIRE is
    re-executed against current directory state, never answered from a
    stale cached GRANT.  (Found by the ABL6 loss sweep.)"""
    state = {"grants_dropped": 0}

    def dropper(msg):
        if msg.msg_type == M.GRANT and state["grants_dropped"] < 2:
            state["grants_dropped"] += 1
            return "drop"
        return "deliver"

    kernel, transport, store, directory, cm1, agent1 = build(
        fault_policy=dropper, request_timeout=15.0, max_retries=5
    )
    agent2 = Agent()
    cm2 = CacheManager(
        transport=transport, directory_address="dir", view_id="v2",
        view=agent2, properties=props_for(["a"]),
        extract_from_view=extract_from_view, merge_into_view=merge_into_view,
        mode="strong", request_timeout=15.0, max_retries=5,
    )

    def script(cm, agent, n_ops):
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_ops):
            yield cm.start_use_image()
            agent.local["a"] = agent.local.get("a", 0) + 1
            cm.end_use_image()
        yield cm.kill_image()

    # Make both strong (build() creates cm1 weak by default).
    cm1.mode = cm2.mode
    from repro.core.modes import Mode

    cm1.mode = Mode.STRONG
    run_all_scripts(transport, [script(cm1, agent1, 3), script(cm2, agent2, 3)])
    # Every increment commits exactly once despite both first GRANTs
    # being dropped and re-acquired.
    assert store.cells["a"] == 1 + 6  # initial value 1 plus 6 increments
    directory.check_invariants()


def test_no_retries_when_network_is_healthy():
    kernel, transport, store, directory, cm, agent = build()

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.kill_image()

    run_all_scripts(transport, [script()])
    assert cm.counters.get("retries", 0) == 0


def test_retry_disabled_by_default():
    kernel = SimKernel()
    transport = SimTransport(
        kernel, default_latency=1.0,
        fault_policy=lambda m: "drop" if m.msg_type == M.REGISTER else "deliver",
    )
    store = Store({"a": 1})
    DirectoryManager(
        transport=transport, address="dir", component=store,
        extract_from_object=extract_from_object,
        merge_into_object=merge_into_object,
    )
    agent = Agent()
    cm = CacheManager(
        transport=transport, directory_address="dir", view_id="v1",
        view=agent, properties=props_for(["a"]),
        extract_from_view=extract_from_view, merge_into_view=merge_into_view,
    )
    comp = cm.start()
    kernel.run(until=1000.0)
    assert not comp.done  # without retries the lost REGISTER just hangs
