"""Tests for the read/write-semantics extension (paper §6, direction 1)."""

import pytest

from repro.core import Mode
from repro.core import messages as M
from repro.core.rw_semantics import Access, RWCacheManager, RWDirectoryManager
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.sim import SimKernel

from tests.core.harness import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


class RWFixture:
    def __init__(self, cells=None):
        self.kernel = SimKernel()
        self.transport = SimTransport(self.kernel, default_latency=1.0)
        self.store = Store(cells or {"a": 10})
        self.directory = RWDirectoryManager(
            transport=self.transport,
            address="dir",
            component=self.store,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
        )
        self.agents = {}

    def add(self, view_id, cells=("a",), mode=Mode.STRONG):
        agent = Agent()
        cm = RWCacheManager(
            transport=self.transport,
            directory_address="dir",
            view_id=view_id,
            view=agent,
            properties=props_for(cells),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view,
            mode=mode,
        )
        self.agents[view_id] = agent
        return cm, agent

    def run_scripts(self, *scripts):
        return run_all_scripts(self.transport, list(scripts))


def test_access_parse():
    assert Access.parse("read") is Access.READ
    assert Access.parse(Access.WRITE) is Access.WRITE
    with pytest.raises(ValueError):
        Access.parse("execute")


def test_concurrent_readers_coexist_without_invalidations():
    fx = RWFixture()
    cms = [fx.add(f"r{i}")[0] for i in range(4)]

    def reader(cm):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image(access=Access.READ)
        yield ("sleep", 20.0)  # all four hold read access simultaneously
        got = fx.agents[cm.view_id].local["a"]
        cm.end_use_image()
        return got

    results = fx.run_scripts(*(reader(cm) for cm in cms))
    assert results == [10, 10, 10, 10]
    assert M.INVALIDATE not in fx.transport.stats.by_type
    fx.directory.check_invariants()
    assert len(fx.directory.read_sharers) == 4


def test_repeated_reads_by_sharer_are_free():
    fx = RWFixture()
    cm, _ = fx.add("r0")

    def reader():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image(access=Access.READ)
        cm.end_use_image()
        before = fx.transport.stats.total
        for _ in range(5):
            yield cm.start_use_image(access=Access.READ)
            cm.end_use_image()
        return fx.transport.stats.total - before

    [delta] = fx.run_scripts(reader())
    assert delta == 0


def test_writer_revokes_all_readers():
    fx = RWFixture()
    r1, _ = fx.add("r1")
    r2, _ = fx.add("r2")
    w, wagent = fx.add("w")

    def reader(cm):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image(access=Access.READ)
        cm.end_use_image()
        yield ("sleep", 50.0)
        return cm.read_shared

    def writer():
        yield w.start()
        yield w.init_image()
        yield ("sleep", 15.0)
        yield w.start_use_image(access=Access.WRITE)
        wagent.local["a"] = 42
        w.end_use_image()
        return w.owner

    r1_shared, r2_shared, w_owner = fx.run_scripts(reader(r1), reader(r2), writer())
    assert w_owner
    assert not r1_shared and not r2_shared  # both revoked
    assert fx.directory.read_sharers == set()
    assert fx.transport.stats.by_type[M.INVALIDATE] == 2
    fx.directory.check_invariants()


def test_reader_revokes_conflicting_writer():
    fx = RWFixture()
    w, wagent = fx.add("w")
    r, ragent = fx.add("r")

    def writer():
        yield w.start()
        yield w.init_image()
        yield w.start_use_image(access=Access.WRITE)
        wagent.local["a"] = 99
        w.end_use_image()
        yield ("sleep", 40.0)
        return w.owner

    def reader():
        yield r.start()
        yield r.init_image()
        yield ("sleep", 15.0)
        yield r.start_use_image(access=Access.READ)
        got = ragent.local["a"]
        r.end_use_image()
        return got

    w_owner_after, r_saw = fx.run_scripts(writer(), reader())
    assert r_saw == 99      # reader got the writer's committed value
    assert not w_owner_after
    fx.directory.check_invariants()


def test_read_sharing_saves_messages_vs_write_acquires():
    """The §6 claim: read/write semantics reduce control messages."""

    def run(access):
        fx = RWFixture()
        cms = [fx.add(f"v{i}")[0] for i in range(4)]

        def script(cm):
            yield cm.start()
            yield cm.init_image()
            for _ in range(4):
                yield cm.start_use_image(access=access)
                yield ("sleep", 2.0)
                cm.end_use_image()
                yield ("sleep", 3.0)

        fx.run_scripts(*(script(cm) for cm in cms))
        fx.directory.check_invariants()
        return fx.transport.stats.total

    read_msgs = run(Access.READ)
    write_msgs = run(Access.WRITE)
    assert read_msgs < write_msgs


def test_write_owner_reading_keeps_its_dirty_data():
    """Regression (found by the RW stateful machine): a write owner
    issuing a read acquire must NOT pull the stale primary copy over
    its own uncommitted write — ownership subsumes read access."""
    fx = RWFixture()
    cm, agent = fx.add("w")

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image(access=Access.WRITE)
        agent.local["a"] = 999  # uncommitted write
        cm.end_use_image()
        before = fx.transport.stats.total
        yield cm.start_use_image(access=Access.READ)
        seen = agent.local["a"]
        cm.end_use_image()
        return seen, fx.transport.stats.total - before

    [(seen, delta)] = fx.run_scripts(script())
    assert seen == 999   # the write survived the read
    assert delta == 0    # and the read was free (no ACQUIRE round)
    fx.directory.check_invariants()


def test_weak_mode_ignores_access_annotation():
    fx = RWFixture()
    cm, agent = fx.add("v", mode=Mode.WEAK)

    def script():
        yield cm.start()
        yield cm.init_image()
        before = fx.transport.stats.total
        yield cm.start_use_image(access=Access.READ)
        cm.end_use_image()
        return fx.transport.stats.total - before

    [delta] = fx.run_scripts(script())
    assert delta == 0  # weak-mode use stays local regardless of intent


def test_unregister_clears_read_sharer():
    fx = RWFixture()
    cm, _ = fx.add("r")

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image(access=Access.READ)
        cm.end_use_image()
        yield cm.kill_image()

    fx.run_scripts(script())
    assert fx.directory.read_sharers == set()
    assert fx.directory.registered_views() == []
