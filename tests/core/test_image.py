"""Unit tests for repro.core.image."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ObjectImage, VersionVector
from repro.errors import ProtocolError


class TestBasics:
    def test_empty(self):
        img = ObjectImage()
        assert img.is_empty() and len(img) == 0

    def test_put_bumps_version(self):
        img = ObjectImage()
        img.put("k", 1)
        img.put("k", 2)
        assert img.get("k") == 2 and img.versions.get("k") == 2

    def test_put_with_explicit_version(self):
        img = ObjectImage()
        img.put("k", "v", version=7)
        assert img.versions.get("k") == 7

    def test_restrict(self):
        img = ObjectImage({"a": 1, "b": 2, "c": 3}, VersionVector({"a": 5, "b": 6}))
        sub = img.restrict(["a", "c", "ghost"])
        assert sorted(sub.keys()) == ["a", "c"]
        assert sub.versions.get("a") == 5 and sub.versions.get("c") == 0

    def test_contains_and_get_default(self):
        img = ObjectImage({"a": 1})
        assert "a" in img and "b" not in img
        assert img.get("b", "fallback") == "fallback"

    def test_copy_independent(self):
        img = ObjectImage({"a": 1})
        c = img.copy()
        c.put("a", 2)
        assert img.get("a") == 1

    def test_constructor_copies_versions(self):
        vv = VersionVector({"a": 1})
        img = ObjectImage({"a": "x"}, vv)
        vv.bump("a")
        assert img.versions.get("a") == 1


class TestMergeNewer:
    def test_newer_wins(self):
        local = ObjectImage({"a": "old"}, VersionVector({"a": 1}))
        incoming = ObjectImage({"a": "new"}, VersionVector({"a": 2}))
        assert local.merge_newer(incoming) == 1
        assert local.get("a") == "new" and local.versions.get("a") == 2

    def test_tie_keeps_local(self):
        local = ObjectImage({"a": "mine"}, VersionVector({"a": 2}))
        incoming = ObjectImage({"a": "theirs"}, VersionVector({"a": 2}))
        assert local.merge_newer(incoming) == 0
        assert local.get("a") == "mine"

    def test_older_ignored(self):
        local = ObjectImage({"a": "mine"}, VersionVector({"a": 3}))
        incoming = ObjectImage({"a": "theirs"}, VersionVector({"a": 1}))
        assert local.merge_newer(incoming) == 0

    def test_new_cells_added(self):
        local = ObjectImage()
        incoming = ObjectImage({"a": 1}, VersionVector({"a": 1}))
        assert local.merge_newer(incoming) == 1
        assert local.get("a") == 1


class TestMergeWithResolver:
    def test_resolver_called_on_same_version_divergence(self):
        local = ObjectImage({"seats": 5}, VersionVector({"seats": 2}))
        incoming = ObjectImage({"seats": 3}, VersionVector({"seats": 2}))
        calls = []

        def resolver(key, mine, theirs):
            calls.append((key, mine, theirs))
            return min(mine, theirs)

        taken = local.merge_with(incoming, resolver)
        assert calls == [("seats", 5, 3)]
        assert local.get("seats") == 3 and taken == 1
        assert local.versions.get("seats") == 3  # resolution is a new update

    def test_resolver_keeping_local_changes_nothing(self):
        local = ObjectImage({"a": 5}, VersionVector({"a": 2}))
        incoming = ObjectImage({"a": 3}, VersionVector({"a": 2}))
        assert local.merge_with(incoming, lambda k, m, t: m) == 0
        assert local.get("a") == 5 and local.versions.get("a") == 2

    def test_without_resolver_same_as_merge_newer(self):
        l1 = ObjectImage({"a": 1}, VersionVector({"a": 1}))
        l2 = l1.copy()
        incoming = ObjectImage({"a": 9}, VersionVector({"a": 5}))
        l1.merge_newer(incoming.copy())
        l2.merge_with(incoming.copy(), None)
        assert l1 == l2


class TestMergeProperties:
    images = st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        max_size=3,
    ).map(
        lambda d: ObjectImage(
            {k: v for k, (v, _n) in d.items()},
            VersionVector({k: n for k, (_v, n) in d.items()}),
        )
    )

    @given(images, images)
    def test_merge_newer_idempotent(self, a, b):
        once = a.copy()
        once.merge_newer(b)
        twice = once.copy()
        twice.merge_newer(b)
        assert once == twice

    @given(images, images)
    def test_merge_result_dominates_incoming(self, a, b):
        a.merge_newer(b)
        for k in b.keys():
            assert a.versions.get(k) >= b.versions.get(k)


class TestWire:
    def test_jsonable_roundtrip(self):
        img = ObjectImage({"a": [1, 2], "b": {"x": 1}}, VersionVector({"a": 3}))
        back = ObjectImage.from_jsonable(img.to_jsonable())
        assert back == img

    def test_malformed_payload_rejected(self):
        with pytest.raises(ProtocolError):
            ObjectImage.from_jsonable({"not-cells": 1})
