"""Sharded directory plane: partitioners, router, parity, cross-shard rounds.

The load-bearing guarantees under test:

- partitioning is *process-restart stable* (CRC-32, never builtin
  ``hash``), so a recovering cache manager finds its state on the same
  shard that held it before the restart;
- ``n_shards=1`` is message-identical to the unsharded system (same
  sends, same order, same ids, same bytes);
- a spanning property set run across N shards converges to exactly the
  state a single-shard run of the same workload produces (the
  cross-shard conflict rounds lose no updates).
"""

import os
import subprocess
import sys
import zlib

import pytest

from repro.core import (
    DiscreteSet,
    DomainRangePartitioner,
    FleccSystem,
    HashPartitioner,
    Interval,
    Property,
    PropertySet,
    ShardedFleccSystem,
)
from repro.core.sharding import stable_key_hash
from repro.core.system import run_all_scripts
from repro.errors import ReproError
from repro.net import SimTransport
from repro.net.message import reset_message_ids
from repro.sim import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


# -- partitioners ------------------------------------------------------------


def test_stable_key_hash_is_crc32():
    assert stable_key_hash("row:7") == zlib.crc32(b"row:7") & 0xFFFFFFFF
    assert stable_key_hash(42) == zlib.crc32(b"42") & 0xFFFFFFFF


def test_hash_partitioner_deterministic_and_in_range():
    part = HashPartitioner(4)
    keys = [f"cell{i}" for i in range(200)]
    owners = {k: part.shard_of(k) for k in keys}
    assert owners == {k: HashPartitioner(4).shard_of(k) for k in keys}
    assert set(owners.values()) == {0, 1, 2, 3}  # every shard owns keys


def test_hash_partitioner_stable_across_process_restarts():
    """Routing must survive a restart: builtin hash() is salted per
    process, so a partitioner built on it would scatter a recovering
    view's cells onto different shards than the ones holding its state.
    Run the same assignment in two subprocesses with different hash
    seeds and require identical answers."""
    prog = (
        "from repro.core import HashPartitioner\n"
        "p = HashPartitioner(8)\n"
        "print([p.shard_of(f'k{i}') for i in range(64)])\n"
    )
    outs = []
    for seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH"),
            ) if p
        )
        outs.append(
            subprocess.run(
                [sys.executable, "-c", prog], env=env,
                capture_output=True, text=True, check=True,
            ).stdout
        )
    assert outs[0] == outs[1]
    here = HashPartitioner(8)
    assert outs[0].strip() == str([here.shard_of(f"k{i}") for i in range(64)])


def test_hash_partitioner_shards_for():
    part = HashPartitioner(4)
    keys = ["a", "b", "c"]
    expected = sorted({part.shard_of(k) for k in keys})
    assert part.shards_for(props_for(keys)) == expected
    # Interval domains cannot be enumerated: the view spans the plane.
    iv = PropertySet([Property("cells", Interval(0, 100))])
    assert part.shards_for(iv) == [0, 1, 2, 3]
    assert part.shards_for(None) == [0, 1, 2, 3]
    assert part.shards_for(PropertySet()) == [0, 1, 2, 3]
    assert HashPartitioner(1).shards_for(None) == [0]


def test_hash_partitioner_validation():
    with pytest.raises(ReproError):
        HashPartitioner(0)
    with pytest.raises(ReproError):
        HashPartitioner(2, replicas=0)


def test_domain_range_partitioner_routes_by_range():
    part = DomainRangePartitioner([Interval(0, 9), Interval(10, 19)])
    assert part.n_shards == 2
    assert part.shard_of(3) == 0
    assert part.shard_of(15) == 1
    # Outside every range: stable CRC-32 fallback, never builtin hash.
    assert part.shard_of("stray") == stable_key_hash("stray") % 2


def test_domain_range_partitioner_shards_for_overlap():
    part = DomainRangePartitioner([Interval(0, 9), Interval(10, 19)])
    lo = PropertySet([Property("cells", Interval(2, 5))])
    hi = PropertySet([Property("cells", Interval(12, 14))])
    span = PropertySet([Property("cells", Interval(5, 15))])
    assert part.shards_for(lo) == [0]
    assert part.shards_for(hi) == [1]
    assert part.shards_for(span) == [0, 1]
    assert part.shards_for(None) == [0, 1]
    discrete = PropertySet([Property("cells", DiscreteSet({3, 12}))])
    assert part.shards_for(discrete) == [0, 1]


def test_domain_range_partitioner_validation():
    with pytest.raises(ReproError):
        DomainRangePartitioner([])


# -- workload helpers --------------------------------------------------------

CELLS = [f"k{i:02d}" for i in range(8)]


def _build(n_shards, cells=CELLS, partitioner=None, record=None):
    reset_message_ids()
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    if record is not None:
        def recorder(msg):
            record.append((msg.msg_type, msg.src, msg.dst, msg.msg_id))
            return "deliver"
        transport.fault_policy = recorder
    store = Store({c: i for i, c in enumerate(cells)})
    if n_shards is None:  # the unsharded reference system
        system = FleccSystem(
            transport, store, extract_from_object, merge_into_object,
            extract_cells=extract_cells,
        )
    else:
        system = ShardedFleccSystem(
            transport, store, extract_from_object, merge_into_object,
            n_shards=n_shards, partitioner=partitioner,
            extract_cells=extract_cells,
        )
    return transport, store, system


def _contended_scripts(system, cells=CELLS, rounds=3):
    """Two strong-mode views over the same spanning slice, interleaved."""
    agents = {}
    for vid, bump in (("v1", 1), ("v2", 10)):
        agent = Agent()
        agents[vid] = (agent, bump)
        system.add_view(vid, agent, props_for(cells), extract_from_view,
                        merge_into_view, mode="strong")

    def script(cm, agent, bump):
        yield cm.start()
        yield cm.init_image()
        for _ in range(rounds):
            yield cm.start_use_image()
            for c in cells:
                agent.local[c] = agent.local.get(c, 0) + bump
            cm.end_use_image()
            yield ("sleep", 5.0)
        yield cm.kill_image()

    return [
        script(system.cache_managers[vid], agent, bump)
        for vid, (agent, bump) in agents.items()
    ]


def _fig4_scripts(system, cells=CELLS):
    """The Fig-4-style mixed workload: a strong writer, a weak reader
    with pull/push, and a second strong view contending at the end."""
    writer, reader, late = Agent(), Agent(), Agent()
    system.add_view("writer", writer, props_for(cells), extract_from_view,
                    merge_into_view, mode="strong")
    system.add_view("reader", reader, props_for(cells), extract_from_view,
                    merge_into_view, mode="weak")
    system.add_view("late", late, props_for(cells), extract_from_view,
                    merge_into_view, mode="strong")
    cms = system.cache_managers

    def write_script():
        cm = cms["writer"]
        yield cm.start()
        yield cm.init_image()
        for r in range(2):
            yield cm.start_use_image()
            for c in cells:
                writer.local[c] += 1
            cm.end_use_image()
            yield ("sleep", 10.0)
        yield cm.kill_image()

    def read_script():
        cm = cms["reader"]
        yield cm.start()
        yield cm.init_image()
        # Stay registered through both strong sessions (their rounds
        # invalidate this weak copy), then pull/push once the writers
        # are quiescent — a weak push *racing* a strong session is
        # last-writer-wins and its winner legitimately depends on op
        # interleaving, which sharding changes.
        yield ("sleep", 30.0)
        yield cm.pull_image()
        reader.local[cells[0]] += 100
        yield cm.push_image()
        yield cm.kill_image()

    def late_script():
        cm = cms["late"]
        yield ("sleep", 12.0)
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        late.local[cells[-1]] += 1000
        cm.end_use_image()
        yield cm.kill_image()

    return [write_script(), read_script(), late_script()], (writer, reader, late)


# -- N=1 parity --------------------------------------------------------------


def test_single_shard_is_message_identical_to_unsharded():
    """The acceptance bar for n_shards=1: same final state AND the same
    message sequence — every send, in order, with the same type, source,
    destination, and message id — and therefore the same wire bytes."""
    seq_plain, seq_sharded = [], []

    transport, store, system = _build(None, record=seq_plain)
    scripts, _ = _fig4_scripts(system)
    run_all_scripts(transport, scripts)
    system.close()
    plain_state = dict(store.cells)
    plain_stats = transport.stats

    transport2, store2, system2 = _build(1, record=seq_sharded)
    scripts2, _ = _fig4_scripts(system2)
    run_all_scripts(system2.transport, scripts2)
    system2.close()

    assert store2.cells == plain_state
    assert seq_sharded == seq_plain
    assert transport2.stats.total == plain_stats.total
    assert transport2.stats.by_type == plain_stats.by_type
    assert transport2.stats.bytes_sent == plain_stats.bytes_sent
    assert transport2.stats.bytes_by_type == plain_stats.bytes_by_type


def test_single_shard_contended_parity():
    transport, store, system = _build(None)
    run_all_scripts(transport, _contended_scripts(system))
    system.close()

    transport2, store2, system2 = _build(1)
    run_all_scripts(system2.transport, _contended_scripts(system2))
    system2.close()

    assert store2.cells == store.cells
    assert transport2.stats.by_type == transport.stats.by_type


def test_single_shard_uses_original_directory_address():
    transport, _store, system = _build(1)
    assert system.plane.addresses == ["dir"]
    assert system.plane.router.passthrough
    system.close()


# -- cross-shard conflict rounds ---------------------------------------------


@pytest.mark.parametrize("n_shards", [2, 4, 8])
def test_spanning_views_converge_like_single_shard(n_shards):
    """A/B: the same contended spanning workload, one shard vs many —
    the cross-shard rounds must lose no update and double-apply none."""
    transport, store, system = _build(1)
    run_all_scripts(system.transport, _contended_scripts(system))
    system.close()
    reference = dict(store.cells)

    transport_n, store_n, system_n = _build(n_shards)
    run_all_scripts(system_n.transport, _contended_scripts(system_n))
    counters = system_n.plane.counters
    system_n.plane.check_invariants()
    system_n.close()

    assert store_n.cells == reference
    # The spanning slice genuinely fans out and the revoked view's dirty
    # cells get re-homed to the shards the asking shard does not own.
    assert counters["router_fanouts"] > 0
    assert counters["cross_shard_rounds"] > 0
    assert counters["synthesized_pushes"] > 0


def test_fig4_workload_converges_across_shards():
    transport, store, system = _build(1)
    scripts, _ = _fig4_scripts(system)
    run_all_scripts(system.transport, scripts)
    system.close()
    reference = dict(store.cells)

    transport4, store4, system4 = _build(4)
    scripts4, _ = _fig4_scripts(system4)
    run_all_scripts(system4.transport, scripts4)
    system4.close()
    assert store4.cells == reference


def test_shard_local_views_never_fan_out_data_ops():
    """Views whose property sets map to a single shard run their rounds
    entirely shard-local: no data-op fan-out, no cross-shard rounds."""
    cells = [str(i) for i in range(8)]
    part = DomainRangePartitioner([Interval(0, 3), Interval(4, 9)])
    # DiscreteSet of string keys routes via the CRC fallback; use the
    # numeric keys directly so each view sits inside one range.
    transport, store, system = _build(
        2, cells=cells, partitioner=part,
    )
    lo, hi = Agent(), Agent()
    lo_props = PropertySet([Property("cells", Interval(0, 3))])
    hi_props = PropertySet([Property("cells", Interval(4, 9))])
    system.add_view("lo", lo, lo_props, extract_from_view,
                    merge_into_view, mode="strong")
    system.add_view("hi", hi, hi_props, extract_from_view,
                    merge_into_view, mode="strong")

    def script(cm, agent, keys):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        for k in keys:
            agent.local[k] = agent.local.get(k, 0) + 1
        cm.end_use_image()
        yield cm.kill_image()

    run_all_scripts(system.transport, [
        script(system.cache_managers["lo"], lo, []),
        script(system.cache_managers["hi"], hi, []),
    ])
    counters = system.plane.counters
    system.close()
    assert counters["cross_shard_rounds"] == 0
    assert counters["shard_local_rounds"] > 0
    assert counters["acquire_retries"] == 0


# -- plane-wide accounting ---------------------------------------------------


def test_per_shard_stats_merge_into_plane_view():
    transport, store, system = _build(4)
    run_all_scripts(system.transport, _contended_scripts(system))
    router = system.plane.router
    merged = system.plane.merged_stats()
    per_shard_totals = sum(st.total for st in router.shard_stats.values())
    assert merged.total == per_shard_totals > 0
    # Per-type counters survive the merge (sum over shards).
    for msg_type, count in merged.by_type.items():
        assert count == sum(
            st.by_type.get(msg_type, 0) for st in router.shard_stats.values()
        )
    system.close()


def test_plane_counters_include_router_and_shards():
    transport, store, system = _build(2)
    run_all_scripts(system.transport, _contended_scripts(system))
    counters = system.plane.counters
    system.close()
    for key in ("cross_shard_rounds", "shard_local_rounds", "router_fanouts",
                "rounds", "commits", "registers"):
        assert key in counters
    # Shard counters are summed across the plane: both views registered
    # on both shards (spanning slice) -> 2 registrations per shard.
    assert counters["registers"] == 4


def test_registered_views_union_and_unregister():
    transport, store, system = _build(2)
    a = Agent()
    system.add_view("solo", a, props_for(CELLS), extract_from_view,
                    merge_into_view, mode="weak")
    cm = system.cache_managers["solo"]

    def script():
        yield cm.start()
        assert system.plane.registered_views() == ["solo"]
        yield cm.init_image()
        yield cm.kill_image()

    run_all_scripts(system.transport, [script()])
    assert system.plane.registered_views() == []
    system.close()
