"""Protocol tests: quality-trigger machinery at run time (paper §4.1,
the mechanism evaluated in Fig 6)."""

from repro.core import Mode
from repro.core import messages as M
from repro.core.triggers import TriggerSet

from tests.core.harness import ProtocolFixture


def test_pull_trigger_fires_periodically():
    fx = ProtocolFixture(store_cells={"a": 0})
    # Pull whenever t > 50, polled every 20 time units.
    cm, _ = fx.add_agent(
        "v1", ["a"], triggers=TriggerSet(pull="t > 50"), trigger_poll_period=20.0
    )

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    fx.run(until=200.0)
    # Polls at 20,40,...: fires from t=60 onwards -> several pulls.
    assert cm.counters["trigger_fires"] >= 3
    assert fx.stats.by_type[M.PULL_REQ] >= 3


def test_push_trigger_fires_only_with_dirty_data():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm, agent = fx.add_agent(
        "v1", ["a"], triggers=TriggerSet(push="true"), trigger_poll_period=10.0
    )

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    fx.run(until=100.0)
    assert fx.stats.by_type.get(M.PUSH, 0) == 0  # nothing dirty, no pushes

    def modify():
        yield cm.start_use_image()
        agent.local["a"] = 5
        cm.end_use_image()

    fx.run_scripts(modify())
    fx.run(until=150.0)
    assert fx.stats.by_type.get(M.PUSH, 0) >= 1
    assert fx.store.cells["a"] == 5


def test_trigger_with_view_variable_via_reflection():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm, agent = fx.add_agent(
        "v1", ["a"],
        triggers=TriggerSet(pull="pressure > 10"),
        trigger_poll_period=10.0,
    )
    agent.pressure = 0  # reflected view variable

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    fx.run(until=100.0)
    # No trigger pulls yet — the reflected variable is below threshold.
    pulls_before = fx.stats.by_type.get(M.PULL_REQ, 0)
    assert pulls_before == 0
    agent.pressure = 50
    fx.run(until=200.0)
    assert fx.stats.by_type.get(M.PULL_REQ, 0) > pulls_before


def test_triggers_do_not_fire_during_use():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm, agent = fx.add_agent(
        "v1", ["a"], triggers=TriggerSet(pull="true"), trigger_poll_period=5.0
    )

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())

    def long_use():
        yield cm.start_use_image()
        before = fx.stats.by_type.get(M.PULL_REQ, 0)
        yield ("sleep", 50.0)  # several poll periods pass while in use
        during = fx.stats.by_type.get(M.PULL_REQ, 0) - before
        cm.end_use_image()
        return during

    [pulls_during_use] = fx.run_scripts(long_use())
    assert pulls_during_use == 0


def test_trigger_poller_stops_after_kill():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm, _ = fx.add_agent(
        "v1", ["a"], triggers=TriggerSet(pull="true"), trigger_poll_period=5.0
    )

    def lifecycle():
        yield cm.start()
        yield cm.init_image()
        yield ("sleep", 20.0)
        yield cm.kill_image()

    fx.run_scripts(lifecycle())
    total_at_kill = fx.stats.total
    fx.run(until=500.0)
    assert fx.stats.total == total_at_kill  # silence after kill


def test_set_triggers_at_runtime_changes_behavior():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm, _ = fx.add_agent("v1", ["a"], trigger_poll_period=10.0)

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    fx.run(until=100.0)
    assert fx.stats.by_type.get(M.PULL_REQ, 0) == 0

    cm.set_triggers(TriggerSet(pull="true"))
    cm._start_trigger_poller()
    fx.run(until=200.0)
    assert fx.stats.by_type.get(M.PULL_REQ, 0) >= 3


def test_no_triggers_means_no_poller_traffic():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm, _ = fx.add_agent("v1", ["a"], trigger_poll_period=1.0)

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    before = fx.stats.total
    fx.run(until=1000.0)
    assert fx.stats.total == before


def test_validity_trigger_consulted_at_each_pull():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm1, _ = fx.add_agent("v1", ["a"], triggers=TriggerSet(validity="t > 100"))
    cm2, _ = fx.add_agent("v2", ["a"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))

    def early_pull():
        yield cm1.pull_image()  # t < 100: validity false -> no fetch

    fx.run_scripts(early_pull())
    assert fx.stats.by_type.get(M.FETCH_REQ, 0) == 0

    def late_pull():
        yield ("sleep", 200.0)
        yield cm1.pull_image()  # t > 100: validity true -> fetch round

    fx.run_scripts(late_pull())
    assert fx.stats.by_type.get(M.FETCH_REQ, 0) == 1
