"""Property-based tests: the static sharing map stays well-formed under
arbitrary add/remove/set sequences (the map grows as views register and
shrinks as they unregister at run time)."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import StaticSharingMap
from repro.core.static_map import Sharing

VIEW_POOL = [f"v{i}" for i in range(8)]


class StaticMapMachine(RuleBasedStateMachine):
    """Model-based test: a dict-of-pairs model mirrors the matrix."""

    def __init__(self):
        super().__init__()
        self.map = StaticSharingMap()
        self.model = {}  # frozenset({a,b}) -> Sharing
        self.present = set()

    @rule(view=st.sampled_from(VIEW_POOL))
    def add_view(self, view):
        if view in self.present:
            return
        self.map.add_view(view)
        self.present.add(view)
        for other in self.present - {view}:
            self.model[frozenset({view, other})] = Sharing.DYNAMIC

    @rule(view=st.sampled_from(VIEW_POOL))
    def remove_view(self, view):
        if view not in self.present:
            return
        self.map.remove_view(view)
        self.present.discard(view)
        for key in [k for k in self.model if view in k]:
            del self.model[key]

    @rule(
        a=st.sampled_from(VIEW_POOL),
        b=st.sampled_from(VIEW_POOL),
        value=st.sampled_from([Sharing.NONE, Sharing.SHARED, Sharing.DYNAMIC]),
    )
    def set_cell(self, a, b, value):
        if a == b or a not in self.present or b not in self.present:
            return
        self.map.set(a, b, value)
        self.model[frozenset({a, b})] = value

    @invariant()
    def matrix_matches_model(self):
        assert set(self.map.view_ids()) == self.present
        for key, value in self.model.items():
            a, b = sorted(key)
            assert self.map.get(a, b) is value
            assert self.map.get(b, a) is value

    @invariant()
    def always_symmetric(self):
        assert self.map.is_symmetric()

    @invariant()
    def diagonal_is_none(self):
        for v in self.present:
            assert self.map.get(v, v) is Sharing.NONE


TestStaticMapStateMachine = StaticMapMachine.TestCase
TestStaticMapStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
