"""Conflict-index memoization: hits, invalidation, and directory wiring.

The cache must be invisible except for speed: every answer after an
invalidation matches what an uncached policy would compute.  The
directory-level tests exercise the paper's dynamic-reconfiguration
story — "views ... can dynamically change the sets of shared data" —
against the cached index.
"""

import pytest

from repro.core import Mode, Property, PropertySet, StaticSharingMap
from repro.core.conflicts import ConflictPolicy
from repro.core.static_map import Sharing
from repro.errors import ProtocolError
from tests.core.harness import ProtocolFixture, props_for


def _policy(registry):
    return ConflictPolicy(None, registry.get)


def _interval_props(**kw):
    return {
        k: PropertySet([Property("cells", v)]) if v is not None else None
        for k, v in kw.items()
    }


# -- pure ConflictPolicy cache behaviour --------------------------------


def test_repeated_query_hits_cache():
    pol = _policy(_interval_props(a=(0, 10), b=(5, 15)))
    assert pol.conflicts("a", "b")
    assert pol.conflicts("a", "b")
    assert pol.conflicts("b", "a")  # symmetric key shares the entry
    assert pol.dynamic_evals == 1
    assert pol.cache_hits == 2


def test_invalidate_forces_recompute():
    registry = _interval_props(a=(0, 10), b=(5, 15))
    pol = _policy(registry)
    assert pol.conflicts("a", "b")
    gen = pol.generation
    # The registry changes out from under the policy: b moves away.
    registry["b"] = PropertySet([Property("cells", (100, 110))])
    # Without invalidation the cached (stale) answer is served...
    assert pol.conflicts("a", "b")
    pol.invalidate()
    assert pol.generation == gen + 1
    # ...after invalidation the fresh relationship is computed.
    assert not pol.conflicts("a", "b")
    assert pol.dynamic_evals == 2


def test_conflict_set_caches_whole_result():
    pol = _policy(_interval_props(a=(0, 10), b=(5, 15), c=(100, 110)))
    views = ["a", "b", "c"]
    assert pol.conflict_set("a", views) == ["b"]
    evals = pol.dynamic_evals
    assert pol.conflict_set("a", views) == ["b"]
    assert pol.dynamic_evals == evals  # second call answered from cache
    assert pol.cache_hits >= 1


def test_conflict_set_result_is_a_private_copy():
    pol = _policy(_interval_props(a=(0, 10), b=(5, 15)))
    first = pol.conflict_set("a", ["a", "b"])
    first.append("tampered")
    assert pol.conflict_set("a", ["a", "b"]) == ["b"]


def test_conflict_set_distinguishes_candidate_lists():
    pol = _policy(_interval_props(a=(0, 10), b=(5, 15), c=(7, 20)))
    assert pol.conflict_set("a", ["a", "b"]) == ["b"]
    assert pol.conflict_set("a", ["a", "b", "c"]) == ["b", "c"]


def test_static_map_cell_change_honored_after_invalidate():
    m = StaticSharingMap(["a", "b"])
    m.set("a", "b", Sharing.NONE)
    pol = ConflictPolicy(m, _interval_props(a=(0, 10), b=(0, 10)).get)
    assert not pol.conflicts("a", "b")
    m.set("a", "b", Sharing.SHARED)
    pol.invalidate()
    assert pol.conflicts("a", "b")
    assert pol.static_hits == 2  # both computations answered statically


def test_counters_count_misses_only():
    pol = _policy(_interval_props(a=(0, 10), b=(5, 15)))
    for _ in range(5):
        pol.conflicts("a", "b")
    assert pol.dynamic_evals == 1
    assert pol.static_hits == 0
    assert pol.cache_hits == 4


# -- directory-level invalidation ---------------------------------------


def test_reregistration_with_changed_properties_refreshes_conflicts():
    """A view unregisters and re-registers with a *different* slice; the
    directory must observe the new conflict relationship, not the cached
    one from the first life."""
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2, "z": 9})
    cm1, _ = fx.add_agent("v1", ["a"])
    cm2, _ = fx.add_agent("v2", ["z"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))
    directory = fx.system.directory
    assert directory.conflict_set_of("v1") == []
    # Warm the cache again, then retire v2 entirely.
    assert directory.conflict_set_of("v2") == []

    def retire(cm):
        yield cm.kill_image()

    fx.run_scripts(retire(cm2))
    assert directory.conflict_set_of("v1") == []

    # v2 returns with a slice that now overlaps v1.  (The system keeps
    # the dead cache manager's slot; free it so the id can be reused.)
    del fx.system.cache_managers["v2"]
    cm2b, _ = fx.add_agent("v2", ["a", "z"])
    fx.run_scripts(setup(cm2b))
    assert directory.conflict_set_of("v1") == ["v2"]
    assert directory.conflict_set_of("v2") == ["v1"]


def test_prop_update_invalidates_cached_conflicts_both_directions():
    fx = ProtocolFixture(store_cells={"a": 1, "z": 2})
    cm1, _ = fx.add_agent("v1", ["a"])
    cm2, _ = fx.add_agent("v2", ["a"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))
    directory = fx.system.directory
    assert directory.conflict_set_of("v1") == ["v2"]

    def retarget():
        yield cm2.update_properties(props_for(["z"]))

    fx.run_scripts(retarget())
    assert directory.conflict_set_of("v1") == []
    assert directory.conflict_set_of("v2") == []


def test_strong_mode_invariant_after_property_change():
    """STRONG invariant (one-copy serializability) keeps holding when a
    conflicting view appears through a run-time property change."""
    fx = ProtocolFixture(store_cells={"a": 1, "z": 2})
    cm1, agent1 = fx.add_agent("v1", ["a"], mode=Mode.STRONG)
    cm2, _ = fx.add_agent("v2", ["z"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    def register_only(cm):
        yield cm.start()

    # v2 registers but stays inactive (no data yet).
    fx.run_scripts(setup(cm1), register_only(cm2))
    directory = fx.system.directory

    def own_and_retarget():
        # v1 takes exclusive ownership of its slice...
        yield cm1.start_use_image()
        agent1.local["a"] += 1
        cm1.end_use_image()
        # ...and while v1 is exclusive, v2 starts overlapping it.
        yield cm2.update_properties(props_for(["a", "z"]))

    fx.run_scripts(own_and_retarget())
    assert directory.conflict_set_of("v1") == ["v2"]
    # The invariant check runs against the refreshed conflict index.
    directory.check_invariants()

    def v2_pulls():
        # v2 pulling must first revoke the conflicting strong owner.
        yield cm2.pull_image()

    fx.run_scripts(v2_pulls())
    directory.check_invariants()
    assert not directory.views["v1"].exclusive

    # Forcing a stale view of the world would break the invariant:
    # verify check_invariants still has teeth against the live index.
    directory.views["v1"].exclusive = True
    directory.views["v1"].active = True
    directory.views["v2"].active = True
    with pytest.raises(ProtocolError):
        directory.check_invariants()
