"""Compiled triggers must be observationally identical to the interpreter.

Two backends evaluate every trigger: the tree-walking reference
interpreter (:func:`repro.core.triggers.evaluator.evaluate`) and the
code object emitted by :mod:`repro.core.triggers.compiler`.  This suite
sweeps representative expressions — short-circuiting, ``%``/``/`` by
zero, unknown variables, type errors, non-boolean top level — and a
hypothesis-generated corpus, asserting both backends produce the same
value or raise ``TriggerEvalError`` with the same message.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.triggers import Trigger
from repro.core.triggers.compiler import compile_trigger
from repro.core.triggers.evaluator import evaluate
from repro.errors import TriggerEvalError


def both_backends(source, env):
    """Evaluate via both backends; return ('ok', value) or ('err', msg)."""
    trig = Trigger(source)
    outcomes = []
    for backend in (trig.evaluate, trig.evaluate_interpreted):
        try:
            outcomes.append(("ok", backend(env)))
        except TriggerEvalError as exc:
            outcomes.append(("err", str(exc)))
    compiled_outcome, interpreted_outcome = outcomes
    assert compiled_outcome == interpreted_outcome, (
        f"{source!r} under {env!r}: compiled={compiled_outcome} "
        f"interpreted={interpreted_outcome}"
    )
    return compiled_outcome


REPRESENTATIVE = [
    # (source, env) — values, short-circuits, and every error class.
    ("(t > 1500) && pending < 5 || force",
     {"t": 2000.0, "pending": 3, "force": False}),
    ("t % 200 == 0 && pending < 5", {"t": 400, "pending": 1}),
    ("t % 200 == 0 && pending < 5", {"t": 401, "pending": 1}),
    # Short-circuit: the false/true left side must hide a right-side error.
    ("false && 1 / 0 > 0", {}),
    ("true || 1 / 0 > 0", {}),
    ("true && 1 / 0 > 0", {}),          # ...but a taken branch still raises
    ("false || t / 0 > 0", {"t": 1}),
    # Division / modulo by zero.
    ("1 / (t - t) > 0", {"t": 5}),
    ("t % 0 == 1", {"t": 5}),
    ("10 / 4 == 2.5", {}),
    # Unknown variable (and one hiding behind a short-circuit).
    ("ghost > 0", {}),
    ("false && ghost > 0", {}),
    ("true && ghost", {}),
    # Type errors: booleans are not numbers.
    ("t + true > 0", {"t": 1}),
    ("force + 1 > 0", {"force": True}),
    ("t == true", {"t": 1}),
    ("t != false", {"t": 0}),
    ("!(t)", {"t": 1}),
    ("-force > 0", {"force": True}),
    ("t && force", {"t": 1, "force": True}),
    # Non-boolean top level.
    ("t + 1", {"t": 1}),
    ("abs(0 - t)", {"t": 3}),
    ("min(1, 2)", {}),
    # Builtins: values, arity errors, unknown function.
    ("abs(0 - t) > 2", {"t": 3}),
    ("floor(t) == 3", {"t": 3.7}),
    ("ceil(t) == 4", {"t": 3.2}),
    ("min(t, 5, 2) <= max(1, t)", {"t": 4}),
    ("abs(1, 2) > 0", {}),
    ("min(1) > 0", {}),
    ("sqrt(t) > 0", {"t": 4}),
    ("abs(force) > 0", {"force": True}),
    # Comparison chains / nesting / unary stacking.
    ("!(!(t > 0))", {"t": 1}),
    ("-(-t) == t", {"t": 7}),
    ("((t + 1) * 2 - 2) / 2 == t", {"t": 21}),
    ("(t >= 0) == (t <= 100)", {"t": 50}),
]


@pytest.mark.parametrize("source,env", REPRESENTATIVE)
def test_backends_agree_on_representative_expressions(source, env):
    both_backends(source, env)


def test_error_messages_match_exactly():
    cases = {
        "ghost > 1": "unknown variable 'ghost'",
        "1 / 0 > 0": "division by zero in trigger",
        "1 % 0 > 0": "modulo by zero in trigger",
        "min(1) > 0": "min() takes >= 2 argument(s), got 1",
        "abs(1, 2) > 0": "abs() takes 1 argument(s), got 2",
    }
    for source, message in cases.items():
        trig = Trigger(source)
        for backend in (trig.evaluate, trig.evaluate_interpreted):
            with pytest.raises(TriggerEvalError) as err:
                backend({})
            assert message in str(err.value)


def test_compiled_form_is_cached_on_trigger():
    trig = Trigger("t > 0")
    assert trig._compiled is trig._compiled  # stable attribute
    assert trig.evaluate({"t": 1}) is True
    assert trig.evaluate({"t": -1}) is False


def test_compile_trigger_matches_module_evaluate():
    trig = Trigger("(t > 10) && t % 2 == 0")
    fn = compile_trigger(trig.ast)
    for t in range(8, 16):
        env = {"t": t}
        assert fn(env) == evaluate(trig.ast, env)


def test_compiled_trigger_cannot_reach_builtins():
    # The compiled namespace exposes only the helper functions; names
    # resolve through the env, never through Python builtins.
    trig = Trigger("len > 0")
    with pytest.raises(TriggerEvalError, match="unknown variable 'len'"):
        trig.evaluate({})


# -- generated corpus ----------------------------------------------------

_SOURCES = st.sampled_from(
    [
        "t > lo && t < hi",
        "t % step == 0 || force",
        "!(done) && (x + y) / 2 >= t",
        "min(x, y) <= max(x, y) && abs(x - y) < 100",
        "floor(t / step) * step == t",
        "(x * y - t > 0) == force",
        "ceil(x) >= floor(x)",
    ]
)

_VALUES = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.floats(min_value=-5, max_value=5, allow_nan=False, width=32).map(float),
    st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(
    source=_SOURCES,
    env=st.fixed_dictionaries(
        {},
        optional={
            name: _VALUES
            for name in ("t", "lo", "hi", "step", "force", "done", "x", "y")
        },
    ),
)
def test_backends_agree_on_generated_environments(source, env):
    """Random (often ill-typed or incomplete) environments: both backends
    must produce identical values or identical TriggerEvalErrors."""
    both_backends(source, env)
