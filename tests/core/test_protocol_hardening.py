"""Protocol hardening: at-least-once request dedup and round watchdog."""

from repro.core import Mode
from repro.core import messages as M
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.sim import SimKernel

from tests.core.harness import (
    Agent,
    ProtocolFixture,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


class TestRequestDedup:
    def _fixture_with_duplicating_requests(self, types):
        fx = ProtocolFixture(store_cells={"a": 1})
        fx.transport.fault_policy = (
            lambda m: "duplicate" if m.msg_type in types else "deliver"
        )
        return fx

    def test_duplicate_push_commits_once(self):
        fx = self._fixture_with_duplicating_requests({M.PUSH})
        cm, agent = fx.add_agent("v1", ["a"])

        def script():
            yield cm.start()
            yield cm.init_image()
            yield cm.start_use_image()
            agent.local["a"] = 50
            cm.end_use_image()
            yield cm.push_image()

        fx.run_scripts(script())
        fx.run()
        # Exactly one version bump despite the PUSH arriving twice.
        assert fx.system.directory.master_versions.get("a") == 1
        assert fx.store.cells["a"] == 50

    def test_duplicate_register_does_not_error(self):
        fx = self._fixture_with_duplicating_requests({M.REGISTER})
        cm, _ = fx.add_agent("v1", ["a"])

        def script():
            yield cm.start()
            return cm.registered

        [registered] = fx.run_scripts(script())
        fx.run()
        assert registered
        # The duplicate got the cached REGISTER_ACK, not an ERROR.
        assert M.ERROR not in fx.stats.by_type
        assert fx.stats.by_type[M.REGISTER_ACK] == 2

    def test_duplicate_unregister_replays_ack(self):
        fx = self._fixture_with_duplicating_requests({M.UNREGISTER})
        cm, _ = fx.add_agent("v1", ["a"])

        def script():
            yield cm.start()
            yield cm.init_image()
            yield cm.kill_image()

        fx.run_scripts(script())
        fx.run()
        assert M.ERROR not in fx.stats.by_type
        assert fx.system.directory.registered_views() == []

    def test_duplicate_acquire_grants_once(self):
        fx = self._fixture_with_duplicating_requests({M.ACQUIRE})
        cm, agent = fx.add_agent("v1", ["a"], mode=Mode.STRONG)

        def script():
            yield cm.start()
            yield cm.init_image()
            yield cm.start_use_image()
            cm.end_use_image()
            return cm.owner

        [owner] = fx.run_scripts(script())
        fx.run()
        assert owner
        assert fx.stats.by_type[M.GRANT] == 2  # replayed, not re-executed
        fx.system.directory.check_invariants()

    def test_reply_cache_bounded(self):
        fx = ProtocolFixture(store_cells={"a": 1})
        fx.system.directory._dedup_window = 4
        cm, agent = fx.add_agent("v1", ["a"])

        def script():
            yield cm.start()
            yield cm.init_image()
            for i in range(10):
                yield cm.start_use_image()
                agent.local["a"] = i
                cm.end_use_image()
                yield cm.push_image()

        fx.run_scripts(script())
        assert len(fx.system.directory._reply_cache) <= 4


class TestRoundWatchdog:
    def _system_with_timeout(self, timeout):
        from repro.core.system import FleccSystem

        kernel = SimKernel()
        transport = SimTransport(kernel, default_latency=1.0)
        store = Store({"a": 1})
        from repro.core.directory import DirectoryManager

        directory = DirectoryManager(
            transport=transport,
            address="dir",
            component=store,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
            round_timeout=timeout,
        )
        return kernel, transport, store, directory

    def _make_cm(self, transport, view_id, mode=Mode.STRONG):
        from repro.core.cache_manager import CacheManager

        agent = Agent()
        cm = CacheManager(
            transport=transport,
            directory_address="dir",
            view_id=view_id,
            view=agent,
            properties=props_for(["a"]),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view,
            mode=mode,
        )
        return cm, agent

    def test_stuck_view_does_not_block_acquire_forever(self):
        kernel, transport, store, directory = self._system_with_timeout(30.0)
        cm1, a1 = self._make_cm(transport, "stuck")
        cm2, a2 = self._make_cm(transport, "eager")

        def stuck():
            yield cm1.start()
            yield cm1.init_image()
            yield cm1.start_use_image()
            # Never calls end_use_image: the INVALIDATE stays deferred
            # and its ack never comes.
            yield ("sleep", 500.0)

        def eager():
            yield cm2.start()
            yield cm2.init_image()
            yield ("sleep", 10.0)
            yield cm2.start_use_image()
            granted_at = kernel.now
            cm2.end_use_image()
            return granted_at

        from repro.core.system import run_view_script

        hs = run_view_script(transport, stuck())
        he = run_view_script(transport, eager())
        granted_at = he.result()
        # Granted shortly after the watchdog fired (~10 + 30 + delivery),
        # not after the stuck view's 500-unit nap.
        assert granted_at < 100.0
        assert cm2.owner or True  # ownership was granted at some point
        directory.check_invariants()
        # The stuck view was deactivated by the watchdog.
        assert "stuck" not in directory.exclusive_views()

    def test_round_completing_in_time_is_not_expired(self):
        kernel, transport, store, directory = self._system_with_timeout(50.0)
        cm1, a1 = self._make_cm(transport, "v1")
        cm2, a2 = self._make_cm(transport, "v2")
        from repro.core.system import run_all_scripts as ras

        def first():
            yield cm1.start()
            yield cm1.init_image()
            yield cm1.start_use_image()
            a1.local["a"] = 7
            cm1.end_use_image()
            yield ("sleep", 200.0)

        def second():
            yield cm2.start()
            yield cm2.init_image()
            yield ("sleep", 10.0)
            yield cm2.start_use_image()
            got = a2.local["a"]
            cm2.end_use_image()
            return got

        results = ras(transport, [first(), second()])
        # The invalidation completed normally; no state was lost.
        assert results[1] == 7
        directory.check_invariants()
