"""Tests for function calls in trigger expressions (min/max/abs/floor/ceil)."""

import pytest

from repro.core.triggers import Trigger, parse_trigger
from repro.core.triggers.ast import FuncCall, Name, NumLit
from repro.errors import TriggerEvalError, TriggerSyntaxError


class TestParsing:
    def test_single_arg_call(self):
        assert parse_trigger("abs(x) > 1") .left == FuncCall("abs", (Name("x"),))

    def test_multi_arg_call(self):
        ast = parse_trigger("min(a, b, 3) == 3").left
        assert ast == FuncCall("min", (Name("a"), Name("b"), NumLit(3.0)))

    def test_nested_calls(self):
        ast = parse_trigger("max(abs(x), 1) > 0").left
        assert ast == FuncCall("max", (FuncCall("abs", (Name("x"),)), NumLit(1.0)))

    def test_call_in_arithmetic(self):
        t = Trigger("floor(t / 100) % 2 == 0")
        assert t.evaluate({"t": 250}) is True   # floor(2.5)=2, even
        assert t.evaluate({"t": 150}) is False  # floor(1.5)=1, odd
        assert t.evaluate({"t": 50}) is True    # floor(0.5)=0, even

    def test_unparse_roundtrip(self):
        for src in ["abs(x) > 1", "min(a, b) < max(a, b)", "ceil(t / 3) == 4"]:
            ast = parse_trigger(src)
            assert parse_trigger(ast.unparse()) == ast

    def test_variables_collected_through_calls(self):
        t = Trigger("min(pending, backlog) > threshold")
        assert t.variables == {"pending", "backlog", "threshold"}

    def test_unclosed_call_rejected(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger("abs(x > 1")

    def test_empty_args_rejected(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger("abs() > 1")


class TestEvaluation:
    def test_abs(self):
        assert Trigger("abs(x) == 5").evaluate({"x": -5})

    def test_min_max(self):
        env = {"a": 2, "b": 7}
        assert Trigger("min(a, b) == 2").evaluate(env)
        assert Trigger("max(a, b, 10) == 10").evaluate(env)

    def test_floor_ceil(self):
        assert Trigger("floor(2.7) == 2").evaluate({})
        assert Trigger("ceil(2.1) == 3").evaluate({})

    def test_unknown_function(self):
        with pytest.raises(TriggerEvalError, match="unknown function"):
            Trigger("sqrt(t) > 1").evaluate({"t": 4})

    def test_arity_checked(self):
        with pytest.raises(TriggerEvalError, match="argument"):
            Trigger("min(t) > 1").evaluate({"t": 4})
        with pytest.raises(TriggerEvalError, match="argument"):
            Trigger("abs(t, 1) > 1").evaluate({"t": 4})

    def test_boolean_argument_rejected(self):
        with pytest.raises(TriggerEvalError, match="expected a number"):
            Trigger("abs(flag) > 0").evaluate({"flag": True})

    def test_realistic_staleness_trigger(self):
        """A plausible application trigger: pull when either enough time
        passed or the backlog of local work is drained."""
        t = Trigger("t - last_sync > 500 || min(pending, backlog) == 0")
        assert t.evaluate({"t": 1000, "last_sync": 400, "pending": 3, "backlog": 1})
        assert t.evaluate({"t": 100, "last_sync": 50, "pending": 0, "backlog": 9})
        assert not t.evaluate({"t": 100, "last_sync": 50, "pending": 2, "backlog": 9})
