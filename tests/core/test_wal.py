"""The write-ahead log's framing and failure semantics.

Two failure stories matter (see :mod:`repro.core.wal`): a *torn tail*
(the kill interrupted an unacknowledged append — truncate silently)
versus *mid-log corruption* (acknowledged data vanished — fail stop).
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wal import (
    WAL_MAGIC,
    WalCorruptionError,
    WalError,
    WalWriter,
    frame_record,
    scan_wal,
)
from repro.net.binary_codec import decode_value, encode_value


def _write(path, payloads, sync="always", **kw):
    w = WalWriter(path, sync=sync, **kw)
    for p in payloads:
        w.append(p)
    w.close()


# -- framing ----------------------------------------------------------------

def test_frame_round_trip(wal_root):
    path = wal_root / "wal-1.log"
    payloads = [b"", b"a", b"hello" * 100, bytes(range(256))]
    _write(path, payloads)
    scan = scan_wal(path)
    assert scan.records == payloads
    assert not scan.torn
    assert scan.valid_end == path.stat().st_size


def test_empty_segment_is_just_the_magic(wal_root):
    path = wal_root / "wal-1.log"
    WalWriter(path).close()
    assert path.read_bytes() == WAL_MAGIC
    scan = scan_wal(path)
    assert scan.records == [] and not scan.torn


def test_bad_magic_rejected(wal_root):
    path = wal_root / "wal-1.log"
    path.write_bytes(b"NOTAWAL!\x00\x00")
    with pytest.raises(WalError):
        scan_wal(path)


# -- torn tails -------------------------------------------------------------

def test_torn_tail_partial_record_is_truncated(wal_root):
    path = wal_root / "wal-1.log"
    _write(path, [b"one", b"two"])
    intact = path.stat().st_size
    with open(path, "ab") as f:  # a record the kill interrupted mid-write
        f.write(struct.pack(">I", 64) + b"only-a-fragment")
    scan = scan_wal(path)
    assert scan.records == [b"one", b"two"]
    assert scan.torn
    assert scan.valid_end == intact


def test_torn_tail_crc_bad_last_record_is_torn_not_corrupt(wal_root):
    path = wal_root / "wal-1.log"
    _write(path, [b"one"])
    intact = path.stat().st_size
    with open(path, "ab") as f:  # complete frame, wrong CRC: still a tail
        f.write(struct.pack(">I", 3) + b"two" + struct.pack(">I", 0xDEADBEEF))
    scan = scan_wal(path)
    assert scan.records == [b"one"]
    assert scan.torn and scan.valid_end == intact


def test_implausible_length_is_treated_as_tail_garbage(wal_root):
    path = wal_root / "wal-1.log"
    _write(path, [b"one"])
    with open(path, "ab") as f:
        f.write(struct.pack(">I", 0xFFFFFFF0))  # ~4 GiB declared length
    scan = scan_wal(path)
    assert scan.records == [b"one"] and scan.torn


# -- mid-log corruption -----------------------------------------------------

def test_mid_log_corruption_fail_stops(wal_root):
    path = wal_root / "wal-1.log"
    _write(path, [b"alpha", b"bravo", b"charlie"])
    # Flip a payload byte of the FIRST record: valid records follow, so
    # acknowledged data is gone — recovery must refuse, not skip.
    offset = len(WAL_MAGIC) + struct.calcsize(">I")
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(WalCorruptionError):
        scan_wal(path)


# -- writer policies --------------------------------------------------------

def test_sync_always_every_append_is_durable(wal_root):
    w = WalWriter(wal_root / "w.log", sync="always")
    for i in range(3):
        assert w.append(b"x%d" % i) is True
        assert w.unsynced_records == 0
        assert w.durable_size == (wal_root / "w.log").stat().st_size
    assert w.syncs >= 3
    w.close()


def test_sync_batch_syncs_once_per_interval(wal_root):
    w = WalWriter(wal_root / "w.log", sync="batch", batch_interval=4)
    durable = [w.append(b"x") for _ in range(8)]
    # Durable exactly when the batch boundary was hit.
    assert durable == [False, False, False, True] * 2
    assert w.syncs == 2
    w.close()


def test_sync_off_only_close_makes_durable(wal_root):
    path = wal_root / "w.log"
    w = WalWriter(path, sync="off")
    assert not any(w.append(b"x") for _ in range(5))
    assert w.unsynced_records == 5
    assert w.durable_size == len(WAL_MAGIC)
    w.close()  # clean shutdown syncs the tail
    assert scan_wal(path).records == [b"x"] * 5


def test_simulate_crash_loses_exactly_the_unsynced_tail(wal_root):
    path = wal_root / "w.log"
    w = WalWriter(path, sync="batch", batch_interval=4)
    for i in range(6):  # records 0-3 synced at the batch boundary, 4-5 not
        w.append(b"r%d" % i)
    w.simulate_crash()
    scan = scan_wal(path)
    assert scan.records == [b"r0", b"r1", b"r2", b"r3"]
    assert not scan.torn


def test_simulate_crash_with_torn_tail_garbage(wal_root):
    path = wal_root / "w.log"
    w = WalWriter(path, sync="always")
    w.append(b"kept")
    w.simulate_crash(torn_tail=struct.pack(">I", 64) + b"interrupted")
    scan = scan_wal(path)
    assert scan.records == [b"kept"] and scan.torn


def test_writer_resumes_existing_segment(wal_root):
    path = wal_root / "w.log"
    _write(path, [b"first"])
    w = WalWriter(path, sync="always")
    w.append(b"second")
    w.close()
    assert scan_wal(path).records == [b"first", b"second"]


def test_writer_rejects_unknown_policy_and_bad_interval(wal_root):
    with pytest.raises(WalError):
        WalWriter(wal_root / "w.log", sync="sometimes")
    with pytest.raises(WalError):
        WalWriter(wal_root / "w2.log", sync="batch", batch_interval=0)


def test_closed_writer_refuses_appends(wal_root):
    w = WalWriter(wal_root / "w.log")
    w.close()
    with pytest.raises(WalError):
        w.append(b"late")


# -- hypothesis: framed codec round trip ------------------------------------

_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.text(max_size=12),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=50, deadline=None)
@given(st.lists(_values, min_size=1, max_size=8))
def test_wal_round_trips_codec_records(tmp_path_factory, records):
    """Any codec-encodable record survives the WAL frame and back."""
    path = tmp_path_factory.mktemp("hypo-wal") / "wal-1.log"
    payloads = [encode_value(r) for r in records]
    _write(path, payloads)
    assert [decode_value(p) for p in scan_wal(path).records] == records
