"""Unit tests for repro.core.reflection."""

import pytest

from repro.core import ObjectImage, ReflectionExtractor, reflect_variables
from repro.errors import TriggerEvalError


class Inner:
    def __init__(self):
        self.seats = 7


class ViewObj:
    def __init__(self):
        self.pending = 3
        self.ratio = 0.5
        self.inner = Inner()

    def a_method(self):  # pragma: no cover - never called
        return 1


class TestReflectVariables:
    def test_reads_simple_attributes(self):
        env = reflect_variables(ViewObj(), ["pending", "ratio"])
        assert env == {"pending": 3, "ratio": 0.5}

    def test_dotted_paths(self):
        env = reflect_variables(ViewObj(), ["inner.seats"])
        assert env == {"inner.seats": 7}

    def test_missing_attribute_raises(self):
        with pytest.raises(TriggerEvalError, match="no variable 'ghost'"):
            reflect_variables(ViewObj(), ["ghost"])

    def test_missing_nested_attribute_raises(self):
        with pytest.raises(TriggerEvalError):
            reflect_variables(ViewObj(), ["inner.ghost"])

    def test_method_rejected(self):
        with pytest.raises(TriggerEvalError, match="may only read data"):
            reflect_variables(ViewObj(), ["a_method"])

    def test_empty_names(self):
        assert reflect_variables(ViewObj(), []) == {}


class TestReflectionExtractor:
    def test_extract_builds_cells(self):
        ex = ReflectionExtractor(["pending", "ratio"])
        img = ex.extract(ViewObj())
        assert img.get("pending") == 3 and img.get("ratio") == 0.5

    def test_merge_writes_back(self):
        ex = ReflectionExtractor(["pending"])
        obj = ViewObj()
        assert ex.merge(obj, ObjectImage({"pending": 42})) == 1
        assert obj.pending == 42

    def test_merge_skips_missing_cells(self):
        ex = ReflectionExtractor(["pending", "ratio"])
        obj = ViewObj()
        assert ex.merge(obj, ObjectImage({"ratio": 1.0})) == 1
        assert obj.pending == 3 and obj.ratio == 1.0

    def test_extract_missing_attribute_raises(self):
        ex = ReflectionExtractor(["ghost"])
        with pytest.raises(TriggerEvalError):
            ex.extract(ViewObj())

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(ValueError):
            ReflectionExtractor([])

    def test_extract_then_merge_roundtrip(self):
        ex = ReflectionExtractor(["pending", "ratio"])
        a, b = ViewObj(), ViewObj()
        a.pending, a.ratio = 99, 9.9
        ex.merge(b, ex.extract(a))
        assert (b.pending, b.ratio) == (99, 9.9)
