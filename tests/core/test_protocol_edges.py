"""Edge cases: mode no-ops, stale pushes, repeated init, multiple
components on one transport, run-time property changes during activity."""

from repro.core import Mode
from repro.core import messages as M
from repro.core.quality import QualityProbe

from tests.core.harness import (
    ProtocolFixture,
    props_for,
)


def test_set_mode_to_current_mode_is_cheap_noop():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"], mode=Mode.WEAK)

    def script():
        yield cm.start()
        before = fx.stats.total
        yield cm.set_mode(Mode.WEAK)
        return fx.stats.total - before

    [delta] = fx.run_scripts(script())
    assert delta == 2  # just SET_MODE + ACK, no pushes or invalidations
    assert cm.mode is Mode.WEAK


def test_stale_push_from_invalidated_view_still_commits():
    """A weak view that was invalidated can still push its (stale)
    changes; the directory accepts them (last-writer-wins by arrival)."""
    fx = ProtocolFixture(store_cells={"a": 1})
    strong_cm, strong_agent = fx.add_agent("vs", ["a"], mode=Mode.STRONG)
    weak_cm, weak_agent = fx.add_agent("vw", ["a"], mode=Mode.WEAK)

    def weak():
        yield weak_cm.start()
        yield weak_cm.init_image()
        yield weak_cm.start_use_image()
        weak_agent.local["a"] = 10
        cmi = weak_cm.end_use_image()
        yield ("sleep", 40.0)  # strong acquires & invalidates meanwhile
        assert weak_cm.invalidated
        # Invalidation already collected the dirty state; nothing left.
        committed = yield weak_cm.push_image()
        return committed

    def strong():
        yield strong_cm.start()
        yield strong_cm.init_image()
        yield ("sleep", 10.0)
        yield strong_cm.start_use_image()
        seen = strong_agent.local["a"]
        strong_cm.end_use_image()
        return seen

    weak_committed, strong_saw = fx.run_scripts(weak(), strong())
    assert strong_saw == 10       # collected by the invalidation
    assert weak_committed == 0    # nothing dirty remained to push
    assert fx.store.cells["a"] == 10


def test_repeated_init_refreshes_image():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm1, a1 = fx.add_agent("v1", ["a"])
    cm2, a2 = fx.add_agent("v2", ["a"])

    def writer():
        yield cm2.start()
        yield cm2.init_image()
        yield cm2.start_use_image()
        a2.local["a"] = 5
        cm2.end_use_image()
        yield cm2.push_image()

    def double_init():
        yield cm1.start()
        first = yield cm1.init_image()
        yield ("sleep", 30.0)
        second = yield cm1.init_image()
        return first.get("a"), second.get("a")

    _, (first, second) = fx.run_scripts(writer(), double_init())
    assert first == 1 and second == 5


def test_two_components_on_one_transport_are_isolated():
    """Two independent FleccSystems share the transport without
    cross-talk (distinct directory addresses)."""
    from repro.core.system import FleccSystem
    from tests.core.harness import (
        Agent,
        Store,
        extract_from_object,
        extract_from_view,
        merge_into_object,
        merge_into_view,
    )

    fx = ProtocolFixture(store_cells={"a": 1})
    other_store = Store({"a": 100})
    other_system = FleccSystem(
        fx.transport, other_store, extract_from_object, merge_into_object,
        directory_address="dir2",
    )
    cm1, agent1 = fx.add_agent("v1", ["a"])
    agent2 = Agent()
    cm2 = other_system.add_view(
        "v1-other", agent2, props_for(["a"]),
        extract_from_view, merge_into_view,
    )

    def script(cm, agent, value):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] = value
        cm.end_use_image()
        yield cm.push_image()

    fx.run_scripts(script(cm1, agent1, 11), script(cm2, agent2, 222))
    assert fx.store.cells["a"] == 11
    assert other_store.cells["a"] == 222
    assert fx.system.directory.registered_views() == ["v1"]
    assert other_system.directory.registered_views() == ["v1-other"]


def test_property_update_shrinks_quality_slice():
    """After narrowing its properties, a view's quality metric only
    counts cells in the new slice."""
    fx = ProtocolFixture(store_cells={"a": 0, "b": 0})
    cm1, _ = fx.add_agent("v1", ["a", "b"])
    cm2, a2 = fx.add_agent("v2", ["a", "b"])
    probe = QualityProbe(fx.system.directory)

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))

    def writer():
        yield cm2.start_use_image()
        a2.local["a"] = 1
        a2.local["b"] = 1
        cm2.end_use_image()
        yield cm2.push_image()

    fx.run_scripts(writer())
    assert probe.unseen("v1") == 2

    def narrow():
        yield cm1.update_properties(props_for(["b"]))

    fx.run_scripts(narrow())
    assert probe.unseen("v1") == 1  # only the "b" update counts now


def test_property_update_marks_view_invalid():
    fx = ProtocolFixture(store_cells={"a": 0, "b": 0})
    cm, _ = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        yield cm.init_image()
        assert not cm.invalidated
        yield cm.update_properties(props_for(["a", "b"]))
        invalid_after = cm.invalidated
        # Next use transparently re-pulls the (larger) slice.
        yield cm.start_use_image()
        cm.end_use_image()
        return invalid_after, cm.invalidated

    [(invalid_after, invalid_now)] = fx.run_scripts(script())
    assert invalid_after and not invalid_now
    assert "b" in fx.agents["v1"].local


def test_directory_grants_acquires_in_request_order():
    """The op queue is FIFO: contended acquires are served in arrival
    order (no starvation, no barging)."""
    fx = ProtocolFixture(store_cells={"a": 0})
    order = []
    cms = [fx.add_agent(f"v{i}", ["a"], mode=Mode.STRONG) for i in range(4)]

    def script(idx, cm, agent):
        yield cm.start()
        yield cm.init_image()
        # Stagger the acquire requests by 1 time unit each.
        yield ("sleep", float(idx))
        yield cm.start_use_image()
        order.append(idx)
        yield ("sleep", 20.0)  # hold long enough that all others queue
        cm.end_use_image()

    fx.run_scripts(*(script(i, cm, a) for i, (cm, a) in enumerate(cms)))
    assert order == [0, 1, 2, 3]


def test_push_ack_reports_committed_count():
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2, "c": 3})
    cm, agent = fx.add_agent("v1", ["a", "b", "c"])

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] = 10
        agent.local["c"] = 30
        cm.end_use_image()
        committed = yield cm.push_image()
        return committed

    [committed] = fx.run_scripts(script())
    assert committed == 2
    assert fx.system.directory.master_versions.get("b") == 0
