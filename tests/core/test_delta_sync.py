"""Delta synchronization: version algebra, image equivalence, protocol A/B.

The load-bearing invariant everywhere: a full pull and a base-plus-delta
pull must land the receiver in the *same* state — delta synchronization
changes what crosses the wire, never what the protocol computes.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import VersionVector
from repro.core import messages as M
from repro.core.image import DeltaImage, ObjectImage
from repro.net import Message
from repro.net.codec import roundtrip

from tests.core.harness import ProtocolFixture, props_for


# -- version-vector delta algebra --------------------------------------------

vectors = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=0, max_value=20),
    max_size=4,
).map(VersionVector)


@given(vectors, vectors)
def test_diff_merge_roundtrip(a, base):
    """diff carries exactly what base is missing from a."""
    assert base.merge_max(a.diff(base)) == base.merge_max(a)


@given(vectors, vectors)
def test_diff_empty_iff_base_dominates(a, base):
    assert (len(a.diff(base)) == 0) == base.dominates(a)


@given(vectors, vectors)
def test_diff_entries_strictly_newer(a, base):
    d = a.diff(base)
    for key, n in d.items():
        assert n == a.get(key) > base.get(key)
    for key, n in a.items():
        if n > base.get(key):
            assert d.get(key) == n


# -- image delta equivalence --------------------------------------------------

def _image(d):
    img = ObjectImage()
    for k, (value, version) in d.items():
        img.put(k, value, version=version)
    return img


images = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.tuples(st.integers(0, 99), st.integers(1, 10)),
    max_size=4,
).map(_image)


@given(images, images)
def test_full_pull_equals_base_plus_delta(base, full):
    """base ⊕ restrict_newer-delta ≡ base ⊕ full, under merge_newer."""
    delta = full.restrict_newer(base.versions)
    via_delta = base.copy()
    via_delta.merge_newer(delta)
    via_full = base.copy()
    via_full.merge_newer(full)
    assert via_delta == via_full


@given(images, images)
def test_restrict_newer_keeps_exactly_the_newer_cells(base, full):
    delta = full.restrict_newer(base.versions)
    for k in full.keys():
        newer = full.versions.get(k) > base.versions.get(k)
        assert (k in delta) == newer
        if newer:
            assert delta.get(k) == full.get(k)
            assert delta.versions.get(k) == full.versions.get(k)


def test_delta_image_codec_roundtrip():
    img = ObjectImage({"a": 1, "b": [2, 3]})
    img.versions.set("a", 4)
    img.versions.set("b", 7)
    delta = DeltaImage(img, base_seq=9, as_of=13, complete=False, slice_size=6)
    m2 = roundtrip(Message("PULL_DATA", "dir", "cm", {"image": delta}))
    assert m2.payload["image"] == delta
    assert m2.payload["image"].slice_size == 6


# -- protocol: delta on vs off must be indistinguishable ---------------------

_CELLS = {f"k{i:02d}": i for i in range(12)}


def _writer_reader_run(delta):
    fx = ProtocolFixture(store_cells=dict(_CELLS), delta=delta)
    keys = sorted(_CELLS)
    cm_w, aw = fx.add_agent("w", keys)
    cm_r, ar = fx.add_agent("r", keys)

    def writer():
        yield cm_w.start()
        yield cm_w.init_image()
        for i in range(3):
            yield ("sleep", 10.0)
            yield cm_w.start_use_image()
            aw.local[keys[i]] = 1000 + i
            aw.local[keys[-1]] = 2000 + i
            cm_w.end_use_image()
            yield cm_w.push_image()

    def reader():
        yield cm_r.start()
        yield cm_r.init_image()
        yield ("sleep", 15.0)
        for _ in range(3):
            yield cm_r.pull_image()
            yield ("sleep", 10.0)

    fx.run_scripts(writer(), reader())
    return fx, ar, cm_r


def test_delta_and_full_runs_are_identical():
    """Same workload, delta on vs off: byte-identical end state and the
    exact same logical message counts (the paper's Fig-4 economy)."""
    fx_d, ar_d, _ = _writer_reader_run(delta=True)
    fx_f, ar_f, _ = _writer_reader_run(delta=False)
    assert fx_d.store.cells == fx_f.store.cells
    assert ar_d.local == ar_f.local
    assert dict(fx_d.stats.by_type) == dict(fx_f.stats.by_type)


def test_delta_counters_and_image_accounting():
    fx, ar, cm_r = _writer_reader_run(delta=True)
    d = fx.system.directory
    assert d.counters["delta_serves"] >= 2
    assert cm_r.counters["delta_pulls"] >= 2
    assert cm_r.counters["delta_fallbacks"] == 0
    # Stats classified the serves: both complete snapshots (the two
    # inits) and deltas, with unchanged cells kept off the wire.
    assert fx.stats.images_full >= 2
    assert fx.stats.images_delta >= 2
    assert fx.stats.cells_skipped > 0
    # The reader still converged on the committed state.
    assert ar.local == fx.store.cells


def test_full_run_never_builds_deltas():
    fx, _, cm_r = _writer_reader_run(delta=False)
    assert fx.system.directory.counters["delta_serves"] == 0
    assert cm_r.counters["delta_pulls"] == 0
    assert fx.stats.images_delta == 0


def test_property_update_falls_back_to_complete_serve():
    """Changing the slice voids the delta base on both ends; the next
    pull must ship a complete snapshot of the new slice."""
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2, "z": 9}, delta=True)
    cm, agent = fx.add_agent("v", ["a", "b"])

    def setup():
        yield cm.start()
        yield cm.init_image()
        yield cm.pull_image()

    fx.run_scripts(setup())
    full_before = cm.counters["full_pulls"]

    def retarget():
        yield cm.update_properties(props_for(["a", "z"]))
        yield cm.pull_image()

    fx.run_scripts(retarget())
    assert cm.counters["full_pulls"] == full_before + 1
    assert agent.local["z"] == 9


def test_lost_base_triggers_one_shot_full_fallback():
    """A delta whose base the CM no longer holds is rejected and the CM
    re-pulls with an explicit full request — exactly once."""
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2}, delta=True)
    cm, agent = fx.add_agent("v", ["a", "b"])
    cm2, agent2 = fx.add_agent("w", ["a", "b"])

    def setup(c):
        yield c.start()
        yield c.init_image()

    fx.run_scripts(setup(cm), setup(cm2))

    def write():
        yield cm2.start_use_image()
        agent2.local["a"] = 77
        cm2.end_use_image()
        yield cm2.push_image()

    fx.run_scripts(write())

    def degraded_pull():
        # Simulate losing the accumulated base while keeping the cursor:
        # the directory will serve a delta the CM cannot apply.
        cm._synced = None
        yield cm.pull_image()

    fx.run_scripts(degraded_pull())
    assert cm.counters["delta_fallbacks"] == 1
    assert agent.local["a"] == 77


def _resolver_run(delta):
    fx = ProtocolFixture(
        store_cells={"a": 1},
        delta=delta,
        conflict_resolver=lambda key, current, pushed: current + pushed,
    )
    cm1, a1 = fx.add_agent("v1", ["a"])
    cm2, a2 = fx.add_agent("v2", ["a"])

    def setup(c):
        yield c.start()
        yield c.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))

    def write(c, ag, value):
        yield c.start_use_image()
        ag.local["a"] = value
        c.end_use_image()
        yield c.push_image()

    # v2 commits first; v1 then pushes a conflicting write based on the
    # pre-v2 state — the resolver rewrites it at the directory.
    fx.run_scripts(write(cm2, a2, 5))
    fx.run_scripts(write(cm1, a1, 7))

    def pull(c):
        yield c.pull_image()

    fx.run_scripts(pull(cm1))
    fx.run_scripts(pull(cm1))  # a second pull must not regress the view
    return fx, a1


def test_resolver_rewritten_push_converges_under_delta():
    """Regression: when the conflict resolver rewrites a pushed cell,
    the pusher's seen-cursor must stay behind the new master version so
    the next delta pull ships the resolved value back — otherwise the
    view re-applies its own pre-resolution write forever."""
    fx_d, a1_d = _resolver_run(delta=True)
    assert fx_d.store.cells["a"] == 5 + 7
    assert a1_d.local["a"] == 5 + 7
    # Byte-identical end state with the full-image baseline.
    fx_f, a1_f = _resolver_run(delta=False)
    assert fx_f.store.cells == fx_d.store.cells
    assert a1_f.local == a1_d.local


def test_filtered_extract_degrades_to_full_serve():
    """Regression: a delta extract that fails to materialize every
    changed cell (stale slice index, or a filtering extract_cells hook)
    must degrade to a full serve instead of stamping the view as having
    seen updates it was never sent."""
    from repro.testing import extract_cells as base_extract_cells

    def filtering(store, props, keys):
        img = base_extract_cells(store, props, keys)
        img.cells.pop("b", None)  # never materializes cell "b"
        return img

    fx = ProtocolFixture(
        store_cells={"a": 1, "b": 2}, delta=True, extract_cells=filtering
    )
    cm_r, ar = fx.add_agent("r", ["a", "b"])
    cm_w, aw = fx.add_agent("w", ["a", "b"])

    def setup(c):
        yield c.start()
        yield c.init_image()

    fx.run_scripts(setup(cm_r), setup(cm_w))

    def write():
        yield cm_w.start_use_image()
        aw.local["a"] = 11
        aw.local["b"] = 22
        cm_w.end_use_image()
        yield cm_w.push_image()

    fx.run_scripts(write())

    def pull():
        yield cm_r.pull_image()

    fx.run_scripts(pull())
    d = fx.system.directory
    assert d.counters["delta_degraded"] >= 1
    # Both updates arrived — nothing was silently dropped.
    assert ar.local == {"a": 11, "b": 22}
    assert ar.local == fx.store.cells


def test_acquire_delta_fallback_is_regranted_without_a_round():
    """A GRANT delta the CM cannot apply triggers a full re-ACQUIRE;
    the directory serves the retry directly to the current exclusive
    holder instead of running a second conflict round."""
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2}, delta=True)
    cm, agent = fx.add_agent("v", ["a", "b"], mode="strong")
    cm2, _ = fx.add_agent("w", ["a", "b"])

    def setup(c):
        yield c.start()
        yield c.init_image()

    fx.run_scripts(setup(cm), setup(cm2))
    d = fx.system.directory

    def degraded_acquire():
        cm._synced = None  # lose the accumulated base, keep the cursor
        yield cm.start_use_image()
        cm.end_use_image()

    fx.run_scripts(degraded_acquire())
    assert cm.counters["delta_fallbacks"] == 1
    assert d.counters["regrants"] == 1
    assert cm.owner
    d.check_invariants()
    assert agent.local == fx.store.cells


def test_slice_index_hit_and_invalidation():
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2, "z": 9}, delta=True)
    cm, _ = fx.add_agent("v", ["a", "b"])

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    d = fx.system.directory
    builds = d.counters["slice_index_builds"]
    hits = d.counters["slice_index_hits"]
    assert d.slice_keys_of("v") == ["a", "b"]
    assert d.live_keys("v") == ["a", "b"]
    assert d.counters["slice_index_builds"] == builds  # cached
    assert d.counters["slice_index_hits"] == hits + 2

    def retarget():
        yield cm.update_properties(props_for(["a", "z"]))

    fx.run_scripts(retarget())
    assert sorted(d.slice_keys_of("v")) == ["a", "z"]
