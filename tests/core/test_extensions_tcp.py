"""The §6 extensions over real TCP sockets: the transport seam holds
for the RW-semantics and service layers too."""

import pytest

from repro.apps.airline import Flight, FlightDatabase
from repro.apps.airline.flights import extract_from_database, merge_into_database
from repro.apps.airline.service import RemoteClient, TravelAgentService
from repro.apps.airline.travel_agent import (
    TravelAgent,
    extract_from_agent,
    merge_into_agent,
)
from repro.core import FleccSystem, Mode
from repro.core.rw_semantics import Access, RWCacheManager, RWDirectoryManager
from repro.core.system import run_all_scripts
from repro.net import TcpTransport

from tests.core.harness import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


@pytest.fixture()
def tcp():
    transport = TcpTransport()
    yield transport
    transport.close()


def test_rw_read_sharing_over_tcp(tcp):
    directory = RWDirectoryManager(
        transport=tcp, address="dir", component=Store({"a": 7}),
        extract_from_object=extract_from_object,
        merge_into_object=merge_into_object,
    )
    cms = []
    for i in range(3):
        agent = Agent()
        cm = RWCacheManager(
            transport=tcp, directory_address="dir", view_id=f"r{i}",
            view=agent, properties=props_for(["a"]),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view, mode=Mode.STRONG,
        )
        cms.append((cm, agent))

    def reader(cm, agent):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image(access=Access.READ)
        value = agent.local["a"]
        yield ("sleep", 50.0)  # hold shared access concurrently
        cm.end_use_image()
        return value

    results = run_all_scripts(tcp, [reader(cm, a) for cm, a in cms])
    assert results == [7, 7, 7]
    from repro.core import messages as M

    assert M.INVALIDATE not in tcp.stats.by_type
    directory.check_invariants()


def test_service_layer_over_tcp(tcp):
    database = FlightDatabase([Flight("UA100", "NYC", "SFO", 30, 30, 99.0)])
    system = FleccSystem(
        tcp, database, extract_from_database, merge_into_database
    )
    agent = TravelAgent("ta-1", ["UA100"])
    cm = system.add_view(
        "ta-1", agent, agent.properties(),
        extract_from_agent, merge_into_agent, mode=Mode.WEAK,
    )

    def setup():
        yield cm.start()
        yield cm.init_image()

    run_all_scripts(tcp, [setup()])
    service = TravelAgentService(tcp, agent, cm)
    client = RemoteClient(tcp, "c1", service.address)

    def session():
        browse = yield client.browse("UA100")
        buy = yield client.buy("UA100", seats=4)
        return browse["flight"]["seats_available"], buy["seats_left"]

    [(before, after)] = run_all_scripts(tcp, [session()])
    assert before == 30 and after == 26
    assert database.seats_available("UA100") == 26
