"""Directory round coalescing: one BATCH frame per destination node.

With ``coalesce_rounds=True`` the directory ships a round's fan-out
(INVALIDATE / FETCH_REQ per conflicting view) as one frame per
destination node instead of one frame per view.  Cache managers are
oblivious — the transport splits batches on arrival — so every
protocol outcome must match the uncoalesced runs exactly.
"""

from repro.core.triggers import TriggerSet
from repro.net.message import BATCH
from repro.net.sim_transport import SimTransport
from repro.net.topology import Topology
from repro.sim import SimKernel
from repro.testing import (
    Agent,
    ProtocolFixture,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)
from repro.core.system import FleccSystem


def _boot(cm):
    yield cm.start()
    yield cm.init_image()


def _strong_round(coalesce, k=5):
    fx = ProtocolFixture(store_cells={"a": 1}, coalesce_rounds=coalesce)
    weak = [fx.add_agent(f"w{i}", ["a"])[0] for i in range(k)]
    strong, agent = fx.add_agent("s", ["a"], mode="strong")

    def use():
        yield strong.start()
        yield strong.init_image()
        yield strong.start_use_image()
        agent.local["a"] += 1
        strong.end_use_image()
        yield strong.kill_image()

    fx.run_scripts(*[_boot(c) for c in weak])
    fx.run_scripts(use())
    return fx


def test_strong_round_sends_one_batch_instead_of_k_frames():
    k = 5
    off = _strong_round(False, k)
    on = _strong_round(True, k)
    # Uncoalesced: one INVALIDATE frame per conflicting active view.
    assert off.stats.by_type["INVALIDATE"] == k
    assert off.stats.batches_sent == 0
    # Coalesced: the whole round rides one BATCH frame.
    assert on.stats.by_type[BATCH] == 1
    assert on.stats.by_type.get("INVALIDATE", 0) == 0
    assert on.stats.batches_sent == 1
    assert on.stats.messages_coalesced == k
    # k-1 fewer frames in total, everything else pairwise identical.
    assert off.stats.total - on.stats.total == k - 1


def test_coalescing_does_not_change_protocol_outcome():
    off = _strong_round(False)
    on = _strong_round(True)
    assert on.store.cells == off.store.cells == {"a": 2}
    for fx in (on, off):
        d = fx.system.directory
        assert d.counters["invalidates_sent"] == 5  # logical ops unchanged
        assert d.counters["rounds"] == 1
        assert d.active_views() == []
        assert d.registered_views() == [f"w{i}" for i in range(5)]
    # Every weak view was revoked and acked in both runs.
    assert on.stats.by_type["INVALIDATE_ACK"] == off.stats.by_type["INVALIDATE_ACK"] == 5


def test_validity_fetch_round_coalesces():
    fx = ProtocolFixture(store_cells={"a": 1}, coalesce_rounds=True)
    readers = [fx.add_agent(f"r{i}", ["a"])[0] for i in range(3)]
    puller, _ = fx.add_agent("p", ["a"], triggers=TriggerSet(validity="true"))

    def pull():
        yield puller.start()
        yield puller.init_image()
        yield puller.pull_image()

    fx.run_scripts(*[_boot(c) for c in readers])
    fx.run_scripts(pull())
    # init + pull each fetched from the 3 active readers: 2 batched rounds.
    assert fx.stats.batches_sent == 2
    assert fx.stats.messages_coalesced == 6
    assert fx.stats.by_type.get("FETCH_REQ", 0) == 0
    assert fx.stats.by_type["FETCH_REPLY"] == 6  # replies stay individual


def test_single_target_round_is_not_batched():
    fx = ProtocolFixture(store_cells={"a": 1}, coalesce_rounds=True)
    lone, _ = fx.add_agent("w0", ["a"])
    strong, _ = fx.add_agent("s", ["a"], mode="strong")

    def use():
        yield strong.start()
        yield strong.init_image()
        yield strong.start_use_image()
        strong.end_use_image()

    fx.run_scripts(_boot(lone))
    fx.run_scripts(use())
    # One conflicting view: a batch envelope would only add overhead.
    assert fx.stats.by_type["INVALIDATE"] == 1
    assert fx.stats.batches_sent == 0


def test_coalescing_groups_by_topology_node():
    topo = Topology()
    for n in ("hub", "n1", "n2"):
        topo.add_node(n)
    topo.add_link("hub", "n1", latency=1.0)
    topo.add_link("hub", "n2", latency=1.0)
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=topo)
    store = Store({"a": 1})
    system = FleccSystem(
        transport, store, extract_from_object, merge_into_object,
        coalesce_rounds=True,
    )
    transport.place("dir", "hub")
    agents = {}
    for vid, node in (("a1", "n1"), ("a2", "n1"), ("b1", "n2")):
        agent = Agent()
        agents[vid] = agent
        system.add_view(
            vid, agent, props_for(["a"]), extract_from_view, merge_into_view
        )
        transport.place(f"cm:{vid}", node)
    strong_agent = Agent()
    strong = system.add_view(
        "s", strong_agent, props_for(["a"]),
        extract_from_view, merge_into_view, mode="strong",
    )
    transport.place("cm:s", "hub")

    def use():
        yield strong.start()
        yield strong.init_image()
        yield strong.start_use_image()
        strong.end_use_image()

    from repro.core.system import run_all_scripts

    boots = []
    for vid in ("a1", "a2", "b1"):
        boots.append(_boot(system.cache_managers[vid]))
    run_all_scripts(transport, boots)
    run_all_scripts(transport, [use()])
    # n1 holds two targets (one BATCH), n2 holds one (plain INVALIDATE).
    assert transport.stats.batches_sent == 1
    assert transport.stats.messages_coalesced == 2
    assert transport.stats.by_type["INVALIDATE"] == 1
    assert system.directory.exclusive_views() == ["s"]
    assert system.directory.active_views() == ["s"]
