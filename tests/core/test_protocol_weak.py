"""Protocol tests: weak mode — conflict-scoped fetch rounds, the
property-driven message savings (the mechanism behind Fig 4), and the
data-quality bookkeeping behind Figs 5/6."""

from repro.core import Mode
from repro.core import messages as M
from repro.core.quality import QualityProbe
from repro.core.triggers import TriggerSet

from tests.core.harness import ProtocolFixture


def _lifecycle(cm, agent, cell, sleep_before_pull=20.0):
    yield cm.start()
    yield cm.init_image()
    yield ("sleep", sleep_before_pull)
    yield cm.pull_image()
    yield cm.start_use_image()
    agent.local[cell] -= 1
    cm.end_use_image()
    yield cm.push_image()


def test_fetch_round_targets_only_conflicting_active_views():
    """Always-fresh pull (validity=true) fetches from conflicting views
    only — the heart of the paper's Fig 4 message savings."""
    fx = ProtocolFixture(store_cells={"a": 10, "b": 20, "z": 30})
    fresh = TriggerSet(validity="true")
    # v1 and v2 share cell "a"; v3 is disjoint ("z").
    cm1, a1 = fx.add_agent("v1", ["a"], triggers=fresh)
    cm2, a2 = fx.add_agent("v2", ["a", "b"], triggers=fresh)
    cm3, a3 = fx.add_agent("v3", ["z"], triggers=fresh)

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2), setup(cm3))
    before = fx.stats.snapshot()

    def puller():
        yield cm1.pull_image()

    fx.run_scripts(puller())
    delta = fx.stats.snapshot().delta(before)
    # One FETCH_REQ to v2 (conflicting, active); none to v3 (disjoint).
    assert delta.by_type.get(M.FETCH_REQ, 0) == 1
    assert delta.by_pair.get(("dir", cm2.address), 0) == 1
    assert ("dir", cm3.address) not in delta.by_pair


def test_pull_without_validity_trigger_skips_fetch():
    fx = ProtocolFixture(store_cells={"a": 10})
    cm1, _ = fx.add_agent("v1", ["a"])
    cm2, _ = fx.add_agent("v2", ["a"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))
    before = fx.stats.snapshot()

    def puller():
        yield cm1.pull_image()

    fx.run_scripts(puller())
    delta = fx.stats.snapshot().delta(before)
    assert M.FETCH_REQ not in delta.by_type


def test_fetch_collects_uncommitted_dirty_state():
    """A fresh pull sees another weak view's *unpushed* modification."""
    fx = ProtocolFixture(store_cells={"a": 10})
    cm1, a1 = fx.add_agent("v1", ["a"], triggers=TriggerSet(validity="true"))
    cm2, a2 = fx.add_agent("v2", ["a"])

    def modifier():
        yield cm2.start()
        yield cm2.init_image()
        yield cm2.start_use_image()
        a2.local["a"] = 3  # modified but NOT pushed
        cm2.end_use_image()
        yield ("sleep", 100.0)

    def reader():
        yield cm1.start()
        yield cm1.init_image()
        yield ("sleep", 20.0)
        img = yield cm1.pull_image()
        return img.get("a")

    _, seen = fx.run_scripts(modifier(), reader())
    assert seen == 3
    # The fetched state was committed at the directory along the way.
    assert fx.store.cells["a"] == 3


def test_concurrent_weak_writers_last_push_wins():
    fx = ProtocolFixture(store_cells={"a": 100})
    cm1, a1 = fx.add_agent("v1", ["a"])
    cm2, a2 = fx.add_agent("v2", ["a"])

    def writer(cm, agent, value, delay):
        yield cm.start()
        yield cm.init_image()
        yield ("sleep", delay)
        yield cm.start_use_image()
        agent.local["a"] = value
        cm.end_use_image()
        yield cm.push_image()

    fx.run_scripts(writer(cm1, a1, 111, 10.0), writer(cm2, a2, 222, 20.0))
    assert fx.store.cells["a"] == 222
    assert fx.system.directory.master_versions.get("a") == 2


def test_quality_probe_counts_unseen_remote_updates():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm1, a1 = fx.add_agent("v1", ["a"])
    cm2, a2 = fx.add_agent("v2", ["a"])
    probe = QualityProbe(fx.system.directory)

    def observer():
        yield cm1.start()
        yield cm1.init_image()
        yield ("sleep", 200.0)

    def writer():
        yield cm2.start()
        yield cm2.init_image()
        for i in range(5):
            yield ("sleep", 10.0)
            yield cm2.start_use_image()
            a2.local["a"] = i
            cm2.end_use_image()
            yield cm2.push_image()

    h1 = fx.run_script(observer())
    h2 = fx.run_script(writer())
    fx.run(until=100.0)
    # After 5 remote pushes of different values, v1 has 5 unseen updates
    # (value 0 equals the initial value so its push commits nothing...).
    unseen_mid = probe.unseen("v1")
    fx.run()
    h1.result(), h2.result()
    assert unseen_mid == probe.unseen("v1") == 4  # first write (0) was clean
    # A pull clears the deficit.
    def puller():
        yield cm1.pull_image()

    fx.run_scripts(puller())
    assert probe.unseen("v1") == 0


def test_quality_restricted_to_view_slice():
    fx = ProtocolFixture(store_cells={"a": 0, "z": 0})
    cm1, _ = fx.add_agent("v1", ["a"])
    cm2, a2 = fx.add_agent("v2", ["z"])
    probe = QualityProbe(fx.system.directory)

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    def writer():
        yield cm2.start_use_image()
        a2.local["z"] = 99
        cm2.end_use_image()
        yield cm2.push_image()

    fx.run_scripts(setup(cm1), setup(cm2))
    fx.run_scripts(writer())
    # v2 updated "z"; v1 only covers "a" — no unseen updates for v1.
    assert probe.unseen("v1") == 0
    assert probe.unseen("v2") == 0  # v2 has seen its own update


def test_dynamic_property_update_changes_conflicts():
    fx = ProtocolFixture(store_cells={"a": 1, "z": 2})
    fresh = TriggerSet(validity="true")
    cm1, _ = fx.add_agent("v1", ["a"], triggers=fresh)
    cm2, _ = fx.add_agent("v2", ["z"])

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm1), setup(cm2))
    assert fx.system.directory.conflict_set_of("v1") == []

    from tests.core.harness import props_for

    def retarget():
        yield cm2.update_properties(props_for(["a", "z"]))

    fx.run_scripts(retarget())
    # v2 now overlaps v1; the directory recomputes conflicts dynamically.
    assert fx.system.directory.conflict_set_of("v1") == ["v2"]
    before = fx.stats.snapshot()

    def puller():
        yield cm1.pull_image()

    fx.run_scripts(puller())
    delta = fx.stats.snapshot().delta(before)
    assert delta.by_type.get(M.FETCH_REQ, 0) == 1


def test_mean_quality_decays_without_pulls_and_improves_with():
    fx = ProtocolFixture(store_cells={"a": 0})
    cm_lazy, _ = fx.add_agent("lazy", ["a"])
    cm_eager, _ = fx.add_agent("eager", ["a"])
    cm_w, aw = fx.add_agent("writer", ["a"])
    probe = QualityProbe(fx.system.directory)

    def setup(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup(cm_lazy), setup(cm_eager), setup(cm_w))

    def writer():
        for i in range(10):
            yield ("sleep", 10.0)
            yield cm_w.start_use_image()
            aw.local["a"] = i + 100
            cm_w.end_use_image()
            yield cm_w.push_image()

    def eager():
        for i in range(10):
            yield ("sleep", 10.0)
            yield cm_eager.pull_image()
            probe.sample("eager", fx.kernel.now)

    def lazy():
        for i in range(10):
            yield ("sleep", 10.0)
            probe.sample("lazy", fx.kernel.now)

    fx.run_scripts(writer(), eager(), lazy())
    assert probe.mean_unseen("eager") < probe.mean_unseen("lazy")
