"""Unit tests for the trigger evaluator and Trigger/TriggerSet classes."""

import pytest

from repro.core.triggers import Trigger, TriggerSet
from repro.errors import TriggerEvalError, TriggerSyntaxError


class TestEvaluation:
    def test_paper_example(self):
        t = Trigger("(t > 1500)")
        assert not t.evaluate({"t": 1000})
        assert not t.evaluate({"t": 1500})
        assert t.evaluate({"t": 1501})

    def test_arithmetic(self):
        t = Trigger("t % 200 == 0")
        assert t.evaluate({"t": 400})
        assert not t.evaluate({"t": 401})

    def test_division(self):
        assert Trigger("10 / 4 == 2.5").evaluate({})

    def test_logical_combination(self):
        t = Trigger("t > 10 && pending < 5 || force")
        assert t.evaluate({"t": 20, "pending": 1, "force": False})
        assert not t.evaluate({"t": 5, "pending": 1, "force": False})
        assert t.evaluate({"t": 5, "pending": 9, "force": True})

    def test_short_circuit_and(self):
        # Right side would fail (unknown var) but is never evaluated.
        t = Trigger("false && ghost > 1")
        assert not t.evaluate({})

    def test_short_circuit_or(self):
        t = Trigger("true || ghost > 1")
        assert t.evaluate({})

    def test_not(self):
        assert Trigger("!(t > 5)").evaluate({"t": 1})

    def test_unary_minus(self):
        assert Trigger("-t == 0 - 5").evaluate({"t": 5})

    def test_equality_on_booleans(self):
        assert Trigger("true == true").evaluate({})
        assert Trigger("true != false").evaluate({})


class TestEvaluationErrors:
    def test_unknown_variable(self):
        with pytest.raises(TriggerEvalError, match="unknown variable"):
            Trigger("ghost > 1").evaluate({})

    def test_division_by_zero(self):
        with pytest.raises(TriggerEvalError, match="division by zero"):
            Trigger("1 / t > 1").evaluate({"t": 0})

    def test_modulo_by_zero(self):
        with pytest.raises(TriggerEvalError, match="modulo by zero"):
            Trigger("t % n == 0").evaluate({"t": 5, "n": 0})

    def test_boolean_in_arithmetic_rejected(self):
        with pytest.raises(TriggerEvalError, match="expected a number"):
            Trigger("t + flag > 1").evaluate({"t": 1, "flag": True})

    def test_number_in_logical_rejected(self):
        with pytest.raises(TriggerEvalError, match="expected a boolean"):
            Trigger("t && true").evaluate({"t": 1})

    def test_mixed_equality_rejected(self):
        with pytest.raises(TriggerEvalError):
            Trigger("t == true").evaluate({"t": 1})

    def test_non_boolean_top_level_rejected(self):
        with pytest.raises(TriggerEvalError, match="non-boolean"):
            Trigger("t + 1").evaluate({"t": 1})

    def test_not_on_number_rejected(self):
        with pytest.raises(TriggerEvalError):
            Trigger("!t").evaluate({"t": 1})


class TestTriggerClass:
    def test_syntax_error_at_construction(self):
        with pytest.raises(TriggerSyntaxError):
            Trigger("t >")

    def test_variables_property(self):
        t = Trigger("t > 100 && seats < 3")
        assert t.variables == {"t", "seats"}
        assert t.view_variables == {"seats"}

    def test_unparse(self):
        assert Trigger("(t > 1500)").unparse() == "(t > 1500)"


class TestTriggerSet:
    def test_all_optional(self):
        ts = TriggerSet()
        assert ts.push is None and ts.pull is None and ts.validity is None
        assert ts.view_variables() == frozenset()

    def test_paper_fig3_style(self):
        # Fig 3 passes the same expression for push, pull, validity.
        ts = TriggerSet(push="(t > 1500)", pull="(t > 1500)", validity="(t > 1500)")
        env = {"t": 2000}
        assert ts.push.evaluate(env) and ts.pull.evaluate(env)
        assert ts.validity.evaluate(env)

    def test_view_variables_unioned(self):
        ts = TriggerSet(push="a > 1", pull="t > 2 && b < 3", validity="c == 0")
        assert ts.view_variables() == {"a", "b", "c"}

    def test_jsonable_roundtrip(self):
        ts = TriggerSet(push="t > 1", validity="x < 2")
        ts2 = TriggerSet.from_jsonable(ts.to_jsonable())
        assert ts2.push.source == "t > 1"
        assert ts2.pull is None
        assert ts2.validity.source == "x < 2"
