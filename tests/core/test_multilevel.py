"""Tests for the two-level protocol extension (paper §6, direction 2).

Low level: unmodified Flecc (views <-> their instance's directory).
High level: decentralized anti-entropy between instance coordinators.
"""

import pytest

from repro.core.directory import DirectoryManager
from repro.core.multilevel import ReplicaCoordinator, converged
from repro.core.system import run_all_scripts
from repro.errors import ProtocolError
from repro.net import SimTransport
from repro.sim import SimKernel

from tests.core.harness import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)
from repro.core.cache_manager import CacheManager


class TwoLevelFixture:
    """N component instances, each with a directory + coordinator."""

    def __init__(self, n_replicas=2, cells=None):
        self.kernel = SimKernel()
        self.transport = SimTransport(self.kernel, default_latency=1.0)
        self.stores = []
        self.directories = []
        self.coordinators = []
        names = [f"rep{i}" for i in range(n_replicas)]
        for i, name in enumerate(names):
            store = Store(dict(cells or {"a": 0, "b": 0}))
            directory = DirectoryManager(
                transport=self.transport,
                address=f"dir:{name}",
                component=store,
                extract_from_object=extract_from_object,
                merge_into_object=merge_into_object,
            )
            coord = ReplicaCoordinator(
                self.transport, name, directory,
                peers=[p for p in names if p != name],
            )
            self.stores.append(store)
            self.directories.append(directory)
            self.coordinators.append(coord)

    def add_view(self, replica_index, view_id, cells=("a",)):
        agent = Agent()
        cm = CacheManager(
            transport=self.transport,
            directory_address=self.directories[replica_index].address,
            view_id=view_id,
            view=agent,
            properties=props_for(cells),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view,
        )
        return cm, agent

    def run(self, until=None):
        return self.kernel.run(until=until)

    def run_scripts(self, *scripts):
        return run_all_scripts(self.transport, list(scripts))


def _update_script(cm, agent, cell, value):
    yield cm.start()
    yield cm.init_image()
    yield cm.start_use_image()
    agent.local[cell] = value
    cm.end_use_image()
    yield cm.push_image()


def test_single_sync_round_propagates_update():
    fx = TwoLevelFixture()
    cm, agent = fx.add_view(0, "v0")
    fx.run_scripts(_update_script(cm, agent, "a", 42))
    assert fx.stores[0].cells["a"] == 42
    assert fx.stores[1].cells["a"] == 0

    def syncer():
        absorbed = yield fx.coordinators[1].sync_with("rep0")
        return absorbed

    [absorbed] = fx.run_scripts(syncer())
    assert absorbed == 1
    assert fx.stores[1].cells["a"] == 42
    assert converged(fx.coordinators)


def test_bidirectional_round_merges_both_sides():
    fx = TwoLevelFixture()
    cm0, a0 = fx.add_view(0, "v0", cells=("a",))
    cm1, a1 = fx.add_view(1, "v1", cells=("b",))
    fx.run_scripts(
        _update_script(cm0, a0, "a", 10), _update_script(cm1, a1, "b", 20)
    )

    def syncer():
        yield fx.coordinators[0].sync_with("rep1")

    fx.run_scripts(syncer())
    for store in fx.stores:
        assert store.cells == {"a": 10, "b": 20}
    assert converged(fx.coordinators)


def test_concurrent_updates_converge_deterministically():
    """Same cell updated at both replicas with equal version counts:
    the (version, origin) order breaks the tie identically everywhere."""
    fx = TwoLevelFixture()
    cm0, a0 = fx.add_view(0, "v0")
    cm1, a1 = fx.add_view(1, "v1")
    fx.run_scripts(
        _update_script(cm0, a0, "a", 111), _update_script(cm1, a1, "a", 222)
    )

    def sync_both():
        yield fx.coordinators[0].sync_with("rep1")
        yield fx.coordinators[1].sync_with("rep0")

    fx.run_scripts(sync_both())
    assert converged(fx.coordinators)
    # rep1 > rep0 lexicographically, so rep1's concurrent write wins.
    assert fx.stores[0].cells["a"] == 222
    assert fx.stores[1].cells["a"] == 222


def test_higher_version_beats_origin_tiebreak():
    fx = TwoLevelFixture()
    cm0, a0 = fx.add_view(0, "v0")
    cm1, a1 = fx.add_view(1, "v1")

    def double_update():
        yield cm0.start()
        yield cm0.init_image()
        for value in (5, 6):  # two commits -> version 2 at rep0
            yield cm0.start_use_image()
            a0.local["a"] = value
            cm0.end_use_image()
            yield cm0.push_image()

    fx.run_scripts(double_update(), _update_script(cm1, a1, "a", 999))

    def sync_both():
        yield fx.coordinators[0].sync_with("rep1")
        yield fx.coordinators[1].sync_with("rep0")

    fx.run_scripts(sync_both())
    assert converged(fx.coordinators)
    assert fx.stores[1].cells["a"] == 6  # version 2 beats version 1


def test_periodic_gossip_converges_three_replicas():
    fx = TwoLevelFixture(n_replicas=3)
    cms = [fx.add_view(i, f"v{i}") for i in range(3)]
    fx.run_scripts(
        *(
            _update_script(cm, agent, "a" if i == 0 else "b", 100 + i)
            for i, (cm, agent) in enumerate(cms)
        )
    )
    for coord in fx.coordinators:
        coord.start()
    fx.run(until=500.0)
    for coord in fx.coordinators:
        coord.stop()
    fx.run()
    assert converged(fx.coordinators)
    assert fx.coordinators[0].rounds_completed >= 2


def test_view_pull_sees_gossiped_remote_update():
    """The two levels compose: an update enters through replica 0's
    low-level Flecc, crosses the high level via anti-entropy, and is
    pulled by a view attached to replica 1."""
    fx = TwoLevelFixture()
    cm0, a0 = fx.add_view(0, "v0")
    cm1, a1 = fx.add_view(1, "v1")
    fx.run_scripts(_update_script(cm0, a0, "a", 77))

    def reader():
        yield cm1.start()
        yield cm1.init_image()
        before = a1.local["a"]
        yield fx.coordinators[1].sync_with("rep0")
        img = yield cm1.pull_image()
        return before, img.get("a")

    [(before, after)] = fx.run_scripts(reader())
    assert before == 0 and after == 77


def test_double_hook_rejected():
    fx = TwoLevelFixture()
    with pytest.raises(ProtocolError, match="on_commit"):
        ReplicaCoordinator(fx.transport, "again", fx.directories[0])


def test_gossip_without_peers_rejected():
    fx = TwoLevelFixture(n_replicas=1)
    fx.coordinators[0].peers = []
    with pytest.raises(ProtocolError, match="no peers"):
        fx.coordinators[0].start()


def test_converged_trivially_true_for_single_replica():
    fx = TwoLevelFixture(n_replicas=1)
    assert converged(fx.coordinators)
