"""Model-based test of the read/write-semantics extension.

Random interleavings of read acquires, write acquires, and kills across
a pool of strong-mode views over one shared cell.  Invariants after
every rule (quiescent steps):

- readers and a conflicting writer never coexist (rw invariant);
- a write is always applied to the latest value (no lost increments);
- the logical value equals a sequential counter model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import Mode
from repro.core.rw_semantics import Access, RWCacheManager, RWDirectoryManager
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.sim import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)

VIEWS = [f"v{i}" for i in range(4)]


class RWMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.kernel = SimKernel()
        self.transport = SimTransport(self.kernel, default_latency=1.0)
        self.store = Store({"a": 0})
        self.directory = RWDirectoryManager(
            transport=self.transport, address="dir", component=self.store,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
        )
        self.live = {}
        self.counter = 0
        self._seq = 0

    def _run(self, *scripts):
        run_all_scripts(self.transport, list(scripts))

    @rule(view=st.sampled_from(VIEWS))
    def join(self, view):
        if view in self.live:
            return
        self._seq += 1
        agent = Agent()
        cm = RWCacheManager(
            transport=self.transport, directory_address="dir",
            view_id=f"{view}#{self._seq}", view=agent,
            properties=props_for(["a"]),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view, mode=Mode.STRONG,
        )

        def setup():
            yield cm.start()
            yield cm.init_image()

        self._run(setup())
        self.live[view] = (cm, agent)

    @rule(view=st.sampled_from(VIEWS))
    def read(self, view):
        entry = self.live.get(view)
        if entry is None:
            return
        cm, agent = entry

        def script():
            yield cm.start_use_image(access=Access.READ)
            value = agent.local["a"]
            cm.end_use_image()
            return value

        self._run(script())

    @rule(view=st.sampled_from(VIEWS))
    def write(self, view):
        entry = self.live.get(view)
        if entry is None:
            return
        cm, agent = entry

        def script():
            yield cm.start_use_image(access=Access.WRITE)
            agent.local["a"] += 1
            cm.end_use_image()

        self._run(script())
        self.counter += 1

    @rule(view=st.sampled_from(VIEWS))
    def kill(self, view):
        entry = self.live.pop(view, None)
        if entry is None:
            return
        cm, _ = entry

        def script():
            yield cm.kill_image()

        self._run(script())

    @invariant()
    def rw_invariants_hold(self):
        self.directory.check_invariants()

    @invariant()
    def no_lost_writes(self):
        # Logical value: the primary copy overlaid with the current
        # write owner's local value (ownership is sticky).
        effective = self.store.cells["a"]
        for cm, agent in self.live.values():
            if cm.owner and "a" in agent.local:
                effective = agent.local["a"]
        assert effective == self.counter


TestRWStateMachine = RWMachine.TestCase
TestRWStateMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
