"""Unit tests for the trigger parser."""

import pytest

from repro.core.triggers import (
    BinOp,
    BoolLit,
    Name,
    NumLit,
    UnaryOp,
    parse_trigger,
)
from repro.errors import TriggerSyntaxError


def test_paper_example():
    ast = parse_trigger("(t > 1500)")
    assert ast == BinOp(">", Name("t"), NumLit(1500.0))


def test_precedence_arithmetic_over_comparison():
    ast = parse_trigger("t + 1 > 2 * 3")
    assert ast == BinOp(
        ">",
        BinOp("+", Name("t"), NumLit(1.0)),
        BinOp("*", NumLit(2.0), NumLit(3.0)),
    )


def test_precedence_and_over_or():
    ast = parse_trigger("a || b && c")
    assert ast == BinOp("||", Name("a"), BinOp("&&", Name("b"), Name("c")))


def test_left_associativity():
    assert parse_trigger("1 - 2 - 3") == BinOp(
        "-", BinOp("-", NumLit(1.0), NumLit(2.0)), NumLit(3.0)
    )
    assert parse_trigger("8 / 4 / 2") == BinOp(
        "/", BinOp("/", NumLit(8.0), NumLit(4.0)), NumLit(2.0)
    )


def test_not_and_unary_minus():
    assert parse_trigger("!a") == UnaryOp("!", Name("a"))
    assert parse_trigger("not not a") == UnaryOp("!", UnaryOp("!", Name("a")))
    assert parse_trigger("-5 < t") == BinOp("<", UnaryOp("-", NumLit(5.0)), Name("t"))


def test_keyword_operators_equivalent_to_symbols():
    assert parse_trigger("a and b") == parse_trigger("a && b")
    assert parse_trigger("a or b") == parse_trigger("a || b")
    assert parse_trigger("not a") == parse_trigger("!a")


def test_booleans():
    assert parse_trigger("true") == BoolLit(True)
    assert parse_trigger("false || true") == BinOp("||", BoolLit(False), BoolLit(True))


def test_parentheses_override_precedence():
    ast = parse_trigger("(a || b) && c")
    assert ast == BinOp("&&", BinOp("||", Name("a"), Name("b")), Name("c"))


def test_chained_comparison_rejected():
    with pytest.raises(TriggerSyntaxError, match="chained comparison"):
        parse_trigger("1 < t < 3")


def test_empty_rejected():
    with pytest.raises(TriggerSyntaxError, match="empty"):
        parse_trigger("")
    with pytest.raises(TriggerSyntaxError, match="empty"):
        parse_trigger("   ")


def test_unbalanced_parens_rejected():
    with pytest.raises(TriggerSyntaxError):
        parse_trigger("(t > 5")
    with pytest.raises(TriggerSyntaxError):
        parse_trigger("t > 5)")


def test_trailing_garbage_rejected():
    with pytest.raises(TriggerSyntaxError, match="unexpected"):
        parse_trigger("t > 5 6")


def test_missing_operand_rejected():
    with pytest.raises(TriggerSyntaxError):
        parse_trigger("t >")
    with pytest.raises(TriggerSyntaxError):
        parse_trigger("&& a")


def test_variables_collected():
    ast = parse_trigger("t > 100 && pending < max_pending || done")
    assert ast.variables() == {"t", "pending", "max_pending", "done"}


def test_unparse_reparses_to_same_ast():
    for src in [
        "(t > 1500)",
        "a && b || !c",
        "t % 200 == 0",
        "-x + 2.5 * y <= 10",
        "true",
    ]:
        ast = parse_trigger(src)
        assert parse_trigger(ast.unparse()) == ast
