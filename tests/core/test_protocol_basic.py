"""Protocol tests: registration, init/pull/push/kill life cycle (weak mode)."""

import pytest

from repro.core import Mode
from repro.core import messages as M
from repro.errors import ProtocolError

from tests.core.harness import ProtocolFixture


def test_register_records_view_at_directory():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()

    fx.run_scripts(script())
    assert cm.registered
    assert fx.system.directory.registered_views() == ["v1"]
    rec = fx.system.directory.views["v1"]
    assert rec.mode is Mode.WEAK and not rec.active


def test_double_register_rejected():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        try:
            yield cm._request(M.REGISTER, {"properties": cm.properties,
                                           "mode": "weak", "triggers": {}})
        except ProtocolError as e:
            return str(e)
        return "no error"

    [result] = fx.run_scripts(script())
    assert "already registered" in result


def test_init_image_delivers_slice_only():
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2, "c": 3})
    cm, agent = fx.add_agent("v1", ["a", "b"])

    def script():
        yield cm.start()
        img = yield cm.init_image()
        return img

    [img] = fx.run_scripts(script())
    assert sorted(img.keys()) == ["a", "b"]
    assert agent.local == {"a": 1, "b": 2}
    assert fx.system.directory.views["v1"].active


def test_push_commits_only_dirty_cells():
    fx = ProtocolFixture(store_cells={"a": 1, "b": 2})
    cm, agent = fx.add_agent("v1", ["a", "b"])

    def script():
        yield cm.start()
        yield cm.init_image()
        agent.local["a"] = 100  # modify one cell
        committed = yield cm.push_image()
        return committed

    [committed] = fx.run_scripts(script())
    assert committed == 1
    assert fx.store.cells == {"a": 100, "b": 2}
    assert fx.system.directory.master_versions.get("a") == 1
    assert fx.system.directory.master_versions.get("b") == 0


def test_push_with_no_changes_commits_nothing():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        yield cm.init_image()
        committed = yield cm.push_image()
        return committed

    [committed] = fx.run_scripts(script())
    assert committed == 0
    assert len(fx.system.directory.master_versions) == 0


def test_pull_brings_remote_updates():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm1, agent1 = fx.add_agent("v1", ["a"])
    cm2, agent2 = fx.add_agent("v2", ["a"])

    def writer():
        yield cm1.start()
        yield cm1.init_image()
        agent1.local["a"] = 50
        yield cm1.push_image()

    def reader():
        yield cm2.start()
        yield cm2.init_image()
        yield ("sleep", 50.0)  # let the writer commit
        img = yield cm2.pull_image()
        return img.get("a")

    _, value = fx.run_scripts(writer(), reader())
    assert value == 50
    assert agent2.local["a"] == 50


def test_kill_image_pushes_final_state_and_unregisters():
    fx = ProtocolFixture(store_cells={"a": 1})
    cm, agent = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        yield cm.init_image()
        agent.local["a"] = 7
        yield cm.kill_image()

    fx.run_scripts(script())
    assert fx.store.cells["a"] == 7
    assert fx.system.directory.registered_views() == []
    assert not cm.registered
    assert cm.endpoint.closed


def test_weak_lifecycle_message_sequence():
    fx = ProtocolFixture()
    cm, agent = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] += 1
        cm.end_use_image()
        yield cm.push_image()
        yield cm.kill_image()

    fx.run_scripts(script())
    by_type = fx.stats.by_type
    assert by_type[M.REGISTER] == 1 and by_type[M.REGISTER_ACK] == 1
    assert by_type[M.INIT_REQ] == 1 and by_type[M.INIT_DATA] == 1
    assert by_type[M.PUSH] == 1 and by_type[M.PUSH_ACK] == 1
    assert by_type[M.UNREGISTER] == 1 and by_type[M.UNREGISTER_ACK] == 1
    # No invalidations/fetches with a single view.
    assert M.INVALIDATE not in by_type and M.FETCH_REQ not in by_type


def test_start_use_requires_no_repull_when_valid():
    fx = ProtocolFixture()
    cm, agent = fx.add_agent("v1", ["a"])

    def script():
        yield cm.start()
        yield cm.init_image()
        before = fx.stats.total
        yield cm.start_use_image()
        cm.end_use_image()
        return fx.stats.total - before

    [delta] = fx.run_scripts(script())
    assert delta == 0  # start/end use is purely local in weak mode


def test_end_use_without_start_raises():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"])
    with pytest.raises(ProtocolError, match="end_use without start_use"):
        cm.end_use_image()


def test_message_from_unregistered_view_answered_with_error():
    fx = ProtocolFixture()
    cm, _ = fx.add_agent("v1", ["a"])

    def script():
        # PULL before REGISTER: the directory answers with an ERROR
        # (it must survive stray/late messages, not tear down).
        try:
            yield cm._request(M.PULL_REQ, {"need_fresh": False})
        except ProtocolError as exc:
            return str(exc)
        return "no error"

    [err] = fx.run_scripts(script())
    assert "unregistered view" in err
    assert fx.system.directory.registered_views() == []


def test_use_mutex_serializes_critical_sections():
    fx = ProtocolFixture()
    cm, agent = fx.add_agent("v1", ["a"])
    order = []

    def user(name, hold):
        yield cm.start_use_image()
        order.append(("enter", name))
        yield ("sleep", hold)
        order.append(("exit", name))
        cm.end_use_image()

    def setup():
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(setup())
    fx.run_scripts(user("u1", 5.0), user("u2", 1.0))
    assert order == [("enter", "u1"), ("exit", "u1"), ("enter", "u2"), ("exit", "u2")]
