"""Integration: the identical Flecc protocol over real TCP sockets.

The paper's prototype ran over a real network; these tests run the same
engine code (directory + cache managers) across localhost sockets with
blocking thread scripts, asserting the same protocol outcomes the sim
tests establish.
"""

import pytest

from repro.core import (
    DiscreteSet,
    FleccSystem,
    Mode,
    ObjectImage,
    Property,
    PropertySet,
)
from repro.core import messages as M
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.net import TcpTransport

from tests.core.harness import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


@pytest.fixture()
def tcp_system():
    transport = TcpTransport()
    store = Store({"a": 10, "b": 20})
    system = FleccSystem(transport, store, extract_from_object, merge_into_object)
    yield transport, store, system
    system.close()
    transport.close()


def test_weak_lifecycle_over_sockets(tcp_system):
    transport, store, system = tcp_system
    agent = Agent()
    cm = system.add_view(
        "v1", agent, props_for(["a"]), extract_from_view, merge_into_view
    )

    def script():
        yield cm.start()
        img = yield cm.init_image()
        assert img.get("a") == 10
        yield cm.start_use_image()
        agent.local["a"] = 99
        cm.end_use_image()
        yield cm.push_image()
        yield cm.kill_image()
        return agent.local["a"]

    [result] = run_all_scripts(transport, [script()])
    assert result == 99
    assert store.cells["a"] == 99
    assert system.directory.registered_views() == []


def test_strong_mode_serializability_over_sockets(tcp_system):
    transport, store, system = tcp_system
    store.cells["a"] = 0
    n_agents, n_ops = 3, 3
    cms = []
    for i in range(n_agents):
        agent = Agent()
        cm = system.add_view(
            f"v{i}", agent, props_for(["a"]),
            extract_from_view, merge_into_view, mode=Mode.STRONG,
        )
        cms.append((cm, agent))

    def script(cm, agent):
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_ops):
            yield cm.start_use_image()
            agent.local["a"] += 1
            cm.end_use_image()
        yield cm.kill_image()

    run_all_scripts(transport, [script(cm, a) for cm, a in cms])
    assert store.cells["a"] == n_agents * n_ops


def test_fetch_round_over_sockets(tcp_system):
    transport, store, system = tcp_system
    a1, a2 = Agent(), Agent()
    cm1 = system.add_view(
        "v1", a1, props_for(["a"]), extract_from_view, merge_into_view,
        triggers=TriggerSet(validity="true"),
    )
    cm2 = system.add_view(
        "v2", a2, props_for(["a"]), extract_from_view, merge_into_view
    )

    def modifier():
        yield cm2.start()
        yield cm2.init_image()
        yield cm2.start_use_image()
        a2.local["a"] = 1234  # dirty, not pushed
        cm2.end_use_image()

    def reader():
        yield cm1.start()
        yield cm1.init_image()
        yield ("sleep", 200.0)  # ~0.2 s: let the modifier finish
        img = yield cm1.pull_image()
        return img.get("a")

    results = run_all_scripts(transport, [modifier(), reader()])
    assert results[1] == 1234
    assert transport.stats.by_type.get(M.FETCH_REQ, 0) >= 1


def test_message_counts_match_sim_for_identical_workload(tcp_system):
    """The Fig 4 metric is transport-independent: the same single-view
    lifecycle produces the same message-type counts on TCP as in sim."""
    transport, store, system = tcp_system
    agent = Agent()
    cm = system.add_view(
        "v1", agent, props_for(["a"]), extract_from_view, merge_into_view
    )

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] += 1
        cm.end_use_image()
        yield cm.push_image()
        yield cm.kill_image()

    run_all_scripts(transport, [script()])
    by_type = transport.stats.by_type
    # Mirrors test_weak_lifecycle_message_sequence (sim): 4 request/
    # response pairs, no invalidations.
    assert by_type[M.REGISTER] == by_type[M.REGISTER_ACK] == 1
    assert by_type[M.INIT_REQ] == by_type[M.INIT_DATA] == 1
    assert by_type[M.PUSH] == by_type[M.PUSH_ACK] == 1
    assert by_type[M.UNREGISTER] == by_type[M.UNREGISTER_ACK] == 1
    assert M.INVALIDATE not in by_type
