"""Unit tests for repro.core.property and property_set (Definitions 1-3)."""

import pytest

from repro.core import DiscreteSet, Interval, Property, PropertySet
from repro.core.conflicts import dyn_confl
from repro.errors import PropertyError


class TestProperty:
    def test_shorthand_domains(self):
        assert Property("p", (0, 10)).domain == Interval(0, 10)
        assert Property("p", [1, 2]).domain == DiscreteSet({1, 2})

    def test_invalid_name_rejected(self):
        with pytest.raises(PropertyError):
            Property("", (0, 1))
        with pytest.raises(PropertyError):
            Property(None, (0, 1))  # type: ignore[arg-type]

    def test_immutable(self):
        p = Property("p", (0, 1))
        with pytest.raises(PropertyError):
            p.name = "q"

    def test_intersect_same_name(self):
        r = Property("p", (0, 10)).intersect(Property("p", (5, 20)))
        assert r == Property("p", (5, 10))

    def test_intersect_different_names_is_none(self):
        assert Property("p", (0, 10)).intersect(Property("q", (0, 10))) is None

    def test_intersect_disjoint_domains_is_none(self):
        assert Property("p", (0, 1)).intersect(Property("p", (2, 3))) is None

    def test_conflicts_with(self):
        assert Property("p", [1, 2]).conflicts_with(Property("p", [2, 3]))
        assert not Property("p", [1]).conflicts_with(Property("p", [2]))

    def test_jsonable_roundtrip(self):
        p = Property("Flights", DiscreteSet({"UA100", "UA200"}))
        assert Property.from_jsonable(p.to_jsonable()) == p

    def test_hash_and_eq(self):
        assert Property("p", (0, 1)) == Property("p", (0, 1))
        assert len({Property("p", (0, 1)), Property("p", (0, 1))}) == 1


class TestPropertySet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(PropertyError, match="duplicate property name"):
            PropertySet([Property("p", (0, 1)), Property("p", (2, 3))])

    def test_non_property_rejected(self):
        with pytest.raises(PropertyError):
            PropertySet(["not a property"])  # type: ignore[list-item]

    def test_iteration_sorted_by_name(self):
        ps = PropertySet([Property("z", (0, 1)), Property("a", (0, 1))])
        assert [p.name for p in ps] == ["a", "z"]

    def test_lookup(self):
        ps = PropertySet([Property("p", (0, 1))])
        assert "p" in ps and "q" not in ps
        assert ps.get("p").name == "p"
        assert ps.get("q") is None

    def test_immutable(self):
        ps = PropertySet()
        with pytest.raises(PropertyError):
            ps.anything = 1

    def test_empty_set(self):
        ps = PropertySet()
        assert ps.is_empty() and len(ps) == 0

    def test_intersect_definition_2(self):
        # Paper Fig 2 example: V1={x,y}, V2={x,z} under property P.
        v1 = PropertySet([Property("P", DiscreteSet({"x", "y"}))])
        v2 = PropertySet([Property("P", DiscreteSet({"x", "z"}))])
        common = v1.intersect(v2)
        assert len(common) == 1
        assert common.get("P").domain == DiscreteSet({"x"})

    def test_intersect_multiple_names(self):
        a = PropertySet([Property("p", (0, 10)), Property("q", [1, 2])])
        b = PropertySet([Property("p", (5, 20)), Property("r", [1])])
        common = a.intersect(b)
        assert common.names() == ["p"]

    def test_intersect_empty(self):
        a = PropertySet([Property("p", (0, 1))])
        b = PropertySet([Property("q", (0, 1))])
        assert a.intersect(b).is_empty()
        assert not a.conflicts_with(b)

    def test_dyn_confl_definition_1(self):
        p = PropertySet([Property("Flights", (0, 50))])
        q = PropertySet([Property("Flights", (40, 90))])
        r = PropertySet([Property("Flights", (60, 90))])
        assert dyn_confl(p, q) == 1
        assert dyn_confl(p, r) == 0

    def test_jsonable_roundtrip(self):
        ps = PropertySet([Property("p", (0, 1)), Property("q", ["a"])])
        assert PropertySet.from_jsonable(ps.to_jsonable()) == ps

    def test_union_names(self):
        a = PropertySet([Property("p", (0, 1))])
        b = PropertySet([Property("q", (0, 1))])
        assert a.union_names(b) == ["p", "q"]
