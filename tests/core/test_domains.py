"""Unit tests for repro.core.domains."""

import pytest

from repro.core import DiscreteSet, Domain, Interval
from repro.core.domains import EMPTY_DOMAIN, domain_from_spec
from repro.errors import PropertyError


class TestInterval:
    def test_construction_and_contains(self):
        iv = Interval(5, 10)
        assert iv.contains(5) and iv.contains(10) and iv.contains(7.5)
        assert not iv.contains(4.999) and not iv.contains(11)

    def test_contains_rejects_non_numeric(self):
        assert not Interval(0, 1).contains("x")

    def test_reversed_bounds_rejected(self):
        with pytest.raises(PropertyError):
            Interval(10, 5)

    def test_non_numeric_bounds_rejected(self):
        with pytest.raises(PropertyError):
            Interval("a", "b")

    def test_point_interval_allowed(self):
        assert Interval(3, 3).contains(3)

    def test_intersect_overlapping(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)

    def test_intersect_touching_endpoints(self):
        assert Interval(0, 5).intersect(Interval(5, 10)) == Interval(5, 5)

    def test_intersect_disjoint_is_empty(self):
        out = Interval(0, 4).intersect(Interval(5, 10))
        assert out.is_empty()

    def test_intersect_with_discrete(self):
        out = Interval(0, 10).intersect(DiscreteSet({5, 15, 7}))
        assert out == DiscreteSet({5, 7})

    def test_intersect_with_discrete_disjoint(self):
        assert Interval(0, 1).intersect(DiscreteSet({5})).is_empty()

    def test_and_operator(self):
        assert (Interval(0, 10) & Interval(5, 6)) == Interval(5, 6)


class TestDiscreteSet:
    def test_construction_and_contains(self):
        ds = DiscreteSet({"a", "b"})
        assert ds.contains("a") and not ds.contains("c")
        assert len(ds) == 2

    def test_empty_construction_rejected(self):
        with pytest.raises(PropertyError):
            DiscreteSet(set())

    def test_non_scalar_values_rejected(self):
        with pytest.raises(PropertyError):
            DiscreteSet({("tuple",)})

    def test_intersect_discrete(self):
        assert DiscreteSet({1, 2, 3}).intersect(DiscreteSet({2, 3, 4})) == DiscreteSet({2, 3})

    def test_intersect_disjoint_is_empty(self):
        assert DiscreteSet({1}).intersect(DiscreteSet({2})).is_empty()

    def test_intersect_interval_commutes(self):
        a = DiscreteSet({1, 5, 9}).intersect(Interval(2, 9))
        b = Interval(2, 9).intersect(DiscreteSet({1, 5, 9}))
        assert a == b == DiscreteSet({5, 9})

    def test_mixed_value_types(self):
        ds = DiscreteSet({1, "one"})
        assert ds.contains(1) and ds.contains("one")


class TestEmptyDomain:
    def test_absorbs_everything(self):
        assert EMPTY_DOMAIN.intersect(Interval(0, 1)) is EMPTY_DOMAIN
        assert Interval(0, 1).intersect(EMPTY_DOMAIN).is_empty()
        assert DiscreteSet({1}).intersect(EMPTY_DOMAIN).is_empty()

    def test_contains_nothing(self):
        assert not EMPTY_DOMAIN.contains(0)

    def test_equality(self):
        assert EMPTY_DOMAIN == Interval(0, 1).intersect(Interval(5, 6))


class TestJsonable:
    @pytest.mark.parametrize(
        "dom",
        [Interval(0, 10), Interval(2.5, 3.5), DiscreteSet({1, 2}), DiscreteSet({"x"}), EMPTY_DOMAIN],
    )
    def test_roundtrip(self, dom):
        assert Domain.from_jsonable(dom.to_jsonable()) == dom

    def test_unknown_kind_rejected(self):
        with pytest.raises(PropertyError):
            Domain.from_jsonable({"kind": "mystery"})


class TestDomainFromSpec:
    def test_tuple_becomes_interval(self):
        assert domain_from_spec((1, 5)) == Interval(1, 5)

    def test_list_becomes_discrete(self):
        assert domain_from_spec([1, 2]) == DiscreteSet({1, 2})

    def test_set_becomes_discrete(self):
        assert domain_from_spec({"a"}) == DiscreteSet({"a"})

    def test_domain_passthrough(self):
        iv = Interval(0, 1)
        assert domain_from_spec(iv) is iv

    def test_garbage_rejected(self):
        with pytest.raises(PropertyError):
            domain_from_spec(42)
