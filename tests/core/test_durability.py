"""The durable directory plane: snapshots, recovery, reclaim, counters.

Covers the :class:`~repro.core.durability.DurabilityManager` lineage
mechanics (rotation, pruning, damaged-snapshot fallback) and the
:class:`~repro.core.directory.DirectoryManager` integration: a crashed
directory must come back with its primary copy, commit cursor and
per-view delta cursors intact, reclaim authoritative state from
recovered-exclusive views, and never acknowledge before durability
under ``fsync=always``.
"""

from repro.core import messages as M
from repro.core.directory import DirectoryManager
from repro.core.durability import DurabilityManager, DurabilitySpec
from repro.core.image import ObjectImage
from repro.core.sharding import ShardedFleccSystem
from repro.net.message import Message
from repro.net.sim_transport import SimTransport
from repro.sim.kernel import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)
from repro.core.system import run_all_scripts


def _spec(wal_root, **kw):
    kw.setdefault("fsync", "always")
    kw.setdefault("snapshot_every", 0)
    return DurabilitySpec(root=wal_root, **kw)


def _dm(transport, store, spec):
    return DirectoryManager(
        transport, "dir", store, extract_from_object, merge_into_object,
        durability=spec,
    )


def _push_commits(kernel, transport, n, view_id="v", cells=8):
    """Register a weak view and drive ``n`` PUSH commits at the directory."""
    replies = []
    ep = transport.bind("cm", replies.append)
    ep.send(Message(M.REGISTER, "cm", "dir",
                    {"view_id": view_id,
                     "properties": props_for(f"c{i}" for i in range(cells)),
                     "mode": "weak"}))
    kernel.run()
    for i in range(n):
        ep.send(Message(M.PUSH, "cm", "dir",
                        {"view_id": view_id,
                         "image": ObjectImage({f"c{i % cells}": i}),
                         "state_seq": i + 1}))
        kernel.run()
    ep.close()


# -- lineage mechanics ------------------------------------------------------

def test_snapshot_rotation_and_pruning(wal_root):
    spec = _spec(wal_root, name="rot", keep_snapshots=2)
    d = DurabilityManager(spec)
    for i in range(3):
        d.append({"k": "commit", "i": i})
    d.snapshot({"s": 1})
    for i in range(2):
        d.append({"k": "commit", "i": i})
    d.snapshot({"s": 2})
    d.append({"k": "commit", "i": 99})
    d.snapshot({"s": 3})
    d.close()
    snaps = sorted(p.name for p in spec.directory.glob("snap-*.bin"))
    assert len(snaps) == 2  # keep_snapshots generations survive
    assert d.counters["segments_pruned"] >= 1
    d2 = DurabilityManager(spec)
    assert d2.recovered.snapshot["s"] == 3  # newest generation wins
    assert d2.recovered.records == []       # everything compacted
    d2.close()


def test_damaged_snapshot_falls_back_a_generation(wal_root):
    spec = _spec(wal_root, name="fall", keep_snapshots=2)
    d = DurabilityManager(spec)
    d.append({"k": "commit", "i": 0})
    d.snapshot({"s": 1})
    d.append({"k": "commit", "i": 1})
    d.snapshot({"s": 2})
    d.append({"k": "commit", "i": 2})   # tail beyond the newest cut
    d.close()
    newest = max(spec.directory.glob("snap-*.bin"),
                 key=lambda p: int(p.stem.split("-")[1]))
    with open(newest, "r+b") as f:      # half-written snapshot
        f.truncate(newest.stat().st_size // 2)
    d2 = DurabilityManager(spec)
    assert d2.recovered.snapshots_skipped == 1
    assert d2.recovered.snapshot["s"] == 1        # previous generation
    # The fallback pays a longer replay: the record after cut 1 AND the
    # tail record both come back from the surviving segments.
    assert [r["i"] for r in d2.recovered.records] == [1, 2]
    d2.close()


def test_lsns_keep_ascending_across_restart(wal_root):
    spec = _spec(wal_root, name="lsn")
    d = DurabilityManager(spec)
    for i in range(4):
        d.append({"i": i})
    d.simulate_crash()
    d2 = DurabilityManager(spec)
    assert d2.next_lsn == 5
    assert [r["n"] for r in d2.recovered.records] == [1, 2, 3, 4]
    d2.close()


# -- directory recovery -----------------------------------------------------

def test_directory_recovers_cells_commit_seq_and_views(wal_root):
    spec = _spec(wal_root, name="dm")
    kernel = SimKernel()
    transport = SimTransport(kernel)
    store = Store()
    dm = _dm(transport, store, spec)
    _push_commits(kernel, transport, 12)
    cells = dict(store.cells)
    commit_seq = dm.commit_seq
    rec = dm.views["v"]
    cursors = (rec.seen.to_jsonable(), rec.last_state_seq)
    dm.crash()

    store2 = Store()
    dm2 = _dm(SimTransport(SimKernel()), store2, spec)
    assert dict(store2.cells) == cells
    assert dm2.commit_seq == commit_seq
    # Per-view delta-serve cursors survive: a recovering CM is served
    # deltas, not a full re-sync.
    rec2 = dm2.views["v"]
    assert (rec2.seen.to_jsonable(), rec2.last_state_seq) == cursors
    assert dm2.counters["wal_recoveries"] == 1
    assert dm2.counters["cells_replayed"] > 0
    dm2.close()


def test_boot_snapshot_preserves_pre_commit_state(wal_root):
    """State that predates the first commit is in no WAL record; the
    first boot of an empty lineage must snapshot it or lose it."""
    spec = _spec(wal_root, name="boot")
    store = Store({"a": 1, "b": 2})
    dm = _dm(SimTransport(SimKernel()), store, spec)
    assert list(spec.directory.glob("snap-*.bin"))
    dm.crash()
    store2 = Store()  # the process kill took the volatile copy
    dm2 = _dm(SimTransport(SimKernel()), store2, spec)
    assert dict(store2.cells) == {"a": 1, "b": 2}
    dm2.close()


def test_commits_durable_vs_volatile_split(wal_root):
    """fsync=always: every acknowledged commit was durable first (no
    ack-before-durable), so the volatile counter stays zero — and
    vice versa under fsync=off."""
    for policy, durable_cells, volatile_cells in (
        ("always", 8, 0), ("off", 0, 8),
    ):
        kernel = SimKernel()
        transport = SimTransport(kernel)
        dm = _dm(transport, Store(),
                 _spec(wal_root, name=f"split-{policy}", fsync=policy))
        _push_commits(kernel, transport, 8)
        assert dm.counters["commits_durable"] == durable_cells
        assert dm.counters["commits_volatile"] == volatile_cells
        dm.crash()


def test_volatile_directory_counts_nothing_durable():
    kernel = SimKernel()
    transport = SimTransport(kernel)
    dm = DirectoryManager(
        transport, "dir", Store(), extract_from_object, merge_into_object,
    )
    _push_commits(kernel, transport, 4)
    assert dm.counters["commits_durable"] == 0
    assert dm.counters["commits_volatile"] == 4
    dm.close()


def test_batch_tail_is_lost_but_synced_prefix_survives(wal_root):
    """fsync=batch loses at most the unsynced window on a kill — the
    bounded-loss contract, not a bug."""
    spec = _spec(wal_root, name="batch", fsync="batch", batch_interval=4)
    kernel = SimKernel()
    transport = SimTransport(kernel)
    store = Store()
    dm = _dm(transport, store, spec)
    _push_commits(kernel, transport, 10, cells=1)  # syncs at 4 and 8
    dm.crash()
    store2 = Store()
    dm2 = _dm(SimTransport(SimKernel()), store2, spec)
    replayed = dm2.counters["cells_replayed"]
    # The kill loses at most one unsynced batch window (commit records
    # interleave with cursor records, so the boundary is not exact).
    assert 10 - 4 <= replayed < 10
    assert store2.cells["c0"] == replayed - 1  # commits replay in order
    dm2.close()


def test_recovery_reclaims_exclusive_views(wal_root):
    """A recovered-exclusive view may hold dirty state newer than the
    WAL (strong-mode transfers ride invalidation rounds, which die with
    the directory).  On restart the directory must fetch the
    authoritative image back before serving anyone."""
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=True)
    store = Store({"a": 0})
    system = ShardedFleccSystem(
        transport, store, extract_from_object, merge_into_object,
        n_shards=1, extract_cells=extract_cells,
        durability=_spec(wal_root, name="reclaim", snapshot_every=4),
    )
    agent = Agent()
    cm = system.add_view(
        "w", agent, props_for(["a"]), extract_from_view, merge_into_view,
        mode="strong", request_timeout=25.0, max_retries=8,
    )

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["a"] = agent.local.get("a", 0) + 7
        yield ("sleep", 20.0)  # directory dies and restarts in here
        cm.end_use_image()
        yield cm.kill_image()

    kernel.call_at(8.0, lambda: system.plane.crash_shard(0))
    kernel.call_at(10.0, lambda: system.plane.restart_shard(0))
    run_all_scripts(system.transport, [script()])
    kernel.run()
    dm = system.plane.shards[0]
    assert dm.counters["recovery_reclaims"] == 1
    assert dm.counters["reclaim_timeouts"] == 0
    assert store.cells["a"] == 7  # the in-use dirty write came back
    assert system.transport.stats.recoveries == 1
    system.close()


def test_reclaim_timeout_quarantines_dead_owner(wal_root):
    """If a recovered-exclusive view never answers the reclaim fetch,
    the directory must not wedge: the owner is quarantined and the
    queue resumes."""
    kernel = SimKernel()
    transport = SimTransport(kernel)
    store = Store({"a": 0})
    spec = _spec(wal_root, name="timeout")
    dm = _dm(transport, store, spec)
    replies = []
    ep = transport.bind("cm", replies.append)
    ep.send(Message(M.REGISTER, "cm", "dir",
                    {"view_id": "w", "properties": props_for(["a"]),
                     "mode": "strong"}))
    kernel.run()
    ep.send(Message(M.ACQUIRE, "cm", "dir", {"view_id": "w"}))
    kernel.run()
    assert dm.views["w"].exclusive
    dm.crash()
    ep.close()  # the owner is gone for good
    kernel2 = SimKernel()
    dm2 = _dm(SimTransport(kernel2), Store(), spec)
    assert dm2.counters["recovery_reclaims"] == 1
    kernel2.run()  # the reclaim window expires undelivered
    assert dm2.counters["reclaim_timeouts"] == 1
    assert not dm2.views["w"].exclusive
    assert not dm2.views["w"].active
    dm2.close()
