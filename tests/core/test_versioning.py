"""Unit + property tests for repro.core.versioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import VersionVector


class TestBasics:
    def test_default_zero(self):
        v = VersionVector()
        assert v.get("anything") == 0 and len(v) == 0

    def test_bump(self):
        v = VersionVector()
        assert v.bump("k") == 1
        assert v.bump("k") == 2
        assert v.bump("k", by=3) == 5

    def test_bump_requires_positive(self):
        with pytest.raises(ValueError):
            VersionVector().bump("k", by=0)

    def test_negative_version_rejected(self):
        with pytest.raises(ValueError):
            VersionVector({"k": -1})
        with pytest.raises(ValueError):
            VersionVector().set("k", -2)

    def test_equality_ignores_explicit_zeros(self):
        assert VersionVector({"a": 0}) == VersionVector()

    def test_copy_is_independent(self):
        v = VersionVector({"a": 1})
        c = v.copy()
        c.bump("a")
        assert v.get("a") == 1 and c.get("a") == 2

    def test_items_sorted(self):
        v = VersionVector({"b": 2, "a": 1})
        assert list(v.items()) == [("a", 1), ("b", 2)]


class TestOrderingAndMerge:
    def test_merge_max(self):
        a = VersionVector({"x": 3, "y": 1})
        b = VersionVector({"y": 5, "z": 2})
        m = a.merge_max(b)
        assert m == VersionVector({"x": 3, "y": 5, "z": 2})

    def test_dominates(self):
        a = VersionVector({"x": 3, "y": 5})
        b = VersionVector({"x": 2})
        assert a.dominates(b) and not b.dominates(a)
        assert a.dominates(a)

    def test_unseen_updates(self):
        master = VersionVector({"x": 5, "y": 3, "z": 1})
        seen = VersionVector({"x": 3, "y": 3})
        assert master.unseen_updates(seen) == 2 + 0 + 1

    def test_unseen_updates_restricted_keys(self):
        master = VersionVector({"x": 5, "y": 3})
        seen = VersionVector()
        assert master.unseen_updates(seen, keys=["x"]) == 5

    def test_unseen_never_negative(self):
        master = VersionVector({"x": 1})
        seen = VersionVector({"x": 9})
        assert master.unseen_updates(seen) == 0

    def test_jsonable_roundtrip(self):
        v = VersionVector({"a": 1, "b": 2})
        assert VersionVector.from_jsonable(v.to_jsonable()) == v


# -- property-based -----------------------------------------------------------

vectors = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=0, max_value=20),
    max_size=4,
).map(VersionVector)


@given(vectors, vectors)
def test_merge_max_commutative(a, b):
    assert a.merge_max(b) == b.merge_max(a)


@given(vectors, vectors)
def test_merge_dominates_both(a, b):
    m = a.merge_max(b)
    assert m.dominates(a) and m.dominates(b)


@given(vectors)
def test_merge_idempotent(a):
    assert a.merge_max(a) == a


@given(vectors, vectors)
def test_unseen_zero_iff_dominates(a, b):
    assert (a.unseen_updates(b) == 0) == b.dominates(a)


@given(vectors, vectors, vectors)
def test_merge_associative(a, b, c):
    assert a.merge_max(b).merge_max(c) == a.merge_max(b.merge_max(c))


@given(vectors, st.sampled_from(["a", "b", "c", "d"]))
def test_bump_strictly_increases_unseen_for_laggards(v, key):
    seen = v.copy()
    before = v.unseen_updates(seen)
    v2 = v.copy()
    v2.bump(key)
    assert v2.unseen_updates(seen) == before + 1
