"""Test-suite alias for the public harness in :mod:`repro.testing`.

Kept so existing test imports (``from tests.core.harness import ...``)
keep working; the implementation is library-public because downstream
applications want the same fixture (see repro/testing.py).
"""

from repro.testing import (  # noqa: F401
    Agent,
    ProtocolFixture,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)
