"""Conflict-aware round scheduler: overlap, no-barging, fault fences.

PR 10 replaces the directory's single in-flight op slot with a
scheduler that may run *independent* rounds (disjoint conflict scopes)
concurrently.  These tests drive a bare directory through a slow fake
cache-manager hub whose INVALIDATE/FETCH acks arrive after a simulated
delay — so rounds genuinely dwell in flight — and assert:

- serial mode (``concurrent_rounds=1``, the default) keeps the one-op
  FIFO discipline exactly;
- independent rounds overlap (makespan ~ one ack wait, not G of them)
  and the ``concurrent_rounds_hwm`` gauge witnesses it;
- conflicting ops wait FIFO per conflict group — no barging — while
  unrelated ops overtake them;
- the ``queue_wait`` profiler phase records scheduler head-of-line
  wait and stays out of the implicit CPU-time total;
- a handler fault mid-round (commit hook) or at serve time no longer
  wedges the op slot: the loss is recorded, the offender quarantined,
  and the next op proceeds (the PR's wedge regression);
- a hypothesis state machine replays random interleavings on
  ``concurrent_rounds`` in {1, 4, unbounded} and demands identical end
  state, message counts, conflict answers and protocol invariants,
  with an injected assertion that no two overlapping rounds ever had
  intersecting scopes.
"""

from typing import Dict, Optional

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import DiscreteSet, Property, PropertySet
from repro.core import messages as M
from repro.core.directory import DirectoryManager
from repro.core.image import ObjectImage
from repro.core.profiling import PHASES
from repro.core.sharding import ShardedFleccSystem
from repro.core.system import FleccSystem
from repro.net.message import Message
from repro.net.sim_transport import SimTransport
from repro.net.stats import MessageStats
from repro.sim import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
)

ACK_DELAY = 1.0


def _vid(i: int) -> str:
    return f"w{i:05d}"


def _props(i: int) -> PropertySet:
    """Pair groups: views 2k and 2k+1 share grp{k}, nothing else."""
    return PropertySet([
        Property("cells", DiscreteSet({f"own{i:05d}", f"grp{i // 2:05d}"}))
    ])


def _extract(store: Dict[str, int], props: PropertySet) -> ObjectImage:
    img = ObjectImage()
    p = props.get("cells") if props is not None else None
    if p is None:
        for k, v in store.items():
            img.cells[k] = v
        return img
    for k in p.domain.values:
        if k in store:
            img.cells[k] = store[k]
    return img


def _merge(store: Dict[str, int], image: ObjectImage, props: PropertySet) -> None:
    for k in image.keys():
        store[k] = image.get(k)


class _Harness:
    """Bare directory + one hub endpoint with delayed, fault-injectable
    round acks (mirrors the dm_sched experiment harness)."""

    def __init__(
        self,
        concurrent_rounds: int = 0,
        ack_delay: float = 0.0,
        merge_fn=None,
        extract_fn=None,
    ) -> None:
        self.kernel = SimKernel()
        self.transport = SimTransport(self.kernel, default_latency=0.01)
        self.ack_delay = ack_delay
        self.ack_image: Optional[ObjectImage] = None
        self.store: Dict[str, int] = {}
        self.dm = DirectoryManager(
            transport=self.transport,
            address="dir",
            component=self.store,
            extract_from_object=extract_fn or _extract,
            merge_into_object=merge_fn or _merge,
            static_map=None,
            profile=True,
            concurrent_rounds=concurrent_rounds,
        )
        self.replies = []
        self._seq: Dict[str, int] = {}
        self.endpoint = self.transport.bind("cmhub", self._on_message)

    def _on_message(self, msg: Message) -> None:
        if msg.msg_type in (M.INVALIDATE, M.FETCH_REQ):
            kind = (
                M.INVALIDATE_ACK if msg.msg_type == M.INVALIDATE
                else M.FETCH_REPLY
            )
            image = self.ack_image if self.ack_image is not None else ObjectImage()
            reply = msg.reply(
                kind, {"view_id": msg.payload.get("view_id"), "image": image}
            )
            if self.ack_delay:
                self.transport.schedule(
                    self.ack_delay, lambda r=reply: self.endpoint.send(r)
                )
            else:
                self.endpoint.send(reply)
        else:
            self.replies.append(msg)

    def drain(self) -> None:
        self.kernel.run()

    def now(self) -> float:
        return self.transport.now()

    def register(self, view_id: str, props: PropertySet) -> Message:
        m = Message(M.REGISTER, "cmhub", "dir", {
            "view_id": view_id, "properties": props, "mode": "weak",
        })
        self.endpoint.send(m)
        return m

    def pull(self, view_id: str) -> Message:
        m = Message(M.PULL_REQ, "cmhub", "dir", {"view_id": view_id})
        self.endpoint.send(m)
        return m

    def acquire(self, view_id: str) -> Message:
        m = Message(M.ACQUIRE, "cmhub", "dir", {"view_id": view_id})
        self.endpoint.send(m)
        return m

    def push(self, view_id: str, cells: Dict[str, int]) -> Message:
        seq = self._seq.get(view_id, 0) + 1
        self._seq[view_id] = seq
        m = Message(M.PUSH, "cmhub", "dir", {
            "view_id": view_id, "image": ObjectImage(dict(cells)),
            "state_seq": seq,
        })
        self.endpoint.send(m)
        return m

    def grants_for(self, *requests: Message):
        """GRANT replies matched to the given requests, in arrival order."""
        ids = {m.msg_id for m in requests}
        return [
            r for r in self.replies
            if r.msg_type == M.GRANT and r.reply_to in ids
        ]

    def close(self) -> None:
        self.dm.close()
        self.transport.close()


def _paired_fleet(h: _Harness, n_groups: int) -> None:
    """Register G pair groups and pull every partner (odd view) active,
    so each leader's ACQUIRE must run a revocation round."""
    for i in range(2 * n_groups):
        h.register(_vid(i), _props(i))
    h.drain()
    for k in range(n_groups):
        h.pull(_vid(2 * k + 1))
    h.drain()


# ---------------------------------------------------------------------------
# Overlap and no-barging
# ---------------------------------------------------------------------------


def test_serial_default_keeps_one_op_discipline():
    assert DirectoryManager.__init__.__defaults__ is not None
    h = _Harness(concurrent_rounds=1, ack_delay=ACK_DELAY)
    assert h.dm.concurrent_rounds == 1
    _paired_fleet(h, 3)
    t0 = h.now()
    reqs = [h.acquire(_vid(2 * k)) for k in range(3)]
    h.drain()
    assert h.now() - t0 > 2.5 * ACK_DELAY  # three ack waits, serialized
    assert h.dm.counters["concurrent_rounds_hwm"] == 1
    assert h.dm.counters["rounds_overlapped"] == 0
    grants = h.grants_for(*reqs)
    assert [g.reply_to for g in grants] == [m.msg_id for m in reqs]  # FIFO
    h.close()


def test_independent_rounds_overlap():
    h = _Harness(concurrent_rounds=0, ack_delay=ACK_DELAY)
    _paired_fleet(h, 3)
    t0 = h.now()
    reqs = [h.acquire(_vid(2 * k)) for k in range(3)]
    h.drain()
    # All three ack waits overlapped: makespan ~ one wait, not three.
    assert h.now() - t0 < 2 * ACK_DELAY
    assert h.dm.counters["concurrent_rounds_hwm"] == 3
    assert h.dm.counters["rounds_overlapped"] == 2
    assert h.transport.stats.concurrent_rounds_hwm == 3  # gauge mirrored
    assert len(h.grants_for(*reqs)) == 3
    h.dm.check_invariants()
    h.close()


def test_bounded_limit_respected():
    h = _Harness(concurrent_rounds=2, ack_delay=ACK_DELAY)
    _paired_fleet(h, 4)
    for k in range(4):
        h.acquire(_vid(2 * k))
    h.drain()
    assert h.dm.counters["concurrent_rounds_hwm"] == 2
    h.close()


def test_conflicting_ops_wait_fifo():
    h = _Harness(concurrent_rounds=0, ack_delay=ACK_DELAY)
    _paired_fleet(h, 1)
    r1 = h.acquire(_vid(0))   # revokes the partner; round in flight
    r2 = h.acquire(_vid(1))   # same group: must wait for r1
    h.drain()
    assert h.dm.counters["concurrent_rounds_hwm"] == 1  # never overlapped
    assert h.dm.counters["sched_conflict_waits"] >= 1
    grants = h.grants_for(r1, r2)
    assert [g.reply_to for g in grants] == [r1.msg_id, r2.msg_id]
    # The second acquire won in the end: the partner holds exclusivity.
    assert h.dm.views[_vid(1)].exclusive
    assert not h.dm.views[_vid(0)].exclusive
    h.close()


def test_independent_op_overtakes_blocked_op():
    h = _Harness(concurrent_rounds=0, ack_delay=ACK_DELAY)
    _paired_fleet(h, 2)
    ra = h.acquire(_vid(0))   # group 0: round in flight
    rb = h.acquire(_vid(1))   # group 0: blocked behind ra (no barging)
    rc = h.acquire(_vid(2))   # group 1: independent — starts immediately
    h.drain()
    grants = h.grants_for(ra, rb, rc)
    order = [g.reply_to for g in grants]
    # The independent round finished before the blocked same-group op
    # (under the old FIFO it would have queued behind both of group 0's).
    assert order.index(rc.msg_id) < order.index(rb.msg_id)
    assert len(grants) == 3  # nobody starved
    h.close()


# ---------------------------------------------------------------------------
# queue_wait profiling
# ---------------------------------------------------------------------------


def test_queue_wait_phase_recorded_and_excluded_from_total():
    assert "queue_wait" in PHASES
    h = _Harness(concurrent_rounds=1, ack_delay=ACK_DELAY)
    _paired_fleet(h, 2)
    h.acquire(_vid(0))
    h.acquire(_vid(2))        # independent, but serial mode queues it
    h.drain()
    prof = h.dm.profiler
    qw = prof.phases["queue_wait"]
    assert qw.count >= 2 and qw.total_ns > 0
    # The implicit total is CPU work: head-of-line wait stays out of it
    # (it spans other ops' ack round trips), as does the wal subset.
    expected = sum(
        hist.total_ns for name, hist in prof.phases.items()
        if name != "queue_wait"
        and (name != "wal" or "commit" not in prof.phases)
    )
    assert prof.total_ns() == expected
    assert prof.total_ns("queue_wait") == qw.total_ns
    h.close()


def test_sharded_plane_surfaces_queue_wait_and_concurrency():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    store = Store({"k00": 0, "k01": 1})
    system = ShardedFleccSystem(
        transport, store, extract_from_object, merge_into_object,
        n_shards=2, extract_cells=extract_cells, profile=True,
        concurrent_rounds=4,
    )
    assert all(dm.concurrent_rounds == 4 for dm in system.plane.shards)
    agent = Agent()
    cm = system.add_view(
        "v1", agent, PropertySet(), extract_from_view, merge_into_view,
    )

    def script():
        yield cm.start()
        yield cm.init_image()

    from repro.core.system import run_all_scripts

    run_all_scripts(transport, [script()])
    merged = system.plane.merged_profile()
    assert merged is not None
    assert "queue_wait" in merged.phases  # rides the per-shard fold


def test_system_builder_passthrough():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    system = FleccSystem(
        transport, Store({"a": 1}), extract_from_object, merge_into_object,
        extract_cells=extract_cells, concurrent_rounds=0,
    )
    assert system.directory.concurrent_rounds == 0
    system.close()
    # None keeps the directory's own serial default.
    transport2 = SimTransport(SimKernel(), default_latency=1.0)
    system2 = FleccSystem(
        transport2, Store({"a": 1}), extract_from_object, merge_into_object,
        extract_cells=extract_cells,
    )
    assert system2.directory.concurrent_rounds == 1
    system2.close()


def test_stats_concurrent_rounds_gauge():
    s = MessageStats()
    s.record_concurrent_rounds(3)
    s.record_concurrent_rounds(2)   # gauge keeps the high-water mark
    assert s.concurrent_rounds_hwm == 3
    other = MessageStats()
    other.record_concurrent_rounds(5)
    s.merge(other)
    assert s.concurrent_rounds_hwm == 5
    assert "concurrent_rounds_hwm=5" in s.summary()
    s.reset()
    assert s.concurrent_rounds_hwm == 0


# ---------------------------------------------------------------------------
# Wedge regressions: handler faults mid-round must release the slot
# ---------------------------------------------------------------------------


def test_commit_fault_mid_round_quarantines_and_releases_slot():
    def poisoned_merge(store, image, props):
        if "poison" in image.keys():
            raise ValueError("merge hook exploded")
        _merge(store, image, props)

    h = _Harness(concurrent_rounds=1, merge_fn=poisoned_merge)
    _paired_fleet(h, 2)
    h.ack_image = ObjectImage({"poison": 1})  # the partner's dying handover
    r1 = h.acquire(_vid(0))
    h.drain()
    # The fault was fenced: recorded, offender quarantined, round done.
    assert h.dm.counters["round_faults"] == 1
    assert _vid(1) in h.dm.quarantined
    assert len(h.grants_for(r1)) == 1       # the round still finalized
    assert not h.dm._running                # the slot was released
    # The slot is usable: an unrelated group's round proceeds untouched.
    h.ack_image = None
    r2 = h.acquire(_vid(2))
    h.drain()
    assert len(h.grants_for(r2)) == 1
    assert h.dm.counters["round_faults"] == 1
    h.dm.check_invariants()
    h.close()


def test_serve_fault_replies_error_and_next_op_proceeds():
    # One-shot bomb: the serve blows up once, then the hook recovers —
    # so the quarantine stash (which re-runs the extract to snapshot
    # the slice) can record the loss.
    armed = {"shots": 0}

    def bomb_extract(store, props):
        if armed["shots"] > 0:
            armed["shots"] -= 1
            raise RuntimeError("extract exploded")
        return _extract(store, props)

    h = _Harness(concurrent_rounds=1, extract_fn=bomb_extract)
    _paired_fleet(h, 2)
    armed["shots"] = 1
    r1 = h.acquire(_vid(0))   # full revocation round, then serve blows up
    h.drain()
    errors = [
        r for r in h.replies
        if r.msg_type == M.ERROR and r.reply_to == r1.msg_id
    ]
    assert len(errors) == 1
    assert h.dm.counters["serve_faults"] == 1
    assert _vid(0) in h.dm.quarantined      # the requester is suspect
    assert not h.dm._running
    r2 = h.acquire(_vid(2))
    h.drain()
    assert len(h.grants_for(r2)) == 1       # not wedged
    h.close()


# ---------------------------------------------------------------------------
# Randomized interleavings: serial / bounded / unbounded must converge
# ---------------------------------------------------------------------------

LEG_LIMITS = (1, 4, 0)
N_PAIRS = 3
VERBS = (
    "pull_even", "pull_odd", "acquire_even", "acquire_odd",
    "push_even", "push_odd",
)


def _install_scope_check(dm: DirectoryManager) -> None:
    """Assert, at every round start, that the new op's conflict scope is
    disjoint from every in-flight round's scope — the scheduler's core
    safety claim, checked from the inside on every interleaving."""
    orig = dm._start_running

    def checked(op):
        if op.scope is not None:
            for other in dm._running.values():
                assert op.scope.isdisjoint(other.scope), (
                    f"conflicting rounds overlapped: {sorted(op.scope)} "
                    f"vs {sorted(other.scope)}"
                )
        orig(op)

    dm._start_running = checked


def _conflict_answers(dm: DirectoryManager):
    return {
        vid: sorted(dm.conflict_set_of(vid)) for vid in sorted(dm.views)
    }


class SchedulerParityMachine(RuleBasedStateMachine):
    """Random register/pull/acquire/push/unregister/prop-update
    interleavings, mirrored across concurrent_rounds in {1, 4, 0}.

    Each rule issues at most one op per pair group before draining, and
    groups are mutually independent — so every leg must converge to the
    same end state, the same Fig-4 message counts and the same conflict
    answers no matter how the scheduler interleaved the groups.  The
    scope check above rides inside each directory throughout.
    """

    def __init__(self):
        super().__init__()
        self.harnesses = []
        for limit in LEG_LIMITS:
            h = _Harness(concurrent_rounds=limit, ack_delay=0.5)
            _install_scope_check(h.dm)
            for i in range(2 * N_PAIRS):
                h.register(_vid(i), _props(i))
            h.drain()
            self.harnesses.append(h)
        self.churn_next = 0
        self.live_churn = []  # (view_id, group)

    def _apply(self, fn):
        for h in self.harnesses:
            fn(h)
            h.drain()

    @rule(data=st.data())
    def burst(self, data):
        groups = sorted(data.draw(
            st.sets(st.sampled_from(range(N_PAIRS)), min_size=1)
        ))
        plan = [
            (g, data.draw(st.sampled_from(VERBS), label=f"verb for g{g}"))
            for g in groups
        ]

        def run(h):
            for g, verb in plan:
                even, odd = _vid(2 * g), _vid(2 * g + 1)
                if verb == "pull_even":
                    h.pull(even)
                elif verb == "pull_odd":
                    h.pull(odd)
                elif verb == "acquire_even":
                    h.acquire(even)
                elif verb == "acquire_odd":
                    h.acquire(odd)
                elif verb == "push_even":
                    h.push(even, {f"grp{g:05d}": g + 1})
                elif verb == "push_odd":
                    h.push(odd, {f"own{2 * g + 1:05d}": 7})

        self._apply(run)

    @rule(g=st.sampled_from(range(N_PAIRS)))
    def churn_join(self, g):
        c = self.churn_next
        self.churn_next += 1
        vid = f"c{g}x{c:03d}"
        props = PropertySet([
            Property("cells", DiscreteSet({vid, f"grp{g:05d}"}))
        ])
        self._apply(lambda h: h.register(vid, props))
        self.live_churn.append((vid, g))

    @rule(data=st.data())
    def churn_pull(self, data):
        if not self.live_churn:
            return
        vid, _g = data.draw(st.sampled_from(self.live_churn))
        self._apply(lambda h: h.pull(vid))

    @rule(data=st.data())
    def churn_leave(self, data):
        if not self.live_churn:
            return
        entry = data.draw(st.sampled_from(self.live_churn))
        self.live_churn.remove(entry)
        vid, _g = entry

        def run(h):
            h.endpoint.send(Message(
                M.UNREGISTER, "cmhub", "dir", {"view_id": vid}
            ))

        self._apply(run)

    @rule(g=st.sampled_from(range(N_PAIRS)), tag=st.integers(0, 3))
    def reshape(self, g, tag):
        i = 2 * g
        props = PropertySet([
            Property("cells", DiscreteSet({
                f"own{i:05d}", f"grp{g:05d}", f"xtra{g}t{tag}",
            }))
        ])

        def run(h):
            h.endpoint.send(Message(
                M.PROP_UPDATE, "cmhub", "dir",
                {"view_id": _vid(i), "properties": props},
            ))

        self._apply(run)

    @invariant()
    def legs_agree(self):
        stores = [sorted(h.store.items()) for h in self.harnesses]
        assert all(s == stores[0] for s in stores)
        answers = [_conflict_answers(h.dm) for h in self.harnesses]
        assert all(a == answers[0] for a in answers)
        counts = [dict(h.transport.stats.by_type) for h in self.harnesses]
        assert all(c == counts[0] for c in counts)
        for h in self.harnesses:
            h.dm.check_invariants()
            assert not h.dm._running and not h.dm._op_queue

    def teardown(self):
        for h in self.harnesses:
            h.close()


TestSchedulerParity = SchedulerParityMachine.TestCase
TestSchedulerParity.settings = settings(
    max_examples=12, stateful_step_count=10, deadline=None
)
