"""Randomized protocol stress tests.

Seeded random schedules (agent counts, op mixes, think times, property
overlaps, mode switches) drive the protocol through interleavings no
hand-written test would find; the assertions are the protocol's global
invariants rather than specific outcomes:

- strong-mode updates are never lost (counter adds up);
- directory invariants hold after every run;
- all views terminate and unregister cleanly;
- the weak-mode primary copy converges once all agents push and stop.
"""

import pytest

from repro.core import Mode
from repro.core.system import run_all_scripts
from repro.sim.rng import stream_for

from tests.core.harness import ProtocolFixture


def _random_schedule(seed, n_agents, strong_fraction):
    """Deterministic random per-agent scripts from a seed."""
    rng = stream_for(seed, "stress")
    cells = ["a", "b", "c"]
    plans = []
    for i in range(n_agents):
        mode = Mode.STRONG if rng.random() < strong_fraction else Mode.WEAK
        my_cells = sorted(
            set(rng.choice(cells, size=int(rng.integers(1, len(cells) + 1)),
                           replace=False).tolist())
        )
        ops = []
        for _ in range(int(rng.integers(2, 6))):
            ops.append(
                (
                    str(rng.choice(my_cells)),
                    float(rng.uniform(0.0, 5.0)),   # think before op
                    float(rng.uniform(0.5, 3.0)),   # hold time in use
                )
            )
        plans.append((f"v{i}", my_cells, mode, ops))
    return plans


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
def test_all_strong_counter_never_loses_updates(seed):
    fx = ProtocolFixture(store_cells={"a": 0, "b": 0, "c": 0})
    plans = _random_schedule(seed, n_agents=5, strong_fraction=1.0)
    expected = {"a": 0, "b": 0, "c": 0}
    scripts = []
    for view_id, my_cells, mode, ops in plans:
        cm, agent = fx.add_agent(view_id, my_cells, mode=mode)
        for cell, _, _ in ops:
            expected[cell] += 1

        def script(cm=cm, agent=agent, ops=ops):
            yield cm.start()
            yield cm.init_image()
            for cell, think, hold in ops:
                yield ("sleep", think)
                yield cm.start_use_image()
                agent.local[cell] += 1
                yield ("sleep", hold)
                cm.end_use_image()
            yield cm.kill_image()

        scripts.append(script())
    run_all_scripts(fx.transport, scripts)
    assert fx.store.cells == expected
    fx.system.directory.check_invariants()
    assert fx.system.directory.registered_views() == []


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
def test_mixed_modes_keep_invariants_and_terminate(seed):
    fx = ProtocolFixture(store_cells={"a": 0, "b": 0, "c": 0})
    plans = _random_schedule(seed, n_agents=6, strong_fraction=0.5)
    scripts = []
    for view_id, my_cells, mode, ops in plans:
        cm, agent = fx.add_agent(view_id, my_cells, mode=mode)

        def script(cm=cm, agent=agent, ops=ops, mode=mode):
            yield cm.start()
            yield cm.init_image()
            for j, (cell, think, hold) in enumerate(ops):
                yield ("sleep", think)
                if j == len(ops) // 2:
                    # Flip mode mid-run (the paper's adaptability).
                    flipped = (
                        Mode.WEAK if cm.mode is Mode.STRONG else Mode.STRONG
                    )
                    yield cm.set_mode(flipped)
                yield cm.start_use_image()
                agent.local[cell] += 1
                yield ("sleep", hold)
                cm.end_use_image()
                if cm.mode is Mode.WEAK:
                    yield cm.push_image()
            yield cm.kill_image()

        scripts.append(script())
    run_all_scripts(fx.transport, scripts)
    fx.system.directory.check_invariants()
    assert fx.system.directory.registered_views() == []
    # Weak-mode races may lose increments, but the totals can never
    # exceed the attempted ops nor go negative.
    total_ops = sum(len(ops) for _, _, _, ops in plans)
    committed = sum(fx.store.cells.values())
    assert 0 < committed <= total_ops


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_weak_only_converges_after_final_pushes(seed):
    """After all weak agents push-and-die serially, the primary equals
    the last writer's view for every cell (sequential => no races)."""
    fx = ProtocolFixture(store_cells={"a": 0, "b": 0, "c": 0})
    plans = _random_schedule(seed, n_agents=4, strong_fraction=0.0)
    from repro.baselines import TimeSharingRunner

    scripts = []
    last_value = {}
    for idx, (view_id, my_cells, _mode, ops) in enumerate(plans):
        cm, agent = fx.add_agent(view_id, my_cells, mode=Mode.WEAK)
        for cell, _, _ in ops:
            last_value[cell] = last_value.get(cell, 0) + 1

        def script(cm=cm, agent=agent, ops=ops):
            yield cm.start()
            yield cm.init_image()
            for cell, think, hold in ops:
                yield cm.pull_image()
                yield cm.start_use_image()
                agent.local[cell] += 1
                cm.end_use_image()
                yield cm.push_image()
            yield cm.kill_image()

        scripts.append(script())
    TimeSharingRunner(fx.transport).run_serial(scripts)
    # Serial execution with pull-before-use is fully coherent.
    assert fx.store.cells == {**{"a": 0, "b": 0, "c": 0}, **last_value}
    fx.system.directory.check_invariants()
