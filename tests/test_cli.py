"""Smoke tests for the ``python -m repro`` command-line entry."""

import subprocess
import sys


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_no_args_lists_experiments():
    proc = run_cli()
    assert proc.returncode == 0
    for name in ("fig2_trace", "fig4_efficiency", "abl6_loss_tolerance"):
        assert name in proc.stdout


def test_fuzzy_match_runs_experiment():
    proc = run_cli("fig6")
    assert proc.returncode == 0
    assert "FIG6" in proc.stdout
    assert "with pull trigger" in proc.stdout


def test_unknown_name_lists_and_fails():
    proc = run_cli("nonsense")
    assert proc.returncode == 1
    assert "no experiment matches" in proc.stdout


def test_abl_prefix_matches_multiple():
    proc = run_cli("abl4")
    assert proc.returncode == 0
    assert "centralized" in proc.stdout
