"""Unit tests for the report utilities."""

import pytest

from repro.experiments.report import Table, ascii_series


class TestTable:
    def test_basic_formatting(self):
        t = Table(["a", "bbb"], title="T")
        t.add_row(1, 2.5)
        t.add_row(100, "x")
        out = t.format()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert "2.50" in out and "100" in out

    def test_wrong_arity_rejected(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_no_title(self):
        t = Table(["col"])
        t.add_row(5)
        assert t.format().splitlines()[0].strip() == "col"

    def test_str_equals_format(self):
        t = Table(["x"])
        t.add_row(1)
        assert str(t) == t.format()


class TestAsciiSeries:
    def test_empty(self):
        assert "(empty)" in ascii_series([])

    def test_constant_series(self):
        out = ascii_series([5, 5, 5])
        assert "min=5" in out and "max=5" in out

    def test_trend_visible(self):
        out = ascii_series([0, 1, 2, 3], label="ramp")
        assert out.startswith("ramp ")
        assert "min=0" in out and "max=3" in out
        bars = out[out.index("[") + 1 : out.index("]")]
        assert bars[0] != bars[-1]

    def test_downsampling(self):
        out = ascii_series(range(100), width=10)
        bars = out[out.index("[") + 1 : out.index("]")]
        assert len(bars) == 10
