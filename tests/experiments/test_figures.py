"""Shape tests: every paper figure's qualitative claims hold at small scale.

These are the contract the benchmarks rely on; they run the experiment
harnesses at reduced size so the full test suite stays fast.
"""

from repro.baselines.common import ProtocolName
from repro.core import messages as M
from repro.experiments.ablations import (
    run_abl1,
    run_abl2,
    run_abl3,
    run_abl4,
    run_abl5,
    run_abl6,
)
from repro.experiments.fig2_trace import run_fig2
from repro.experiments.fig4_efficiency import check_shape as check_fig4
from repro.experiments.fig4_efficiency import run_fig4
from repro.experiments.fig5_adaptability import check_shape as check_fig5
from repro.experiments.fig5_adaptability import run_fig5
from repro.experiments.fig6_flexibility import check_shape as check_fig6
from repro.experiments.fig6_flexibility import run_fig6


class TestFig1:
    def test_shape(self):
        from repro.experiments.fig1_deployment import check_shape, run_fig1

        result = run_fig1(ops_per_domain=2)
        assert check_shape(result) == []
        # Both remote domains got views; domain1 is served directly.
        kinds = {d: k for d, (k, _, _) in result.service.items()}
        assert kinds == {
            "domain1": "FlightDatabase",
            "domain2": "TravelAgent",
            "domain3": "TravelAgent",
        }
        assert result.seats_consistent


class TestFig2:
    def test_scenario_outcomes(self):
        r = run_fig2()
        assert r.v1_was_invalidated
        assert r.v2_saw_v1_update
        assert r.final_data == {"x": 100, "y": 2, "z": 300}

    def test_trace_contains_invalidation_round(self):
        r = run_fig2()
        events = [e.event for e in r.trace.events if e.actor == "dir"]
        assert f"send:{M.INVALIDATE}" in events
        assert M.INVALIDATE_ACK in events

    def test_trace_ordering_v2_request_precedes_invalidate(self):
        r = run_fig2()
        seq = [e.event for e in r.trace.events if e.actor == "dir"]
        assert seq.index(M.INIT_REQ) < seq.index(f"send:{M.INVALIDATE}")


class TestFig4:
    def test_shape_at_reduced_scale(self):
        result = run_fig4(n_agents=20, step=5)
        assert check_fig4(result) == []

    def test_flecc_monotone_in_conflicts(self):
        result = run_fig4(n_agents=20, step=5)
        fl = result.messages[ProtocolName.FLECC.value]
        assert all(a <= b for a, b in zip(fl, fl[1:]))

    def test_time_sharing_flat(self):
        result = run_fig4(n_agents=20, step=5)
        ts = result.messages[ProtocolName.TIME_SHARING.value]
        assert max(ts) == min(ts)

    def test_table_renders(self):
        result = run_fig4(n_agents=10, step=5)
        out = result.table().format()
        assert "flecc" in out and "multicast" in out


class TestFig5:
    def test_shape_at_reduced_scale(self):
        result = run_fig5(n_agents=6, ops_per_phase=5)
        assert check_fig5(result) == []

    def test_sample_counts(self):
        result = run_fig5(n_agents=4, ops_per_phase=4)
        assert len(result.samples) == 12
        assert {s.phase for s in result.samples} == {"weak-1", "strong", "weak-2"}

    def test_phase_stats_table(self):
        result = run_fig5(n_agents=4, ops_per_phase=3)
        out = result.phase_stats().format()
        assert "strong" in out and "weak-1" in out


class TestFig6:
    def test_shape_at_reduced_scale(self):
        result = run_fig6(n_agents=6, n_methods=9)
        assert check_fig6(result) == []

    def test_quality_never_worse_with_triggers_on_average(self):
        result = run_fig6(n_agents=6, n_methods=9)
        mean = lambda v: sum(q for _, q in v.quality_series) / len(v.quality_series)
        assert mean(result.with_triggers) <= mean(result.without_triggers)

    def test_table_renders(self):
        result = run_fig6(n_agents=4, n_methods=6)
        out = result.table().format()
        assert "with pull trigger" in out


class TestExt1:
    def test_mixed_workload_shape(self):
        from repro.experiments.mixed_workload import check_shape, run_ext1

        r = run_ext1(buy_fractions=(0.0, 0.5), n_clients=5, n_ops=4)
        assert check_shape(r) == []
        assert all(lost == 0 for _, _, _, lost in r.points)


class TestAblations:
    def test_abl1_conservative_costs_more(self):
        r = run_abl1(n_agents=8)
        assert r.messages_conservative > r.messages_dynamic
        assert r.false_conflict_overhead > 0

    def test_abl2_tradeoff_monotone(self):
        r = run_abl2(periods=(5.0, 40.0), n_agents=4, n_methods=6)
        (p1, m1, q1), (p2, m2, q2) = r.points
        assert p1 < p2 and m1 > m2 and q1 <= q2

    def test_abl3_fine_granularity_cheaper(self):
        r = run_abl3(n_agents=8)
        assert r.messages_fine < r.messages_coarse

    def test_abl5_read_fraction_monotone(self):
        r = run_abl5(read_fractions=(0.0, 0.5, 1.0), n_agents=4, n_ops=4)
        rw = [m for _, m, _ in r.points]
        wo = [m for _, _, m in r.points]
        assert rw[0] == wo[0]                 # all writes: identical cost
        assert rw == sorted(rw, reverse=True)  # more reads -> fewer msgs
        assert rw[-1] < wo[-1]

    def test_abl6_correct_under_loss(self):
        r = run_abl6(loss_rates=(0.0, 0.15), n_agents=3, n_ops=3)
        assert all(ok for _, _, _, ok in r.points)
        (l0, r0, m0, _), (l1, r1, m1, _) = r.points
        assert r0 == 0 and r1 > 0       # loss forced retransmissions
        assert m1 >= m0                 # which cost extra messages

    def test_abl4_growth_rates(self):
        r = run_abl4(view_counts=(2, 10, 100))
        by_n = {n: (c, d) for n, c, d in r.points}
        # Centralized scales 50x for 50x views; decentralized ~2500x.
        assert by_n[100][0] == 50 * by_n[2][0]
        assert by_n[100][1] > 1000 * by_n[2][1] / 2
