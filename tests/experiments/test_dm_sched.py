"""The dm_sched experiment: scheduler legs, parity gates, acceptance.

One small-burst run (module-scoped) backs the structural assertions;
the gate logic is additionally exercised against a doctored payload so
every failure path is covered without re-running the sweep.
"""

import copy

import pytest

from repro.experiments import dm_sched as dms
from repro.experiments import runner
from repro.experiments.parallel import shard_specs

GROUPS = 8


@pytest.fixture(scope="module")
def result():
    return dms.run_dm_sched(n_groups=GROUPS, seed=99)


@pytest.fixture(scope="module")
def payload(result):
    return dms.bench_payload(result)


def test_runs_all_three_legs(result):
    assert [(p.leg, p.concurrent_rounds) for p in result.points] == list(
        dms.LEGS
    )
    assert all(p.n_groups == GROUPS for p in result.points)


def test_serial_leg_never_overlaps(result):
    serial = result.points[0]
    assert serial.leg == "serial"
    assert serial.concurrent_rounds_hwm == 1
    assert serial.rounds_overlapped == 0


def test_concurrent_legs_overlap_and_win(payload):
    assert payload["speedup_unbounded"] >= 2.0
    assert payload["speedup_bounded4"] >= 2.0
    assert payload["unbounded_hwm"] >= GROUPS  # all waits overlapped
    bounded = next(
        p for p in payload["points"] if p["leg"] == "bounded4"
    )
    assert bounded["concurrent_rounds_hwm"] == 4  # the bound held


def test_legs_agree_on_messages_and_state(payload):
    assert payload["leg_counts_identical"]
    assert payload["leg_state_identical"]
    assert payload["invariants_ok"]


def test_queue_wait_measured_on_serial_leg(result):
    serial = result.points[0]
    assert serial.queue_wait_count > 0
    assert serial.queue_wait_mean_ns > 0


def test_randomized_parity_converges(payload):
    par = payload["randomized_parity"]
    assert par["seed"] == 99
    assert par["state_identical"]
    assert par["counts_identical"]
    assert par["conflicts_identical"]
    assert par["invariants_ok"]


def test_randomized_parity_other_seed():
    par = dms.randomized_parity(seed=7, n_groups=4, batches=6)
    assert par["state_identical"] and par["counts_identical"]
    assert par["conflicts_identical"] and par["invariants_ok"]


def test_acceptance_passes_on_real_run(payload):
    assert dms.check_acceptance(payload) == []


def test_acceptance_catches_violations(payload):
    bad = copy.deepcopy(payload)
    bad["speedup_unbounded"] = 1.5
    bad["serial_hwm"] = 2
    bad["unbounded_hwm"] = 1
    bad["leg_counts_identical"] = False
    bad["leg_state_identical"] = False
    bad["invariants_ok"] = False
    bad["randomized_parity"]["state_identical"] = False
    bad["randomized_parity"]["counts_identical"] = False
    bad["randomized_parity"]["conflicts_identical"] = False
    bad["randomized_parity"]["invariants_ok"] = False
    problems = dms.check_acceptance(bad)
    assert len(problems) == 10
    bad2 = copy.deepcopy(payload)
    bad2["n_groups"] = 4
    assert any("conflict groups" in p for p in dms.check_acceptance(bad2))


def test_sweep_point_roundtrip(result):
    points = dms.sweep_points(GROUPS)
    assert points == [(leg, limit, GROUPS) for leg, limit in dms.LEGS]
    partial = dms.run_sweep_point(points[-1], seed=99)
    assert partial.leg == "unbounded"
    assert partial.by_type == result.points[-1].by_type
    assert partial.state_digest == result.points[-1].state_digest


def test_registered_with_runner_and_parallel_engine():
    assert "dm_sched" in runner.EXPERIMENTS
    assert runner.accepts_seed("dm_sched")
    spec = shard_specs()["dm_sched"]
    assert [p[:2] for p in spec.points()] == list(dms.LEGS)
