"""The dm_profile experiment: A/B legs, parity checks, acceptance gates.

One tiny-ramp run (module-scoped) backs the structural assertions; the
gate logic is additionally exercised against a doctored payload so the
failure paths are covered without a 10k-view run in CI.
"""

import copy

import pytest

from repro.experiments import dm_profile as dmp
from repro.experiments import runner
from repro.experiments.parallel import shard_specs

RAMP = (20, 40)


@pytest.fixture(scope="module")
def result():
    return dmp.run_dm_profile(ramp=RAMP)


@pytest.fixture(scope="module")
def payload(result):
    return dmp.bench_payload(result)


def test_runs_both_legs_over_the_ramp(result):
    assert len(result.points) == len(dmp.LEGS) * len(RAMP)
    seen = {(p.leg, p.n_views) for p in result.points}
    assert seen == {(leg, n) for leg in dmp.LEGS for n in RAMP}


def test_every_point_carries_a_profile(result):
    for p in result.points:
        assert p.ops > 0
        assert p.pure_op_ns > 0
        assert p.churn_cycle_ns > 0
        assert set(p.pure_phases) == set(dmp.OP_PHASES)


def test_conflict_parity_on_every_point(result):
    assert all(p.conflict_parity for p in result.points)


def test_index_counters_split_by_leg(result):
    for p in result.points:
        if p.leg == "indexed":
            assert p.index_candidates > 0
        else:
            assert p.index_candidates == 0
            assert p.scoped_invalidations == 0


def test_legs_agree_on_messages_and_state(result):
    by_key = {(p.leg, p.n_views): p for p in result.points}
    for n in RAMP:
        indexed, brute = by_key[("indexed", n)], by_key[("brute", n)]
        assert indexed.by_type == brute.by_type
        assert indexed.state_digest == brute.state_digest


def test_fig4_system_parity(result):
    assert result.fig4_state_identical
    assert result.fig4_counts_identical
    assert result.fig4_by_type  # the reference counts are recorded


def test_table_renders(result):
    text = str(result.table())
    assert "DM PROFILE" in text
    assert "indexed" in text and "brute" in text


def test_bench_payload_shape(payload):
    assert payload["ramp_top"] == max(RAMP)
    assert payload["ramp_bottom"] == min(RAMP)
    assert payload["conflict_parity"] is True
    assert payload["leg_counts_identical"] is True
    assert payload["leg_state_identical"] is True
    assert len(payload["points"]) == len(dmp.LEGS) * len(RAMP)
    for key in (
        "speedup_at_top", "churn_speedup_at_top",
        "indexed_pure_growth", "brute_pure_growth",
        "indexed_churn_growth", "brute_churn_growth",
    ):
        assert isinstance(payload[key], float), key


def test_acceptance_passes_below_gate_top(payload):
    # Parity gates apply at any ramp; the perf gates stay disarmed
    # below GATE_TOP, so a healthy tiny run is clean.
    assert payload["ramp_top"] < dmp.GATE_TOP
    assert dmp.check_acceptance(payload) == []


def test_acceptance_flags_parity_break(payload):
    bad = copy.deepcopy(payload)
    bad["conflict_parity"] = False
    bad["leg_state_identical"] = False
    problems = dmp.check_acceptance(bad)
    assert any("brute-force recomputation" in p for p in problems)
    assert any("different end state" in p for p in problems)


def test_acceptance_arms_perf_gates_at_full_ramp(payload):
    bad = copy.deepcopy(payload)
    bad["ramp_top"] = dmp.GATE_TOP
    bad["view_ratio"] = 100.0
    bad["speedup_at_top"] = 1.0        # needs >= 5x
    bad["indexed_pure_growth"] = 80.0  # needs <= 0.5 * view_ratio
    bad["indexed_churn_growth"] = 50.0  # needs <= max(8, 0.1 * view_ratio)
    problems = dmp.check_acceptance(bad)
    assert len(problems) == 3
    assert any("need >= 5x" in p for p in problems)
    assert any("sub-linear" in p for p in problems)
    assert any("conflict degree" in p for p in problems)


def test_good_perf_numbers_clear_the_armed_gates(payload):
    good = copy.deepcopy(payload)
    good["ramp_top"] = dmp.GATE_TOP
    good["view_ratio"] = 100.0
    good["speedup_at_top"] = 9.0
    good["indexed_pure_growth"] = 2.0
    good["indexed_churn_growth"] = 3.0
    assert dmp.check_acceptance(good) == []


def test_sweep_shards_reassemble_the_serial_result(result):
    points = dmp.sweep_points(RAMP)
    assert len(points) == len(dmp.LEGS) * len(RAMP)
    partials = [dmp.run_sweep_point(p) for p in points]
    merged = dmp.merge_dm_profile(points, partials)
    assert [(p.leg, p.n_views) for p in merged.points] == points
    assert merged.fig4_counts_identical == result.fig4_counts_identical


def test_registered_with_runner_and_parallel_engine():
    assert "dm_profile" in runner.EXPERIMENTS
    spec = shard_specs()["dm_profile"]
    assert len(spec.points()) == len(dmp.LEGS) * len(dmp.DEFAULT_RAMP)
