"""The shard sweep's acceptance properties (ISSUE acceptance criteria)."""

import pytest

from repro.experiments.shard_sweep import (
    bench_payload,
    check_acceptance,
    run_shard_sweep,
)


@pytest.fixture(scope="module")
def result():
    # Small but decisive: the 1-vs-4 shard-local pair carries the
    # speedup gate, the spanning pair the worst-case bracket.
    return run_shard_sweep(shards=(1, 4), rounds=3)


def test_shard_local_throughput_scales(result):
    local = {p.n_shards: p for p in result.points if p.workload == "shard-local"}
    assert local[4].rounds_per_sec >= 2.0 * local[1].rounds_per_sec
    # Same logical work at every shard count.
    assert local[4].ops == local[1].ops


def test_shard_local_latency_improves(result):
    local = {p.n_shards: p for p in result.points if p.workload == "shard-local"}
    assert local[4].acquire_p99 < local[1].acquire_p99
    assert local[4].acquire_p50 <= local[1].acquire_p50


def test_shard_local_workload_never_crosses_shards(result):
    for p in result.points:
        if p.workload == "shard-local":
            assert p.cross_shard_rounds == 0
            assert p.router_fanouts == 0


def test_spanning_workload_fans_out(result):
    span = {p.n_shards: p for p in result.points if p.workload == "spanning"}
    assert span[4].cross_shard_rounds > 0
    assert span[4].router_fanouts > 0
    assert span[1].cross_shard_rounds == 0


def test_n1_plane_is_identical_to_unsharded(result):
    assert result.n1_state_identical
    assert result.n1_messages_identical


def test_bench_payload_passes_acceptance(result):
    payload = bench_payload(result)
    assert payload["local_speedup_4_shards"] >= 2.0
    assert check_acceptance(payload) == []
