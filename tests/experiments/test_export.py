"""Tests for CSV export and trace JSONL serialization."""

import csv

from repro.core.messages import TraceLog
from repro.experiments.ablations import run_abl4, run_abl5
from repro.experiments.export import (
    export_abl4,
    export_abl5,
    export_fig4,
    export_fig5,
    export_fig6,
)
from repro.experiments.fig4_efficiency import run_fig4
from repro.experiments.fig5_adaptability import run_fig5
from repro.experiments.fig6_flexibility import run_fig6


def read_csv(path):
    with path.open() as fh:
        return list(csv.reader(fh))


def test_export_fig4(tmp_path):
    result = run_fig4(n_agents=10, step=5)
    path = export_fig4(result, tmp_path / "fig4.csv")
    rows = read_csv(path)
    assert rows[0] == ["protocol", "conflicting_agents", "messages"]
    assert len(rows) == 1 + 3 * 2  # 3 protocols x 2 sweep points
    protocols = {r[0] for r in rows[1:]}
    assert protocols == {"flecc", "time-sharing", "multicast"}


def test_export_fig5(tmp_path):
    result = run_fig5(n_agents=4, ops_per_phase=3)
    path = export_fig5(result, tmp_path / "fig5.csv")
    rows = read_csv(path)
    assert rows[0] == ["time", "phase", "method_duration", "unseen_updates"]
    assert len(rows) == 1 + 9
    assert {r[1] for r in rows[1:]} == {"weak-1", "strong", "weak-2"}


def test_export_fig6(tmp_path):
    result = run_fig6(n_agents=4, n_methods=6)
    path = export_fig6(result, tmp_path / "fig6.csv")
    rows = read_csv(path)
    assert len(rows) == 1 + 12  # 2 variants x 6 method calls
    assert {r[0] for r in rows[1:]} == {
        "explicit pulls only", "with pull trigger"
    }


def test_export_abl4_and_abl5(tmp_path):
    p4 = export_abl4(run_abl4(view_counts=(2, 10)), tmp_path / "abl4.csv")
    rows = read_csv(p4)
    assert rows[1] == ["2", "8", "12"]
    p5 = export_abl5(
        run_abl5(read_fractions=(0.0, 1.0), n_agents=3, n_ops=3),
        tmp_path / "abl5.csv",
    )
    rows5 = read_csv(p5)
    assert rows5[0] == ["read_fraction", "rw_aware_messages", "write_only_messages"]
    assert len(rows5) == 3


class TestTraceJsonl:
    def test_roundtrip(self):
        log = TraceLog()
        log.record(1.0, "dir", "REGISTER", view="v1")
        log.record(2.5, "cm:v1", "send:PUSH")
        text = log.to_jsonl()
        back = TraceLog.from_jsonl(text)
        assert back.sequence() == log.sequence()
        assert back.events[0].detail == {"view": "v1"}
        assert back.events[1].time == 2.5

    def test_empty(self):
        assert TraceLog.from_jsonl("").events == []

    def test_blank_lines_skipped(self):
        log = TraceLog()
        log.record(0.0, "a", "E")
        assert len(TraceLog.from_jsonl(log.to_jsonl() + "\n\n")) == 1
