"""The wire sweep's acceptance properties (ISSUE acceptance criteria)."""

import pytest

from repro.experiments.runner import EXPERIMENTS
from repro.experiments.wire_sweep import (
    bench_payload,
    check_acceptance,
    run_wire_sweep,
)


@pytest.fixture(scope="module")
def result():
    # Small but representative: the PUSH-heavy all-dirty point and a
    # large-view low-locality delta point, plus a tiny fig4 workload.
    return run_wire_sweep(
        sweep=((48, 48), (256, 4)), rounds=3, fig4_agents=6, fig4_conflicting=3
    )


@pytest.fixture(scope="module")
def payload(result):
    return bench_payload(result)


def test_binary_reduction_at_least_2x_on_push_heavy_point(result):
    push_heavy = next(
        p for p in result.points if p.dirty_per_round >= p.n_cells
    )
    assert push_heavy.reduction["binary"] >= 2.0


def test_zlib_reduction_at_least_3x_on_delta_point(result):
    delta_point = next(
        p for p in result.points if p.dirty_per_round < p.n_cells
    )
    assert delta_point.reduction["binary+zlib"] >= 3.0
    # Compression actually fired there (the big INIT_DATA snapshots).
    assert delta_point.frames_compressed["binary+zlib"] > 0
    assert delta_point.bytes_saved_compression["binary+zlib"] > 0


def test_json_run_never_compresses(result):
    for p in result.points:
        assert p.frames_compressed["json"] == 0
        assert p.bytes_saved_compression["json"] == 0


def test_state_messages_and_decodes_identical_across_codecs(result):
    for p in result.points:
        assert p.state_identical
        assert p.messages_identical
        assert p.decoded_identical


def test_fig4_workload_identical_across_codecs(result):
    fig4 = result.fig4
    assert fig4 is not None
    assert fig4.state_identical and fig4.messages_identical
    assert fig4.decoded_identical
    # Same logical traffic, fewer bytes.
    counts = set(fig4.total_messages.values())
    assert len(counts) == 1
    assert fig4.payload_bytes["binary"] < fig4.payload_bytes["json"]


def test_delta_parity_preserved_under_every_codec(result):
    for p in result.points:
        for codec, identical in p.delta_messages_identical.items():
            assert identical, f"delta on/off counts differ under {codec}"
    push_heavy = next(
        p for p in result.points if p.dirty_per_round >= p.n_cells
    )
    for codec, ratio in push_heavy.delta_vs_full_payload_ratio.items():
        # All-dirty: deltas carry the whole slice, so payload parity
        # holds (within DeltaImage framing overhead) under every codec.
        assert 0.9 <= ratio <= 1.3, (codec, ratio)


def test_bench_payload_shape_and_acceptance(payload):
    assert payload["all_points_state_identical"] is True
    assert payload["all_points_messages_identical"] is True
    assert payload["all_points_decoded_identical"] is True
    assert payload["push_heavy_reduction_binary"] >= 2.0
    assert payload["delta_point_reduction_zlib"] >= 3.0
    assert set(payload["delta_parity_by_codec"]) == {
        "json", "binary", "binary+zlib"
    }
    assert payload["fig4"]["messages_identical"] is True
    assert check_acceptance(payload) == []


def test_check_acceptance_flags_failures(payload):
    bad = dict(payload)
    bad["push_heavy_reduction_binary"] = 1.5
    bad["all_points_state_identical"] = False
    problems = check_acceptance(bad)
    assert any("1.5x < 2x" in p for p in problems)
    assert any("end state" in p for p in problems)


def test_registered_in_runner():
    assert EXPERIMENTS["wire_sweep"] is run_wire_sweep
