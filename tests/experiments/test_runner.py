"""Tests for the experiment runner's persistence layer and CLI."""

import json
from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.core.messages import TraceLog
from repro.experiments.runner import (
    EXPERIMENTS,
    _jsonable,
    main,
    resolve_names,
    run_and_save,
)


@dataclass
class FakeResult:
    count: int
    series: List[float] = field(default_factory=list)
    labels: Dict[str, str] = field(default_factory=dict)


def test_jsonable_handles_dataclasses_and_containers():
    out = _jsonable(FakeResult(3, [1.0, 2.5], {"a": "b"}))
    assert out == {"count": 3, "series": [1.0, 2.5], "labels": {"a": "b"}}


def test_jsonable_handles_trace_logs():
    log = TraceLog()
    log.record(1.0, "dir", "REGISTER")
    assert _jsonable(log) == ["dir:REGISTER"]


def test_jsonable_emits_sets_as_sorted_lists():
    """Regression: sets used to be stringified ("{'b', 'a'}")."""
    assert _jsonable({"x": {"b", "a", "c"}}) == {"x": ["a", "b", "c"]}
    assert _jsonable(frozenset({3, 1, 2})) == [1, 2, 3]


def test_jsonable_sorts_mixed_type_sets_deterministically():
    out = _jsonable({2, "a", 1})
    assert sorted(out, key=repr) == out
    assert set(out) == {2, "a", 1}


def test_jsonable_handles_nested_sets_in_dataclasses():
    @dataclass
    class WithSet:
        members: frozenset

    assert _jsonable(WithSet(frozenset({"y", "x"}))) == {"members": ["x", "y"]}


def test_jsonable_falls_back_to_str():
    class Weird:
        def __repr__(self):
            return "<weird>"

    assert _jsonable({"x": Weird()}) == {"x": "<weird>"}


def test_run_and_save_writes_json(tmp_path):
    record = run_and_save("fake", lambda: FakeResult(7), tmp_path)
    assert record["experiment"] == "fake"
    assert record["wall_seconds"] >= 0
    on_disk = json.loads((tmp_path / "fake.json").read_text())
    assert on_disk["result"]["count"] == 7


def test_cli_runs_selected_experiment(tmp_path, capsys):
    records = main(["--only", "fig2_trace", "--out", str(tmp_path)])
    assert [r["experiment"] for r in records] == ["fig2_trace"]
    assert (tmp_path / "fig2_trace.json").exists()
    assert "running fig2_trace" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment(tmp_path):
    with pytest.raises(SystemExit):
        main(["--only", "no_such_experiment", "--out", str(tmp_path)])


def test_cli_rejects_bad_jobs(tmp_path):
    with pytest.raises(SystemExit):
        main(["--jobs", "0", "--out", str(tmp_path)])


def test_cli_seed_sweep_writes_per_seed_files(tmp_path):
    records = main(
        ["--only", "fig2_trace", "--seeds", "0", "1", "--out", str(tmp_path)]
    )
    # fig2 takes no seed parameter: the sweep collapses to one default run.
    assert len(records) == 1
    records = main(
        ["--only", "abl1_static_vs_dynamic", "--seeds", "0", "1",
         "--out", str(tmp_path)]
    )
    assert [r.get("seed") for r in records] == [0, 1]
    assert (tmp_path / "abl1_static_vs_dynamic.seed0.json").exists()
    assert (tmp_path / "abl1_static_vs_dynamic.seed1.json").exists()


def test_resolve_names_keeps_registry_order():
    assert resolve_names(["fig2_trace", "fig1_deployment"]) == [
        "fig1_deployment", "fig2_trace",
    ]
    assert resolve_names(None) == list(EXPERIMENTS)


def test_registry_names_are_stable():
    expected = {
        "fig1_deployment", "fig2_trace", "fig4_efficiency",
        "fig5_adaptability", "fig6_flexibility",
        "abl1_static_vs_dynamic", "abl2_trigger_period",
        "abl3_granularity", "abl4_centralization",
        "abl5_rw_semantics", "abl6_loss_tolerance",
        "ext1_mixed_workload", "chaos", "delta_sweep", "wire_sweep",
        "shard_sweep", "scale_sweep", "durability_sweep", "dm_profile",
        "dm_sched",
    }
    assert set(EXPERIMENTS) == expected
