"""Tests for the experiment runner's persistence layer."""

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.messages import TraceLog
from repro.experiments.runner import EXPERIMENTS, _jsonable, run_and_save


@dataclass
class FakeResult:
    count: int
    series: List[float] = field(default_factory=list)
    labels: Dict[str, str] = field(default_factory=dict)


def test_jsonable_handles_dataclasses_and_containers():
    out = _jsonable(FakeResult(3, [1.0, 2.5], {"a": "b"}))
    assert out == {"count": 3, "series": [1.0, 2.5], "labels": {"a": "b"}}


def test_jsonable_handles_trace_logs():
    log = TraceLog()
    log.record(1.0, "dir", "REGISTER")
    assert _jsonable(log) == ["dir:REGISTER"]


def test_jsonable_falls_back_to_str():
    class Weird:
        def __repr__(self):
            return "<weird>"

    assert _jsonable({"x": Weird()}) == {"x": "<weird>"}


def test_run_and_save_writes_json(tmp_path):
    record = run_and_save("fake", lambda: FakeResult(7), tmp_path)
    assert record["experiment"] == "fake"
    assert record["wall_seconds"] >= 0
    on_disk = json.loads((tmp_path / "fake.json").read_text())
    assert on_disk["result"]["count"] == 7


def test_registry_names_are_stable():
    expected = {
        "fig1_deployment", "fig2_trace", "fig4_efficiency",
        "fig5_adaptability", "fig6_flexibility",
        "abl1_static_vs_dynamic", "abl2_trigger_period",
        "abl3_granularity", "abl4_centralization",
        "abl5_rw_semantics", "abl6_loss_tolerance",
        "ext1_mixed_workload",
    }
    assert set(EXPERIMENTS) == expected
