"""The delta sweep's acceptance properties (ISSUE acceptance criteria)."""

from repro.experiments.delta_sweep import bench_payload, run_delta_sweep


def _sweep():
    # Small but representative: one low-locality point (large view, few
    # dirty cells) and one all-dirty parity point.
    return run_delta_sweep(sweep=((256, 4), (128, 128)), rounds=4)


def test_low_locality_payload_reduction_at_least_5x():
    result = _sweep()
    low = next(p for p in result.points if p.dirty_per_round < p.n_cells)
    assert low.bytes_reduction >= 5.0
    assert low.cells_skipped > low.cells_sent


def test_all_dirty_parity_within_5_percent():
    result = _sweep()
    parity = next(p for p in result.points if p.dirty_per_round >= p.n_cells)
    ratio = parity.delta_bytes_per_pull / parity.full_bytes_per_pull
    assert 0.95 <= ratio <= 1.05


def test_delta_and_full_runs_identical_state_and_messages():
    """Fig-4 logical message counts and the final component state must
    be identical between the delta and full-image runs at every point."""
    result = _sweep()
    assert all(p.state_identical for p in result.points)
    assert all(p.messages_identical for p in result.points)


def test_every_pull_was_served_as_a_delta():
    result = _sweep()
    for p in result.points:
        assert p.pulls == p.rounds
        assert p.images_delta == p.pulls
        assert p.delta_serves == p.pulls
        assert p.images_full == 2  # the two init snapshots
        assert p.slice_index_hits > 0


def test_bench_payload_shape():
    payload = bench_payload(_sweep())
    assert payload["low_locality_bytes_reduction"] >= 5.0
    assert abs(payload["all_dirty_bytes_ratio"] - 1.0) <= 0.05
    assert payload["all_points_state_identical"]
    assert payload["all_points_messages_identical"]
    assert len(payload["points"]) == 2
