"""The scale sweep's acceptance properties (ISSUE acceptance criteria).

The full 10k ramp is a nightly/manual run; the tier-1 suite exercises a
small ramp end to end (both backends, real sockets) plus the pure-logic
pieces — budgets, capacity gating, payload shape, acceptance gates — at
zero socket cost.
"""

import pytest

from repro.experiments.scale_sweep import (
    DEFAULT_RAMP,
    FULL_RAMP,
    ScaleSweepResult,
    bench_payload,
    check_acceptance,
    point_budget,
    run_scale_sweep,
    run_sweep_point,
    sweep_points,
    tcp_capacity_reason,
    transport_parity,
)


@pytest.fixture(scope="module")
def result():
    # Small but end-to-end: both socket backends, two ramp points each,
    # plus the three-transport parity replay in the merge step.
    return run_scale_sweep(ramp=(20, 60), cycles=2)


def test_all_small_points_sustain(result):
    assert len(result.points) == 5
    for p in result.points:
        assert p.ran and p.sustainable, (p.transport, p.n_cms, p.reason)
        assert p.errors == 0
        assert p.elapsed < p.budget


def test_paired_point_is_directory_bound_and_sustains(result):
    paired = [p for p in result.points if p.transport == "aio+paired"]
    assert len(paired) == 1
    p = paired[0]
    # Rides at the ramp's smallest size, rounded to an even fleet.
    assert p.n_cms == 20
    assert p.ran and p.sustainable, p.reason
    # Pair contention forces real revocation rounds: each acquire after
    # the first in a pair costs an INVALIDATE/ACK exchange, so this
    # point moves more messages per CM than the disjoint points.
    disjoint_aio = next(
        q for q in result.points if q.transport == "aio" and q.n_cms == 20
    )
    assert p.messages > disjoint_aio.messages


def test_aio_coalesces_and_bounds_queues(result):
    aio = [p for p in result.points if p.transport == "aio"]
    for p in aio:
        # The concurrent burst shares flushes and exercises the queue.
        assert p.coalesced_ratio > 0.0
        assert 0 < p.send_queue_hwm <= 2 * p.n_cms + 1024
        # At benchmark scale the envelope wrapping pays: fewer wire
        # frames than logical messages.
        assert p.frames < p.messages


def test_latency_percentiles_are_recorded(result):
    for p in result.points:
        assert p.acquire_p99 >= p.acquire_p50 > 0.0


def test_three_transport_parity(result):
    assert result.parity_state_identical
    assert result.parity_counts_identical
    assert result.parity_by_type  # reference census travels with the payload


def test_bench_payload_shape_and_acceptance(result):
    payload = bench_payload(result)
    assert payload["ramp_top"] == 60
    assert payload["aio_max_sustainable_cms"] == 60
    assert payload["tcp_max_sustainable_cms"] == 60
    assert len(payload["points"]) == 5
    for point in payload["points"]:
        assert {"transport", "n_cms", "sustainable", "acquire_p99_s",
                "frames_per_sec", "coalesced_ratio",
                "backpressure_stalls"} <= set(point)
    # A ramp this small cannot prove the 3x gate, so acceptance reduces
    # to parity + aio never behind threaded TCP — which must hold.
    assert check_acceptance(payload) == []


def test_point_budget_is_bounded():
    assert point_budget(10, 2) == 60.0          # floor
    assert point_budget(100000, 2) == 600.0     # cap
    # Quadratic mid-range: 3k CMs needs ~190 s measured, budget > that.
    assert 190.0 < point_budget(3000, 2) < 600.0


def test_tcp_capacity_gate_tracks_rlimit():
    import resource

    soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    # Far under the limit: runnable.  Far over: structurally skipped,
    # with the fd math in the reason string.
    assert tcp_capacity_reason(10) is None
    reason = tcp_capacity_reason(soft)  # 5x soft fds needed
    assert reason is not None and str(soft) in reason


def test_skipped_tcp_point_is_recorded_not_run():
    import resource

    soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    p = run_sweep_point(("tcp", soft, 2))
    assert not p.ran and not p.sustainable
    assert "fds" in p.reason


def test_sweep_points_cover_both_transports():
    pts = sweep_points((100, 1000), cycles=2)
    assert ("tcp", 100, 2) in pts and ("aio", 1000, 2) in pts
    assert ("aio+paired", 100, 2) in pts
    assert len(pts) == 5
    assert set(FULL_RAMP) - set(DEFAULT_RAMP) == {10000}


def test_check_acceptance_flags_failures():
    base = bench_payload(ScaleSweepResult(points=[]))
    base["parity_state_identical"] = False
    base["parity_counts_identical"] = False
    problems = check_acceptance(base)
    assert any("end states differ" in p for p in problems)
    assert any("message counts differ" in p for p in problems)

    # aio falling behind threaded TCP is always a violation.
    ramped = bench_payload(ScaleSweepResult(points=[]))
    ramped["parity_state_identical"] = True
    ramped["parity_counts_identical"] = True
    ramped["ramp_top"] = 1000
    ramped["aio_max_sustainable_cms"] = 300
    ramped["tcp_max_sustainable_cms"] = 500
    assert any(
        "fewer CMs than threaded TCP" in p for p in check_acceptance(ramped)
    )

    # With room to prove it (top >= 3x tcp), a sub-3x ratio fails.
    ratio = dict(ramped)
    ratio["ramp_top"] = 3000
    ratio["aio_max_sustainable_cms"] = 2000
    ratio["tcp_max_sustainable_cms"] = 1000
    ratio["aio_over_tcp_ratio"] = 2.0
    assert any("need >= 3x" in p for p in check_acceptance(ratio))

    # The directory-bound paired point gates on correctness.
    broken = dict(ramped)
    broken["points"] = [{
        "transport": "aio+paired", "n_cms": 20, "ran": True,
        "sustainable": False, "reason": "wrong end state in 3 cells",
    }]
    assert any(
        "paired point" in p and "not sustainable" in p
        for p in check_acceptance(broken)
    )
