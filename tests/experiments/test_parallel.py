"""Parallel experiment engine: task decomposition and serial parity."""

import json
from pathlib import Path

from repro.baselines.common import ProtocolName
from repro.experiments.fig4_efficiency import (
    Fig4Result,
    merge_fig4,
    sweep_points,
)
from repro.experiments.parallel import build_tasks, run_parallel, shard_specs
from repro.experiments.runner import run_serial


def _load_without_timing(out_dir):
    records = {}
    for path in sorted(Path(out_dir).glob("*.json")):
        d = json.loads(path.read_text())
        d.pop("wall_seconds")
        records[path.name] = d
    return records


def test_serial_and_parallel_results_identical(tmp_path):
    names = ["fig2_trace", "abl1_static_vs_dynamic"]
    run_serial(names, tmp_path / "serial")
    run_parallel(names, tmp_path / "parallel", jobs=2)
    serial = _load_without_timing(tmp_path / "serial")
    parallel = _load_without_timing(tmp_path / "parallel")
    assert serial.keys() == parallel.keys()
    assert serial == parallel


def test_parallel_seed_sweep_matches_serial(tmp_path):
    names = ["abl1_static_vs_dynamic"]
    run_serial(names, tmp_path / "serial", seeds=[0, 1])
    run_parallel(names, tmp_path / "parallel", jobs=2, seeds=[0, 1])
    serial = _load_without_timing(tmp_path / "serial")
    parallel = _load_without_timing(tmp_path / "parallel")
    assert set(serial) == {
        "abl1_static_vs_dynamic.seed0.json",
        "abl1_static_vs_dynamic.seed1.json",
    }
    assert serial == parallel


def test_jobs_one_falls_back_to_serial_path(tmp_path):
    records = run_parallel(["fig2_trace"], tmp_path, jobs=1)
    assert [r["experiment"] for r in records] == ["fig2_trace"]
    assert (tmp_path / "fig2_trace.json").exists()


def test_build_tasks_shards_fig4_and_orders_shards_first():
    tasks = build_tasks(["fig2_trace", "fig4_efficiency"], seeds=None)
    shard_tasks = [t for t in tasks if t[0] == "shard"]
    whole_tasks = [t for t in tasks if t[0] == "whole"]
    assert len(shard_tasks) == len(sweep_points())  # 3 protocols x 10 points
    assert whole_tasks == [("whole", "fig2_trace", None)]
    # Long sweep shards are queued before the short whole experiments.
    assert tasks[: len(shard_tasks)] == shard_tasks


def test_shard_specs_cover_fig4():
    assert "fig4_efficiency" in shard_specs()


def test_merge_fig4_reassembles_serial_result_shape():
    points = sweep_points(n_agents=30, step=10)
    partials = list(range(len(points)))
    result = merge_fig4(points, partials, n_agents=30)
    assert isinstance(result, Fig4Result)
    assert result.conflicting_sweep == [10, 20, 30]
    assert list(result.messages) == [p.value for p in ProtocolName]
    # Partial i belongs to point i: protocol-major, sweep-minor.
    assert result.messages[ProtocolName.FLECC.value] == [0, 1, 2]
    assert result.messages[ProtocolName.MULTICAST.value] == [6, 7, 8]
