"""The chaos experiment's acceptance properties."""

from repro.experiments.chaos import bench_payload, run_chaos


def test_chaos_acceptance_at_ten_percent_drop_seed_zero():
    """10% drop + 5% duplicate at seed 0: the run completes with zero
    lost committed writes and the sublayer visibly did repair work."""
    result = run_chaos(loss_rates=(0.0, 0.1), seed=0)
    clean, lossy = result.points
    assert clean.lost_writes == 0 and lossy.lost_writes == 0
    assert lossy.drop_rate == 0.1 and lossy.duplicate_rate == 0.05
    assert lossy.retransmits > 0
    assert lossy.duplicates_suppressed > 0
    assert lossy.injected_drops > 0


def test_chaos_zero_loss_parity_with_raw_transport():
    """Faults off: the reliable run's logical message profile matches
    the raw transport message for message; ACK overhead is wire-only."""
    result = run_chaos(loss_rates=(0.0,), seed=0)
    assert result.parity_ok
    assert result.faultless_acks > 0  # overhead exists, reported separately
    [clean] = result.points
    assert clean.retransmits == 0 and clean.duplicates_suppressed == 0
    assert clean.wire_frames > clean.logical_messages


def test_chaos_deterministic_per_seed():
    a = run_chaos(loss_rates=(0.1,), seed=3)
    b = run_chaos(loss_rates=(0.1,), seed=3)
    assert bench_payload(a) == bench_payload(b)


def test_chaos_overhead_grows_with_loss():
    result = run_chaos(loss_rates=(0.0, 0.2), seed=0)
    clean, lossy = result.points
    assert lossy.overhead_ratio > clean.overhead_ratio


def test_chaos_dm_restart_recovery_accounting():
    """A mid-run directory kill/restart must lose nothing: the run
    converges to the crash-free run's primary copy, and a post-run
    crash+wipe recovery reproduces it from the durable lineage alone."""
    result = run_chaos(loss_rates=(0.0,), seed=0)
    d = result.dm_restart
    assert d is not None
    assert d.dm_crashes == 1 and d.dm_restarts == 1
    assert d.lost_writes == 0
    assert d.state_parity and d.recovered_parity
    # Recovery accounting lands in MessageStats: the mid-run restart
    # plus the final recovery check.
    assert d.recoveries == 2
    assert d.cells_replayed > 0
    payload = bench_payload(result)
    assert payload["dm_restart"]["recovered_parity"]
