"""The durability sweep's point families and acceptance gates."""

import pytest

from repro.experiments.durability_sweep import (
    FSYNC_POLICIES,
    KILL_POINTS,
    RECOVERY_TAILS,
    bench_payload,
    check_acceptance,
    merge_durability_sweep,
    run_kill_point,
    run_overhead_point,
    run_recovery_point,
    run_sweep_point,
    sweep_points,
)


def test_sweep_points_cover_all_families():
    points = sweep_points()
    assert len(points) == len(FSYNC_POLICIES) + len(RECOVERY_TAILS) + sum(
        count for _, count in KILL_POINTS
    )
    assert sum(1 for p in points if p[0] == "kill") >= 50
    assert {p[1] for p in points if p[0] == "kill"} == {1, 4}


def test_recovery_point_replays_the_tail():
    p = run_recovery_point(16)
    assert p.tail_len == 16
    # fsync=batch: the kill may lose the unsynced window, never more.
    assert 16 - 16 // 2 <= p.cells_replayed <= 16
    assert p.recovery_ms > 0


@pytest.mark.parametrize("n_shards", [1, 4])
def test_kill_point_zero_lost_writes_and_parity(n_shards):
    p = run_kill_point(("kill", n_shards, 0), seed=0)
    assert p.lost_writes == 0
    assert p.parity
    assert p.recoveries >= 1


def test_kill_point_deterministic_per_seed():
    a = run_kill_point(("kill", 1, 1), seed=3)
    b = run_kill_point(("kill", 1, 1), seed=3)
    assert a == b


def test_overhead_point_volatile_has_no_wal_traffic():
    p = run_overhead_point(None, repeats=1, burst=16)
    assert p.policy == "volatile"
    assert p.wal_appends == 0 and p.wal_syncs == 0
    assert p.commits > 0


def test_merge_routes_partials_by_type():
    points = [("overhead", None), ("recovery", 16), ("kill", 1, 0)]
    partials = [run_sweep_point(p, seed=0) for p in points]
    result = merge_durability_sweep(points, partials)
    assert len(result.overhead) == 1
    assert len(result.recovery) == 1
    assert len(result.kills) == 1
    payload = bench_payload(result)
    assert payload["kill_points"] == 1 and payload["kill_failures"] == 0


def _passing_payload():
    kill = {
        "n_shards": 1, "index": 0, "lost_writes": 0, "parity": True,
        "injection": "torn", "torn_truncated": True, "snapshots_skipped": 1,
    }
    kills = []
    for i in range(50):
        k = dict(kill, index=i)
        k["n_shards"] = 4 if i % 2 else 1
        k["injection"] = ("none", "torn", "snap")[i % 3]
        kills.append(k)
    return {"kills": kills, "batch_overhead_ratio": 1.2}


def test_check_acceptance_passes_a_clean_payload():
    assert check_acceptance(_passing_payload()) == []


def test_check_acceptance_flags_each_gate():
    lost = _passing_payload()
    lost["kills"][3]["lost_writes"] = 2
    assert any("lost committed write" in p for p in check_acceptance(lost))

    split = _passing_payload()
    split["kills"][7]["parity"] = False
    assert any("differs from crash-free" in p for p in check_acceptance(split))

    slow = _passing_payload()
    slow["batch_overhead_ratio"] = 2.0
    assert any("overhead" in p for p in check_acceptance(slow))

    few = _passing_payload()
    few["kills"] = few["kills"][:10]
    assert any("kill points" in p for p in check_acceptance(few))

    single = _passing_payload()
    for k in single["kills"]:
        k["n_shards"] = 1
    assert any("N=4" in p for p in check_acceptance(single))

    uninjected = _passing_payload()
    for k in uninjected["kills"]:
        k["injection"] = "none"
        k["torn_truncated"] = False
        k["snapshots_skipped"] = 0
    problems = check_acceptance(uninjected)
    assert any("'torn'" in p for p in problems)
    assert any("'snap'" in p for p in problems)
