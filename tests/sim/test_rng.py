"""Unit tests for repro.sim.rng."""

import numpy as np
import pytest

from repro.sim import make_rng, spawn_rng
from repro.sim.rng import stream_for


def test_make_rng_reproducible():
    a = make_rng(7).random(5)
    b = make_rng(7).random(5)
    assert np.array_equal(a, b)


def test_make_rng_seed_sensitivity():
    assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))


def test_spawn_rng_independent_children():
    root = make_rng(0)
    c1, c2 = spawn_rng(root, 2)
    assert not np.array_equal(c1.random(8), c2.random(8))


def test_spawn_rng_requires_positive_n():
    with pytest.raises(ValueError):
        spawn_rng(make_rng(0), 0)


def test_stream_for_is_path_stable():
    a = stream_for(42, "workload", 3).random(4)
    b = stream_for(42, "workload", 3).random(4)
    assert np.array_equal(a, b)


def test_stream_for_distinguishes_paths():
    a = stream_for(42, "workload", 3).random(4)
    b = stream_for(42, "workload", 4).random(4)
    c = stream_for(42, "jitter", 3).random(4)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, c)
