"""Unit tests for repro.sim.resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Mutex, SimKernel, Store


def test_mutex_basic_acquire_release():
    k = SimKernel()
    m = Mutex(k)

    def proc():
        yield m.acquire()
        assert m.locked
        m.release()
        return "done"

    p = k.spawn(proc())
    k.run()
    assert p.result == "done"
    assert not m.locked


def test_mutex_mutual_exclusion_and_fifo_order():
    k = SimKernel()
    m = Mutex(k)
    trace = []

    def proc(name, hold):
        yield m.acquire()
        trace.append(("enter", name, k.now))
        yield k.timeout(hold)
        trace.append(("exit", name, k.now))
        m.release()

    for i, hold in enumerate([3.0, 1.0, 2.0]):
        k.spawn(proc(f"p{i}", hold))
    k.run()
    # Strict FIFO: p0 then p1 then p2; no overlapping critical sections.
    assert [t[1] for t in trace] == ["p0", "p0", "p1", "p1", "p2", "p2"]
    enters = [t for t in trace if t[0] == "enter"]
    exits = [t for t in trace if t[0] == "exit"]
    for (_, _, ent), (_, _, ext) in zip(enters[1:], exits[:-1]):
        assert ent >= ext


def test_mutex_try_acquire():
    k = SimKernel()
    m = Mutex(k)
    assert m.try_acquire()
    assert not m.try_acquire()
    m.release()
    assert m.try_acquire()


def test_mutex_release_unlocked_raises():
    k = SimKernel()
    m = Mutex(k)
    with pytest.raises(SimulationError):
        m.release()


def test_mutex_queue_length():
    k = SimKernel()
    m = Mutex(k)

    def holder():
        yield m.acquire()
        yield k.timeout(10.0)
        m.release()

    def waiter():
        yield m.acquire()
        m.release()

    k.spawn(holder())
    k.spawn(waiter())
    k.spawn(waiter())
    k.run(until=1.0)
    assert m.queue_length == 2
    k.run()
    assert m.queue_length == 0


def test_store_put_then_get():
    k = SimKernel()
    s = Store(k)
    s.put("a")
    s.put("b")

    def proc():
        x = yield s.get()
        y = yield s.get()
        return [x, y]

    p = k.spawn(proc())
    k.run()
    assert p.result == ["a", "b"]


def test_store_get_blocks_until_put():
    k = SimKernel()
    s = Store(k)

    def getter():
        item = yield s.get()
        return (item, k.now)

    def putter():
        yield k.timeout(4.0)
        s.put("late")

    p = k.spawn(getter())
    k.spawn(putter())
    k.run()
    assert p.result == ("late", 4.0)


def test_store_multiple_getters_fifo():
    k = SimKernel()
    s = Store(k)
    results = []

    def getter(name):
        item = yield s.get()
        results.append((name, item))

    k.spawn(getter("first"))
    k.spawn(getter("second"))
    k.run()
    s.put(1)
    s.put(2)
    k.run()
    assert results == [("first", 1), ("second", 2)]


def test_store_try_get_and_len():
    k = SimKernel()
    s = Store(k)
    assert s.try_get() is None
    s.put("x")
    assert len(s) == 1
    assert s.try_get() == "x"
    assert len(s) == 0
