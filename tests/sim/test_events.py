"""Unit tests for repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimKernel


def test_event_succeed_carries_value():
    k = SimKernel()
    ev = k.event("e")
    ev.succeed(42)
    k.run()
    assert ev.triggered and ev.processed and ev.ok
    assert ev.value == 42


def test_event_double_trigger_rejected():
    k = SimKernel()
    ev = k.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_raises():
    k = SimKernel()
    ev = k.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_fail_propagates_exception():
    k = SimKernel()
    ev = k.event()
    ev.fail(ValueError("boom"))
    k.run()
    assert ev.triggered and not ev.ok
    with pytest.raises(ValueError, match="boom"):
        _ = ev.value


def test_fail_requires_exception_instance():
    k = SimKernel()
    ev = k.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_callback_on_already_processed_event_runs_immediately():
    k = SimKernel()
    ev = k.event()
    ev.succeed("x")
    k.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_timeout_fires_at_correct_time():
    k = SimKernel()
    times = []
    t = k.timeout(5.0, value="done")
    t.add_callback(lambda e: times.append((k.now, e.value)))
    k.run()
    assert times == [(5.0, "done")]


def test_negative_timeout_rejected():
    k = SimKernel()
    with pytest.raises(SimulationError):
        k.timeout(-1.0)


def test_timeouts_fire_in_time_order():
    k = SimKernel()
    order = []
    for d in (3.0, 1.0, 2.0):
        k.timeout(d).add_callback(lambda e, d=d: order.append(d))
    k.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_ties_broken_by_insertion_order():
    k = SimKernel()
    order = []
    for i in range(5):
        k.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
    k.run()
    assert order == [0, 1, 2, 3, 4]


def test_any_of_fires_on_first():
    k = SimKernel()

    def proc():
        a = k.timeout(5.0, value="slow")
        b = k.timeout(1.0, value="fast")
        first = yield k.any_of([a, b])
        return first.value

    p = k.spawn(proc())
    k.run()
    assert p.result == "fast"
    assert k.now == 5.0  # the slow timeout still drains


def test_any_of_empty_rejected():
    k = SimKernel()
    with pytest.raises(SimulationError):
        k.any_of([])


def test_all_of_collects_values_in_order():
    k = SimKernel()

    def proc():
        a = k.timeout(5.0, value="a")
        b = k.timeout(1.0, value="b")
        vals = yield k.all_of([a, b])
        return vals

    p = k.spawn(proc())
    k.run()
    assert p.result == ["a", "b"]


def test_all_of_empty_succeeds_immediately():
    k = SimKernel()

    def proc():
        vals = yield k.all_of([])
        return vals

    p = k.spawn(proc())
    k.run()
    assert p.result == []


def test_all_of_fails_fast_on_child_failure():
    k = SimKernel()
    bad = k.event()

    def failer():
        yield k.timeout(1.0)
        bad.fail(RuntimeError("child died"))

    def proc():
        try:
            yield k.all_of([bad, k.timeout(100.0)])
        except RuntimeError as e:
            return ("caught", str(e), k.now)
        return "not caught"

    k.spawn(failer())
    p = k.spawn(proc())
    k.run()
    assert p.result == ("caught", "child died", 1.0)
