"""Unit tests for repro.sim.process."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import SimKernel


def test_process_runs_and_returns_value():
    k = SimKernel()

    def proc():
        yield k.timeout(1.0)
        yield k.timeout(2.0)
        return k.now

    p = k.spawn(proc())
    k.run()
    assert p.done and p.result == 3.0


def test_process_is_waitable_event():
    k = SimKernel()

    def child():
        yield k.timeout(5.0)
        return "child-value"

    def parent():
        val = yield k.spawn(child())
        return ("got", val, k.now)

    p = k.spawn(parent())
    k.run()
    assert p.result == ("got", "child-value", 5.0)


def test_process_exception_propagates_to_result():
    k = SimKernel()

    def proc():
        yield k.timeout(1.0)
        raise ValueError("inside")

    p = k.spawn(proc())
    k.run()
    assert p.done and not p.ok
    with pytest.raises(ValueError, match="inside"):
        _ = p.result


def test_waiting_on_failing_process_throws_into_waiter():
    k = SimKernel()

    def bad():
        yield k.timeout(1.0)
        raise RuntimeError("bad child")

    def parent():
        try:
            yield k.spawn(bad())
        except RuntimeError as e:
            return f"caught {e}"

    p = k.spawn(parent())
    k.run()
    assert p.result == "caught bad child"


def test_yielding_non_event_fails_process():
    k = SimKernel()

    def proc():
        yield 42  # type: ignore[misc]

    p = k.spawn(proc())
    k.run()
    assert p.done and not p.ok
    with pytest.raises(SimulationError, match="must yield Events"):
        _ = p.result


def test_yielding_foreign_kernel_event_fails_process():
    k1, k2 = SimKernel(), SimKernel()

    def proc():
        yield k2.timeout(1.0)

    p = k1.spawn(proc())
    k1.run()
    assert p.done and not p.ok


def test_kill_runs_finally_blocks():
    k = SimKernel()
    cleaned = []

    def proc():
        try:
            yield k.timeout(100.0)
        finally:
            cleaned.append(True)

    p = k.spawn(proc())
    k.run(until=1.0)
    p.kill("test")
    assert cleaned == [True]
    assert p.done and not p.ok
    with pytest.raises(ProcessKilled):
        _ = p.result


def test_kill_after_done_is_noop():
    k = SimKernel()

    def proc():
        yield k.timeout(1.0)
        return "ok"

    p = k.spawn(proc())
    k.run()
    p.kill()
    assert p.result == "ok"


def test_kill_can_be_converted_to_normal_return():
    k = SimKernel()

    def proc():
        try:
            yield k.timeout(100.0)
        except ProcessKilled:
            return "graceful"

    p = k.spawn(proc())
    k.run(until=1.0)
    p.kill()
    assert p.result == "graceful"


def test_processes_interleave_deterministically():
    k = SimKernel()
    trace = []

    def worker(name, period):
        for _ in range(3):
            yield k.timeout(period)
            trace.append((k.now, name))

    k.spawn(worker("a", 2.0))
    k.spawn(worker("b", 3.0))
    k.run()
    assert trace == [
        (2.0, "a"),
        (3.0, "b"),
        (4.0, "a"),
        # at t=6 both fire; b's timeout was scheduled earlier (t=3 vs t=4)
        (6.0, "b"),
        (6.0, "a"),
        (9.0, "b"),
    ]
