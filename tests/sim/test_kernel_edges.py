"""Additional edge coverage for the simulation kernel primitives."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Mutex, SimKernel, Store


def test_any_of_over_processes_returns_first_finisher():
    k = SimKernel()

    def worker(delay, name):
        yield k.timeout(delay)
        return name

    def racer():
        fast = k.spawn(worker(1.0, "fast"))
        slow = k.spawn(worker(9.0, "slow"))
        first = yield k.any_of([fast, slow])
        return first.value

    p = k.spawn(racer())
    k.run()
    assert p.result == "fast"


def test_any_of_failure_of_first_child_propagates():
    k = SimKernel()

    def bad():
        yield k.timeout(1.0)
        raise RuntimeError("first to finish, badly")

    def racer():
        try:
            yield k.any_of([k.spawn(bad()), k.timeout(50.0)])
        except RuntimeError as e:
            return str(e)

    p = k.spawn(racer())
    k.run()
    assert p.result == "first to finish, badly"


def test_kill_process_waiting_on_mutex_releases_nothing():
    k = SimKernel()
    m = Mutex(k)

    def holder():
        yield m.acquire()
        yield k.timeout(50.0)
        m.release()

    def waiter():
        yield m.acquire()
        m.release()
        return "got it"

    k.spawn(holder())
    w = k.spawn(waiter())
    k.run(until=5.0)
    w.kill()
    k.run()
    # The lock cycle completed; killing the waiter didn't corrupt it.
    assert not m.locked
    with pytest.raises(ProcessKilled):
        _ = w.result


def test_store_try_get_does_not_jump_waiter_queue():
    k = SimKernel()
    s = Store(k)
    got = []

    def getter():
        item = yield s.get()
        got.append(item)

    k.spawn(getter())
    k.run()
    # A waiter is queued; put should wake it, not feed try_get callers.
    s.put("x")
    assert s.try_get() is None
    k.run()
    assert got == ["x"]


def test_nested_process_kill_cascades_via_exception():
    k = SimKernel()

    def child():
        yield k.timeout(100.0)

    def parent():
        c = k.spawn(child())
        try:
            yield c
        except ProcessKilled:
            return "child was killed"

    children = []

    def spy_parent():
        c = k.spawn(child())
        children.append(c)
        try:
            yield c
        except ProcessKilled:
            return "observed kill"

    p = k.spawn(spy_parent())
    k.run(until=1.0)
    children[0].kill()
    k.run()
    assert p.result == "observed kill"


def test_killed_store_getter_does_not_swallow_items():
    k = SimKernel()
    s = Store(k)
    got = []

    def getter(name):
        item = yield s.get()
        got.append((name, item))

    doomed = k.spawn(getter("doomed"))
    survivor = k.spawn(getter("survivor"))
    k.run()
    doomed.kill()
    s.put("only-item")
    k.run()
    # The item went to the live getter, not the corpse at queue head.
    assert got == [("survivor", "only-item")]


def test_event_name_in_error_messages():
    k = SimKernel()
    ev = k.event("my-special-event")
    with pytest.raises(SimulationError, match="my-special-event"):
        _ = ev.value


def test_run_empty_kernel_is_noop():
    k = SimKernel()
    assert k.run() == 0.0
    assert k.run(until=10.0) == 10.0
