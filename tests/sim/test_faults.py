"""Unit tests for the declarative fault-injection framework."""

import pytest

from repro.errors import SimulationError
from repro.net import Message, SimTransport
from repro.sim import CrashPlan, FaultScenario, Partition, SimKernel


def msg(t="DATA", src="a", dst="b"):
    return Message(t, src, dst, {})


def actions(injector, n, **kw):
    return [injector.policy(msg(**kw)) for _ in range(n)]


def test_zero_rates_always_deliver():
    inj = FaultScenario().compile()
    assert actions(inj, 50) == ["deliver"] * 50
    assert inj.total_injected == 0


def test_same_seed_replays_identically():
    scenario = FaultScenario(
        drop_rate=0.2, duplicate_rate=0.1, delay_rate=0.3,
        delay_range=(1.0, 4.0), seed=7,
    )
    a = actions(scenario.compile(), 500)
    b = actions(scenario.compile(), 500)
    assert a == b
    assert any(x == "drop" for x in a)
    assert any(x == "duplicate" for x in a)
    assert any(isinstance(x, tuple) for x in a)


def test_different_seeds_differ():
    mk = lambda s: FaultScenario(drop_rate=0.3, seed=s).compile()
    assert actions(mk(0), 200) != actions(mk(1), 200)


def test_delay_action_within_range():
    inj = FaultScenario(delay_rate=1.0, delay_range=(2.0, 5.0)).compile()
    for action in actions(inj, 100):
        kind, extra = action
        assert kind == "delay" and 2.0 <= extra <= 5.0
    assert inj.counters["delays"] == 100


def test_exempt_types_bypass_injection():
    inj = FaultScenario(drop_rate=1.0, exempt_types={"R_ACK"}).compile()
    assert inj.policy(msg("R_ACK")) == "deliver"
    assert inj.policy(msg("R_DATA")) == "drop"


def test_counters_track_each_fault_kind():
    inj = FaultScenario(drop_rate=1.0).compile()
    actions(inj, 5)
    assert inj.counters["drops"] == 5 and inj.total_injected == 5


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------

def test_partition_severs_both_directions_inside_window_only():
    part = Partition(start=10.0, end=20.0, group_a={"dir"}, group_b={"v1"})
    inj = FaultScenario(partitions=[part]).compile()

    clock = {"now": 0.0}
    inj._now = lambda: clock["now"]

    assert inj.policy(msg(src="dir", dst="v1")) == "deliver"  # before
    clock["now"] = 15.0
    assert inj.policy(msg(src="dir", dst="v1")) == "drop"
    assert inj.policy(msg(src="v1", dst="dir")) == "drop"     # symmetric
    assert inj.policy(msg(src="v2", dst="dir")) == "deliver"  # unaffected
    clock["now"] = 20.0
    assert inj.policy(msg(src="dir", dst="v1")) == "deliver"  # after
    assert inj.counters["partition_drops"] == 2


def test_partition_does_not_consume_rng_draws():
    """A partition drop must not shift the probabilistic stream: the
    same scenario with and without a partition makes identical
    drop/duplicate decisions for unpartitioned traffic."""
    base = FaultScenario(drop_rate=0.3, seed=5).compile()
    part = FaultScenario(
        drop_rate=0.3, seed=5,
        partitions=[Partition(0.0, 1e9, {"x"}, {"y"})],
    ).compile()
    part._now = lambda: 0.0
    for _ in range(100):
        assert base.policy(msg()) == part.policy(msg())


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def test_rate_and_range_validation():
    with pytest.raises(SimulationError):
        FaultScenario(drop_rate=1.5)
    with pytest.raises(SimulationError):
        FaultScenario(duplicate_rate=-0.1)
    with pytest.raises(SimulationError):
        FaultScenario(delay_range=(5.0, 2.0))
    with pytest.raises(SimulationError):
        FaultScenario(delay_range=(-1.0, 2.0))
    with pytest.raises(SimulationError):
        Partition(start=5.0, end=5.0, group_a={"a"}, group_b={"b"})
    with pytest.raises(SimulationError):
        CrashPlan(at=10.0, view_id="v1", restart_at=10.0)


# ---------------------------------------------------------------------------
# Crash scheduling
# ---------------------------------------------------------------------------

class _StubCM:
    def __init__(self, kernel):
        self.kernel = kernel
        self.events = []

    def crash(self):
        self.events.append(("crash", self.kernel.now))

    def recover(self):
        self.events.append(("recover", self.kernel.now))


def test_schedule_crashes_fires_at_planned_times():
    kernel = SimKernel()
    cm = _StubCM(kernel)
    inj = FaultScenario(
        crashes=[CrashPlan(at=30.0, view_id="v1", restart_at=80.0)]
    ).compile()
    inj.schedule_crashes(kernel, {"v1": cm})
    kernel.run()
    assert cm.events == [("crash", 30.0), ("recover", 80.0)]
    assert inj.counters["crashes"] == 1 and inj.counters["restarts"] == 1


def test_schedule_crashes_rejects_unknown_view():
    kernel = SimKernel()
    inj = FaultScenario(
        crashes=[CrashPlan(at=1.0, view_id="ghost")]
    ).compile()
    with pytest.raises(SimulationError, match="ghost"):
        inj.schedule_crashes(kernel, {})


# ---------------------------------------------------------------------------
# Transport integration
# ---------------------------------------------------------------------------

def test_install_wires_policy_and_clock():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    inj = FaultScenario(
        partitions=[Partition(0.0, 100.0, {"a"}, {"b"})]
    ).compile().install(transport)
    assert transport.fault_policy == inj.policy  # same bound method
    got = []
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: got.append(m))
    transport.send(msg())
    kernel.run()
    assert got == [] and transport.stats.dropped == 1


def test_injected_delay_reorders_frames_on_transport():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    state = {"first": True}

    def delay_first(m):
        if state["first"]:
            state["first"] = False
            return ("delay", 10.0)
        return "deliver"

    transport.fault_policy = delay_first
    got = []
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: got.append((kernel.now, m.payload["n"])))
    transport.send(Message("DATA", "a", "b", {"n": 1}))
    transport.send(Message("DATA", "a", "b", {"n": 2}))
    kernel.run()
    assert got == [(1.0, 2), (11.0, 1)]  # frame 1 held 10 extra units


def test_malformed_delay_action_rejected():
    from repro.errors import TransportError

    kernel = SimKernel()
    transport = SimTransport(kernel, strict_wire=False)
    transport.fault_policy = lambda m: ("delay", -1.0)
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: None)
    with pytest.raises(TransportError, match="fault policy"):
        transport.send(msg())
