"""Unit tests for repro.sim.kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimKernel


def test_clock_starts_at_start_time():
    assert SimKernel().now == 0.0
    assert SimKernel(start_time=100.0).now == 100.0


def test_run_returns_final_time():
    k = SimKernel()
    k.timeout(7.5)
    assert k.run() == 7.5


def test_run_until_caps_clock():
    k = SimKernel()
    fired = []
    k.timeout(10.0).add_callback(lambda e: fired.append(k.now))
    assert k.run(until=5.0) == 5.0
    assert fired == []
    # The event is still queued; continuing the run fires it.
    assert k.run() == 10.0
    assert fired == [10.0]


def test_run_until_beyond_last_event_advances_clock():
    k = SimKernel()
    k.timeout(1.0)
    assert k.run(until=50.0) == 50.0


def test_step_on_empty_queue_raises():
    k = SimKernel()
    with pytest.raises(SimulationError):
        k.step()


def test_peek_reports_next_event_time():
    k = SimKernel()
    assert k.peek() == float("inf")
    k.timeout(3.0)
    k.timeout(1.0)
    assert k.peek() == 1.0


def test_call_in_runs_function_at_right_time():
    k = SimKernel()
    seen = []
    k.call_in(2.0, lambda: seen.append(k.now))
    k.call_at(1.0, lambda: seen.append(k.now))
    k.run()
    assert seen == [1.0, 2.0]


def test_call_at_in_the_past_rejected():
    k = SimKernel(start_time=10.0)
    with pytest.raises(SimulationError):
        k.call_at(5.0, lambda: None)


def test_max_events_guard_catches_scheduling_loops():
    k = SimKernel()

    def reschedule():
        k.call_in(0.0, reschedule)

    k.call_in(0.0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        k.run(max_events=1000)


def test_run_until_complete_returns_process_result():
    k = SimKernel()

    def proc():
        yield k.timeout(3.0)
        return "finished"

    p = k.spawn(proc())
    assert k.run_until_complete(p) == "finished"


def test_run_until_complete_detects_deadlock():
    k = SimKernel()

    def proc():
        yield k.event()  # never triggered

    p = k.spawn(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        k.run_until_complete(p)


def test_urgent_triggers_run_before_same_time_timeouts():
    k = SimKernel()
    order = []

    def proc():
        yield k.timeout(1.0)
        order.append("proc-at-1")

    k.spawn(proc())

    def at_one():
        ev = k.event()
        ev.add_callback(lambda e: order.append("urgent"))
        ev.succeed(None)

    # call_at(1.0, ...) enqueues at NORMAL priority; its urgent child
    # event still processes before later same-time NORMAL entries.
    k.call_at(1.0, at_one)
    k.timeout(1.0).add_callback(lambda e: order.append("late-timeout"))
    k.run()
    assert order.index("urgent") < order.index("late-timeout")
