"""Smoke tests: every example script runs to completion and prints its
headline output.  Examples are the library's de-facto acceptance tests."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "final counters:" in out
    assert "backend sees misses=1 (fresh)" in out  # strong mode saw the push


def test_airline_reservation():
    out = run_example("airline_reservation.py")
    assert "tickets confirmed per agent:" in out
    assert "UA100: 172/180" in out  # 8 sales committed, none lost
    assert "DL300: 146/150" in out


def test_adaptive_consistency():
    out = run_example("adaptive_consistency.py")
    assert "buy (strong)" in out
    assert "purchases: 3" in out


def test_psf_deployment():
    out = run_example("psf_deployment.py")
    assert "deployment plan:" in out
    assert "codec pairs on insecure links" in out
    assert "adaptations performed: 1" in out


def test_tcp_sockets():
    out = run_example("tcp_sockets.py")
    assert "reservations per agent: [4, 4, 4]" in out
    assert "UA100 seats remaining: 168" in out


def test_read_write_sharing():
    out = run_example("read_write_sharing.py")
    assert "saved:" in out
    # RW semantics must save messages on the read-heavy workload.
    plain = int(out.split("every use exclusive): ")[1].split()[0])
    rw = int(out.split("read/write semantics:")[1].split()[0])
    assert rw < plain


def test_collaborative_editing():
    out = run_example("collaborative_editing.py")
    assert "Alice: added motivation." in out
    assert "Bob: tightened the claim." in out
    assert "Carol: proofs go here." in out
    assert "received 0 fetch/invalidate messages" in out


def test_two_level_replication():
    out = run_example("two_level_replication.py")
    assert "replicas converged: True" in out
    assert out.count("UA100=95 BA200=94") == 2  # both replicas converged
