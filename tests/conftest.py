"""Shared fixtures for the test suite.

``wal_root`` is the canonical place for tests to put WAL/snapshot
lineages (:mod:`repro.core.durability`).  It is built on ``tmp_path``
— already unique per test — with the pytest-xdist worker id folded
into the path, so parallel test workers can never collide on a
lineage directory even when a test derives further paths from shared
environment state.
"""

import os

import pytest


@pytest.fixture
def wal_root(tmp_path):
    worker = os.environ.get("PYTEST_XDIST_WORKER", "master")
    root = tmp_path / f"wal-{worker}"
    root.mkdir(parents=True, exist_ok=True)
    return root
