"""Tests for the time-sharing and multicast baseline protocols.

The key relationships the paper's Fig 4 rests on:

    messages(time-sharing) <= messages(flecc) <= messages(multicast)

with Flecc scaling in the number of *conflicting* views while multicast
scales in the number of *registered* views.
"""

import pytest

from repro.baselines import MulticastDirectory, ProtocolName, TimeSharingRunner, make_system
from repro.core import messages as M
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.net import SimTransport
from repro.sim import SimKernel

from tests.core.harness import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)

ALWAYS_FRESH = TriggerSet(validity="true")


def build(protocol, cells=None):
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    store = Store(cells or {"a": 100, "b": 100, "z": 100})
    system = make_system(
        protocol, transport, store, extract_from_object, merge_into_object
    )
    return kernel, transport, store, system


def agent_script(cm, agent, cell):
    """The Fig 4 per-agent workload: create, init, reserve, kill."""
    yield cm.start()
    yield cm.init_image()
    yield cm.pull_image()
    yield cm.start_use_image()
    agent.local[cell] -= 1
    cm.end_use_image()
    yield cm.push_image()
    yield cm.kill_image()


def run_workload(protocol, n_conflicting, n_disjoint, serial=False):
    """n_conflicting agents share cell 'a'; disjoint agents get unique cells."""
    cells = {"a": 100}
    cells.update({f"z{i}": 100 for i in range(n_disjoint)})
    kernel, transport, store, system = build(protocol, cells=cells)
    scripts = []
    for i in range(n_conflicting + n_disjoint):
        cell = "a" if i < n_conflicting else f"z{i - n_conflicting}"
        agent = Agent()
        cm = system.add_view(
            f"v{i}", agent, props_for([cell]),
            extract_from_view, merge_into_view,
            triggers=ALWAYS_FRESH,
        )
        scripts.append(agent_script(cm, agent, cell))
    if serial:
        TimeSharingRunner(transport).run_serial(scripts)
    else:
        run_all_scripts(transport, scripts)
    return transport.stats, store


class TestMulticastDirectory:
    def test_everyone_conflicts(self):
        _, transport, store, system = build(ProtocolName.MULTICAST)
        for i in range(3):
            system.add_view(
                f"v{i}", Agent(), props_for(["z" if i else "a"]),
                extract_from_view, merge_into_view,
            )

        def setup(cm):
            yield cm.start()

        run_all_scripts(transport, [setup(cm) for cm in system.cache_managers.values()])
        assert system.directory.conflict_set_of("v0") == ["v1", "v2"]

    def test_pull_fetches_from_all_views_even_disjoint(self):
        stats, _ = run_workload(ProtocolName.MULTICAST, n_conflicting=2, n_disjoint=3)
        # Every pull asked every other *active* view regardless of property overlap.
        assert stats.by_type[M.FETCH_REQ] > 0
        flecc_stats, _ = run_workload(ProtocolName.FLECC, n_conflicting=2, n_disjoint=3)
        assert stats.by_type[M.FETCH_REQ] > flecc_stats.by_type.get(M.FETCH_REQ, 0)


class TestTimeSharing:
    def test_serial_execution_produces_no_fetches_or_invalidations(self):
        stats, _ = run_workload(
            ProtocolName.TIME_SHARING, n_conflicting=5, n_disjoint=0, serial=True
        )
        assert M.FETCH_REQ not in stats.by_type
        assert M.INVALIDATE not in stats.by_type

    def test_messages_flat_in_conflict_count(self):
        s5, _ = run_workload(ProtocolName.TIME_SHARING, 5, 0, serial=True)
        s10, _ = run_workload(ProtocolName.TIME_SHARING, 10, 0, serial=True)
        # Per-agent cost is constant: total scales exactly with agent count.
        assert s10.total == 2 * s5.total


class TestOrdering:
    def test_message_count_ordering_matches_paper(self):
        ts, _ = run_workload(ProtocolName.TIME_SHARING, 6, 4, serial=True)
        fl, _ = run_workload(ProtocolName.FLECC, 6, 4)
        mc, _ = run_workload(ProtocolName.MULTICAST, 6, 4)
        assert ts.total <= fl.total <= mc.total
        assert fl.total < mc.total  # properties pay off with disjoint views

    def test_flecc_scales_with_conflicts_multicast_with_population(self):
        # Same population (10), growing conflict group.
        fl_small, _ = run_workload(ProtocolName.FLECC, 2, 8)
        fl_large, _ = run_workload(ProtocolName.FLECC, 8, 2)
        assert fl_small.total < fl_large.total
        mc_small, _ = run_workload(ProtocolName.MULTICAST, 2, 8)
        mc_large, _ = run_workload(ProtocolName.MULTICAST, 8, 2)
        # Multicast is (nearly) insensitive to the conflict structure.
        assert abs(mc_small.total - mc_large.total) <= 0.05 * mc_small.total

    def test_all_protocols_reach_same_final_state(self):
        _, store_ts = run_workload(ProtocolName.TIME_SHARING, 4, 2, serial=True)
        _, store_mc = run_workload(ProtocolName.MULTICAST, 4, 2, serial=True)
        _, store_fl = run_workload(ProtocolName.FLECC, 4, 2, serial=True)
        assert store_ts.cells == store_mc.cells == store_fl.cells


class TestMakeSystem:
    def test_protocol_name_parsing(self):
        assert ProtocolName("flecc") is ProtocolName.FLECC
        with pytest.raises(ValueError):
            ProtocolName("bogus")

    def test_multicast_system_uses_multicast_directory(self):
        _, _, _, system = build("multicast")
        assert isinstance(system.directory, MulticastDirectory)

    def test_flecc_system_uses_plain_directory(self):
        _, _, _, system = build("flecc")
        assert not isinstance(system.directory, MulticastDirectory)
