"""Tests for the sim transport's optional bandwidth model."""

import pytest

from repro.errors import TransportError
from repro.net import Message, SimTransport, Topology
from repro.sim import SimKernel


def topo_with_bandwidth(bw):
    t = Topology()
    t.add_node("a")
    t.add_node("b")
    t.add_link("a", "b", latency=2.0, bandwidth=bw)
    return t


def deliver_one(transport, kernel, payload=None):
    arrivals = []
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: arrivals.append(kernel.now))
    transport.send(Message("DATA", "a", "b", payload or {}))
    kernel.run()
    return arrivals[0]


def test_bandwidth_adds_transmission_time():
    k = SimKernel()
    tr = SimTransport(k, topology=topo_with_bandwidth(bw=100.0), model_bandwidth=True)
    arrival = deliver_one(tr, k, {"blob": "x" * 1000})
    # latency 2.0 + >1000 bytes / 100 B-per-unit > 12 units
    assert arrival > 12.0


def test_infinite_bandwidth_is_pure_latency():
    k = SimKernel()
    tr = SimTransport(k, topology=topo_with_bandwidth(bw=float("inf")), model_bandwidth=True)
    arrival = deliver_one(tr, k, {"blob": "x" * 1000})
    assert arrival == 2.0


def test_disabled_model_ignores_bandwidth():
    k = SimKernel()
    tr = SimTransport(k, topology=topo_with_bandwidth(bw=1.0), model_bandwidth=False)
    arrival = deliver_one(tr, k, {"blob": "x" * 1000})
    assert arrival == 2.0


def test_bigger_messages_arrive_later():
    k = SimKernel()
    tr = SimTransport(k, topology=topo_with_bandwidth(bw=50.0), model_bandwidth=True)
    small = deliver_one(tr, k, {"blob": "x"})
    k2 = SimKernel()
    tr2 = SimTransport(k2, topology=topo_with_bandwidth(bw=50.0), model_bandwidth=True)
    large = deliver_one(tr2, k2, {"blob": "x" * 5000})
    assert large > small


def test_bottleneck_bandwidth_is_path_minimum():
    t = Topology()
    for n in "abc":
        t.add_node(n)
    t.add_link("a", "b", latency=1.0, bandwidth=1000.0)
    t.add_link("b", "c", latency=1.0, bandwidth=10.0)
    k = SimKernel()
    tr = SimTransport(k, topology=t, model_bandwidth=True)
    assert tr.bottleneck_bandwidth("a", "c") == 10.0
    assert tr.bottleneck_bandwidth("a", "b") == 1000.0


def test_model_bandwidth_requires_strict_wire():
    k = SimKernel()
    with pytest.raises(TransportError, match="strict_wire"):
        SimTransport(k, strict_wire=False, model_bandwidth=True)


def test_stats_record_frame_bytes_in_strict_mode():
    k = SimKernel()
    tr = SimTransport(k, default_latency=1.0, strict_wire=True)
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    tr.send(Message("DATA", "a", "b", {"blob": "y" * 64}))
    assert tr.stats.bytes_sent > 64
