"""Property-based tests: codec round-trips for arbitrary nested payloads
including the registered Flecc domain objects."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiscreteSet, Interval, ObjectImage, Property, PropertySet, VersionVector
from repro.net import Message
from repro.net.codec import roundtrip

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

domains = st.one_of(
    st.tuples(st.integers(-100, 0), st.integers(1, 100)).map(lambda t: Interval(*t)),
    st.sets(st.integers(-50, 50), min_size=1, max_size=5).map(DiscreteSet),
)
props = st.builds(Property, st.sampled_from(["p", "q", "Flights"]), domains)


@st.composite
def property_sets(draw):
    ps = draw(st.lists(props, max_size=3))
    seen, unique = set(), []
    for p in ps:
        if p.name not in seen:
            seen.add(p.name)
            unique.append(p)
    return PropertySet(unique)


version_vectors = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), st.integers(0, 100), max_size=3
).map(VersionVector)


@st.composite
def images(draw):
    cells = draw(st.dictionaries(st.text(min_size=1, max_size=8), scalars, max_size=4))
    return ObjectImage(cells, draw(version_vectors))


domain_objects = st.one_of(props, property_sets(), version_vectors, images())

payload_values = st.recursive(
    st.one_of(scalars, domain_objects),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(min_size=1, max_size=6), children, max_size=3),
    ),
    max_leaves=12,
)

payloads = st.dictionaries(st.text(min_size=1, max_size=8), payload_values, max_size=4)


def _eq(a, b):
    """Structural equality tolerant of list/tuple and int/float coercion."""
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    return a == b


@given(payloads)
@settings(max_examples=200, deadline=None)
def test_payload_roundtrip(payload):
    msg = Message("T", "src", "dst", payload)
    back = roundtrip(msg)
    assert back.msg_type == "T" and back.msg_id == msg.msg_id
    assert _eq(back.payload, payload)


@given(property_sets())
def test_property_set_roundtrip_via_wire(ps):
    back = roundtrip(Message("T", "a", "b", {"props": ps}))
    assert back.payload["props"] == ps


@given(images())
@settings(deadline=None)
def test_image_roundtrip_preserves_versions(img):
    back = roundtrip(Message("T", "a", "b", {"image": img}))
    out = back.payload["image"]
    assert out.versions == img.versions
    assert _eq(out.cells, img.cells)
