"""Unit tests for repro.net.binary_codec: framing, fast paths, adaptive
compression, and codec resolution."""

import threading

import pytest

from repro.core import (
    DiscreteSet,
    Interval,
    ObjectImage,
    Property,
    PropertySet,
    VersionVector,
)
from repro.core.image import DeltaImage
from repro.errors import CodecError
from repro.net import BinaryCodec, JsonCodec, Message, codec_name, resolve_codec
from repro.net.binary_codec import MAGIC_RAW, MAGIC_ZLIB
from repro.net.stats import MessageStats


def _rt(msg, codec=None):
    codec = codec or BinaryCodec()
    return codec.decode(codec.encode(msg))


def test_plain_payload_roundtrip():
    m = Message("T", "a", "b", {"n": 1, "s": "x", "f": 2.5, "b": True,
                                "l": [1, 2], "none": None})
    m2 = _rt(m)
    assert m2 == m


def test_negative_and_big_ints_roundtrip():
    payload = {"neg": -123456789, "big": 2**80, "negbig": -(2**80), "zero": 0}
    assert _rt(Message("T", "a", "b", payload)).payload == payload


def test_non_finite_floats_roundtrip():
    m2 = _rt(Message("T", "a", "b", {"inf": float("inf"),
                                     "ninf": float("-inf"),
                                     "nan": float("nan")}))
    assert m2.payload["inf"] == float("inf")
    assert m2.payload["ninf"] == float("-inf")
    assert m2.payload["nan"] != m2.payload["nan"]  # NaN


def test_unicode_strings_roundtrip():
    payload = {"kéy": "välue \U0001f600", "": "empty-key-value"}
    assert _rt(Message("T", "a", "b", payload)).payload == payload


def test_string_interning_shrinks_repeated_keys():
    codec = BinaryCodec()
    m = Message("T", "a", "b", [{"repeated-cell-key": i} for i in range(50)])
    raw = codec.encode(m)
    # The key's bytes appear exactly once (the definition); the other 49
    # occurrences are 2-byte table references.
    assert raw.count(b"repeated-cell-key") == 1
    assert len(raw) < len(JsonCodec().encode(m)) / 2
    assert codec.decode(raw) == m


def test_tuple_decodes_as_list():
    m2 = _rt(Message("T", "a", "b", {"t": (1, 2, 3)}))
    assert m2.payload["t"] == [1, 2, 3]


def test_reserved_key_needs_no_escaping():
    payload = {"cellmap": {"__type__": [1, 2], "normal": "x"}}
    assert _rt(Message("T", "a", "b", payload)).payload == payload


def test_registered_image_roundtrip():
    img = ObjectImage()
    for i in range(8):
        img.put(f"c{i}", i * 10)
    m2 = _rt(Message("PULL_DATA", "dir", "cm", {"image": img}))
    out = m2.payload["image"]
    assert out.cells == img.cells
    assert out.versions == img.versions


def test_image_with_version_only_keys_roundtrip():
    img = ObjectImage({"a": 1}, VersionVector({"a": 3, "gone": 7}))
    out = _rt(Message("T", "a", "b", {"image": img})).payload["image"]
    assert out.cells == {"a": 1}
    assert out.versions.get("gone") == 7


def test_delta_image_roundtrip():
    inner = ObjectImage({"a": 1}, VersionVector({"a": 5}))
    d = DeltaImage(inner, base_seq=3, as_of=9, complete=False, slice_size=12)
    out = _rt(Message("PULL_DATA", "dir", "cm", {"image": d})).payload["image"]
    assert out.base_seq == 3 and out.as_of == 9
    assert out.complete is False and out.slice_size == 12
    assert out.image.cells == {"a": 1}


def test_property_set_roundtrip():
    ps = PropertySet([
        Property("p", Interval(-5, 5)),
        Property("q", DiscreteSet({1, 2, 3})),
    ])
    assert _rt(Message("T", "a", "b", {"props": ps})).payload["props"] == ps


def test_version_vector_roundtrip():
    vv = VersionVector({"a": 1, "b": 200})
    assert _rt(Message("T", "a", "b", {"vv": vv})).payload["vv"] == vv


def test_unregistered_type_raises():
    class Foreign:
        pass

    with pytest.raises(CodecError, match="not wire-encodable"):
        BinaryCodec().encode(Message("T", "a", "b", {"bad": Foreign()}))


def test_decode_garbage_raises():
    with pytest.raises(CodecError, match="magic"):
        BinaryCodec().decode(b"\xffgarbage")
    with pytest.raises(CodecError, match="empty"):
        BinaryCodec().decode(b"")


def test_decode_truncated_frame_raises():
    raw = BinaryCodec().encode(Message("T", "a", "b", {"n": 1}))
    with pytest.raises(CodecError):
        BinaryCodec().decode(raw[: len(raw) // 2])


def test_decode_json_frame_falls_back():
    """A mixed link can hand a JSON frame to the binary decoder (the
    pre-negotiation hello, or a legacy peer); magic 0x7b routes it to
    the JSON fallback."""
    m = Message("T", "a", "b", {"x": 1})
    raw = JsonCodec().encode(m)
    assert BinaryCodec().decode(raw) == m


def test_raw_frame_magic():
    raw = BinaryCodec().encode(Message("T", "a", "b", {}))
    assert raw[0] == MAGIC_RAW


def test_compression_applied_above_threshold():
    stats = MessageStats()
    codec = BinaryCodec(compress_level=6, compress_min_bytes=64)
    codec.stats = stats
    m = Message("T", "a", "b", {"cells": {f"c{i:03d}": 7 for i in range(100)}})
    raw = codec.encode(m)
    assert raw[0] == MAGIC_ZLIB
    assert stats.frames_compressed == 1 and stats.frames_stored == 0
    assert stats.bytes_saved_compression > 0
    assert codec.decode(raw) == m


def test_small_frames_stored_uncompressed():
    stats = MessageStats()
    codec = BinaryCodec(compress_level=6, compress_min_bytes=200)
    codec.stats = stats
    raw = codec.encode(Message("T", "a", "b", {"n": 1}))
    assert raw[0] == MAGIC_RAW
    assert stats.frames_stored == 1 and stats.frames_compressed == 0


def test_incompressible_frames_stored():
    import os
    import zlib

    stats = MessageStats()
    codec = BinaryCodec(compress_level=6, compress_min_bytes=16)
    codec.stats = stats
    # Already-compressed bytes cannot shrink again: the adaptive check
    # must keep the raw form and count the frame as stored.
    body = bytearray(zlib.compress(os.urandom(600), 9))
    raw = codec._finish_frame(body)
    assert raw[0] == MAGIC_RAW
    assert raw[1:] == bytes(body)
    assert stats.frames_stored == 1 and stats.frames_compressed == 0


def test_compression_disabled_by_default():
    stats = MessageStats()
    codec = BinaryCodec()
    codec.stats = stats
    raw = codec.encode(
        Message("T", "a", "b", {"cells": {f"c{i:03d}": 7 for i in range(200)}})
    )
    assert raw[0] == MAGIC_RAW
    # No compression configured: neither counter moves.
    assert stats.frames_stored == 0 and stats.frames_compressed == 0


def test_invalid_compress_level_rejected():
    with pytest.raises(CodecError, match="compress_level"):
        BinaryCodec(compress_level=11)


def test_binary_smaller_than_json_on_image_payload():
    img = ObjectImage()
    for i in range(64):
        img.put(f"c{i:04d}", i)
    m = Message("PULL_DATA", "dir", "cm", {"image": img})
    assert len(BinaryCodec().encode(m)) * 2 <= len(JsonCodec().encode(m))


def test_no_last_encoded_size_alias():
    codec = BinaryCodec()
    codec.encode(Message("T", "a", "b", {"n": 1}))
    assert not hasattr(codec, "last_encoded_size")


def test_concurrent_encodes_produce_consistent_frames():
    """Frames must be sized from their own bytes: many threads sharing
    one codec still each get a self-consistent, decodable frame."""
    codec = BinaryCodec(compress_level=6, compress_min_bytes=64)
    errors = []

    def worker(i):
        try:
            m = Message("T", "a", "b", {"i": i, "pad": "x" * (i * 13 % 300)})
            for _ in range(50):
                if codec.decode(codec.encode(m)) != m:
                    errors.append(i)
                    return
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


# -- codec resolution --------------------------------------------------------

def test_resolve_codec_specs():
    assert isinstance(resolve_codec(None), JsonCodec)
    assert isinstance(resolve_codec("json"), JsonCodec)
    assert isinstance(resolve_codec("binary"), BinaryCodec)
    z = resolve_codec("binary+zlib")
    assert isinstance(z, BinaryCodec) and z.compress_level == 6
    inst = BinaryCodec()
    assert resolve_codec(inst) is inst


def test_resolve_codec_rejects_unknown():
    with pytest.raises(CodecError, match="unknown codec spec"):
        resolve_codec("msgpack")
    with pytest.raises(CodecError, match="not a codec"):
        resolve_codec(42)


def test_codec_name():
    assert codec_name(JsonCodec()) == "json"
    assert codec_name(BinaryCodec()) == "binary"
    # Compressed and raw binary share one wire name: the magic byte
    # distinguishes them, so any binary decoder handles both.
    assert codec_name(BinaryCodec(compress_level=9)) == "binary"
