"""Unit tests for repro.net.codec."""

import pytest

from repro.errors import CodecError
from repro.net import JsonCodec, Message, register_codec_type
from repro.net.codec import registered_tags, roundtrip


class _Point:
    def __init__(self, x, y):
        self.x, self.y = x, y

    def __eq__(self, other):
        return isinstance(other, _Point) and (self.x, self.y) == (other.x, other.y)


register_codec_type(
    "test.point",
    _Point,
    to_jsonable=lambda p: {"x": p.x, "y": p.y},
    from_jsonable=lambda d: _Point(d["x"], d["y"]),
)


def test_plain_payload_roundtrip():
    m = Message("T", "a", "b", {"n": 1, "s": "x", "f": 2.5, "b": True, "l": [1, 2]})
    m2 = roundtrip(m)
    assert m2.payload == m.payload
    assert m2.msg_type == "T" and m2.msg_id == m.msg_id


def test_registered_type_roundtrip():
    m = Message("T", "a", "b", {"pt": _Point(3, 4)})
    m2 = roundtrip(m)
    assert m2.payload["pt"] == _Point(3, 4)


def test_nested_registered_types():
    m = Message("T", "a", "b", {"pts": [_Point(0, 0), {"inner": _Point(1, 1)}]})
    m2 = roundtrip(m)
    assert m2.payload["pts"][0] == _Point(0, 0)
    assert m2.payload["pts"][1]["inner"] == _Point(1, 1)


def test_unregistered_type_raises():
    class Foreign:
        pass

    m = Message("T", "a", "b", {"bad": Foreign()})
    with pytest.raises(CodecError, match="not wire-encodable"):
        JsonCodec().encode(m)


def test_reregistering_same_pair_is_noop():
    register_codec_type(
        "test.point",
        _Point,
        to_jsonable=lambda p: {"x": p.x, "y": p.y},
        from_jsonable=lambda d: _Point(d["x"], d["y"]),
    )
    assert "test.point" in registered_tags()


def test_conflicting_registration_rejected():
    class Other:
        pass

    with pytest.raises(CodecError, match="already bound"):
        register_codec_type("test.point", Other, lambda o: {}, lambda d: Other())


def test_reregistering_with_different_converters_rejected():
    """Same (tag, cls) but behaviorally different converters must raise
    instead of silently keeping whichever registration ran first."""
    with pytest.raises(CodecError, match="different"):
        register_codec_type(
            "test.point",
            _Point,
            to_jsonable=lambda p: {"x": p.x * 2, "y": p.y},  # not the same!
            from_jsonable=lambda d: _Point(d["x"], d["y"]),
        )


def test_registration_during_concurrent_dispatch_is_safe():
    """A late register_codec_type while other threads encode must not
    pin a stale negative dispatch memo for the new class."""
    import threading

    from repro.net import codec as codec_mod

    class _Late:
        def __init__(self, v):
            self.v = v

        def __eq__(self, other):
            return isinstance(other, _Late) and self.v == other.v

    codec = JsonCodec()
    stop = threading.Event()
    errors = []

    def churn():
        # Keep the dispatch memo hot (and repopulating) from a second
        # thread while the main thread registers a new type.
        m = Message("T", "a", "b", {"n": [1, {"s": "x"}]})
        while not stop.is_set():
            try:
                codec.decode(codec.encode(m))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    t = threading.Thread(target=churn)
    t.start()
    try:
        for i in range(50):
            tag = f"test.late.{i}"

            class _LateN(_Late):
                pass

            register_codec_type(
                tag, _LateN,
                to_jsonable=lambda o: {"v": o.v},
                from_jsonable=lambda d, cls=_LateN: cls(d["v"]),
            )
            # The freshly registered class must dispatch immediately.
            assert codec_mod._dispatch_for(_LateN) is not None
            m2 = roundtrip(Message("T", "a", "b", {"o": _LateN(i)}))
            assert m2.payload["o"].v == i
    finally:
        stop.set()
        t.join()
    assert not errors


def test_decode_garbage_raises():
    with pytest.raises(CodecError):
        JsonCodec().decode(b"\xff\xfe not json")


def test_decode_non_message_json_raises():
    with pytest.raises(CodecError, match="not a message"):
        JsonCodec().decode(b'{"hello": 1}')


def test_reserved_key_in_user_dict_roundtrips():
    """Regression (found by hypothesis): a plain payload dict whose key
    is the reserved '__type__' must survive, not be misparsed as a tag."""
    payload = {"cellmap": {"__type__": [1, 2], "normal": "x"}}
    m2 = roundtrip(Message("T", "a", "b", payload))
    assert m2.payload == payload


def test_reserved_key_inside_registered_object_roundtrips():
    from repro.core import ObjectImage

    img = ObjectImage({"__type__": 42, "ok": 1})
    m2 = roundtrip(Message("T", "a", "b", {"image": img}))
    assert m2.payload["image"].cells == {"__type__": 42, "ok": 1}


def test_non_string_tag_rejected_cleanly():
    with pytest.raises(CodecError, match="unknown codec tag"):
        JsonCodec().decode(
            b'{"msg_type":"T","src":"a","dst":"b",'
            b'"payload":{"x":{"__type__":[1,2],"data":{}}},"msg_id":1}'
        )


def test_decode_unknown_tag_raises():
    with pytest.raises(CodecError, match="unknown codec tag"):
        JsonCodec().decode(
            b'{"msg_type":"T","src":"a","dst":"b",'
            b'"payload":{"x":{"__type__":"no.such.tag","data":{}}},"msg_id":1}'
        )
