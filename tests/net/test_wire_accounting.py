"""Wire-bytes accounting: per-type byte counters and image classification."""

from repro.core.image import DeltaImage, ObjectImage
from repro.net import JsonCodec, Message
from repro.net.sim_transport import SimTransport
from repro.net.stats import MessageStats, StatsSnapshot
from repro.sim.kernel import SimKernel


def _image(cells):
    img = ObjectImage()
    for k, v in cells.items():
        img.put(k, v)
    return img


def test_codec_keeps_no_per_encode_state():
    """The retired ``last_encoded_size`` alias must stay gone: a codec
    shared across sending threads carries no mutable per-encode state
    that a racing encode could clobber."""
    codec = JsonCodec()
    codec.encode(Message("T", "a", "b", {"n": 1, "s": "hello"}))
    assert not hasattr(codec, "last_encoded_size")


def test_sim_strict_wire_sizes_frames_from_returned_bytes():
    """Regression: strict-wire accounting must size frames from the
    returned bytes, never from shared codec state — simulate a stale
    attribute a racing encode might leave behind and check the byte
    counters ignore it."""
    kernel = SimKernel()
    transport = SimTransport(kernel, strict_wire=True)
    real_encode = transport.codec.encode

    def racing_encode(msg):
        raw = real_encode(msg)
        # A stale size attribute left by a concurrent encode; framing
        # must not consult it.
        transport.codec.last_encoded_size = 7
        return raw

    transport.codec.encode = racing_encode
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: None)
    msg = Message("T", "a", "b", {"pad": "x" * 100})
    transport.send(msg)
    kernel.run()
    true_size = len(real_encode(msg))
    assert transport.stats.bytes_sent == true_size != 7
    assert transport.stats.bytes_by_type["T"] == true_size


def test_plain_object_image_counts_as_full():
    stats = MessageStats()
    stats.record(Message("PULL_DATA", "dir", "cm", {"image": _image({"a": 1, "b": 2})}))
    assert stats.images_full == 1
    assert stats.images_delta == 0
    assert stats.cells_sent == 2
    assert stats.cells_skipped == 0


def test_complete_delta_image_counts_as_full():
    stats = MessageStats()
    img = DeltaImage(_image({"a": 1}), complete=True, slice_size=1)
    stats.record(Message("INIT_DATA", "dir", "cm", {"image": img}))
    assert stats.images_full == 1 and stats.images_delta == 0
    assert stats.cells_sent == 1


def test_partial_delta_image_counts_skipped_cells():
    stats = MessageStats()
    img = DeltaImage(_image({"a": 1, "b": 2}), base_seq=4, as_of=9, slice_size=10)
    stats.record(Message("PULL_DATA", "dir", "cm", {"image": img}))
    assert stats.images_delta == 1 and stats.images_full == 0
    assert stats.cells_sent == 2
    assert stats.cells_skipped == 8


def test_non_image_replies_are_not_classified():
    stats = MessageStats()
    stats.record(Message("PUSH", "cm", "dir", {"image": _image({"a": 1})}))
    assert stats.images_full == 0 and stats.cells_sent == 0


def test_bytes_by_type_requires_size():
    stats = MessageStats()
    stats.record(Message("PULL_REQ", "cm", "dir", {}))
    assert "PULL_REQ" not in stats.bytes_by_type
    stats.record(Message("PULL_REQ", "cm", "dir", {}), size=120)
    stats.record(Message("PULL_REQ", "cm", "dir", {}), size=80)
    assert stats.bytes_by_type["PULL_REQ"] == 200
    assert stats.bytes_sent == 200


def test_snapshot_delta_and_reset_cover_new_fields():
    stats = MessageStats()
    stats.record(
        Message("PULL_DATA", "dir", "cm",
                {"image": DeltaImage(_image({"a": 1}), slice_size=4)}),
        size=100,
    )
    before = stats.snapshot()
    stats.record(
        Message("PULL_DATA", "dir", "cm", {"image": _image({"a": 1, "b": 2})}),
        size=60,
    )
    stats.record_compression(40)
    stats.record_stored()
    diff = stats.snapshot().delta(before)
    assert isinstance(diff, StatsSnapshot)
    assert diff.bytes_by_type == {"PULL_DATA": 60}
    assert diff.images_full == 1 and diff.images_delta == 0
    assert diff.cells_sent == 2 and diff.cells_skipped == 0
    assert diff.frames_compressed == 1 and diff.frames_stored == 1
    assert diff.bytes_saved_compression == 40
    stats.reset()
    assert stats.images_full == stats.images_delta == 0
    assert stats.cells_sent == stats.cells_skipped == 0
    assert stats.frames_compressed == stats.frames_stored == 0
    assert stats.bytes_saved_compression == 0
    assert not stats.bytes_by_type


def test_summary_mentions_compression():
    stats = MessageStats()
    stats.record_compression(128)
    stats.record_stored()
    assert "compressed=1" in stats.summary()
    assert "saved_bytes=128" in stats.summary()


def test_strict_wire_transport_populates_bytes_by_type():
    kernel = SimKernel()
    transport = SimTransport(kernel, strict_wire=True)
    got = []
    transport.bind("b", got.append)
    transport.bind("a", lambda m: None)
    transport.send(Message("T", "a", "b", {"payload": list(range(50))}))
    kernel.run()
    assert len(got) == 1
    assert transport.stats.bytes_by_type["T"] == transport.stats.bytes_sent > 50


def test_summary_mentions_image_split():
    stats = MessageStats()
    stats.record(
        Message("PULL_DATA", "dir", "cm",
                {"image": DeltaImage(_image({"a": 1}), slice_size=3)})
    )
    assert "delta=1" in stats.summary()
    assert "cells_skipped=2" in stats.summary()
