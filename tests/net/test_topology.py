"""Unit tests for repro.net.topology."""

import pytest

from repro.errors import TransportError
from repro.net import Topology, lan_topology, wan_topology


def test_latency_uses_min_latency_path():
    t = Topology()
    for n in "abcd":
        t.add_node(n)
    t.add_link("a", "b", latency=1.0)
    t.add_link("b", "d", latency=1.0)
    t.add_link("a", "c", latency=0.25)
    t.add_link("c", "d", latency=0.25)
    lat, nodes = t.path("a", "d")
    assert lat == 0.5
    assert nodes == ["a", "c", "d"]


def test_self_latency_zero():
    t = Topology()
    t.add_node("a")
    assert t.latency("a", "a") == 0.0


def test_no_path_raises():
    t = Topology()
    t.add_node("a")
    t.add_node("b")
    with pytest.raises(TransportError, match="no path"):
        t.latency("a", "b")


def test_unknown_node_raises():
    t = Topology()
    t.add_node("a")
    with pytest.raises(TransportError):
        t.latency("a", "ghost")


def test_negative_latency_rejected():
    t = Topology()
    t.add_node("a")
    t.add_node("b")
    with pytest.raises(TransportError):
        t.add_link("a", "b", latency=-1)


def test_path_cache_invalidated_by_new_link():
    t = Topology()
    for n in "ab":
        t.add_node(n)
    t.add_link("a", "b", latency=10.0)
    assert t.latency("a", "b") == 10.0
    t.add_node("c")
    t.add_link("a", "c", latency=1.0)
    t.add_link("c", "b", latency=1.0)
    assert t.latency("a", "b") == 2.0


def test_lan_topology_shape():
    t = lan_topology(["h1", "h2", "h3"], latency=0.5)
    assert t.latency("h1", "h2") == 1.0
    assert t.latency("h1", "lan-switch") == 0.5
    assert sorted(t.neighbors("lan-switch")) == ["h1", "h2", "h3"]


def test_wan_topology_domains_and_insecure_backbone():
    t = wan_topology(
        {"d1": ["a"], "d2": ["b"]}, internet_latency=20.0, lan_latency=0.5
    )
    # same domain cheap, cross-domain through core
    assert t.latency("a", "b") == 0.5 + 20.0 + 20.0 + 0.5
    insecure = t.insecure_links_on_path("a", "b")
    assert ("d1-switch", "internet") in insecure or ("internet", "d1-switch") in insecure
    assert len(insecure) == 2


def test_wan_topology_secure_backbone_option():
    t = wan_topology({"d1": ["a"], "d2": ["b"]}, insecure_backbone=False)
    assert t.insecure_links_on_path("a", "b") == []


def test_node_and_link_attrs():
    t = wan_topology({"d1": ["a"]})
    assert t.node_attrs("a")["domain"] == "d1"
    assert t.link_attrs("a", "d1-switch")["secure"] is True
