"""Tests for seeded latency jitter in the simulated transport."""

import pytest

from repro.errors import TransportError
from repro.net import Message, SimTransport
from repro.sim import SimKernel


def arrivals(jitter, seed=0, n=20):
    k = SimKernel()
    tr = SimTransport(k, default_latency=10.0, jitter=jitter, jitter_seed=seed)
    times = []
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: times.append(k.now))
    for _ in range(n):
        tr.send(Message("X", "a", "b"))
    k.run()
    return times


def test_zero_jitter_is_exact():
    assert all(t == 10.0 for t in arrivals(0.0))


def test_jitter_spreads_delays_within_bounds():
    times = arrivals(0.3)
    assert len(set(times)) > 1
    assert all(7.0 <= t <= 13.0 for t in times)


def test_jitter_is_deterministic_per_seed():
    assert arrivals(0.3, seed=5) == arrivals(0.3, seed=5)
    assert arrivals(0.3, seed=5) != arrivals(0.3, seed=6)


def test_invalid_jitter_rejected():
    k = SimKernel()
    with pytest.raises(TransportError, match="jitter"):
        SimTransport(k, jitter=1.5)
    with pytest.raises(TransportError):
        SimTransport(k, jitter=-0.1)


def test_protocol_correct_under_jitter():
    """Strong-mode serializability survives reordered deliveries."""
    from repro.testing import ProtocolFixture

    fx = ProtocolFixture(store_cells={"a": 0})
    fx.transport.jitter = 0.4
    from repro.sim.rng import stream_for

    fx.transport._jitter_rng = stream_for(7, "transport-jitter")
    cms = [fx.add_agent(f"v{i}", ["a"], mode="strong") for i in range(3)]

    def script(cm, agent):
        yield cm.start()
        yield cm.init_image()
        for _ in range(3):
            yield cm.start_use_image()
            agent.local["a"] += 1
            cm.end_use_image()
        yield cm.kill_image()

    fx.run_scripts(*(script(cm, a) for cm, a in cms))
    assert fx.store.cells["a"] == 9
    fx.system.directory.check_invariants()
