"""Three backends, one protocol: sim / threaded TCP / asyncio TCP.

The Flecc engines must be unable to tell which transport they run on.
These tests replay one deterministic protocol script on all three
backends and assert *identical* Fig-4 message-type counts and identical
end state — then prove the composition claims: ReliableTransport and
the sharded directory plane (ShardRouter) run unmodified on the asyncio
backend.
"""

import pytest

from repro import testing
from repro.core.sharding import ShardedFleccSystem
from repro.core.system import FleccSystem, run_all_scripts
from repro.net import resolve_transport, transport_name
from repro.net.message import reset_message_ids

BACKENDS = ("sim", "tcp", "aio")


def _lifecycle_run(spec: str, concurrent_rounds=None):
    """One deterministic two-phase workload; returns (end state, by_type,
    per-view results).  Phases are sequential single-actor lifecycles, so
    message counts cannot depend on wall-clock races — that is what
    makes exact count parity assertable on real sockets."""
    reset_message_ids()
    transport = resolve_transport(spec)
    store = testing.Store({"a": 10, "b": 20})
    system = FleccSystem(
        transport,
        store,
        testing.extract_from_object,
        testing.merge_into_object,
        extract_cells=testing.extract_cells,
        concurrent_rounds=concurrent_rounds,
    )
    weak_agent, strong_agent = testing.Agent(), testing.Agent()
    weak = system.add_view(
        "weak-view", weak_agent, testing.props_for(["a"]),
        testing.extract_from_view, testing.merge_into_view, mode="weak",
    )
    strong = system.add_view(
        "strong-view", strong_agent, testing.props_for(["a", "b"]),
        testing.extract_from_view, testing.merge_into_view, mode="strong",
    )

    def weak_script():
        yield weak.start()
        yield weak.init_image()
        yield weak.start_use_image()
        weak_agent.local["a"] = 99
        weak.end_use_image()
        yield weak.push_image()
        yield weak.kill_image()
        return weak_agent.local.get("a")

    def strong_script():
        yield strong.start()
        yield strong.init_image()
        yield strong.start_use_image()
        strong_agent.local["b"] = strong_agent.local.get("b", 0) + 1
        strong.end_use_image()
        yield strong.kill_image()
        return strong_agent.local.get("b")

    results = run_all_scripts(transport, [weak_script()])
    results += run_all_scripts(transport, [strong_script()])
    state = dict(store.cells)
    by_type = dict(transport.stats.by_type)
    system.close()
    transport.close()
    return state, by_type, results


@pytest.fixture(scope="module")
def lifecycle_runs():
    return {spec: _lifecycle_run(spec) for spec in BACKENDS}


def test_end_state_identical_across_backends(lifecycle_runs):
    states = {spec: run[0] for spec, run in lifecycle_runs.items()}
    assert states["sim"] == states["tcp"] == states["aio"]
    # And it is the *right* state, not three copies of the same bug.
    assert states["sim"] == {"a": 99, "b": 21}


def test_fig4_message_counts_identical_across_backends(lifecycle_runs):
    counts = {spec: run[1] for spec, run in lifecycle_runs.items()}
    assert counts["sim"] == counts["tcp"] == counts["aio"]
    # The scripted lifecycle has an exact expected message census.
    reference = counts["sim"]
    for mt in (
        "REGISTER", "REGISTER_ACK", "INIT_REQ", "INIT_DATA",
        "UNREGISTER", "UNREGISTER_ACK",
    ):
        assert reference[mt] == 2, (mt, reference)
    assert "BATCH" not in reference  # envelopes never leak into Fig-4


def test_view_results_identical_across_backends(lifecycle_runs):
    results = {spec: run[2] for spec, run in lifecycle_runs.items()}
    assert results["sim"] == results["tcp"] == results["aio"] == [99, 21]


# ---------------------------------------------------------------------------
# Stacking: the composition layers must not care which backend is under them
# ---------------------------------------------------------------------------


def _strong_increment_workload(system, transport, n_agents=2):
    agents = [testing.Agent() for _ in range(n_agents)]
    views = [
        system.add_view(
            f"v{i}", agents[i], testing.props_for(["a"]),
            testing.extract_from_view, testing.merge_into_view, mode="strong",
        )
        for i in range(n_agents)
    ]

    def script(i):
        view, agent = views[i], agents[i]
        yield view.start()
        yield view.init_image()
        for _ in range(3):
            yield view.start_use_image()
            agent.local["a"] = agent.local.get("a", 0) + 1
            view.end_use_image()
        yield view.kill_image()

    # Sequential scripts: strong mode's serializability is what the
    # cross-cycle increments then prove (3 agents x 3 increments = 9).
    for i in range(n_agents):
        run_all_scripts(transport, [script(i)])


def test_reliable_transport_stacks_on_aio():
    from repro.net.reliability import ReliableTransport

    reset_message_ids()
    inner = resolve_transport("aio")
    transport = ReliableTransport(inner)
    store = testing.Store({"a": 0})
    system = FleccSystem(
        transport, store,
        testing.extract_from_object, testing.merge_into_object,
        extract_cells=testing.extract_cells,
    )
    _strong_increment_workload(system, transport, n_agents=3)
    assert store.cells["a"] == 9
    # Reliability frames (R_DATA/R_ACK) ride the inner transport; the
    # logical Fig-4 census on the wrapper stays envelope-free.
    assert "BATCH" not in transport.stats.by_type
    assert inner.stats.total > 0
    system.close()
    transport.close()


def test_concurrent_scheduler_parity_across_backends(lifecycle_runs):
    """The concurrent round scheduler (PR 10) must be invisible at this
    workload: ``concurrent_rounds=4`` on all three backends produces
    the same end state and Fig-4 census as the serial runs."""
    runs = {
        spec: _lifecycle_run(spec, concurrent_rounds=4) for spec in BACKENDS
    }
    states = {spec: run[0] for spec, run in runs.items()}
    counts = {spec: run[1] for spec, run in runs.items()}
    assert states["sim"] == states["tcp"] == states["aio"]
    assert counts["sim"] == counts["tcp"] == counts["aio"]
    # And identical to the serial-scheduler reference runs.
    assert states["sim"] == lifecycle_runs["sim"][0]
    assert counts["sim"] == lifecycle_runs["sim"][1]


def test_sharded_plane_runs_on_aio():
    reset_message_ids()
    store = testing.Store({"a": 0, "b": 0})
    system = ShardedFleccSystem(
        "aio",
        store,
        testing.extract_from_object,
        testing.merge_into_object,
        n_shards=4,
        extract_cells=testing.extract_cells,
    )
    transport = system.transport  # the ShardRouter, riding the aio backend
    assert transport_name(transport.inner) == "aio"
    _strong_increment_workload(system, transport, n_agents=3)
    assert store.cells["a"] == 9
    system.close()
    transport.close()
