"""Unit tests for repro.net.message."""

from repro.net import Message


def test_message_ids_unique_and_increasing():
    a = Message("PING", "x", "y")
    b = Message("PING", "x", "y")
    assert b.msg_id > a.msg_id


def test_reply_swaps_endpoints_and_correlates():
    req = Message("PULL_REQ", "cm-1", "dir", {"view": "v1"})
    resp = req.reply("PULL_DATA", {"version": 3})
    assert resp.src == "dir" and resp.dst == "cm-1"
    assert resp.reply_to == req.msg_id
    assert resp.payload == {"version": 3}


def test_reply_default_payload_empty():
    resp = Message("A", "x", "y").reply("B")
    assert resp.payload == {}


def test_dict_roundtrip():
    m = Message("X", "a", "b", {"k": [1, 2]}, reply_to=7)
    m2 = Message.from_dict(m.to_dict())
    assert m2.msg_type == "X" and m2.src == "a" and m2.dst == "b"
    assert m2.payload == {"k": [1, 2]}
    assert m2.msg_id == m.msg_id and m2.reply_to == 7


def test_str_includes_route_and_correlation():
    m = Message("HELLO", "a", "b")
    assert "a -> b HELLO" in str(m)
    r = m.reply("ACK")
    assert f"re:{m.msg_id}" in str(r)
