"""Unit tests for repro.net.stats."""

from repro.net import Message, MessageStats


def _msg(t="PING", src="a", dst="b"):
    return Message(t, src, dst)


def test_record_counts_by_type_and_pair():
    s = MessageStats()
    s.record(_msg("A", "x", "y"))
    s.record(_msg("A", "x", "y"))
    s.record(_msg("B", "y", "x"), size=10)
    assert s.total == 3
    assert s.by_type["A"] == 2 and s.by_type["B"] == 1
    assert s.by_pair[("x", "y")] == 2
    assert s.bytes_sent == 10


def test_count_for_types():
    s = MessageStats()
    for t in ["A", "A", "B", "C"]:
        s.record(_msg(t))
    assert s.count_for_types("A", "C") == 3
    assert s.count_for_types("Z") == 0


def test_count_involving_address():
    s = MessageStats()
    s.record(_msg("A", "dir", "cm1"))
    s.record(_msg("A", "cm2", "dir"))
    s.record(_msg("A", "cm1", "cm2"))
    assert s.count_involving("dir") == 2
    assert s.count_involving("cm1") == 2


def test_snapshot_delta():
    s = MessageStats()
    s.record(_msg("A"))
    snap = s.snapshot()
    s.record(_msg("A"))
    s.record(_msg("B"))
    d = s.snapshot().delta(snap)
    assert d.total == 2
    assert d.by_type == {"A": 1, "B": 1}


def test_reset_clears_everything():
    s = MessageStats()
    s.record(_msg(), size=5)
    s.record_drop(_msg())
    s.reset()
    assert s.total == 0 and s.bytes_sent == 0 and s.dropped == 0
    assert not s.by_type and not s.by_pair


def test_summary_lists_types_by_count():
    s = MessageStats()
    for t in ["B", "A", "A"]:
        s.record(_msg(t))
    out = s.summary()
    assert "total messages: 3" in out
    assert out.index("A") < out.index("B")
