"""Unit tests for repro.net.tcp_transport (real sockets on localhost)."""

import threading
import time

import pytest

from repro.errors import TransportError
from repro.net import Message, TcpTransport, ThreadCompletion


@pytest.fixture()
def transport():
    tr = TcpTransport()
    yield tr
    tr.close()


def test_send_and_receive_over_sockets(transport):
    got = []
    done = threading.Event()

    def handler(m):
        got.append(m)
        done.set()

    transport.bind("a", lambda m: None)
    transport.bind("b", handler)
    transport.send(Message("HELLO", "a", "b", {"x": 1}))
    assert done.wait(5.0)
    assert got[0].msg_type == "HELLO" and got[0].payload == {"x": 1}


def test_request_reply_roundtrip(transport):
    done = threading.Event()
    answers = []

    def server(m):
        if m.msg_type == "ASK":
            server_ep.send(m.reply("ANSWER", {"n": m.payload["n"] * 2}))

    def client(m):
        answers.append(m)
        done.set()

    server_ep = transport.bind("server", server)
    transport.bind("client", client)
    transport.send(Message("ASK", "client", "server", {"n": 21}))
    assert done.wait(5.0)
    assert answers[0].msg_type == "ANSWER" and answers[0].payload == {"n": 42}
    assert answers[0].reply_to is not None


def test_many_messages_arrive_in_order(transport):
    got = []
    done = threading.Event()

    def handler(m):
        got.append(m.payload["i"])
        if len(got) == 50:
            done.set()

    transport.bind("a", lambda m: None)
    transport.bind("b", handler)
    for i in range(50):
        transport.send(Message("SEQ", "a", "b", {"i": i}))
    assert done.wait(5.0)
    assert got == list(range(50))


def test_frame_length_immune_to_racing_codec_state(transport):
    """Regression: the length prefix must be measured from the actual
    frame bytes, never from shared codec state — send() runs
    concurrently from listener/timer threads, so framing that consulted
    a codec attribute a racing encode can overwrite would corrupt the
    stream for every later frame on the connection.  Simulate such a
    stale attribute and check framing stays intact."""
    got = []
    done = threading.Event()
    transport.bind("a", lambda m: None)

    def handler(m):
        got.append(m.payload["i"])
        if len(got) == 20:
            done.set()

    transport.bind("b", handler)
    real_encode = transport.codec.encode

    def racing_encode(msg):
        raw = real_encode(msg)
        # A stale size attribute left by a concurrent encode; framing
        # must not consult it.
        transport.codec.last_encoded_size = 7
        return raw

    transport.codec.encode = racing_encode
    for i in range(20):
        transport.send(Message("SEQ", "a", "b", {"i": i, "pad": "x" * i}))
    assert done.wait(5.0)
    assert got == list(range(20))


def test_send_to_unbound_address_is_counted_as_drop(transport):
    transport.bind("a", lambda m: None)
    transport.send(Message("X", "a", "nowhere"))
    assert transport.stats.dropped == 1


def test_stats_count_bytes(transport):
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: None)
    transport.send(Message("X", "a", "b", {"data": "y" * 100}))
    assert transport.stats.bytes_sent > 100


def test_now_advances_with_wall_clock(transport):
    t1 = transport.now()
    time.sleep(0.02)
    t2 = transport.now()
    # default scale: 1000 units/second => ~20 units after 20 ms
    assert t2 - t1 >= 10


def test_schedule_runs_and_cancel_works(transport):
    ran = []
    ev = threading.Event()
    transport.schedule(10.0, lambda: (ran.append("a"), ev.set()))
    h = transport.schedule(10.0, lambda: ran.append("b"))
    h.cancel()
    assert ev.wait(5.0)
    time.sleep(0.05)
    assert ran == ["a"]


def test_thread_completion_wait_and_value():
    c = ThreadCompletion("t")
    threading.Timer(0.01, lambda: c.resolve(99)).start()
    assert c.wait(5.0) == 99
    assert c.done


def test_thread_completion_timeout():
    c = ThreadCompletion("t")
    with pytest.raises(TransportError, match="timed out"):
        c.wait(0.01)


def test_thread_completion_failure_propagates():
    c = ThreadCompletion("t")
    c.fail(ValueError("nope"))
    with pytest.raises(ValueError, match="nope"):
        c.wait(1.0)


def test_thread_completion_double_resolve_rejected():
    c = ThreadCompletion()
    c.resolve(1)
    with pytest.raises(TransportError):
        c.resolve(2)


def test_thread_completion_then_callback_runs():
    c = ThreadCompletion()
    seen = []
    c.then(lambda comp: seen.append(comp.value))
    c.resolve("v")
    assert seen == ["v"]
    # late registration fires immediately
    c.then(lambda comp: seen.append("late"))
    assert seen == ["v", "late"]


def test_reconnect_after_endpoint_rebound(transport):
    """A cached connection dies when the peer endpoint is closed and
    re-bound on a fresh port; send() reconnects transparently."""
    got = []
    ev = threading.Event()
    transport.bind("a", lambda m: None)
    ep = transport.bind("b", lambda m: None)
    transport.send(Message("ONE", "a", "b"))
    time.sleep(0.05)
    ep.close()  # kills the listener; the cached conn goes stale
    transport.bind("b", lambda m: (got.append(m.msg_type), ev.set()))
    transport.send(Message("TWO", "a", "b"))
    assert ev.wait(5.0)
    assert got == ["TWO"]


def test_send_after_close_rejected():
    tr = TcpTransport()
    tr.bind("a", lambda m: None)
    tr.close()
    with pytest.raises(TransportError, match="closed"):
        tr.send(Message("X", "a", "a"))


# ---------------------------------------------------------------------------
# Shutdown hygiene: close() must actually reclaim reader threads
# ---------------------------------------------------------------------------


def _net_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith(("tcp-", "Thread-")) and t is not threading.current_thread()
    ]


def test_close_joins_reader_threads_within_timeout():
    tr = TcpTransport()
    done = threading.Event()
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: done.set())
    tr.send(Message("PING", "a", "b"))
    assert done.wait(5.0)
    before = threading.active_count()
    t0 = time.monotonic()
    tr.close(join_timeout=2.0)
    elapsed = time.monotonic() - t0
    assert elapsed < 2.5  # bounded even with live connections
    # The accept loops and per-connection readers exited with close();
    # give the last joins a beat, then require the count to have shrunk
    # back (no leaked daemon readers spinning on dead sockets).
    deadline = time.monotonic() + 2.0
    while threading.active_count() >= before and time.monotonic() < deadline:
        time.sleep(0.01)
    assert threading.active_count() < before


def test_close_is_idempotent_and_swallows_timer_races():
    tr = TcpTransport()
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    # A timer that fires into the closing transport must not raise on
    # its timer thread: schedule() fences the callback once closed.
    tr.schedule(30.0, lambda: tr.send(Message("LATE", "a", "b")))
    tr.close()
    tr.close()  # second close is a no-op, not an error


def test_scheduled_send_racing_close_is_silent():
    tr = TcpTransport()
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    failures = []
    hook_prev = threading.excepthook
    threading.excepthook = lambda args: failures.append(args)
    try:
        # Fire "immediately": the timer thread may run before, during,
        # or after close() — all three must be silent.
        for _ in range(5):
            tr.schedule(0.1, lambda: tr.send(Message("RACE", "a", "b")))
        tr.close()
        time.sleep(0.15)
    finally:
        threading.excepthook = hook_prev
    assert failures == []
