"""BATCH frames: construction, codec round-trip, transport splitting."""

import pytest

from repro.core.messages import BATCH as CORE_BATCH
from repro.net.codec import JsonCodec
from repro.net.message import (
    BATCH,
    Message,
    is_batch,
    make_batch,
    split_batch,
)
from repro.net.sim_transport import SimTransport
from repro.net.stats import MessageStats
from repro.net.tcp_transport import TcpTransport
from repro.net.topology import Topology
from repro.sim import SimKernel


def _subs():
    return [
        Message("INVALIDATE", "dir", "cm:a", {"view_id": "a", "requested_by": "q"}),
        Message("FETCH_REQ", "dir", "cm:b", {"view_id": "b", "requested_by": "q"}),
        Message("INVALIDATE", "dir", "cm:c", {"view_id": "c", "n": 3}),
    ]


def test_batch_constant_shared_with_core_vocabulary():
    assert CORE_BATCH == BATCH == "BATCH"


def test_make_and_split_batch_preserves_messages():
    subs = _subs()
    batch = make_batch("dir", "cm:a", subs)
    assert is_batch(batch)
    out = split_batch(batch)
    assert [m.to_dict() for m in out] == [m.to_dict() for m in subs]


def test_empty_batch_rejected():
    with pytest.raises(ValueError):
        make_batch("dir", "cm:a", [])
    with pytest.raises(ValueError):
        split_batch(Message(BATCH, "dir", "cm:a", {"messages": []}))
    with pytest.raises(ValueError):
        split_batch(Message("PUSH", "dir", "cm:a", {}))  # not a batch


def test_batch_codec_roundtrip_byte_identical_subs():
    """encode -> decode -> split: sub-messages re-encode to the same bytes."""
    codec = JsonCodec()
    subs = _subs()
    batch = make_batch("dir", "cm:a", subs)
    decoded = codec.decode(codec.encode(batch))
    assert is_batch(decoded)
    out = split_batch(decoded)
    assert [codec.encode(m) for m in out] == [codec.encode(m) for m in subs]


def test_stats_counts_batches_and_coalesced_messages():
    stats = MessageStats()
    subs = _subs()
    stats.record(make_batch("dir", "cm:a", subs), size=100)
    stats.record(subs[0], size=10)
    assert stats.batches_sent == 1
    assert stats.messages_coalesced == 3
    assert stats.total == 2  # one batch frame + one plain frame
    assert stats.by_type[BATCH] == 1
    assert "batches=1" in stats.summary()
    stats.reset()
    assert stats.batches_sent == 0
    assert stats.messages_coalesced == 0


def test_sim_transport_splits_batch_to_each_endpoint():
    kernel = SimKernel()
    transport = SimTransport(kernel)
    got = {"a": [], "b": []}
    transport.bind("cm:a", lambda m: got["a"].append(m))
    transport.bind("cm:b", lambda m: got["b"].append(m))
    ep = transport.bind("dir", lambda m: None)
    subs = [
        Message("INVALIDATE", "dir", "cm:a", {"view_id": "a"}),
        Message("FETCH_REQ", "dir", "cm:b", {"view_id": "b"}),
    ]
    ep.send(make_batch("dir", "cm:a", subs))
    kernel.run()
    assert [m.msg_type for m in got["a"]] == ["INVALIDATE"]
    assert [m.msg_type for m in got["b"]] == ["FETCH_REQ"]
    assert transport.stats.batches_sent == 1
    assert transport.stats.messages_coalesced == 2
    assert transport.stats.total == 1  # one frame on the wire


def test_sim_transport_drops_sub_for_vanished_endpoint():
    kernel = SimKernel()
    transport = SimTransport(kernel)
    got = []
    transport.bind("cm:a", got.append)
    ep = transport.bind("dir", lambda m: None)
    subs = [
        Message("INVALIDATE", "dir", "cm:a", {"view_id": "a"}),
        Message("INVALIDATE", "dir", "cm:gone", {"view_id": "gone"}),
    ]
    ep.send(make_batch("dir", "cm:a", subs))
    kernel.run()
    assert len(got) == 1  # the live endpoint's sub-message arrived
    assert transport.stats.dropped == 1  # the vanished one was dropped


def test_batch_delivery_latency_is_one_frame():
    """The batch pays the carrier destination's latency once."""
    topo = Topology()
    for n in ("h0", "h1"):
        topo.add_node(n)
    topo.add_link("h0", "h1", latency=5.0)
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=topo)
    seen_at = {}
    transport.bind("cm:a", lambda m: seen_at.setdefault("a", kernel.now))
    transport.bind("cm:b", lambda m: seen_at.setdefault("b", kernel.now))
    for addr in ("cm:a", "cm:b"):
        transport.place(addr, "h1")
    ep = transport.bind("dir", lambda m: None)
    transport.place("dir", "h0")
    subs = [
        Message("INVALIDATE", "dir", "cm:a", {}),
        Message("INVALIDATE", "dir", "cm:b", {}),
    ]
    ep.send(make_batch("dir", "cm:a", subs))
    kernel.run()
    assert seen_at == {"a": 5.0, "b": 5.0}


def test_tcp_transport_splits_batch_to_each_endpoint():
    transport = TcpTransport()
    try:
        import threading

        done = threading.Event()
        got = {"a": [], "b": []}

        def make_handler(key):
            def handler(m):
                got[key].append(m)
                if got["a"] and got["b"]:
                    done.set()
            return handler

        transport.bind("cm:a", make_handler("a"))
        transport.bind("cm:b", make_handler("b"))
        ep = transport.bind("dir", lambda m: None)
        subs = [
            Message("INVALIDATE", "dir", "cm:a", {"view_id": "a"}),
            Message("FETCH_REQ", "dir", "cm:b", {"view_id": "b"}),
        ]
        ep.send(make_batch("dir", "cm:a", subs))
        assert done.wait(5.0), "batch sub-messages not delivered over TCP"
        assert [m.msg_type for m in got["a"]] == ["INVALIDATE"]
        assert [m.msg_type for m in got["b"]] == ["FETCH_REQ"]
        assert transport.stats.batches_sent == 1
        assert transport.stats.messages_coalesced == 2
    finally:
        transport.close()
