"""Unit tests for repro.net.aio_transport (event-loop TCP on localhost).

The asyncio backend must honour the exact Transport contract the
threaded TCP backend does — same framing, same codec negotiation, same
completion semantics — plus the three things it adds: connection
multiplexing, write coalescing, and bounded-queue backpressure.
"""

import threading
import time

import pytest

from repro.errors import TransportError
from repro.net import (
    AioTcpTransport,
    Message,
    TcpTransport,
    ThreadCompletion,
    resolve_transport,
    transport_name,
)


@pytest.fixture()
def transport():
    tr = AioTcpTransport()
    yield tr
    tr.close()


def test_send_and_receive_over_event_loop(transport):
    got = []
    done = threading.Event()

    def handler(m):
        got.append(m)
        done.set()

    transport.bind("a", lambda m: None)
    transport.bind("b", handler)
    transport.send(Message("HELLO", "a", "b", {"x": 1}))
    assert done.wait(5.0)
    assert got[0].msg_type == "HELLO" and got[0].payload == {"x": 1}


def test_request_reply_roundtrip(transport):
    done = threading.Event()
    answers = []

    def server(m):
        if m.msg_type == "ASK":
            server_ep.send(m.reply("ANSWER", {"n": m.payload["n"] * 2}))

    def client(m):
        answers.append(m)
        done.set()

    server_ep = transport.bind("server", server)
    transport.bind("client", client)
    transport.send(Message("ASK", "client", "server", {"n": 21}))
    assert done.wait(5.0)
    assert answers[0].msg_type == "ANSWER" and answers[0].payload == {"n": 42}
    assert answers[0].reply_to is not None


def test_many_messages_arrive_in_order(transport):
    got = []
    done = threading.Event()

    def handler(m):
        got.append(m.payload["i"])
        if len(got) == 200:
            done.set()

    transport.bind("src", lambda m: None)
    transport.bind("dst", handler)
    for i in range(200):
        transport.send(Message("SEQ", "src", "dst", {"i": i}))
    assert done.wait(10.0)
    assert got == list(range(200))


def test_endpoints_multiplex_one_server_port(transport):
    done = threading.Event()
    seen = []

    def handler(m):
        seen.append(m.src)
        if len(seen) == 3:
            done.set()

    transport.bind("sink", handler)
    for name in ("a", "b", "c"):
        transport.bind(name, lambda m: None)
    port = transport.port
    for name in ("a", "b", "c"):
        transport.send(Message("PING", name, "sink", {}))
    assert done.wait(5.0)
    # All endpoints share the transport's single listening socket.
    assert transport.port == port
    assert sorted(seen) == ["a", "b", "c"]


def test_binary_codec_negotiates_like_tcp():
    tr = AioTcpTransport(codec="binary")
    try:
        done = threading.Event()
        tr.bind("x", lambda m: None)
        tr.bind("y", lambda m: done.set())
        tr.send(Message("PING", "x", "y", {}))
        assert done.wait(5.0)
        assert tr.negotiated_codec("x", "y") == "binary"
    finally:
        tr.close()


def test_json_is_the_default_codec(transport):
    done = threading.Event()
    transport.bind("x", lambda m: None)
    transport.bind("y", lambda m: done.set())
    transport.send(Message("PING", "x", "y", {}))
    assert done.wait(5.0)
    assert transport.negotiated_codec("x", "y") == "json"


def test_completion_bridges_loop_to_caller_thread(transport):
    comp = transport.completion("probe")
    assert isinstance(comp, ThreadCompletion)

    def resolver(m):
        comp.resolve(m.payload["v"])

    transport.bind("p", lambda m: None)
    transport.bind("q", resolver)
    transport.send(Message("SET", "p", "q", {"v": 7}))
    assert comp.wait(5.0) == 7


def test_schedule_and_cancel(transport):
    fired = []
    done = threading.Event()
    transport.schedule(5.0, lambda: (fired.append("a"), done.set()))
    handle = transport.schedule(5.0, lambda: fired.append("b"))
    handle.cancel()
    assert done.wait(5.0)
    time.sleep(0.05)
    assert fired == ["a"]


def test_send_to_unknown_destination_counts_a_drop(transport):
    transport.bind("known", lambda m: None)
    transport.send(Message("PING", "known", "ghost", {}))
    time.sleep(0.05)
    assert transport.stats.dropped >= 1


def test_send_after_close_raises():
    tr = AioTcpTransport()
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    tr.close()
    with pytest.raises(TransportError):
        tr.send(Message("PING", "a", "b", {}))


def test_close_is_idempotent(transport):
    transport.bind("a", lambda m: None)
    transport.send(Message("PING", "a", "a", {}))
    transport.close()
    transport.close()


def test_handler_exceptions_are_captured_not_fatal(transport):
    done = threading.Event()

    def bad(m):
        raise RuntimeError("boom")

    transport.bind("src", lambda m: None)
    transport.bind("bad", bad)
    transport.bind("ok", lambda m: done.set())
    transport.send(Message("PING", "src", "bad", {}))
    transport.send(Message("PING", "src", "ok", {}))
    assert done.wait(5.0)
    assert any("boom" in str(e) for e in transport.handler_errors)


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------


def test_burst_coalesces_into_fewer_frames():
    tr = AioTcpTransport()
    try:
        got = []
        done = threading.Event()

        def handler(m):
            got.append(m.payload["i"])
            if len(got) == 100:
                done.set()

        tr.bind("src", lambda m: None)
        tr.bind("dst", handler)
        tr.pause_writes()  # let the burst pile up behind the writer
        for i in range(100):
            tr.send(Message("SEQ", "src", "dst", {"i": i}))
        tr.resume_writes()
        assert done.wait(10.0)
        assert got == list(range(100))
        # Messages shared flushes (fewer drains), but without
        # wrap_batches each one is still its own encoded frame.
        assert tr.stats.flushes_coalesced > 0
        assert tr.stats.encodes == 100
    finally:
        tr.close()


def test_wrap_batches_preserves_logical_type_counts():
    tr = AioTcpTransport(wrap_batches=True)
    try:
        got = []
        done = threading.Event()

        def handler(m):
            got.append(m.payload["i"])
            if len(got) == 60:
                done.set()

        tr.bind("src", lambda m: None)
        tr.bind("dst", handler)
        tr.pause_writes()
        for i in range(60):
            tr.send(Message("DATA", "src", "dst", {"i": i}))
        tr.resume_writes()
        assert done.wait(10.0)
        assert got == list(range(60))
        # Fig-4 counting: the BATCH envelope is invisible to by_type —
        # the 60 logical messages are what is recorded.
        assert tr.stats.by_type.get("DATA") == 60
        assert "BATCH" not in tr.stats.by_type
        assert tr.stats.batches_sent >= 1
        assert tr.stats.messages_coalesced >= 2
    finally:
        tr.close()


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_full_send_queue_refuses_and_counts_stalls():
    tr = AioTcpTransport(max_queue=8)
    try:
        got = []
        all_in = threading.Event()

        def handler(m):
            got.append(m.payload["i"])
            if len(got) == 8:
                all_in.set()

        tr.bind("src", lambda m: None)
        tr.bind("dst", handler)
        tr.pause_writes()  # simulate a reader that cannot drain
        sent = stalled = 0
        for i in range(20):
            try:
                tr.send(Message("SEQ", "src", "dst", {"i": i}))
                sent += 1
            except TransportError:
                stalled += 1
        assert sent == 8 and stalled == 12
        assert tr.stats.backpressure_stalls == 12
        assert tr.stats.send_queue_hwm == 8
        tr.resume_writes()  # queue drains: nothing queued was lost
        assert all_in.wait(5.0)
        assert got == list(range(8))
    finally:
        tr.close()


def test_stacked_reliable_transport_recovers_stalled_frames():
    from repro.net.reliability import ReliableTransport

    tr = AioTcpTransport(max_queue=4)
    rel = ReliableTransport(tr, ack_timeout=50.0, max_attempts=20)
    try:
        got = []
        done = threading.Event()

        def handler(m):
            got.append(m.payload["i"])
            if len(got) == 12:
                done.set()

        rel.bind("src", lambda m: None)
        rel.bind("dst", handler)
        tr.pause_writes()
        for i in range(12):
            # The bounded queue refuses some of these; ReliableTransport
            # records the drop and retransmits on the ack timer.
            rel.send(Message("SEQ", "src", "dst", {"i": i}))
        time.sleep(0.05)
        tr.resume_writes()
        assert done.wait(20.0)
        # No frame loss end to end despite refused sends.
        assert sorted(got) == list(range(12))
    finally:
        rel.close()


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------


def test_resolve_transport_specs():
    for spec in ("aio", "asyncio", "aio-tcp"):
        tr = resolve_transport(spec)
        try:
            assert isinstance(tr, AioTcpTransport)
            assert transport_name(tr) == "aio"
        finally:
            tr.close()


def test_resolve_transport_passthrough_and_errors():
    tr = AioTcpTransport()
    try:
        assert resolve_transport(tr) is tr
        with pytest.raises(TransportError):
            resolve_transport(tr, codec="json")  # kwargs need a spec string
        with pytest.raises(TransportError):
            resolve_transport("carrier-pigeon")
    finally:
        tr.close()


def test_transport_name_distinguishes_tcp_backends():
    tcp = TcpTransport()
    try:
        assert transport_name(tcp) == "tcp"
    finally:
        tcp.close()
