"""Cross-codec property tests: for arbitrary payload trees — including
every registered Flecc domain type, non-finite floats, and unicode keys
— the binary codec's round-trip result equals the JSON codec's:

    binary.decode(binary.encode(m)) == json.decode(json.encode(m))

which is the contract that lets a negotiated link pick either format.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DiscreteSet,
    Interval,
    ObjectImage,
    Property,
    PropertySet,
    VersionVector,
)
from repro.core.image import DeltaImage
from repro.net import BinaryCodec, JsonCodec, Message

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, width=64),  # infinities allowed
    st.text(max_size=20),
)

domains = st.one_of(
    st.tuples(st.integers(-100, 0), st.integers(1, 100)).map(lambda t: Interval(*t)),
    st.sets(st.integers(-50, 50), min_size=1, max_size=5).map(DiscreteSet),
)
props = st.builds(Property, st.sampled_from(["p", "q", "Flights"]), domains)


@st.composite
def property_sets(draw):
    ps = draw(st.lists(props, max_size=3))
    seen, unique = set(), []
    for p in ps:
        if p.name not in seen:
            seen.add(p.name)
            unique.append(p)
    return PropertySet(unique)


version_vectors = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), st.integers(0, 100), max_size=3
).map(VersionVector)


@st.composite
def images(draw):
    cells = draw(st.dictionaries(st.text(min_size=1, max_size=8), scalars, max_size=4))
    return ObjectImage(cells, draw(version_vectors))


@st.composite
def delta_images(draw):
    return DeltaImage(
        draw(images()),
        base_seq=draw(st.integers(-1, 50)),
        as_of=draw(st.integers(-1, 50)),
        complete=draw(st.booleans()),
        slice_size=draw(st.integers(-1, 50)),
    )


domain_objects = st.one_of(
    props, property_sets(), version_vectors, images(), delta_images()
)

payload_values = st.recursive(
    st.one_of(scalars, domain_objects),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(min_size=1, max_size=6), children, max_size=3),
    ),
    max_leaves=12,
)

payloads = st.dictionaries(st.text(min_size=1, max_size=8), payload_values, max_size=4)


def _eq(a, b):
    """Structural equality: tuples==lists, NaN==NaN, zero-default
    version vectors (how decoded payloads may legally differ in spelling
    while being the same value)."""
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, ObjectImage) and isinstance(b, ObjectImage):
        return _eq(a.cells, b.cells) and a.versions == b.versions
    if isinstance(a, DeltaImage) and isinstance(b, DeltaImage):
        return (
            _eq(a.image, b.image)
            and (a.base_seq, a.as_of, a.complete, a.slice_size)
            == (b.base_seq, b.as_of, b.complete, b.slice_size)
        )
    return a == b


@given(payloads)
@settings(max_examples=200, deadline=None)
def test_binary_roundtrip_equals_json_roundtrip(payload):
    m = Message("T", "src", "dst", payload)
    j, b = JsonCodec(), BinaryCodec()
    via_json = j.decode(j.encode(m))
    via_binary = b.decode(b.encode(m))
    assert via_binary.msg_type == via_json.msg_type == "T"
    assert via_binary.msg_id == via_json.msg_id == m.msg_id
    assert _eq(via_binary.payload, via_json.payload)


@given(payloads)
@settings(max_examples=100, deadline=None)
def test_compressed_roundtrip_equals_raw_binary(payload):
    m = Message("T", "src", "dst", payload)
    raw = BinaryCodec()
    packed = BinaryCodec(compress_level=9, compress_min_bytes=1)
    assert _eq(
        packed.decode(packed.encode(m)).payload,
        raw.decode(raw.encode(m)).payload,
    )


@given(st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.floats(width=64),  # includes NaN and both infinities
    max_size=6,
))
@settings(max_examples=100, deadline=None)
def test_float_payloads_cross_codec(cells):
    m = Message("T", "a", "b", {"cells": cells})
    j, b = JsonCodec(), BinaryCodec()
    assert _eq(b.decode(b.encode(m)).payload, j.decode(j.encode(m)).payload)


@given(images())
@settings(max_examples=100, deadline=None)
def test_image_fast_path_matches_generic_json_lowering(img):
    m = Message("PULL_DATA", "dir", "cm", {"image": img})
    j, b = JsonCodec(), BinaryCodec()
    out_b = b.decode(b.encode(m)).payload["image"]
    out_j = j.decode(j.encode(m)).payload["image"]
    assert _eq(out_b.cells, out_j.cells)
    assert out_b.versions == out_j.versions
