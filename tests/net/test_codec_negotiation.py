"""Codec negotiation on the TCP transport: hello/welcome handshake,
fallback to JSON for legacy and mismatched peers, and the set_codec
plumbing through SimTransport / ReliableTransport / FleccSystem."""

import socket
import struct
import threading

import pytest

from repro.errors import ReproError
from repro.net import (
    BinaryCodec,
    JsonCodec,
    Message,
    ReliableTransport,
    SimTransport,
    TcpTransport,
)
from repro.net.tcp_transport import CODEC_HELLO, CODEC_WELCOME
from repro.sim.kernel import SimKernel

_LEN = struct.Struct(">I")


def _send_frame(sock, raw):
    sock.sendall(_LEN.pack(len(raw)) + raw)


def _recv_frame(sock):
    header = b""
    while len(header) < _LEN.size:
        chunk = sock.recv(_LEN.size - len(header))
        assert chunk, "peer closed during frame header"
        header += chunk
    (length,) = _LEN.unpack(header)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        assert chunk, "peer closed during frame body"
        body += chunk
    return body


@pytest.fixture()
def transport():
    tr = TcpTransport(codec="binary")
    yield tr
    tr.close()


def test_binary_codec_negotiated_between_local_endpoints(transport):
    got = []
    done = threading.Event()
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: (got.append(m), done.set()))
    transport.send(Message("HELLO", "a", "b", {"x": 1}))
    assert done.wait(5.0)
    assert got[0].payload == {"x": 1}
    assert transport.negotiated_codec("a", "b") == "binary"


def test_default_transport_negotiates_json():
    tr = TcpTransport()
    try:
        done = threading.Event()
        tr.bind("a", lambda m: None)
        tr.bind("b", lambda m: done.set())
        tr.send(Message("X", "a", "b"))
        assert done.wait(5.0)
        assert tr.negotiated_codec("a", "b") == "json"
        assert tr.preferred_codec == "json"
    finally:
        tr.close()


def test_supported_codecs_always_include_json(transport):
    assert transport.preferred_codec == "binary"
    assert set(transport.supported_codecs) == {"json", "binary"}


def test_legacy_peer_without_hello_still_delivered(transport):
    """A peer that never sends CODEC_HELLO (older code, foreign tool)
    speaks plain JSON; its first and later frames must be delivered."""
    got = []
    done = threading.Event()

    def handler(m):
        got.append(m)
        if len(got) == 2:
            done.set()

    transport.bind("dir", handler)
    codec = JsonCodec()
    with socket.create_connection(
        ("127.0.0.1", transport.port_of("dir")), timeout=5.0
    ) as sock:
        _send_frame(sock, codec.encode(Message("ONE", "ext", "dir", {"i": 1})))
        _send_frame(sock, codec.encode(Message("TWO", "ext", "dir", {"i": 2})))
        assert done.wait(5.0)
    assert [m.msg_type for m in got] == ["ONE", "TWO"]


def test_hello_answered_with_welcome_and_codec_switch(transport):
    """A hello advertising binary gets `use: binary`, and the following
    binary-encoded frame is decoded and delivered."""
    got = []
    done = threading.Event()
    transport.bind("dir", lambda m: (got.append(m), done.set()))
    json_codec, binary_codec = JsonCodec(), BinaryCodec()
    with socket.create_connection(
        ("127.0.0.1", transport.port_of("dir")), timeout=5.0
    ) as sock:
        hello = Message(
            CODEC_HELLO, "ext", "dir",
            {"supported": ["binary", "json"], "prefer": "binary"},
        )
        _send_frame(sock, json_codec.encode(hello))
        welcome = json_codec.decode(_recv_frame(sock))
        assert welcome.msg_type == CODEC_WELCOME
        assert welcome.payload["use"] == "binary"
        assert "json" in welcome.payload["supported"]
        _send_frame(
            sock, binary_codec.encode(Message("DATA", "ext", "dir", {"i": 9}))
        )
        assert done.wait(5.0)
    assert got[0].msg_type == "DATA" and got[0].payload == {"i": 9}


def test_unknown_codec_preference_falls_back_to_json(transport):
    """A peer preferring a codec this transport does not speak is told
    to use JSON — negotiation degrades, never breaks."""
    got = []
    done = threading.Event()
    transport.bind("dir", lambda m: (got.append(m), done.set()))
    json_codec = JsonCodec()
    with socket.create_connection(
        ("127.0.0.1", transport.port_of("dir")), timeout=5.0
    ) as sock:
        hello = Message(
            CODEC_HELLO, "ext", "dir",
            {"supported": ["msgpack"], "prefer": "msgpack"},
        )
        _send_frame(sock, json_codec.encode(hello))
        welcome = json_codec.decode(_recv_frame(sock))
        assert welcome.payload["use"] == "json"
        _send_frame(sock, json_codec.encode(Message("DATA", "ext", "dir", {})))
        assert done.wait(5.0)
    assert got[0].msg_type == "DATA"


def test_handler_never_sees_handshake_messages(transport):
    seen = []
    done = threading.Event()
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: (seen.append(m.msg_type), done.set()))
    transport.send(Message("APP", "a", "b"))
    assert done.wait(5.0)
    assert seen == ["APP"]


def test_set_codec_renegotiates_existing_links(transport):
    done1, done2 = threading.Event(), threading.Event()
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: (done1.set() if not done1.is_set() else done2.set()))
    transport.send(Message("X", "a", "b"))
    assert done1.wait(5.0)
    assert transport.negotiated_codec("a", "b") == "binary"
    transport.set_codec("json")
    assert transport.negotiated_codec("a", "b") is None  # conns dropped
    transport.send(Message("Y", "a", "b"))
    assert done2.wait(5.0)
    assert transport.negotiated_codec("a", "b") == "json"


def test_frame_bytes_shrink_under_binary_codec():
    from repro.core import ObjectImage

    img = ObjectImage()
    for i in range(64):
        img.put(f"c{i:04d}", i)
    payload = {"image": img}
    sizes = {}
    for spec in ("json", "binary"):
        tr = TcpTransport(codec=spec)
        try:
            done = threading.Event()
            tr.bind("a", lambda m: None)
            tr.bind("b", lambda m: done.set())
            tr.send(Message("PUSH", "a", "b", payload))
            assert done.wait(5.0)
            sizes[spec] = tr.stats.bytes_sent
        finally:
            tr.close()
    assert sizes["binary"] * 2 <= sizes["json"]


# -- sim transport / reliability / system plumbing ---------------------------

def test_sim_transport_codec_param():
    kernel = SimKernel()
    transport = SimTransport(kernel, strict_wire=True, codec="binary")
    assert isinstance(transport.codec, BinaryCodec)
    got = []
    transport.bind("a", lambda m: None)
    transport.bind("b", got.append)
    transport.send(Message("T", "a", "b", {"n": [1, 2, 3]}))
    kernel.run()
    assert got[0].payload == {"n": [1, 2, 3]}


def test_sim_transport_compression_counters_reach_stats():
    kernel = SimKernel()
    transport = SimTransport(kernel, strict_wire=True, codec="binary+zlib")
    transport.bind("a", lambda m: None)
    transport.bind("b", lambda m: None)
    transport.send(
        Message("T", "a", "b", {"cells": {f"c{i:03d}": 7 for i in range(200)}})
    )
    kernel.run()
    assert transport.stats.frames_compressed == 1
    assert transport.stats.bytes_saved_compression > 0


def test_reliable_transport_codec_passthrough():
    kernel = SimKernel()
    inner = SimTransport(kernel, strict_wire=True)
    rel = ReliableTransport(inner)
    rel.set_codec("binary")
    assert isinstance(inner.codec, BinaryCodec)
    got = []
    rel.bind("a", lambda m: None)
    rel.bind("b", got.append)
    rel.send(Message("T", "a", "b", {"x": 1}))
    kernel.run()
    assert got and got[0].payload == {"x": 1}


def test_flecc_system_codec_kwarg():
    from repro.core.system import FleccSystem
    from repro.testing import Store, extract_from_object, merge_into_object

    kernel = SimKernel()
    transport = SimTransport(kernel, strict_wire=True)
    FleccSystem(
        transport,
        Store({"a": 1}),
        extract_from_object,
        merge_into_object,
        codec="binary",
    )
    assert isinstance(transport.codec, BinaryCodec)


def test_flecc_system_codec_requires_capable_transport():
    from repro.core.system import FleccSystem
    from repro.testing import Store, extract_from_object, merge_into_object

    class Bare:
        pass

    with pytest.raises(ReproError, match="codec"):
        FleccSystem(
            Bare(),
            Store({"a": 1}),
            extract_from_object,
            merge_into_object,
            codec="binary",
        )
