"""Unit tests for repro.net.sim_transport."""

import pytest

from repro.errors import TransportError
from repro.net import Message, SimTransport, lan_topology
from repro.sim import SimKernel


def make(topology=None, **kw):
    k = SimKernel()
    return k, SimTransport(k, topology=topology, **kw)


def test_send_delivers_with_default_latency():
    k, tr = make(default_latency=2.5)
    got = []
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: got.append((k.now, m.msg_type)))
    tr.send(Message("HELLO", "a", "b"))
    k.run()
    assert got == [(2.5, "HELLO")]


def test_topology_latency_used_when_nodes_match_addresses():
    topo = lan_topology(["a", "b"], latency=0.5)
    k, tr = make(topology=topo)
    got = []
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: got.append(k.now))
    tr.send(Message("X", "a", "b"))
    k.run()
    assert got == [1.0]


def test_place_maps_logical_address_to_node():
    topo = lan_topology(["host1", "host2"], latency=0.5)
    k, tr = make(topology=topo)
    tr.bind("dir", lambda m: None)
    tr.bind("cm-1", lambda m: None)
    tr.place("dir", "host1")
    tr.place("cm-1", "host2")
    assert tr.latency_between("dir", "cm-1") == 1.0


def test_place_unknown_node_rejected():
    topo = lan_topology(["h"], latency=0.5)
    _, tr = make(topology=topo)
    with pytest.raises(TransportError):
        tr.place("x", "ghost")


def test_place_without_topology_rejected():
    _, tr = make()
    with pytest.raises(TransportError):
        tr.place("x", "n")


def test_message_to_unbound_address_is_dropped():
    k, tr = make()
    tr.bind("a", lambda m: None)
    tr.send(Message("X", "a", "ghost"))
    k.run()
    assert tr.stats.dropped == 1
    assert tr.stats.total == 1


def test_message_to_closed_endpoint_dropped():
    k, tr = make()
    got = []
    tr.bind("a", lambda m: None)
    ep = tr.bind("b", lambda m: got.append(m))
    tr.send(Message("X", "a", "b"))
    ep.close()
    k.run()
    assert got == [] and tr.stats.dropped == 1


def test_double_bind_rejected():
    _, tr = make()
    tr.bind("a", lambda m: None)
    with pytest.raises(TransportError, match="already bound"):
        tr.bind("a", lambda m: None)


def test_endpoint_send_enforces_src():
    _, tr = make()
    ep = tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    with pytest.raises(TransportError, match="cannot send as"):
        ep.send(Message("X", "someone-else", "b"))


def test_strict_wire_round_trips_payloads():
    k, tr = make(strict_wire=True)
    got = []
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: got.append(m))
    original = {"k": [1, 2, {"n": "s"}]}
    tr.send(Message("X", "a", "b", original))
    k.run()
    assert got[0].payload == original
    assert got[0].payload is not original  # copied through the codec


def test_strict_wire_rejects_unencodable_payload():
    _, tr = make(strict_wire=True)
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    with pytest.raises(Exception):
        tr.send(Message("X", "a", "b", {"bad": object()}))


def test_fault_policy_drop():
    k, tr = make()
    tr.fault_policy = lambda m: "drop"
    got = []
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: got.append(m))
    tr.send(Message("X", "a", "b"))
    k.run()
    assert got == [] and tr.stats.dropped == 1


def test_fault_policy_duplicate():
    k, tr = make()
    tr.fault_policy = lambda m: "duplicate"
    got = []
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: got.append(m.msg_id))
    tr.send(Message("X", "a", "b"))
    k.run()
    assert len(got) == 2 and got[0] == got[1]
    assert tr.stats.duplicated == 1


def test_fault_policy_bad_action_raises():
    _, tr = make()
    tr.fault_policy = lambda m: "explode"
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    with pytest.raises(TransportError):
        tr.send(Message("X", "a", "b"))


def test_stats_record_every_send():
    k, tr = make()
    tr.bind("a", lambda m: None)
    tr.bind("b", lambda m: None)
    for _ in range(3):
        tr.send(Message("PING", "a", "b"))
    assert tr.stats.total == 3
    assert tr.stats.by_type["PING"] == 3


def test_schedule_and_cancel():
    k, tr = make()
    ran = []
    tr.schedule(1.0, lambda: ran.append("a"))
    h = tr.schedule(2.0, lambda: ran.append("b"))
    h.cancel()
    k.run()
    assert ran == ["a"]


def test_completion_resolves_through_sim_event():
    k, tr = make()
    comp = tr.completion("c")

    def proc():
        val = yield comp.sim_event()
        return val

    p = k.spawn(proc())
    k.call_in(3.0, lambda: comp.resolve("hi"))
    k.run()
    assert p.result == "hi"
    assert comp.done and comp.value == "hi"


def test_negative_default_latency_rejected():
    k = SimKernel()
    with pytest.raises(TransportError):
        SimTransport(k, default_latency=-1)
