"""Unit + protocol tests for the reliable-delivery sublayer."""

import pytest

from repro.errors import TransportError
from repro.net import Message, ReliableTransport, SimTransport
from repro.net.reliability import R_ACK, R_DATA
from repro.sim import SimKernel


def make(**kw):
    kernel = SimKernel()
    inner = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    rel = ReliableTransport(inner, **kw)
    return kernel, inner, rel


def test_basic_delivery_and_split_accounting():
    kernel, inner, rel = make()
    got = []
    rel.bind("a", lambda m: None)
    rel.bind("b", lambda m: got.append(m.msg_type))
    rel.send(Message("HELLO", "a", "b"))
    kernel.run()
    assert got == ["HELLO"]
    # Logical stats: exactly what a raw transport would have recorded.
    assert rel.stats.total == 1 and rel.stats.by_type["HELLO"] == 1
    assert R_DATA not in rel.stats.by_type and R_ACK not in rel.stats.by_type
    # Wire stats: the envelope and its ACK.
    assert inner.stats.by_type[R_DATA] == 1
    assert inner.stats.by_type[R_ACK] == 1
    assert rel.stats.acks_sent == 1
    assert rel.in_flight_count() == 0


def test_drop_is_repaired_by_retransmission():
    kernel, inner, rel = make(ack_timeout=5.0, jitter=0.0)
    state = {"dropped": False}

    def lossy(msg):
        if msg.msg_type == R_DATA and not state["dropped"]:
            state["dropped"] = True
            return "drop"
        return "deliver"

    inner.fault_policy = lossy
    got = []
    rel.bind("a", lambda m: None)
    rel.bind("b", lambda m: got.append(m.msg_type))
    rel.send(Message("DATA", "a", "b", {"k": 1}))
    kernel.run()
    assert got == ["DATA"]
    assert rel.stats.retransmits == 1
    assert rel.in_flight_count() == 0


def test_injected_duplicate_suppressed_but_reacked():
    kernel, inner, rel = make()
    inner.fault_policy = lambda m: "duplicate" if m.msg_type == R_DATA else "deliver"
    got = []
    rel.bind("a", lambda m: None)
    rel.bind("b", lambda m: got.append(m.payload["n"]))
    rel.send(Message("DATA", "a", "b", {"n": 7}))
    kernel.run()
    assert got == [7]  # delivered exactly once
    assert rel.stats.duplicates_suppressed == 1
    assert rel.stats.acks_sent == 2  # every copy is (re-)ACKed


def test_lost_ack_retransmission_deduplicated():
    kernel, inner, rel = make(ack_timeout=5.0, jitter=0.0)
    state = {"acks_dropped": 0}

    def drop_first_ack(msg):
        if msg.msg_type == R_ACK and state["acks_dropped"] == 0:
            state["acks_dropped"] += 1
            return "drop"
        return "deliver"

    inner.fault_policy = drop_first_ack
    got = []
    rel.bind("a", lambda m: None)
    rel.bind("b", lambda m: got.append(m.payload["n"]))
    rel.send(Message("DATA", "a", "b", {"n": 1}))
    kernel.run()
    # The sender retransmitted (its ACK was lost); the receiver saw the
    # frame twice but handed it off once.
    assert got == [1]
    assert rel.stats.retransmits >= 1
    assert rel.stats.duplicates_suppressed >= 1
    assert rel.in_flight_count() == 0


def test_in_order_handoff_despite_reordering():
    kernel, inner, rel = make()
    state = {"first": True}

    def delay_first(msg):
        if msg.msg_type == R_DATA and state["first"]:
            state["first"] = False
            return ("delay", 10.0)  # frame 1 overtaken by frame 2
        return "deliver"

    inner.fault_policy = delay_first
    got = []
    rel.bind("a", lambda m: None)
    rel.bind("b", lambda m: got.append(m.payload["n"]))
    rel.send(Message("DATA", "a", "b", {"n": 1}))
    rel.send(Message("DATA", "a", "b", {"n": 2}))
    kernel.run()
    assert got == [1, 2]  # send order, not arrival order


def test_give_up_after_max_attempts_behaves_like_loss():
    kernel, inner, rel = make(ack_timeout=2.0, max_attempts=3, jitter=0.0)
    inner.fault_policy = lambda m: "drop" if m.msg_type == R_DATA else "deliver"
    rel.bind("a", lambda m: None)
    rel.bind("b", lambda m: None)
    rel.send(Message("DATA", "a", "b"))
    kernel.run()
    assert rel.stats.retransmits == 2  # attempts 2 and 3
    assert rel.stats.dropped == 1     # the final give-up
    assert rel.in_flight_count() == 0


def test_strict_wire_inner_round_trips_envelopes():
    kernel = SimKernel()
    inner = SimTransport(kernel, default_latency=1.0, strict_wire=True)
    rel = ReliableTransport(inner)
    got = []
    rel.bind("a", lambda m: None)
    rel.bind("b", lambda m: got.append(m))
    rel.send(Message("DATA", "a", "b", {"n": [1, 2, 3]}))
    kernel.run()
    assert len(got) == 1
    assert got[0].msg_type == "DATA" and got[0].payload == {"n": [1, 2, 3]}


def test_send_after_close_raises():
    kernel, inner, rel = make()
    rel.bind("a", lambda m: None)
    rel.close()
    with pytest.raises(TransportError, match="closed"):
        rel.send(Message("DATA", "a", "b"))


def test_constructor_validation():
    kernel = SimKernel()
    inner = SimTransport(kernel)
    with pytest.raises(TransportError):
        ReliableTransport(inner, ack_timeout=0.0)
    with pytest.raises(TransportError):
        ReliableTransport(inner, max_attempts=0)
    with pytest.raises(TransportError):
        ReliableTransport(inner, backoff=0.5)
    with pytest.raises(TransportError):
        ReliableTransport(inner, jitter=1.0)


# ---------------------------------------------------------------------------
# Protocol-level behaviour over the sublayer
# ---------------------------------------------------------------------------

def _protocol_run(transport, store, n_agents=2, n_ops=3):
    """Strong-mode counter workload (the abl6 shape) on ``transport``."""
    from repro.core.cache_manager import CacheManager
    from repro.core.directory import DirectoryManager
    from repro.core.system import run_all_scripts
    from repro.testing import (
        Agent,
        extract_from_object,
        extract_from_view,
        merge_into_object,
        merge_into_view,
        props_for,
    )

    directory = DirectoryManager(
        transport=transport, address="dir", component=store,
        extract_from_object=extract_from_object,
        merge_into_object=merge_into_object,
    )
    cms = []
    for i in range(n_agents):
        agent = Agent()
        cm = CacheManager(
            transport=transport, directory_address="dir",
            view_id=f"v{i}", view=agent, properties=props_for(["a"]),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view, mode="strong",
            request_timeout=300.0, max_retries=5,
        )
        cms.append((cm, agent))

    def script(cm, agent):
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_ops):
            yield cm.start_use_image()
            agent.local["a"] += 1
            cm.end_use_image()
        yield cm.kill_image()

    run_all_scripts(transport, [script(cm, a) for cm, a in cms])
    return directory


def test_no_fault_runs_are_message_for_message_identical():
    """With no faults, the logical message profile over the sublayer is
    exactly the raw transport's — the ACK overhead lives on the wire
    stats only, so the paper's Fig 4 metric is unchanged."""
    from repro.testing import Store

    kernel = SimKernel()
    raw = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    store_raw = Store({"a": 0})
    _protocol_run(raw, store_raw)

    kernel2 = SimKernel()
    inner = SimTransport(kernel2, default_latency=1.0, strict_wire=False)
    rel = ReliableTransport(inner)
    store_rel = Store({"a": 0})
    _protocol_run(rel, store_rel)

    assert store_raw.cells == store_rel.cells
    assert dict(rel.stats.by_type) == dict(raw.stats.by_type)
    assert rel.stats.total == raw.stats.total
    assert rel.stats.retransmits == 0 and rel.stats.duplicates_suppressed == 0
    # The overhead exists, but only below the sublayer.
    assert inner.stats.by_type[R_ACK] == rel.stats.acks_sent > 0


def test_duplicate_wire_frames_idempotent_across_protocol():
    """Every wire frame duplicated: REGISTER, PUSH, PULL_REQ, acquire
    rounds and their replies all arrive twice at the sublayer, yet the
    protocol sees each exactly once and the counter stays exact."""
    from repro.testing import Store

    kernel = SimKernel()
    inner = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    inner.fault_policy = lambda m: "duplicate" if m.msg_type == R_DATA else "deliver"
    rel = ReliableTransport(inner)
    store = Store({"a": 0})
    directory = _protocol_run(rel, store, n_agents=2, n_ops=3)
    assert store.cells["a"] == 6
    assert rel.stats.duplicates_suppressed > 0
    directory.check_invariants()
