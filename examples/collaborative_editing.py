#!/usr/bin/env python3
"""Application-neutrality demo: collaborative document editing on the
unmodified Flecc protocol.

Three editors share a document.  Alice and Bob work on the *same*
section (their ``Sections`` properties intersect → they conflict and
their concurrent edits are merged by the application's line-union
rule); Carol works on a disjoint section and never receives their
coherence traffic.  An autosave push trigger fires off a reflected view
variable (``unsaved_edits``).

Run:  python examples/collaborative_editing.py
"""

from repro.apps.docshare import (
    EditorView,
    SharedDocument,
    extract_from_document,
    line_merge_resolver,
    merge_into_document,
)
from repro.apps.docshare.editor import attach_editor
from repro.core import FleccSystem
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.net import SimTransport
from repro.sim import SimKernel


def main():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    document = SharedDocument(
        {"abstract": "We study flexible cache coherence.", "appendix": ""}
    )
    system = FleccSystem(
        transport, document, extract_from_document, merge_into_document,
        conflict_resolver=line_merge_resolver,
    )

    alice = EditorView("alice", ["abstract"])
    bob = EditorView("bob", ["abstract"])
    carol = EditorView("carol", ["appendix"])
    cm_alice = attach_editor(
        system, alice,
        triggers=TriggerSet(push="unsaved_edits >= 2"),  # autosave
        trigger_poll_period=5.0,
    )
    cm_bob = attach_editor(system, bob)
    cm_carol = attach_editor(system, carol)

    def alice_session():
        yield cm_alice.start()
        yield cm_alice.init_image()
        yield cm_alice.start_use_image()
        alice.append_line("abstract", "Alice: added motivation.")
        alice.append_line("abstract", "Alice: added contributions.")
        cm_alice.end_use_image()
        yield ("sleep", 30.0)  # the autosave trigger pushes for her
        alice.mark_saved()

    def bob_session():
        yield cm_bob.start()
        yield cm_bob.init_image()  # same base text as alice
        yield cm_bob.start_use_image()
        bob.append_line("abstract", "Bob: tightened the claim.")
        cm_bob.end_use_image()
        yield ("sleep", 40.0)
        yield cm_bob.push_image()  # stale push -> line-union merge
        yield cm_bob.pull_image()  # fetch the merged result

    def carol_session():
        yield cm_carol.start()
        yield cm_carol.init_image()
        yield cm_carol.start_use_image()
        carol.append_line("appendix", "Carol: proofs go here.")
        cm_carol.end_use_image()
        yield cm_carol.push_image()

    run_all_scripts(
        transport, [alice_session(), bob_session(), carol_session()]
    )

    print("final abstract (merged, nobody's edit lost):")
    for line in document.text_of("abstract").splitlines():
        print(f"   | {line}")
    print("\nfinal appendix:")
    for line in document.text_of("appendix").splitlines():
        print(f"   | {line}")
    print(f"\nbob's merged local copy: {len(bob.lines('abstract'))} lines")
    from repro.core import messages as M

    fetches_to_carol = transport.stats.by_pair.get(("dir", cm_carol.address), 0)
    print(f"\nprotocol messages: {transport.stats.total}")
    print("carol (disjoint section) received "
          f"{transport.stats.by_type.get(M.FETCH_REQ, 0) and fetches_to_carol} "
          "fetch/invalidate messages — her property never intersected.")


if __name__ == "__main__":
    main()
