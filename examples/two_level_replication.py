#!/usr/bin/env python3
"""Extension demo: the two-level protocol (paper §6, future direction 2).

Two airline database *instances* run in different domains, each with
its own directory manager and travel-agent views (the unmodified
low-level Flecc).  A decentralized high level — anti-entropy gossip
between replica coordinators, no primary copy — keeps the instances
loosely convergent.

Run:  python examples/two_level_replication.py
"""

from repro.apps.airline import Flight, FlightDatabase
from repro.apps.airline.flights import extract_from_database, merge_into_database
from repro.apps.airline.travel_agent import (
    TravelAgent,
    extract_from_agent,
    lifecycle,
    merge_into_agent,
)
from repro.core.directory import DirectoryManager
from repro.core.multilevel import ReplicaCoordinator, converged
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.sim import SimKernel


def make_database():
    return FlightDatabase(
        [
            Flight("UA100", "NYC", "SFO", 100, 100, 300.0),
            Flight("BA200", "LHR", "NYC", 100, 100, 500.0),
        ]
    )


def main():
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)

    # Two instances of the original component, one per domain.
    replicas = {}
    for name in ("us", "eu"):
        database = make_database()
        directory = DirectoryManager(
            transport=transport, address=f"dir:{name}", component=database,
            extract_from_object=extract_from_database,
            merge_into_object=merge_into_database,
        )
        coordinator = ReplicaCoordinator(
            transport, name, directory,
            peers=[p for p in ("us", "eu") if p != name],
            sync_period=40.0,
        )
        replicas[name] = (database, directory, coordinator)

    # Low level: a travel agent per domain, attached to ITS instance.
    def make_agent(domain, flight):
        database, directory, _ = replicas[domain]
        agent = TravelAgent(f"{domain}-agent", [flight])
        from repro.core.cache_manager import CacheManager

        cm = CacheManager(
            transport=transport, directory_address=directory.address,
            view_id=agent.agent_id, view=agent, properties=agent.properties(),
            extract_from_view=extract_from_agent,
            merge_into_view=merge_into_agent,
        )
        return agent, cm

    us_agent, us_cm = make_agent("us", "UA100")
    eu_agent, eu_cm = make_agent("eu", "BA200")

    # Start the high-level gossip.
    for _, _, coordinator in replicas.values():
        coordinator.start()

    # Each domain sells tickets on its own flight through its own
    # instance (low-level Flecc as usual).
    run_all_scripts(
        transport,
        [
            lifecycle(us_cm, us_agent, [("reserve", "UA100", 1)] * 5),
            lifecycle(eu_cm, eu_agent, [("reserve", "BA200", 2)] * 3),
        ],
    )

    print("immediately after the local sales:")
    for name, (database, _, _) in replicas.items():
        print(f"  {name}: UA100={database.seats_available('UA100')} "
              f"BA200={database.seats_available('BA200')}")

    # Let anti-entropy rounds run, then stop gossip.
    kernel.run(until=kernel.now + 200.0)
    for _, _, coordinator in replicas.values():
        coordinator.stop()
    kernel.run()

    print("\nafter anti-entropy gossip:")
    for name, (database, _, _) in replicas.items():
        print(f"  {name}: UA100={database.seats_available('UA100')} "
              f"BA200={database.seats_available('BA200')}")
    coords = [c for _, _, c in replicas.values()]
    print(f"\nreplicas converged: {converged(coords)}")
    print(f"gossip rounds completed: "
          f"{sum(c.rounds_completed for c in coords)}")
    print("\nNo primary copy at the high level: updates made at either")
    print("instance flowed to the other via decentralized anti-entropy,")
    print("while each instance kept one-copy semantics for its own views.")


if __name__ == "__main__":
    main()
