#!/usr/bin/env python3
"""The same protocol over real TCP sockets (localhost).

The paper's prototype ran over a real network; this example runs the
exact same directory/cache-manager code as the other examples, but on
:class:`~repro.net.tcp_transport.TcpTransport` — every control message
is a length-prefixed JSON frame over a real socket, and the view
scripts run as blocking threads instead of simulated processes.

Run:  python examples/tcp_sockets.py
"""

from repro.apps.airline import Flight, FlightDatabase
from repro.apps.airline.flights import (
    extract_from_database,
    merge_into_database,
)
from repro.apps.airline.travel_agent import (
    TravelAgent,
    extract_from_agent,
    lifecycle,
    merge_into_agent,
)
from repro.core import FleccSystem, Mode
from repro.core.system import run_all_scripts
from repro.net import TcpTransport


def main():
    transport = TcpTransport()  # real sockets on 127.0.0.1
    database = FlightDatabase(
        [Flight("UA100", "NYC", "SFO", 180, 180, 320.0)]
    )
    system = FleccSystem(
        transport, database, extract_from_database, merge_into_database
    )

    agents = []
    for i in range(3):
        agent = TravelAgent(f"agent-{i}", ["UA100"])
        cm = system.add_view(
            agent.agent_id, agent, agent.properties(),
            extract_from_agent, merge_into_agent, mode=Mode.STRONG,
        )
        agents.append((agent, cm))

    print("directory listening on port", transport.port_of("dir"))

    # Three strong-mode agents race on the same flight over real TCP;
    # one-copy serializability guarantees no reservation is lost.
    scripts = [
        lifecycle(cm, agent, [("reserve", "UA100", 1)] * 4, think_time=0.0)
        for agent, cm in agents
    ]
    made = run_all_scripts(transport, scripts)

    print(f"reservations per agent: {made}")
    print(f"UA100 seats remaining: {database.seats_available('UA100')} "
          f"(started with 180, sold {sum(made)})")
    print(f"messages over TCP: {transport.stats.total} "
          f"({transport.stats.bytes_sent} bytes)")
    assert database.seats_available("UA100") == 180 - sum(made)
    transport.close()


if __name__ == "__main__":
    main()
