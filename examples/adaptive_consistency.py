#!/usr/bin/env python3
"""Run-time consistency adaptation: a viewer becomes a buyer (paper §1).

"An airline reservation system might allow users to browse flights, buy
tickets, and switch between the two modes of operation.  In general,
users accept stale data during browsing (weak consistency), but require
most current data when buying tickets (strong consistency)."

This example drives one client through that transition while nine other
agents keep selling tickets, and reports the data quality (unseen
remote updates) and per-operation latency the client experienced in
each phase — the Figure 5 trade-off, seen from the application.

Run:  python examples/adaptive_consistency.py
"""

from repro.apps.airline import Viewer, build_airline_system, generate_flight_database
from repro.apps.airline.workload import make_agent_groups
from repro.core.modes import Mode
from repro.core.quality import QualityProbe
from repro.core.system import run_all_scripts


def main():
    database = generate_flight_database(5, seed=42)
    airline = build_airline_system(database)
    groups = make_agent_groups(10, n_conflicting=10)
    flight = groups[0][0]

    # The observed client's travel agent + nine background sellers.
    my_agent, my_cm = airline.add_travel_agent("my-agent", groups[0], mode=Mode.WEAK)
    sellers = [
        airline.add_travel_agent(f"seller-{i}", served)
        for i, served in enumerate(groups[1:], start=1)
    ]
    probe = QualityProbe(airline.directory)
    kernel = airline.kernel
    phases = []

    def client_script():
        yield my_cm.start()
        yield my_cm.init_image()
        viewer = Viewer("client-1", my_agent, my_cm)

        # Phase 1 — browsing: weak mode, local data, fast but stale.
        t0 = kernel.now
        yield from viewer.session([flight] * 5, think_time=10.0)
        phases.append(("browse (weak)", kernel.now - t0,
                       probe.unseen(my_cm.view_id)))

        # The user clicks "buy": upgrade to strong consistency.
        buyer = viewer.become_buyer()
        t0 = kernel.now
        yield from buyer.session([(flight, 1)] * 3, think_time=10.0)
        phases.append(("buy (strong)", kernel.now - t0,
                       probe.unseen(my_cm.view_id)))

        # Back to browsing.
        yield my_cm.set_mode(Mode.WEAK)
        t0 = kernel.now
        yield from viewer.session([flight] * 5, think_time=10.0)
        phases.append(("browse again (weak)", kernel.now - t0,
                       probe.unseen(my_cm.view_id)))
        yield my_cm.kill_image()
        return viewer.log

    def seller_script(agent, cm):
        yield cm.start()
        yield cm.init_image()
        for _ in range(12):
            yield cm.start_use_image()
            agent.confirm_tickets(1, flight)
            cm.end_use_image()
            yield cm.push_image()
            yield ("sleep", 12.0)
        yield cm.kill_image()

    results = run_all_scripts(
        airline.transport,
        [client_script()] + [seller_script(a, cm) for a, cm in sellers],
    )
    log = results[0]

    print("phase                 elapsed   unseen-updates-at-end")
    for name, elapsed, unseen in phases:
        print(f"  {name:<20} {elapsed:>7.1f}   {unseen}")
    print()
    print(f"browses: {len(log.browses)}, purchases: {len(log.purchases)}, "
          f"failures: {len(log.failures)}")
    seats = database.seats_available(flight)
    print(f"{flight} seats remaining at the primary copy: {seats}")
    print()
    print("Note how the strong (buy) phase ends with 0 unseen updates —")
    print("one-copy semantics — while browsing tolerates staleness and")
    print("the weak phases end with a backlog of unseen remote sales.")


if __name__ == "__main__":
    main()
