#!/usr/bin/env python3
"""Quickstart: keep two replicated views coherent with Flecc.

This is the smallest end-to-end use of the library:

1. Define an *original component* (here: a dict of named counters) and
   the two functions Flecc calls to move state in and out of it.
2. Define a *view* object with its own extract/merge functions and a
   data property describing which slice of the component it works on.
3. Run both views concurrently; Flecc decides who conflicts with whom
   from the property intersection and keeps the primary copy current.

Run:  python examples/quickstart.py
"""

from repro.core import (
    FleccSystem,
    Mode,
    ObjectImage,
    Property,
    PropertySet,
)
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.sim import SimKernel


# --- 1. The original component --------------------------------------------

class CounterStore:
    """The shared state: named counters."""

    def __init__(self):
        self.counters = {"hits": 0, "misses": 0, "errors": 0}


def extract_from_store(store, props):
    """Flecc asks: give me the slice described by these properties."""
    wanted = props.get("counters")
    img = ObjectImage()
    for name, value in store.counters.items():
        if wanted is None or wanted.domain.contains(name):
            img.cells[name] = value
    return img


def merge_into_store(store, image, props):
    """Flecc says: a view pushed these updated cells."""
    for name in image.keys():
        store.counters[name] = image.get(name)


# --- 2. A view ---------------------------------------------------------------

class CounterView:
    """A replica working on a subset of the counters."""

    def __init__(self):
        self.local = {}

    def bump(self, name):
        self.local[name] += 1


def extract_from_view(view, props):
    img = ObjectImage()
    img.cells.update(view.local)
    return img


def merge_into_view(view, image, props):
    for name in image.keys():
        view.local[name] = image.get(name)


def main():
    # Deterministic in-process transport (swap in TcpTransport for
    # real sockets — the protocol code is identical).
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)

    system = FleccSystem(
        transport, CounterStore(), extract_from_store, merge_into_store
    )

    # Two views: they overlap on the "misses" counter, so Flecc will
    # treat them as conflicting; a third counter slice would not be.
    frontend, backend = CounterView(), CounterView()
    cm_front = system.add_view(
        "frontend", frontend,
        PropertySet([Property("counters", {"hits", "misses"})]),
        extract_from_view, merge_into_view, mode=Mode.WEAK,
    )
    cm_back = system.add_view(
        "backend", backend,
        PropertySet([Property("counters", {"misses", "errors"})]),
        extract_from_view, merge_into_view, mode=Mode.STRONG,
    )

    def frontend_script():
        yield cm_front.start()                 # register with the directory
        yield cm_front.init_image()            # fetch the initial slice
        yield cm_front.start_use_image()       # critical section
        frontend.bump("hits")
        frontend.bump("misses")
        cm_front.end_use_image()
        yield cm_front.push_image()            # commit to the primary copy
        yield cm_front.kill_image()

    def backend_script():
        yield cm_back.start()
        yield cm_back.init_image()
        yield ("sleep", 20.0)                  # let the frontend commit
        # STRONG mode: start_use acquires exclusive ownership and
        # fresh data (it would invalidate a conflicting active view).
        yield cm_back.start_use_image()
        print(f"backend sees misses={backend.local['misses']} (fresh)")
        backend.bump("errors")
        cm_back.end_use_image()
        yield cm_back.kill_image()

    run_all_scripts(transport, [frontend_script(), backend_script()])

    store = system.directory.component
    print(f"final counters: {store.counters}")
    print(f"protocol messages exchanged: {transport.stats.total}")
    print(transport.stats.summary())


if __name__ == "__main__":
    main()
