#!/usr/bin/env python3
"""PSF end-to-end: declarative spec -> plan -> deploy -> adapt (paper §3.1).

A WAN of two domains: a data center (hosting the flight database) and
an edge domain where a client lives, joined by an insecure backbone.
The client requests low latency and privacy, so the planner (1) places
a TravelAgent view in the edge domain and (2) wraps the insecure
backbone links in encryptor/decryptor pairs.  Then the backbone
degrades and the monitoring module triggers re-planning.

Run:  python examples/psf_deployment.py
"""

from repro.apps.airline import Decryptor, Encryptor, TravelAgent, generate_flight_database
from repro.apps.airline.app_spec import airline_spec
from repro.net.topology import wan_topology
from repro.psf import (
    Deployer,
    Environment,
    Monitor,
    Operation,
    Planner,
    QoSRequirement,
)
from repro.psf.monitoring import AdaptationLoop
from repro.net import SimTransport
from repro.sim import SimKernel


def main():
    # --- environment: two domains over an insecure backbone ------------
    topo = wan_topology(
        {"dc": ["db-server", "dc-spare"], "edge": ["edge-1", "edge-2"]},
        internet_latency=25.0,
        lan_latency=0.5,
        insecure_backbone=True,
    )
    env = Environment(topo)
    for host in env.hosts():
        topo.graph.nodes[host]["trusted"] = True
        topo.graph.nodes[host]["capacity"] = 8

    # --- declarative application spec ------------------------------------
    spec = airline_spec(database_node="db-server")
    print(f"application: {spec.name}")
    print(f"  components: {sorted(spec.components)}")

    # --- client QoS: low latency + privacy, browsing for now -------------
    client = QoSRequirement(
        client_node="edge-1", max_latency=5.0, privacy=True,
        operation=Operation.BROWSE,
    )
    planner = Planner(spec, env)
    plan = planner.plan([client])

    print("\ndeployment plan:")
    for p in plan.all_placements():
        extra = f" (serves client at {p.serves_client})" if p.serves_client else ""
        print(f"  {p.instance_id:<16} -> {p.node}{extra}")
    print(f"  client latency: {plan.estimated_latency['edge-1']} "
          f"(budget {client.max_latency})")
    print(f"  codec pairs on insecure links: "
          f"{[pair.link for pair in plan.codec_pairs]}")

    # --- deploy onto a simulated transport --------------------------------
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=topo)
    database = generate_flight_database(10, seed=1)
    factories = {
        "FlightDatabase": lambda placement: database,
        "TravelAgent": lambda placement: TravelAgent(
            placement.instance_id, sorted(database.flights)[:5]
        ),
        "Encryptor": lambda placement: Encryptor(),
        "Decryptor": lambda placement: Decryptor(),
    }
    app = Deployer(transport, factories).deploy(plan)
    serving = app.serving_instance_for("edge-1")
    print(f"\ndeployed {len(app.instances)} instances; "
          f"client is served by {type(serving).__name__}")

    # The deployed codec pair actually protects traffic:
    enc = app.by_type("Encryptor")[0].instance
    dec = app.by_type("Decryptor")[0].instance
    secret = "reserve FL0003 for client-1 card=4111..."
    wire = enc.encrypt(secret)
    assert dec.decrypt(wire) == secret and secret not in wire
    print(f"backbone payload sample: {wire[:40]}...")

    # --- monitoring: the backbone degrades, PSF adapts --------------------
    monitor = Monitor(env)
    loose_client = QoSRequirement(
        client_node="edge-2", max_latency=80.0, privacy=False
    )
    # A fresh planner/loop for the adaptation story: with an 80-unit
    # budget the remote database is (initially) good enough.
    planner = Planner(spec, Environment(topo))  # same topology, fresh occupancy
    loop = AdaptationLoop(monitor, planner, [loose_client])
    before = loop.current_plan.placement_of(
        loop.current_plan.client_bindings["edge-2"]
    )
    print(f"\nsecond client (80-unit budget) initially served by: "
          f"{before.type_name} on {before.node}")

    monitor.set_link_attr("edge-switch", "internet", "latency", 200.0)
    after = loop.current_plan.placement_of(
        loop.current_plan.client_bindings["edge-2"]
    )
    print(f"backbone latency 25 -> 200: now served by: "
          f"{after.type_name} on {after.node}")
    print(f"adaptations performed: {len(loop.adaptations)}")


if __name__ == "__main__":
    main()
