#!/usr/bin/env python3
"""Extension demo: read/write semantics (paper §6, future direction 1).

"We believe that the number of control messages can be further reduced
by attaching read/write semantics to the shared data."

Four strong-mode dashboards repeatedly *read* a shared metrics cell
while one writer occasionally updates it.  With plain Flecc every use
is an exclusive acquire (readers invalidate each other); with the
RW-aware directory the readers share access and only the writer pays
invalidation rounds.

Run:  python examples/read_write_sharing.py
"""

from repro.core import ObjectImage, Property, PropertySet
from repro.core.cache_manager import CacheManager
from repro.core.directory import DirectoryManager
from repro.core.rw_semantics import Access, RWCacheManager, RWDirectoryManager
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.sim import SimKernel


class MetricsStore:
    def __init__(self):
        self.cells = {"qps": 0}


def extract_store(store, props):
    return ObjectImage(dict(store.cells))


def merge_store(store, image, props):
    for k in image.keys():
        store.cells[k] = image.get(k)


class Dashboard:
    def __init__(self):
        self.local = {}


def extract_view(view, props):
    return ObjectImage(dict(view.local))


def merge_view(view, image, props):
    for k in image.keys():
        view.local[k] = image.get(k)


def run(rw_aware: bool) -> int:
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0)
    directory_cls = RWDirectoryManager if rw_aware else DirectoryManager
    cm_cls = RWCacheManager if rw_aware else CacheManager
    directory = directory_cls(
        transport=transport, address="dir", component=MetricsStore(),
        extract_from_object=extract_store, merge_into_object=merge_store,
    )
    props = PropertySet([Property("cells", {"qps"})])

    def make_cm(view_id):
        view = Dashboard()
        cm = cm_cls(
            transport=transport, directory_address="dir", view_id=view_id,
            view=view, properties=props,
            extract_from_view=extract_view, merge_into_view=merge_view,
            mode="strong",
        )
        return cm, view

    def reader_script(cm, view):
        yield cm.start()
        yield cm.init_image()
        for _ in range(6):
            if rw_aware:
                yield cm.start_use_image(access=Access.READ)
            else:
                yield cm.start_use_image()
            _ = view.local.get("qps")  # render the dashboard
            cm.end_use_image()
            yield ("sleep", 5.0)
        yield cm.kill_image()

    def writer_script(cm, view):
        yield cm.start()
        yield cm.init_image()
        for i in range(3):
            yield ("sleep", 9.0)
            if rw_aware:
                yield cm.start_use_image(access=Access.WRITE)
            else:
                yield cm.start_use_image()
            view.local["qps"] = (i + 1) * 100
            cm.end_use_image()
        yield cm.kill_image()

    readers = [make_cm(f"dashboard-{i}") for i in range(4)]
    writer = make_cm("collector")
    run_all_scripts(
        transport,
        [reader_script(cm, v) for cm, v in readers]
        + [writer_script(*writer)],
    )
    directory.check_invariants()
    return transport.stats.total


def main():
    plain = run(rw_aware=False)
    rw = run(rw_aware=True)
    print("workload: 4 strong-mode dashboards x 6 reads, 1 writer x 3 writes")
    print(f"  plain Flecc (every use exclusive): {plain} messages")
    print(f"  with read/write semantics:         {rw} messages")
    print(f"  saved: {plain - rw} ({(plain - rw) / plain:.0%})")
    print()
    print("Readers share access simultaneously; only writes revoke them —")
    print("the control-message reduction the paper's §6 anticipated.")


if __name__ == "__main__":
    main()
