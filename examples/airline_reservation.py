#!/usr/bin/env python3
"""The paper's case study: an airline reservation system (§5.1).

Mirrors Figure 3 of the paper: each travel agent creates its cache
manager, initializes its data, loops pull -> use -> confirmTickets ->
push, and finally kills the cache manager.  Two agents serve an
overlapping flight block (they conflict); a third serves disjoint
flights (it never receives their coherence traffic).

Run:  python examples/airline_reservation.py
"""

from repro.apps.airline import FlightDatabase, Flight, build_airline_system
from repro.apps.airline.travel_agent import lifecycle
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet


def main():
    database = FlightDatabase(
        [
            Flight("UA100", "NYC", "SFO", capacity=180, seats_available=180, price=320.0),
            Flight("UA200", "NYC", "BOS", capacity=120, seats_available=120, price=110.0),
            Flight("DL300", "MIA", "SEA", capacity=150, seats_available=150, price=410.0),
        ]
    )
    airline = build_airline_system(database, n_agent_hosts=3)

    # Like Fig 3: the trigger expressions are handed to the cache
    # manager at construction; "(t > 1500)" delegates the sync decision
    # to the system once the clock passes 1500.
    fig3_triggers = TriggerSet(
        push="(t > 1500)", pull="(t > 1500)", validity="(t > 1500)"
    )

    # The east agents sell overlapping flights concurrently, so they run
    # in STRONG mode (buyers need one-copy semantics — no lost sales).
    east1, cm1 = airline.add_travel_agent(
        "east-agent-1", ["UA100", "UA200"], node="agent-0",
        mode="strong", triggers=fig3_triggers,
    )
    east2, cm2 = airline.add_travel_agent(
        "east-agent-2", ["UA100"], node="agent-1",
        mode="strong", triggers=fig3_triggers,
    )
    south, cm3 = airline.add_travel_agent(
        "south-agent", ["DL300"], node="agent-2"
    )

    # The Fig 3 flow, expressed as operations: two loops of reserve.
    ops_east1 = [("reserve", "UA100", 1)] * 4 + [("reserve", "UA200", 2)] * 2
    ops_east2 = [("reserve", "UA100", 1)] * 4
    ops_south = [("reserve", "DL300", 1)] * 4

    made = run_all_scripts(
        airline.transport,
        [
            lifecycle(cm1, east1, ops_east1),
            lifecycle(cm2, east2, ops_east2),
            lifecycle(cm3, south, ops_south),
        ],
    )

    print("tickets confirmed per agent:", dict(zip(
        ["east-agent-1", "east-agent-2", "south-agent"], made)))
    for number in ["UA100", "UA200", "DL300"]:
        flight = database.flights[number]
        print(
            f"  {number}: {flight.seats_available}/{flight.capacity} seats left"
        )
    print(f"\nprotocol messages: {airline.stats.total}")
    # The disjoint agent's cache manager was never pulled into the
    # conflicting pair's coherence rounds:
    south_traffic = airline.stats.count_involving(cm3.address)
    print(f"messages involving the disjoint south-agent: {south_traffic}")
    print(f"(its properties do not intersect the east agents', so Flecc "
          f"never fetched from or invalidated it)")


if __name__ == "__main__":
    main()
