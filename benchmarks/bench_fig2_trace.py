"""Benchmark FIG2: the strong-mode interaction trace (paper Figure 2).

Regenerates the Fig 2 scenario and asserts its invariants each
iteration; the benchmark time is the full two-view protocol exchange.
"""

from repro.experiments.fig2_trace import run_fig2


def test_fig2_trace(benchmark):
    result = benchmark(run_fig2)
    assert result.v1_was_invalidated
    assert result.v2_saw_v1_update
    assert result.final_data == {"x": 100, "y": 2, "z": 300}
