"""Benchmark FIG6: quality triggers — message cost vs data quality.

Each iteration runs both variants (explicit pulls only / plus a
time-based pull trigger) and verifies the paper's direction: triggers
cost messages and buy quality (paper reported 116 vs 182 messages).
"""

from repro.experiments.fig6_flexibility import check_shape, run_fig6


def test_fig6_trigger_tradeoff(benchmark):
    result = benchmark(run_fig6, n_agents=10, n_methods=10)
    assert check_shape(result) == []
    assert (
        result.with_triggers.total_messages
        > result.without_triggers.total_messages
    )
