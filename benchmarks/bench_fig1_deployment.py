"""Benchmark FIG1: the three-domain deployment scenario (paper Figure 1).

Each iteration runs the full pipeline: PSF planning, deployment, WAN
coherence workload, and the consistency check.
"""

from repro.experiments.fig1_deployment import check_shape, run_fig1


def test_fig1_three_domains(benchmark):
    result = benchmark(run_fig1, ops_per_domain=3)
    assert check_shape(result) == []
    assert result.reservations_made == 6
