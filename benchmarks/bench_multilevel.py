"""Benchmarks for the two-level protocol extension: anti-entropy
convergence cost as the replica count grows."""

import pytest

from repro.core.cache_manager import CacheManager
from repro.core.directory import DirectoryManager
from repro.core.multilevel import ReplicaCoordinator, converged
from repro.core.system import run_all_scripts
from repro.net import SimTransport
from repro.sim import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


def run_gossip(n_replicas: int, sync_period: float = 20.0) -> float:
    """One update per replica, gossip until convergence; returns the
    simulated time at which all replicas converged."""
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    names = [f"rep{i}" for i in range(n_replicas)]
    coordinators = []
    cms = []
    for i, name in enumerate(names):
        store = Store({f"cell{j}": 0 for j in range(n_replicas)})
        directory = DirectoryManager(
            transport=transport, address=f"dir:{name}", component=store,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
        )
        coordinators.append(
            ReplicaCoordinator(
                transport, name, directory,
                peers=[p for p in names if p != name],
                sync_period=sync_period,
            )
        )
        agent = Agent()
        cm = CacheManager(
            transport=transport, directory_address=f"dir:{name}",
            view_id=f"v{i}", view=agent, properties=props_for([f"cell{i}"]),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view,
        )
        cms.append((cm, agent, f"cell{i}"))

    def update(cm, agent, cell):
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local[cell] = 1
        cm.end_use_image()
        yield cm.push_image()

    run_all_scripts(transport, [update(*args) for args in cms])
    for c in coordinators:
        c.start()
    deadline = 200.0 * n_replicas
    while not converged(coordinators):
        now = kernel.now
        kernel.run(until=now + sync_period)
        assert kernel.now < deadline, "gossip failed to converge"
    t_converged = kernel.now
    for c in coordinators:
        c.stop()
    kernel.run()
    assert converged(coordinators)
    return t_converged


@pytest.mark.parametrize("n_replicas", [2, 4, 8])
def test_gossip_convergence(benchmark, n_replicas):
    t = benchmark.pedantic(run_gossip, args=(n_replicas,), rounds=3, iterations=1)
    assert t > 0
