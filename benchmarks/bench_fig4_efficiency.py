"""Benchmark FIG4: message counts for Flecc vs time-sharing vs multicast.

The paper's experiment uses 100 agents with the conflict group swept
10..100.  The benchmark sweeps a reduced population (30 agents, step
10) per iteration and checks the qualitative shape; run

    python -m repro.experiments.fig4_efficiency

for the paper-scale table.
"""

import pytest

from repro.baselines.common import ProtocolName
from repro.experiments.fig4_efficiency import _run_point, check_shape, run_fig4

N_AGENTS = 30


def test_fig4_full_sweep(benchmark):
    result = benchmark(run_fig4, n_agents=N_AGENTS, step=10)
    assert check_shape(result) == []
    fl = result.messages[ProtocolName.FLECC.value]
    mc = result.messages[ProtocolName.MULTICAST.value]
    # At full conflict, Flecc converges to the application-oblivious max.
    assert fl[-1] == pytest.approx(mc[-1], rel=0.05)


@pytest.mark.parametrize("protocol", list(ProtocolName))
def test_fig4_single_point(benchmark, protocol):
    """Per-protocol cost at the mid-sweep point (15/30 conflicting)."""
    total = benchmark(
        _run_point,
        protocol,
        n_agents=N_AGENTS,
        n_conflicting=15,
        ops_per_agent=1,
        seed=0,
        stagger=2.0,
    )
    assert total > 0
