"""Scalability benchmarks: wall-clock cost of simulating the protocol
as the agent population grows (not a paper figure; guards against
complexity regressions in the directory's conflict computation and the
kernel's event handling)."""

import pytest

from repro.apps.airline.app_spec import build_airline_system
from repro.apps.airline.travel_agent import lifecycle
from repro.apps.airline.workload import (
    flights_needed,
    generate_flight_database,
    make_agent_groups,
    reserve_operations,
)
from repro.core.system import run_all_scripts


def run_population(n_agents: int, ops_per_agent: int = 2) -> int:
    """All-disjoint population (conflict checks dominated by dynConfl)."""
    database = generate_flight_database(
        flights_needed(n_agents, 0), seed=0
    )
    airline = build_airline_system(database, strict_wire=False)
    groups = make_agent_groups(n_agents, 0)
    scripts = []
    for i, served in enumerate(groups):
        agent, cm = airline.add_travel_agent(f"ta-{i:03d}", served)
        ops = reserve_operations(served, ops_per_agent, seed=0, agent_index=i)
        scripts.append(lifecycle(cm, agent, ops, think_time=0.5))
    run_all_scripts(airline.transport, scripts)
    return airline.stats.total


@pytest.mark.parametrize("n_agents", [10, 50, 100])
def test_population_scaling(benchmark, n_agents):
    total = benchmark.pedantic(
        run_population, args=(n_agents,), rounds=3, iterations=1
    )
    # Per-agent message cost is flat for disjoint agents.
    assert total == pytest.approx(n_agents * (total / n_agents))
    assert total >= n_agents * 8


def test_conflict_group_cost(benchmark):
    """Fully-conflicting 40-agent group: the quadratic fetch pattern."""
    def run():
        database = generate_flight_database(flights_needed(40, 40), seed=0)
        airline = build_airline_system(database, strict_wire=False)
        from repro.core.triggers import TriggerSet

        groups = make_agent_groups(40, 40)
        scripts = []
        for i, served in enumerate(groups):
            agent, cm = airline.add_travel_agent(
                f"ta-{i:03d}", served, triggers=TriggerSet(validity="true")
            )
            scripts.append(
                lifecycle(cm, agent, [("reserve", served[0], 1)], think_time=0.5)
            )
        run_all_scripts(airline.transport, scripts)
        return airline.stats.total

    total = benchmark.pedantic(run, rounds=3, iterations=1)
    assert total > 40 * 10  # fetch rounds dominate
