"""Benchmark configuration.

Benchmarks run the experiment harnesses at reduced scale so a full
``pytest benchmarks/ --benchmark-only`` stays under a few minutes;
the paper-scale numbers come from ``python -m repro.experiments.<name>``.
"""
