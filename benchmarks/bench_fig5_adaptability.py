"""Benchmark FIG5: the WEAK -> STRONG -> WEAK adaptability experiment.

Each iteration runs the paper's 10-agent three-phase workload and
verifies the trade-off shape (strong slower with perfect quality).
"""

from repro.experiments.fig5_adaptability import check_shape, run_fig5


def test_fig5_three_phases(benchmark):
    result = benchmark(run_fig5, n_agents=10, ops_per_phase=6)
    assert check_shape(result) == []
    assert len(result.samples) == 18  # 6 observed methods per phase
