"""Benchmark EXT1: the browse/buy mixed workload from the paper's intro."""

from repro.experiments.mixed_workload import check_shape, run_ext1


def test_ext1_browse_buy_mix(benchmark):
    result = benchmark(run_ext1, buy_fractions=(0.0, 0.5), n_clients=6, n_ops=4)
    assert check_shape(result) == []
    (f0, m0, _, l0), (f1, m1, _, l1) = result.points
    assert l0 == l1 == 0
    assert m1 > m0
