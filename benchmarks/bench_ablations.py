"""Benchmarks ABL1-ABL4: the ablation studies from DESIGN.md §4."""

from repro.experiments.ablations import (
    run_abl1,
    run_abl2,
    run_abl3,
    run_abl4,
    run_abl5,
    run_abl6,
)


def test_abl1_static_vs_dynamic(benchmark):
    result = benchmark(run_abl1, n_agents=12)
    # Conservative all-pairs sharing must cost strictly more messages.
    assert result.messages_conservative > result.messages_dynamic


def test_abl2_trigger_period_sweep(benchmark):
    result = benchmark(run_abl2, periods=(5.0, 20.0, 80.0), n_agents=5)
    periods = [p for p, _, _ in result.points]
    messages = [m for _, m, _ in result.points]
    quality = [q for _, _, q in result.points]
    assert periods == sorted(periods)
    # Longer period -> fewer messages, worse (higher) unseen counts.
    assert messages == sorted(messages, reverse=True)
    assert quality == sorted(quality)


def test_abl3_granularity(benchmark):
    result = benchmark(run_abl3, n_agents=8)
    assert result.messages_coarse > result.messages_fine


def test_abl4_centralization_analysis(benchmark):
    result = benchmark(run_abl4)
    for n, centralized, decentralized in result.points:
        assert centralized == 4 * n
        assert decentralized > centralized or n <= 1


def test_abl6_loss_tolerance(benchmark):
    """Retransmission + dedup + state-seq keep strong mode exact under
    probabilistic request/reply loss."""
    result = benchmark(run_abl6, loss_rates=(0.0, 0.1, 0.2), n_agents=3)
    assert all(ok for _, _, _, ok in result.points)
    retries = [r for _, r, _, _ in result.points]
    assert retries[0] == 0 and retries[-1] > 0


def test_abl5_rw_semantics(benchmark):
    """Paper §6 direction 1: read/write annotations cut control messages."""
    result = benchmark(run_abl5, read_fractions=(0.0, 1.0), n_agents=4)
    (f0, rw0, wo0), (f1, rw1, wo1) = result.points
    assert rw0 == wo0          # all-writes: annotations change nothing
    assert rw1 < wo1           # all-reads: sharers skip invalidations
    rw_series = [rw for _, rw, _ in result.points]
    assert rw_series == sorted(rw_series, reverse=True)
