"""Micro-benchmarks of Flecc's hot paths.

These are not paper figures; they quantify the per-operation costs the
coherence layer adds (conflict computation, trigger evaluation, image
merging, kernel throughput) so regressions in the substrate are caught.
"""

from repro.core import DiscreteSet, Interval, Property, PropertySet
from repro.core.conflicts import ConflictPolicy, dyn_confl
from repro.core.image import ObjectImage
from repro.core.triggers import Trigger, TriggerSet
from repro.core.versioning import VersionVector
from repro.net.codec import JsonCodec
from repro.net.message import Message
from repro.sim import SimKernel
from repro.testing import ProtocolFixture


def test_property_set_intersection(benchmark):
    a = PropertySet(
        [Property(f"p{i}", Interval(0, 100 + i)) for i in range(10)]
    )
    b = PropertySet(
        [Property(f"p{i}", Interval(50, 200 + i)) for i in range(10)]
    )
    result = benchmark(a.intersect, b)
    assert len(result) == 10


def test_dyn_confl_discrete_domains(benchmark):
    a = PropertySet([Property("Flights", DiscreteSet({f"FL{i}" for i in range(100)}))])
    b = PropertySet([Property("Flights", DiscreteSet({f"FL{i}" for i in range(90, 200)}))])
    assert benchmark(dyn_confl, a, b) == 1


def test_trigger_parse(benchmark):
    src = "(t > 1500) && pending < 5 || !(force == false) && t % 200 == 0"
    trig = benchmark(Trigger, src)
    assert trig.variables == {"t", "pending", "force"}


def test_trigger_evaluate(benchmark):
    trig = Trigger("(t > 1500) && pending < 5 || force")
    env = {"t": 2000.0, "pending": 3, "force": False}
    assert benchmark(trig.evaluate, env) is True


def test_trigger_evaluate_interpreted(benchmark):
    """Reference tree-walking backend — the floor the compiled path beats."""
    trig = Trigger("(t > 1500) && pending < 5 || force")
    env = {"t": 2000.0, "pending": 3, "force": False}
    assert benchmark(trig.evaluate_interpreted, env) is True


def _conflict_views(n: int = 100):
    """n views with staggered overlapping intervals (~20 conflicts each)."""
    props = {
        f"v{i:03d}": PropertySet([Property("cells", Interval(i, i + 10))])
        for i in range(n)
    }
    return props, list(props)


def test_conflict_set_cached(benchmark):
    """100 views, repeated conflict_set — the memoized directory path."""
    props, views = _conflict_views()
    pol = ConflictPolicy(None, props.get)
    result = benchmark(pol.conflict_set, "v050", views)
    assert len(result) == 20  # intervals within +/-10 of v050, minus itself


def test_conflict_set_uncached(benchmark):
    """Same query with the cache defeated: the pre-memoization cost."""
    props, views = _conflict_views()
    pol = ConflictPolicy(None, props.get)

    def run():
        pol.invalidate()
        return pol.conflict_set("v050", views)

    assert len(benchmark(run)) == 20


def test_codec_encode(benchmark):
    """Single-pass wire encoding of a typical PUSH-sized payload."""
    codec = JsonCodec()
    raw = benchmark(codec.encode, _push_message())
    assert len(raw) > 100


def _push_message():
    props = PropertySet(
        [Property(f"p{i}", DiscreteSet({f"k{j}" for j in range(10)})) for i in range(5)]
    )
    return Message(
        "PUSH", "cm:v1", "dm",
        {"view_id": "v1", "cells": {f"c{i}": i for i in range(50)}, "props": props},
    )


def test_binary_codec_encode(benchmark):
    """Same PUSH payload through the compact binary codec: the frame
    must be strictly smaller than the JSON one."""
    from repro.net.binary_codec import BinaryCodec

    msg = _push_message()
    codec = BinaryCodec()
    raw = benchmark(codec.encode, msg)
    assert len(raw) < len(JsonCodec().encode(msg))
    assert codec.decode(raw) == msg


def test_image_merge_newer(benchmark):
    def run():
        base = ObjectImage(
            {f"c{i}": i for i in range(200)},
            VersionVector({f"c{i}": 1 for i in range(200)}),
        )
        incoming = ObjectImage(
            {f"c{i}": i * 2 for i in range(200)},
            VersionVector({f"c{i}": 2 if i % 2 else 1 for i in range(200)}),
        )
        return base.merge_newer(incoming)

    assert benchmark(run) == 100


def test_version_vector_unseen(benchmark):
    master = VersionVector({f"c{i}": i for i in range(500)})
    seen = VersionVector({f"c{i}": i // 2 for i in range(500)})
    total = benchmark(master.unseen_updates, seen)
    assert total > 0


def _round_fixture(coalesce: bool, k: int = 16):
    """Directory + k active readers + one always-fetch puller.

    A pull with validity ``true`` makes the directory run a FETCH round
    over all k conflicting active views — the O(n) fan-out the paper
    flags for its centralized protocol.  FETCH rounds leave the readers
    active, so the round is repeatable for the benchmark loop.
    """
    fx = ProtocolFixture(store_cells={"a": 1}, coalesce_rounds=coalesce)
    readers = [fx.add_agent(f"r{i:02d}", ["a"])[0] for i in range(k)]
    puller, _ = fx.add_agent("p", ["a"], triggers=TriggerSet(validity="true"))

    def boot(cm):
        yield cm.start()
        yield cm.init_image()

    fx.run_scripts(*[boot(c) for c in readers])
    fx.run_scripts(boot(puller))
    return fx, puller


def _one_round(fx, puller):
    def script():
        yield puller.pull_image()

    fx.run_scripts(script())


def test_round_fanout_uncoalesced(benchmark):
    """FETCH round over 16 views, one frame per view (the baseline)."""
    fx, puller = _round_fixture(coalesce=False)
    benchmark(_one_round, fx, puller)
    assert fx.stats.batches_sent == 0
    assert fx.stats.by_type["FETCH_REQ"] >= 16


def test_round_fanout_coalesced(benchmark):
    """Same round with coalescing: 16 fetches ride one BATCH frame."""
    fx, puller = _round_fixture(coalesce=True)
    benchmark(_one_round, fx, puller)
    assert fx.stats.by_type.get("FETCH_REQ", 0) == 0
    assert fx.stats.batches_sent >= 1
    assert fx.stats.messages_coalesced >= 16


def test_kernel_event_throughput(benchmark):
    """Time to drain 10k timeout events."""

    def run():
        k = SimKernel()
        for i in range(10_000):
            k.timeout(float(i % 100))
        return k.run()

    assert benchmark(run) == 99.0
