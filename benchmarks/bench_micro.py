"""Micro-benchmarks of Flecc's hot paths.

These are not paper figures; they quantify the per-operation costs the
coherence layer adds (conflict computation, trigger evaluation, image
merging, kernel throughput) so regressions in the substrate are caught.
"""

from repro.core import DiscreteSet, Interval, Property, PropertySet
from repro.core.conflicts import ConflictPolicy, dyn_confl
from repro.core.image import ObjectImage
from repro.core.triggers import Trigger
from repro.core.versioning import VersionVector
from repro.net.codec import JsonCodec
from repro.net.message import Message
from repro.sim import SimKernel


def test_property_set_intersection(benchmark):
    a = PropertySet(
        [Property(f"p{i}", Interval(0, 100 + i)) for i in range(10)]
    )
    b = PropertySet(
        [Property(f"p{i}", Interval(50, 200 + i)) for i in range(10)]
    )
    result = benchmark(a.intersect, b)
    assert len(result) == 10


def test_dyn_confl_discrete_domains(benchmark):
    a = PropertySet([Property("Flights", DiscreteSet({f"FL{i}" for i in range(100)}))])
    b = PropertySet([Property("Flights", DiscreteSet({f"FL{i}" for i in range(90, 200)}))])
    assert benchmark(dyn_confl, a, b) == 1


def test_trigger_parse(benchmark):
    src = "(t > 1500) && pending < 5 || !(force == false) && t % 200 == 0"
    trig = benchmark(Trigger, src)
    assert trig.variables == {"t", "pending", "force"}


def test_trigger_evaluate(benchmark):
    trig = Trigger("(t > 1500) && pending < 5 || force")
    env = {"t": 2000.0, "pending": 3, "force": False}
    assert benchmark(trig.evaluate, env) is True


def test_trigger_evaluate_interpreted(benchmark):
    """Reference tree-walking backend — the floor the compiled path beats."""
    trig = Trigger("(t > 1500) && pending < 5 || force")
    env = {"t": 2000.0, "pending": 3, "force": False}
    assert benchmark(trig.evaluate_interpreted, env) is True


def _conflict_views(n: int = 100):
    """n views with staggered overlapping intervals (~20 conflicts each)."""
    props = {
        f"v{i:03d}": PropertySet([Property("cells", Interval(i, i + 10))])
        for i in range(n)
    }
    return props, list(props)


def test_conflict_set_cached(benchmark):
    """100 views, repeated conflict_set — the memoized directory path."""
    props, views = _conflict_views()
    pol = ConflictPolicy(None, props.get)
    result = benchmark(pol.conflict_set, "v050", views)
    assert len(result) == 20  # intervals within +/-10 of v050, minus itself


def test_conflict_set_uncached(benchmark):
    """Same query with the cache defeated: the pre-memoization cost."""
    props, views = _conflict_views()
    pol = ConflictPolicy(None, props.get)

    def run():
        pol.invalidate()
        return pol.conflict_set("v050", views)

    assert len(benchmark(run)) == 20


def test_codec_encode(benchmark):
    """Single-pass wire encoding of a typical PUSH-sized payload."""
    codec = JsonCodec()
    props = PropertySet(
        [Property(f"p{i}", DiscreteSet({f"k{j}" for j in range(10)})) for i in range(5)]
    )
    msg = Message(
        "PUSH", "cm:v1", "dm",
        {"view_id": "v1", "cells": {f"c{i}": i for i in range(50)}, "props": props},
    )
    raw = benchmark(codec.encode, msg)
    assert len(raw) > 100


def test_image_merge_newer(benchmark):
    def run():
        base = ObjectImage(
            {f"c{i}": i for i in range(200)},
            VersionVector({f"c{i}": 1 for i in range(200)}),
        )
        incoming = ObjectImage(
            {f"c{i}": i * 2 for i in range(200)},
            VersionVector({f"c{i}": 2 if i % 2 else 1 for i in range(200)}),
        )
        return base.merge_newer(incoming)

    assert benchmark(run) == 100


def test_version_vector_unseen(benchmark):
    master = VersionVector({f"c{i}": i for i in range(500)})
    seen = VersionVector({f"c{i}": i // 2 for i in range(500)})
    total = benchmark(master.unseen_updates, seen)
    assert total > 0


def test_kernel_event_throughput(benchmark):
    """Time to drain 10k timeout events."""

    def run():
        k = SimKernel()
        for i in range(10_000):
            k.timeout(float(i % 100))
        return k.run()

    assert benchmark(run) == 99.0
