"""Public test harness: a minimal keyed-cell component/view pair.

Downstream users integrating their own application with Flecc can test
against this fixture instead of building a full component first: the
component is a plain dict of cell -> value, views hold local copies of
their slice, and the extract/merge functions follow the paper's Fig 3
signatures.  The library's own protocol suite (``tests/core/``) is
built on it — a few hundred worked examples of driving the fixture.

Typical use::

    from repro.testing import ProtocolFixture

    fx = ProtocolFixture(store_cells={"row": 0})
    cm, agent = fx.add_agent("my-view", ["row"], mode="strong")

    def script():
        yield cm.start()
        yield cm.init_image()
        yield cm.start_use_image()
        agent.local["row"] += 1
        cm.end_use_image()
        yield cm.kill_image()

    fx.run_scripts(script())
    assert fx.store.cells["row"] == 1
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core import (
    DiscreteSet,
    FleccSystem,
    Mode,
    ObjectImage,
    Property,
    PropertySet,
)
from repro.core.messages import TraceLog
from repro.core.system import run_all_scripts, run_view_script
from repro.core.triggers import TriggerSet
from repro.net import SimTransport
from repro.sim import SimKernel


class Store:
    """The original component: a dict of cells."""

    def __init__(self, cells: Optional[Dict[str, int]] = None) -> None:
        self.cells: Dict[str, int] = dict(cells or {})


def extract_from_object(store: Store, props: PropertySet) -> ObjectImage:
    """Slice selection: the 'cells' property's domain filters cell keys."""
    p = props.get("cells")
    img = ObjectImage()
    for k, v in store.cells.items():
        if p is None or p.domain.contains(k):
            img.cells[k] = v
    return img


def merge_into_object(store: Store, image: ObjectImage, props: PropertySet) -> None:
    for k in image.keys():
        store.cells[k] = image.get(k)


def extract_cells(store: Store, props: PropertySet, keys: Iterable[str]) -> ObjectImage:
    """Partial extract for delta serves: only ``keys``, no full scan."""
    p = props.get("cells")
    img = ObjectImage()
    for k in keys:
        if k in store.cells and (p is None or p.domain.contains(k)):
            img.cells[k] = store.cells[k]
    return img


class Agent:
    """A view object: local copy of its slice."""

    def __init__(self) -> None:
        self.local: Dict[str, int] = {}


def extract_from_view(agent: Agent, props: PropertySet) -> ObjectImage:
    img = ObjectImage()
    img.cells.update(agent.local)
    return img


def merge_into_view(agent: Agent, image: ObjectImage, props: PropertySet) -> None:
    for k in image.keys():
        agent.local[k] = image.get(k)


def props_for(cells: Iterable[str]) -> PropertySet:
    return PropertySet([Property("cells", DiscreteSet(set(cells)))])


class ProtocolFixture:
    """One kernel + transport + system + N agents, ready to script."""

    def __init__(
        self,
        store_cells: Optional[Dict[str, int]] = None,
        default_latency: float = 1.0,
        trace: bool = False,
        **system_kw,
    ) -> None:
        self.kernel = SimKernel()
        self.transport = SimTransport(self.kernel, default_latency=default_latency)
        self.trace = TraceLog() if trace else None
        self.store = Store(store_cells or {"a": 10, "b": 20, "c": 30})
        system_kw.setdefault("extract_cells", extract_cells)
        self.system = FleccSystem(
            self.transport,
            self.store,
            extract_from_object,
            merge_into_object,
            trace=self.trace,
            **system_kw,
        )
        self.agents: Dict[str, Agent] = {}

    def add_agent(
        self,
        view_id: str,
        cells: Iterable[str],
        mode: Mode | str = Mode.WEAK,
        triggers: Optional[TriggerSet] = None,
        trigger_poll_period: float = 100.0,
    ):
        agent = Agent()
        self.agents[view_id] = agent
        cm = self.system.add_view(
            view_id,
            agent,
            props_for(cells),
            extract_from_view,
            merge_into_view,
            mode=mode,
            triggers=triggers,
            trigger_poll_period=trigger_poll_period,
        )
        return cm, agent

    def run_scripts(self, *scripts):
        return run_all_scripts(self.transport, list(scripts))

    def run_script(self, script):
        return run_view_script(self.transport, script)

    def run(self, until: Optional[float] = None):
        return self.kernel.run(until=until)

    @property
    def stats(self):
        return self.transport.stats
