"""Connection-scale sweep: concurrent cache managers vs transport plane.

The paper's dynamic-reconfiguration story only matters at scale if the
wire layer can hold thousands of concurrent cache-manager connections.
This sweep ramps the CM count (100 → 1k → 10k) over the two real-socket
backends — thread-per-connection :class:`~repro.net.tcp_transport.TcpTransport`
and event-loop :class:`~repro.net.aio_transport.AioTcpTransport` — and
measures, in wall-clock time on one box:

- **max sustainable CMs** — the largest ramp point a backend completes
  with zero protocol errors inside the point's time budget.  TCP
  points whose file-descriptor appetite (a listener per CM plus two
  socket ends per direction of every CM↔DM link) exceeds the process
  rlimit are *structurally* skipped and recorded unsustainable — the
  collapse is a resource wall, not a timeout worth waiting out.
- **p99 acquire latency** — wall seconds from ``start_use_image`` to
  grant for each CM's initial strong-mode acquire (all N contend at
  once; the tail is dominated by directory queueing).
- **frames/sec and the coalesced-flush ratio** — how many wire frames
  the backend paid for the logical message load (the aio writer flushes
  adjacent messages in one drain and wraps them in one BATCH envelope).
- **peak send-queue depth / backpressure stalls** — the bounded-queue
  counters from :class:`~repro.net.stats.MessageStats`.

The workload is transport-focused by construction: every CM owns a
disjoint one-cell slice, so no conflict rounds serialize the run — the
directory does O(1) work per op and the observed limits belong to the
transport plane, not the coherence protocol (PR 6's shard sweep covers
contention).  Each CM runs an event-driven script chained through
``Completion.then`` — no per-CM driver threads, so the harness itself
stays off the resource ceilings it is measuring.

One *directory-bound* point rides the sweep as well (PR 10): the
``aio+paired`` variant makes each adjacent pair of strong CMs share a
cell, so real revocation rounds contend across the fleet, and runs the
directory with ``concurrent_rounds=0`` — the conflict-aware scheduler
overlapping independent pairs' rounds on real sockets.  It closes the
loop between the transport-plane numbers here and the bare-DM numbers
in ``BENCH_dmprofile.json``/``BENCH_dmsched.json``: the gate is
correctness (sustained, zero errors, exact end state under contention),
and the point is excluded from the max-sustainable transport ratios.

The ``--check`` gate also replays one deterministic Fig-4-style
workload on sim / threaded-TCP / asyncio-TCP and requires identical
message-type counts and end state: three backends, one protocol.

``python -m repro.experiments.scale_sweep`` writes ``BENCH_scale.json``;
``--full`` adds the 10k point (manual/nightly — several minutes on one
core).
"""

from __future__ import annotations

import argparse
import json
import resource
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.system import FleccSystem, run_all_scripts
from repro.experiments.report import Table
from repro.net.aio_transport import AioTcpTransport
from repro.net.message import reset_message_ids
from repro.net.tcp_transport import TcpTransport
from repro.net.transport import Transport, resolve_transport
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)

#: CM-count ramp; the 10k point rides only behind ``--full``.
DEFAULT_RAMP: Tuple[int, ...] = (100, 300, 1000, 3000)
FULL_RAMP: Tuple[int, ...] = (100, 300, 1000, 3000, 10000)
TRANSPORTS: Tuple[str, ...] = ("tcp", "aio")

#: The directory-bound contention variant: "<transport>+paired" makes
#: CM pairs share a cell and runs the directory's concurrent round
#: scheduler unbounded.  One such point rides the sweep at the ramp's
#: smallest size.
PAIRED_SPEC = "aio+paired"

# Rough per-CM file-descriptor appetite of the threaded backend: one
# listening socket, plus the CM->DM and DM->CM connections at two fds
# each (client end + accepted end live in this one process).
_TCP_FDS_PER_CM = 5
_FD_HEADROOM = 0.8


def _cell(i: int) -> str:
    return f"cell{i:05d}"


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def point_budget(n_cms: int, cycles: int) -> float:
    """Wall-clock budget for one point (seconds).

    Per-op cost grows with the fleet (the directory's conflict
    bookkeeping is O(#views) per op), so the budget is quadratic in N —
    calibrated on a 1-core box at 13 s for 1k CMs and 190 s for 3k CMs
    (x 2 cycles) on aio.  Floor 60 s absorbs cold-start noise at the
    small points; cap 600 s bounds a wedged backend."""
    return min(600.0, max(60.0, 6e-6 * n_cms * n_cms * (cycles + 2)))


def tcp_capacity_reason(n_cms: int) -> Optional[str]:
    """Why a TCP point cannot run at all (None = it can)."""
    soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    need = _TCP_FDS_PER_CM * n_cms + 64
    if need > soft * _FD_HEADROOM:
        return (
            f"thread-per-connection backend needs ~{need} fds at {n_cms} "
            f"CMs; process soft limit is {soft}"
        )
    return None


def _make_transport(spec: str, n_cms: int) -> Transport:
    if spec == "aio":
        # Queue bound sized to the fleet: the benchmark's interest is
        # steady-state flow, not refusing the initial registration
        # burst.  wrap_batches: the sweep reports the coalesced-frame
        # economics, and Fig-4 counts are unaffected by construction.
        return AioTcpTransport(max_queue=2 * n_cms + 1024, wrap_batches=True)
    if spec == "tcp":
        return TcpTransport()
    raise ValueError(f"scale sweep transport must be tcp|aio, not {spec!r}")


@dataclass
class ScalePoint:
    """One (transport, CM count) measurement."""

    transport: str
    n_cms: int
    cycles: int
    ran: bool                      # False = structurally skipped
    completed: bool                # all CMs finished inside the budget
    sustainable: bool              # completed and zero errors
    reason: str                    # why not sustainable ("" when it is)
    budget: float
    elapsed: float
    errors: int
    acquire_p50: float             # wall seconds, initial strong acquire
    acquire_p99: float
    messages: int                  # logical sends (Fig-4 counting)
    frames: int                    # codec encodes = wire frames paid for
    messages_per_sec: float
    frames_per_sec: float
    coalesced_ratio: float         # messages riding a shared flush / all
    send_queue_hwm: int
    backpressure_stalls: int


class _CmDriver:
    """One CM's event-driven lifecycle, chained through ``then``.

    start → init → [cycles x (acquire → mutate → release → push)] →
    kill.  Every callback is exception-fenced into ``on_done`` so a
    protocol failure is counted, never silently swallowed by the
    resolving thread.
    """

    def __init__(
        self,
        system: FleccSystem,
        index: int,
        cycles: int,
        lock: threading.Lock,
        acquire_latencies: List[float],
        on_done,
        paired: bool = False,
    ) -> None:
        self.agent = Agent()
        # Paired variant: CMs 2k and 2k+1 share cell k, so strong-mode
        # acquires contend within each pair (real revocation rounds)
        # while pairs stay mutually independent.
        self.cell = _cell(index // 2) if paired else _cell(index)
        self.cm = system.add_view(
            f"cm{index:05d}", self.agent, props_for([self.cell]),
            extract_from_view, merge_into_view, mode="strong",
        )
        self.cycles = cycles
        self.cycle = 0
        self._lock = lock
        self._latencies = acquire_latencies
        self._on_done = on_done
        self._t0 = 0.0

    def begin(self) -> None:
        try:
            self.cm.start().then(self._started)
        except BaseException as exc:  # noqa: BLE001 - funnel to counter
            self._on_done(exc)

    def _step(self, comp, next_step) -> None:
        try:
            comp.value
            next_step()
        except BaseException as exc:  # noqa: BLE001
            self._on_done(exc)

    def _started(self, comp) -> None:
        self._step(comp, lambda: self.cm.init_image().then(self._inited))

    def _inited(self, comp) -> None:
        self._step(comp, self._acquire)

    def _acquire(self) -> None:
        self._t0 = time.monotonic()
        self.cm.start_use_image().then(self._granted)

    def _granted(self, comp) -> None:
        def use() -> None:
            if self.cycle == 0:
                # Only the initial start_use pays a wire acquire (the
                # owner token is retained on a conflict-free slice);
                # that is the latency the ramp is measuring.
                dt = time.monotonic() - self._t0
                with self._lock:
                    self._latencies.append(dt)
            self.agent.local[self.cell] = self.agent.local.get(self.cell, 0) + 1
            self.cm.end_use_image()
            self.cm.push_image().then(self._pushed)

        self._step(comp, use)

    def _pushed(self, comp) -> None:
        def advance() -> None:
            self.cycle += 1
            if self.cycle < self.cycles:
                self._acquire()
            else:
                self.cm.kill_image().then(self._killed)

        self._step(comp, advance)

    def _killed(self, comp) -> None:
        self._step(comp, lambda: self._on_done(None))


def _skipped_point(spec: str, n_cms: int, cycles: int, reason: str) -> ScalePoint:
    return ScalePoint(
        transport=spec, n_cms=n_cms, cycles=cycles, ran=False,
        completed=False, sustainable=False, reason=reason,
        budget=point_budget(n_cms, cycles), elapsed=0.0, errors=0,
        acquire_p50=0.0, acquire_p99=0.0, messages=0, frames=0,
        messages_per_sec=0.0, frames_per_sec=0.0, coalesced_ratio=0.0,
        send_queue_hwm=0, backpressure_stalls=0,
    )


def _run_point(spec: str, n_cms: int, cycles: int) -> ScalePoint:
    base, _, variant = spec.partition("+")
    paired = variant == "paired"
    if paired:
        n_cms -= n_cms % 2  # pairs need an even fleet
    if base == "tcp":
        reason = tcp_capacity_reason(n_cms)
        if reason is not None:
            return _skipped_point(spec, n_cms, cycles, reason)
    reset_message_ids()
    budget = point_budget(n_cms, cycles)
    transport = _make_transport(base, n_cms)
    n_cells = n_cms // 2 if paired else n_cms
    store = Store({_cell(i): 0 for i in range(n_cells)})
    system = FleccSystem(
        transport, store, extract_from_object, merge_into_object,
        extract_cells=extract_cells,
        # The paired point is the directory-bound leg: unbounded
        # concurrent rounds, so independent pairs' revocation rounds
        # overlap.  None keeps the serial default elsewhere.
        concurrent_rounds=0 if paired else None,
    )
    lock = threading.Lock()
    done = threading.Event()
    remaining = [n_cms]
    errors: List[BaseException] = []
    latencies: List[float] = []

    def on_done(err: Optional[BaseException]) -> None:
        with lock:
            if err is not None:
                errors.append(err)
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set()

    drivers = [
        _CmDriver(system, i, cycles, lock, latencies, on_done, paired=paired)
        for i in range(n_cms)
    ]
    t0 = time.monotonic()
    for d in drivers:
        d.begin()
    completed = done.wait(budget)
    elapsed = time.monotonic() - t0
    stats = transport.stats
    handler_errors = len(getattr(transport, "handler_errors", ()))
    n_errors = len(errors) + handler_errors
    wrong_cells = 0
    if completed and not n_errors:
        # Paired cells absorb both partners' increments; strong-mode
        # serializability makes the sum exact either way.
        expected = cycles * (2 if paired else 1)
        wrong_cells = sum(
            1 for i in range(n_cells) if store.cells[_cell(i)] != expected
        )
    system.close()
    transport.close()
    sustainable = completed and n_errors == 0 and wrong_cells == 0
    if sustainable:
        reason = ""
    elif not completed:
        reason = (
            f"{remaining[0]} of {n_cms} CMs unfinished after "
            f"{budget:.0f}s budget"
        )
    elif n_errors:
        reason = f"{n_errors} protocol/handler errors"
    else:
        reason = f"{wrong_cells} cells diverged from expected end state"
    return ScalePoint(
        transport=spec, n_cms=n_cms, cycles=cycles, ran=True,
        completed=completed, sustainable=sustainable, reason=reason,
        budget=budget, elapsed=elapsed, errors=n_errors,
        acquire_p50=_percentile(latencies, 0.50),
        acquire_p99=_percentile(latencies, 0.99),
        messages=stats.total, frames=stats.encodes,
        messages_per_sec=stats.total / elapsed if elapsed else 0.0,
        frames_per_sec=stats.encodes / elapsed if elapsed else 0.0,
        coalesced_ratio=(
            stats.flushes_coalesced / stats.total if stats.total else 0.0
        ),
        send_queue_hwm=stats.send_queue_hwm,
        backpressure_stalls=stats.backpressure_stalls,
    )


# ---------------------------------------------------------------------------
# Three-transport parity
# ---------------------------------------------------------------------------

def _parity_run(spec: str) -> Tuple[Dict[str, int], Dict[str, int]]:
    """One deterministic workload on one backend: (end state, by_type).

    Two single-actor phases run back to back (a weak lifecycle, then a
    strong one), so message counts cannot depend on wall-clock races —
    the property that makes count parity assertable on real sockets.
    """
    reset_message_ids()
    transport = resolve_transport(spec)
    store = Store({"a": 10, "b": 20})
    system = FleccSystem(
        transport, store, extract_from_object, merge_into_object,
        extract_cells=extract_cells,
    )
    weak_agent, strong_agent = Agent(), Agent()
    weak = system.add_view(
        "weak-view", weak_agent, props_for(["a"]),
        extract_from_view, merge_into_view, mode="weak",
    )
    strong = system.add_view(
        "strong-view", strong_agent, props_for(["a", "b"]),
        extract_from_view, merge_into_view, mode="strong",
    )

    def weak_script():
        yield weak.start()
        yield weak.init_image()
        yield weak.start_use_image()
        weak_agent.local["a"] = 99
        weak.end_use_image()
        yield weak.push_image()
        yield weak.kill_image()

    def strong_script():
        yield strong.start()
        yield strong.init_image()
        yield strong.start_use_image()
        strong_agent.local["b"] = strong_agent.local.get("b", 0) + 1
        strong.end_use_image()
        yield strong.kill_image()

    run_all_scripts(transport, [weak_script()])
    run_all_scripts(transport, [strong_script()])
    state = dict(store.cells)
    by_type = dict(transport.stats.by_type)
    system.close()
    transport.close()
    return state, by_type


def transport_parity() -> Tuple[bool, bool, Dict[str, int]]:
    """sim vs tcp vs aio on the parity workload.

    Returns (state_identical, counts_identical, reference by_type)."""
    states, counts = [], []
    for spec in ("sim", "tcp", "aio"):
        state, by_type = _parity_run(spec)
        states.append(state)
        counts.append(by_type)
    return (
        states[0] == states[1] == states[2],
        counts[0] == counts[1] == counts[2],
        counts[0],
    )


@dataclass
class ScaleSweepResult:
    points: List[ScalePoint] = field(default_factory=list)
    parity_state_identical: bool = True
    parity_counts_identical: bool = True
    parity_by_type: Dict[str, int] = field(default_factory=dict)

    def table(self) -> Table:
        t = Table(
            [
                "transport", "CMs", "ok", "elapsed", "acq p50", "acq p99",
                "msg/s", "frames/s", "coalesced", "hwm", "reason",
            ],
            title="SCALE — concurrent CMs vs transport plane (wall clock)",
        )
        for p in self.points:
            t.add_row(
                p.transport, p.n_cms,
                "yes" if p.sustainable else ("skip" if not p.ran else "NO"),
                f"{p.elapsed:.1f}", f"{p.acquire_p50:.3f}",
                f"{p.acquire_p99:.3f}", f"{p.messages_per_sec:.0f}",
                f"{p.frames_per_sec:.0f}", f"{p.coalesced_ratio:.2f}",
                p.send_queue_hwm, p.reason[:40],
            )
        return t


def sweep_points(
    ramp: Sequence[int] = DEFAULT_RAMP, cycles: int = 2
) -> List[Tuple[str, int, int]]:
    """Picklable point descriptors: ``(transport, n_cms, cycles)``.

    Includes the directory-bound ``aio+paired`` contention point at
    the ramp's smallest size (rounded down to an even fleet)."""
    points = [(spec, n, cycles) for spec in TRANSPORTS for n in ramp]
    if ramp:
        paired_n = min(ramp) - (min(ramp) % 2)
        if paired_n >= 2:
            points.append((PAIRED_SPEC, paired_n, cycles))
    return points


def run_sweep_point(
    point: Tuple[str, int, int], seed: Optional[int] = None
) -> ScalePoint:
    spec, n_cms, cycles = point
    return _run_point(spec, n_cms, cycles)


def merge_scale_sweep(
    points: List[Tuple[str, int, int]],
    partials: List[ScalePoint],
    seed: Optional[int] = None,
) -> ScaleSweepResult:
    result = ScaleSweepResult(points=list(partials))
    (
        result.parity_state_identical,
        result.parity_counts_identical,
        result.parity_by_type,
    ) = transport_parity()
    return result


def run_scale_sweep(
    ramp: Optional[Sequence[int]] = None,
    cycles: int = 2,
    full: bool = False,
) -> ScaleSweepResult:
    if ramp is None:
        ramp = FULL_RAMP if full else DEFAULT_RAMP
    points = sweep_points(ramp, cycles)
    return merge_scale_sweep(points, [run_sweep_point(p) for p in points])


def _max_sustainable(payload_points: List[Dict[str, Any]], spec: str) -> int:
    return max(
        (p["n_cms"] for p in payload_points
         if p["transport"] == spec and p["sustainable"]),
        default=0,
    )


def _point_at(
    payload_points: List[Dict[str, Any]], spec: str, n_cms: int
) -> Optional[Dict[str, Any]]:
    for p in payload_points:
        if p["transport"] == spec and p["n_cms"] == n_cms:
            return p
    return None


def bench_payload(result: ScaleSweepResult) -> Dict[str, object]:
    """The ``BENCH_scale.json`` document for one sweep."""
    points = [
        {
            "transport": p.transport,
            "n_cms": p.n_cms,
            "cycles": p.cycles,
            "ran": p.ran,
            "completed": p.completed,
            "sustainable": p.sustainable,
            "reason": p.reason,
            "budget_s": round(p.budget, 1),
            "elapsed_s": round(p.elapsed, 2),
            "errors": p.errors,
            "acquire_p50_s": round(p.acquire_p50, 4),
            "acquire_p99_s": round(p.acquire_p99, 4),
            "messages": p.messages,
            "frames": p.frames,
            "messages_per_sec": round(p.messages_per_sec, 1),
            "frames_per_sec": round(p.frames_per_sec, 1),
            "coalesced_ratio": round(p.coalesced_ratio, 4),
            "send_queue_hwm": p.send_queue_hwm,
            "backpressure_stalls": p.backpressure_stalls,
        }
        for p in result.points
    ]
    ramp_top = max((p["n_cms"] for p in points), default=0)
    tcp_max = _max_sustainable(points, "tcp")
    aio_max = _max_sustainable(points, "aio")
    ratio = aio_max / tcp_max if tcp_max else float(aio_max > 0)
    matched = _point_at(points, "aio", tcp_max) if tcp_max else None
    tcp_best = _point_at(points, "tcp", tcp_max) if tcp_max else None
    return {
        "description": (
            "Connection-scale sweep: concurrent cache managers vs "
            "transport plane (thread-per-connection TCP vs asyncio "
            "event loop), wall clock on one box"
        ),
        "command": "python -m repro.experiments.scale_sweep --full",
        "ramp_top": ramp_top,
        "tcp_max_sustainable_cms": tcp_max,
        "aio_max_sustainable_cms": aio_max,
        "aio_over_tcp_ratio": round(ratio, 2),
        "p99_at_tcp_max": {
            "n_cms": tcp_max,
            "tcp_s": tcp_best["acquire_p99_s"] if tcp_best else 0.0,
            "aio_s": matched["acquire_p99_s"] if matched else 0.0,
        },
        "parity_state_identical": result.parity_state_identical,
        "parity_counts_identical": result.parity_counts_identical,
        "parity_by_type": dict(result.parity_by_type),
        "points": points,
    }


def check_acceptance(payload: Dict[str, Any]) -> List[str]:
    """The PR's acceptance gates; returns a list of violations.

    The 3x floor is enforced whenever the ramp gave the asyncio backend
    room to prove it (top point >= 3x TCP's best); a capped smoke ramp
    still enforces parity, that aio is never behind threaded TCP, and
    that it sustains at least the smallest ramp point.  The ramp *top*
    is deliberately not a gate: the full 10k point records how far this
    box gets, and on a small box the directory plane (not the
    transport) is what gives out first."""
    problems = []
    if not payload["parity_state_identical"]:
        problems.append("sim/tcp/aio end states differ on the parity workload")
    if not payload["parity_counts_identical"]:
        problems.append(
            "sim/tcp/aio Fig-4 message counts differ on the parity workload"
        )
    points = payload["points"]
    # The directory-bound paired point gates on correctness only: real
    # revocation rounds under the concurrent scheduler must sustain
    # with zero errors and the exact serializable end state.  It never
    # enters the transport ratios (its transport name is "aio+paired").
    for p in points:
        if p["transport"].endswith("+paired") and p["ran"] and not p["sustainable"]:
            problems.append(
                f"directory-bound paired point ({p['n_cms']} CMs, "
                f"concurrent rounds) not sustainable: {p['reason']}"
            )
    ramp_top = payload["ramp_top"]
    aio_max = payload["aio_max_sustainable_cms"]
    tcp_max = payload["tcp_max_sustainable_cms"]
    ramp_bottom = min((p["n_cms"] for p in points), default=0)
    if aio_max < ramp_bottom:
        problems.append(
            f"aio transport did not sustain even the smallest ramp "
            f"point ({aio_max} < {ramp_bottom} CMs)"
        )
    if aio_max < tcp_max:
        problems.append(
            f"aio sustains fewer CMs than threaded TCP "
            f"({aio_max} < {tcp_max})"
        )
    if tcp_max and ramp_top >= 3 * tcp_max:
        ratio = payload["aio_over_tcp_ratio"]
        if ratio < 3.0:
            problems.append(
                f"aio sustains only {ratio}x the CMs of threaded TCP "
                f"(need >= 3x: {aio_max} vs {tcp_max})"
            )
        matched = _point_at(points, "aio", tcp_max)
        tcp_best = _point_at(points, "tcp", tcp_max)
        if matched and tcp_best and matched["sustainable"]:
            # "equal or better" with a 5% scheduler-jitter allowance.
            if matched["acquire_p99_s"] > tcp_best["acquire_p99_s"] * 1.05:
                problems.append(
                    f"aio p99 acquire at {tcp_max} CMs is "
                    f"{matched['acquire_p99_s']}s vs TCP's "
                    f"{tcp_best['acquire_p99_s']}s (must be equal or better)"
                )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> ScaleSweepResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.scale_sweep",
        description="Run the connection-scale sweep and write BENCH_scale.json",
    )
    parser.add_argument(
        "--out", default="BENCH_scale.json", metavar="FILE",
        help="output JSON path (default: BENCH_scale.json)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="include the 10k-CM point (manual/nightly; minutes on one core)",
    )
    parser.add_argument(
        "--max-cms", type=int, default=None, metavar="N",
        help="cap the ramp at N CMs (CI smoke uses ~500); N itself is "
             "appended as the top point when not already in the ramp",
    )
    parser.add_argument("--cycles", type=int, default=2)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when an acceptance gate fails",
    )
    args = parser.parse_args(argv)
    ramp: List[int] = list(FULL_RAMP if args.full else DEFAULT_RAMP)
    if args.max_cms is not None:
        ramp = [n for n in ramp if n <= args.max_cms]
        if args.max_cms not in ramp:
            ramp.append(args.max_cms)
    result = run_scale_sweep(ramp=ramp, cycles=args.cycles)
    print(result.table())
    payload = bench_payload(result)
    print(
        f"max sustainable CMs: aio={payload['aio_max_sustainable_cms']} "
        f"tcp={payload['tcp_max_sustainable_cms']} "
        f"(ratio {payload['aio_over_tcp_ratio']}x)"
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    problems = check_acceptance(payload)
    if problems:
        print("ACCEPTANCE VIOLATIONS:", *problems, sep="\n  ")
        if args.check:
            raise SystemExit(1)
    else:
        print(
            "acceptance: OK (aio never behind threaded TCP; >=3x TCP's "
            "max CMs where the ramp can prove it; 3-transport parity holds)"
        )
    return result


if __name__ == "__main__":
    main()
