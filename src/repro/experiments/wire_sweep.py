"""Wire-codec sweep: JSON vs binary vs binary+zlib payload bytes.

A/Bs the wire codecs over the two workloads that exercise the
serialization layer hardest:

- the **delta-sweep store workload** (one writer committing
  ``dirty_per_round`` rotating cells per round, one reader pulling once
  per round, strict-wire simulated transport) at a PUSH/PULL_DATA-heavy
  all-dirty point and a large-view low-locality delta point;
- a small **Fig-4 airline workload** (travel agents reserving seats
  against the flight database) run strict-wire under every codec.

What the A/B must show:

- **wire win** — the binary codec shrinks the data-carrying payload
  bytes (PUSH + PULL_DATA + INIT_DATA) by >= 2x on the PUSH-heavy
  point; adaptive zlib compression reaches >= 3x on the 512-cell point
  whose INIT_DATA snapshots dominate;
- **identity** — for every point the final component/view state, the
  paper's Fig-4 logical message counts, *and every individual decoded
  message* are identical across codecs: the codec changes bytes on the
  wire, never protocol behavior;
- **delta parity preserved** — the delta-synchronization ratios from
  ``BENCH_delta.json`` (all-dirty parity ~= 1, low-locality reduction)
  hold under every codec, and delta-on vs delta-off runs stay
  message-count identical per codec.

``python -m repro.experiments.wire_sweep`` writes ``BENCH_wire.json``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.airline.app_spec import build_airline_system
from repro.apps.airline.travel_agent import lifecycle
from repro.apps.airline.workload import (
    flights_needed,
    generate_flight_database,
    make_agent_groups,
    reserve_operations,
)
from repro.core import messages as M
from repro.core.system import FleccSystem, run_all_scripts
from repro.core.triggers import TriggerSet
from repro.experiments.report import Table
from repro.net.binary_codec import resolve_codec
from repro.net.message import Message, reset_message_ids
from repro.net.sim_transport import SimTransport
from repro.sim.kernel import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)

#: Codec specs swept by default (resolve_codec spellings).
CODECS: Tuple[str, ...] = ("json", "binary", "binary+zlib")

#: Message types whose payloads carry object data — the bytes the
#: binary codec is built to shrink.
PAYLOAD_TYPES: Tuple[str, ...] = (M.PUSH, M.PULL_DATA, M.INIT_DATA)


@dataclass
class WorkloadRun:
    """Measurements from one (workload, codec, delta) run."""

    state: Dict[str, Any]            # final primary-copy cells
    view_state: Dict[str, Any]       # final reader/agent-side cells
    by_type: Dict[str, int]          # logical message counts (Fig 4)
    bytes_by_type: Dict[str, int]    # encoded frame bytes per type
    total_messages: int
    frames_compressed: int
    frames_stored: int
    bytes_saved_compression: int
    captured: List[Message] = field(default_factory=list, repr=False)

    @property
    def payload_bytes(self) -> int:
        return sum(self.bytes_by_type.get(t, 0) for t in PAYLOAD_TYPES)


@dataclass
class WirePoint:
    """One store-workload sweep point A/Bed across all codecs."""

    n_cells: int
    dirty_per_round: int
    rounds: int
    # codec -> data-payload bytes (PUSH + PULL_DATA + INIT_DATA).
    payload_bytes: Dict[str, int]
    total_bytes: Dict[str, int]
    # json payload bytes / codec payload bytes.
    reduction: Dict[str, float]
    # Compression accounting from each codec's run.
    frames_compressed: Dict[str, int]
    frames_stored: Dict[str, int]
    bytes_saved_compression: Dict[str, int]
    # Delta-synchronization parity, re-measured per codec: delta-on vs
    # delta-off payload ratio and message-count identity.
    delta_vs_full_payload_ratio: Dict[str, float]
    delta_messages_identical: Dict[str, bool]
    # Cross-codec invariants.
    state_identical: bool
    messages_identical: bool
    decoded_identical: bool


@dataclass
class Fig4WireResult:
    """The Fig-4 airline workload run under every codec."""

    n_agents: int
    n_conflicting: int
    total_messages: Dict[str, int]
    payload_bytes: Dict[str, int]
    total_bytes: Dict[str, int]
    reduction: Dict[str, float]
    state_identical: bool
    messages_identical: bool
    decoded_identical: bool


@dataclass
class WireSweepResult:
    points: List[WirePoint] = field(default_factory=list)
    fig4: Optional[Fig4WireResult] = None

    def table(self) -> Table:
        t = Table(
            [
                "workload", "payload json", "payload binary", "payload b+z",
                "binary", "b+zlib", "identical",
            ],
            title="WIRE — data-payload bytes by codec (json = 1.0x)",
        )
        for p in self.points:
            t.add_row(
                f"store {p.n_cells}c/{p.dirty_per_round}d",
                p.payload_bytes["json"],
                p.payload_bytes["binary"],
                p.payload_bytes["binary+zlib"],
                f"{p.reduction['binary']:.2f}x",
                f"{p.reduction['binary+zlib']:.2f}x",
                p.state_identical and p.messages_identical
                and p.decoded_identical,
            )
        if self.fig4 is not None:
            f = self.fig4
            t.add_row(
                f"fig4 {f.n_agents}a/{f.n_conflicting}k",
                f.payload_bytes["json"],
                f.payload_bytes["binary"],
                f.payload_bytes["binary+zlib"],
                f"{f.reduction['binary']:.2f}x",
                f"{f.reduction['binary+zlib']:.2f}x",
                f.state_identical and f.messages_identical
                and f.decoded_identical,
            )
        return t


def _run_store_workload(
    n_cells: int,
    dirty_per_round: int,
    rounds: int,
    delta: bool,
    codec: str,
    capture: bool = False,
) -> WorkloadRun:
    """One serial store run under ``codec`` (delta_sweep's workload).

    ``reset_message_ids`` makes runs bit-comparable: the simulated
    schedule is deterministic, so two runs that differ only in codec
    produce equal :class:`Message` streams — ids included.
    """
    reset_message_ids()
    kernel = SimKernel()
    captured: List[Message] = []
    fault_policy = None
    if capture:
        def fault_policy(msg: Message) -> str:
            captured.append(msg)
            return "deliver"

    transport = SimTransport(
        kernel,
        default_latency=1.0,
        strict_wire=True,
        fault_policy=fault_policy,
        codec=codec,
    )
    store = Store({f"c{i:04d}": i for i in range(n_cells)})
    system = FleccSystem(
        transport,
        store,
        extract_from_object,
        merge_into_object,
        delta=delta,
        extract_cells=extract_cells,
    )
    keys = sorted(store.cells)
    writer_agent = Agent()
    writer = system.add_view(
        "writer", writer_agent, props_for(keys),
        extract_from_view, merge_into_view,
    )
    reader_agent = Agent()
    reader = system.add_view(
        "reader", reader_agent, props_for(keys),
        extract_from_view, merge_into_view,
    )
    period = 10.0

    def writer_script():
        yield writer.start()
        yield writer.init_image()
        for r in range(rounds):
            yield writer.start_use_image()
            for j in range(dirty_per_round):
                key = keys[(r * dirty_per_round + j) % n_cells]
                writer_agent.local[key] = (r + 1) * 1_000_000 + j
            writer.end_use_image()
            yield writer.push_image()
            yield ("sleep", period)
        yield writer.kill_image()

    def reader_script():
        yield reader.start()
        yield reader.init_image()
        yield ("sleep", period / 2.0)
        for _ in range(rounds):
            yield reader.pull_image()
            yield ("sleep", period)
        yield reader.kill_image()

    run_all_scripts(transport, [writer_script(), reader_script()])
    stats = transport.stats
    return WorkloadRun(
        state=dict(store.cells),
        view_state=dict(reader_agent.local),
        by_type=dict(stats.by_type),
        bytes_by_type=dict(stats.bytes_by_type),
        total_messages=stats.total,
        frames_compressed=stats.frames_compressed,
        frames_stored=stats.frames_stored,
        bytes_saved_compression=stats.bytes_saved_compression,
        captured=captured,
    )


def _run_fig4_workload(
    codec: str,
    n_agents: int = 10,
    n_conflicting: int = 5,
    ops_per_agent: int = 1,
    seed: int = 0,
    stagger: float = 2.0,
) -> WorkloadRun:
    """One strict-wire Fig-4 airline run under ``codec``."""
    reset_message_ids()
    flights_per_agent = 3
    database = generate_flight_database(
        flights_needed(n_agents, n_conflicting, flights_per_agent), seed=seed
    )
    captured: List[Message] = []
    airline = build_airline_system(database, strict_wire=True, codec=codec)
    airline.transport.fault_policy = (
        lambda msg: (captured.append(msg), "deliver")[1]
    )
    groups = make_agent_groups(n_agents, n_conflicting, flights_per_agent)
    scripts = []
    for i, served in enumerate(groups):
        agent, cm = airline.add_travel_agent(
            f"ta-{i:03d}", served, mode="weak",
            triggers=TriggerSet(validity="true"),
        )
        ops = reserve_operations(served, ops_per_agent, seed=seed, agent_index=i)
        scripts.append(
            _staggered(lifecycle(cm, agent, ops, think_time=1.0), i * stagger)
        )
    run_all_scripts(airline.transport, scripts)
    stats = airline.stats
    return WorkloadRun(
        state={num: f.to_cell() for num, f in database.flights.items()},
        view_state={},
        by_type=dict(stats.by_type),
        bytes_by_type=dict(stats.bytes_by_type),
        total_messages=stats.total,
        frames_compressed=stats.frames_compressed,
        frames_stored=stats.frames_stored,
        bytes_saved_compression=stats.bytes_saved_compression,
        captured=captured,
    )


def _staggered(script, delay: float):
    if delay > 0:
        yield ("sleep", delay)
    result = yield from script
    return result


def _decoded_identical(
    reference: List[Message], codecs: Sequence[str]
) -> bool:
    """Every captured message survives every codec's round-trip
    *byte-equal in meaning*: decode(encode(m)) under each codec equals
    the original message and each other."""
    instances = [resolve_codec(c) for c in codecs]
    for m in reference:
        for inst in instances:
            if inst.decode(inst.encode(m)) != m:
                return False
    return True


def _streams_equal(a: List[Message], b: List[Message]) -> bool:
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))


def _ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


def run_wire_sweep(
    sweep: Sequence[Tuple[int, int]] = ((64, 64), (512, 4)),
    rounds: int = 5,
    codecs: Sequence[str] = CODECS,
    fig4_agents: int = 10,
    fig4_conflicting: int = 5,
) -> WireSweepResult:
    """A/B every sweep point and the Fig-4 workload across codecs."""
    result = WireSweepResult()
    for n_cells, dirty in sweep:
        runs: Dict[str, WorkloadRun] = {}
        full_runs: Dict[str, WorkloadRun] = {}
        for codec in codecs:
            runs[codec] = _run_store_workload(
                n_cells, dirty, rounds, delta=True, codec=codec, capture=True
            )
            full_runs[codec] = _run_store_workload(
                n_cells, dirty, rounds, delta=False, codec=codec
            )
        base = runs[codecs[0]]
        state_identical = all(
            r.state == base.state and r.view_state == base.view_state
            for r in runs.values()
        )
        messages_identical = all(
            r.by_type == base.by_type and _streams_equal(r.captured, base.captured)
            for r in runs.values()
        )
        decoded_identical = _decoded_identical(base.captured, codecs)
        result.points.append(
            WirePoint(
                n_cells=n_cells,
                dirty_per_round=dirty,
                rounds=rounds,
                payload_bytes={c: runs[c].payload_bytes for c in codecs},
                total_bytes={
                    c: sum(runs[c].bytes_by_type.values()) for c in codecs
                },
                reduction={
                    c: round(
                        _ratio(runs[codecs[0]].payload_bytes,
                               runs[c].payload_bytes), 2
                    )
                    for c in codecs
                },
                frames_compressed={c: runs[c].frames_compressed for c in codecs},
                frames_stored={c: runs[c].frames_stored for c in codecs},
                bytes_saved_compression={
                    c: runs[c].bytes_saved_compression for c in codecs
                },
                delta_vs_full_payload_ratio={
                    c: round(
                        _ratio(runs[c].payload_bytes,
                               full_runs[c].payload_bytes), 4
                    )
                    for c in codecs
                },
                delta_messages_identical={
                    c: runs[c].by_type == full_runs[c].by_type for c in codecs
                },
                state_identical=state_identical,
                messages_identical=messages_identical,
                decoded_identical=decoded_identical,
            )
        )
    fig4_runs = {
        c: _run_fig4_workload(
            c, n_agents=fig4_agents, n_conflicting=fig4_conflicting
        )
        for c in codecs
    }
    fbase = fig4_runs[codecs[0]]
    result.fig4 = Fig4WireResult(
        n_agents=fig4_agents,
        n_conflicting=fig4_conflicting,
        total_messages={c: fig4_runs[c].total_messages for c in codecs},
        payload_bytes={c: fig4_runs[c].payload_bytes for c in codecs},
        total_bytes={
            c: sum(fig4_runs[c].bytes_by_type.values()) for c in codecs
        },
        reduction={
            c: round(
                _ratio(fbase.payload_bytes, fig4_runs[c].payload_bytes), 2
            )
            for c in codecs
        },
        state_identical=all(
            r.state == fbase.state for r in fig4_runs.values()
        ),
        messages_identical=all(
            r.by_type == fbase.by_type
            and _streams_equal(r.captured, fbase.captured)
            for r in fig4_runs.values()
        ),
        decoded_identical=_decoded_identical(fbase.captured, codecs),
    )
    return result


def bench_payload(result: WireSweepResult) -> Dict[str, object]:
    """The ``BENCH_wire.json`` document for one sweep."""
    push_heavy = max(
        result.points, key=lambda p: p.dirty_per_round / max(1, p.n_cells)
    )
    delta_point = max(
        result.points, key=lambda p: p.n_cells / max(1, p.dirty_per_round)
    )
    points_ok = [
        p.state_identical and p.messages_identical and p.decoded_identical
        for p in result.points
    ]
    fig4 = result.fig4
    if fig4 is not None:
        points_ok.append(
            fig4.state_identical and fig4.messages_identical
            and fig4.decoded_identical
        )
    return {
        "description": (
            "Wire-codec sweep: data-payload bytes (PUSH + PULL_DATA + "
            "INIT_DATA) under json vs binary vs binary+zlib codecs, with "
            "cross-codec state/message/decode identity checks"
        ),
        "command": "python -m repro.experiments.wire_sweep",
        "push_heavy_reduction_binary": push_heavy.reduction.get("binary"),
        "push_heavy_reduction_zlib": push_heavy.reduction.get("binary+zlib"),
        "delta_point_reduction_binary": delta_point.reduction.get("binary"),
        "delta_point_reduction_zlib": delta_point.reduction.get("binary+zlib"),
        "all_points_state_identical": all(
            p.state_identical for p in result.points
        ) and (fig4 is None or fig4.state_identical),
        "all_points_messages_identical": all(
            p.messages_identical for p in result.points
        ) and (fig4 is None or fig4.messages_identical),
        "all_points_decoded_identical": all(
            p.decoded_identical for p in result.points
        ) and (fig4 is None or fig4.decoded_identical),
        "delta_parity_by_codec": {
            c: {
                "all_dirty_payload_ratio":
                    push_heavy.delta_vs_full_payload_ratio.get(c),
                "low_locality_payload_ratio":
                    delta_point.delta_vs_full_payload_ratio.get(c),
                "messages_identical":
                    push_heavy.delta_messages_identical.get(c, False)
                    and delta_point.delta_messages_identical.get(c, False),
            }
            for c in push_heavy.payload_bytes
        },
        "fig4": None if fig4 is None else {
            "n_agents": fig4.n_agents,
            "n_conflicting": fig4.n_conflicting,
            "total_messages": fig4.total_messages,
            "payload_bytes": fig4.payload_bytes,
            "reduction": fig4.reduction,
            "messages_identical": fig4.messages_identical,
            "state_identical": fig4.state_identical,
        },
        "points": [
            {
                "n_cells": p.n_cells,
                "dirty_per_round": p.dirty_per_round,
                "rounds": p.rounds,
                "payload_bytes": p.payload_bytes,
                "total_bytes": p.total_bytes,
                "reduction": p.reduction,
                "frames_compressed": p.frames_compressed,
                "frames_stored": p.frames_stored,
                "bytes_saved_compression": p.bytes_saved_compression,
                "delta_vs_full_payload_ratio": p.delta_vs_full_payload_ratio,
                "delta_messages_identical": p.delta_messages_identical,
                "state_identical": p.state_identical,
                "messages_identical": p.messages_identical,
                "decoded_identical": p.decoded_identical,
            }
            for p in result.points
        ],
    }


def check_acceptance(payload: Dict[str, object]) -> List[str]:
    """The PR's acceptance gates; returns a list of violations."""
    problems = []
    if not payload["all_points_state_identical"]:
        problems.append("end state differs across codecs")
    if not payload["all_points_messages_identical"]:
        problems.append("logical message counts differ across codecs")
    if not payload["all_points_decoded_identical"]:
        problems.append("decoded messages differ across codecs")
    r = payload.get("push_heavy_reduction_binary") or 0.0
    if r < 2.0:
        problems.append(
            f"binary reduction {r}x < 2x on the PUSH-heavy point"
        )
    rz = payload.get("delta_point_reduction_zlib") or 0.0
    if rz < 3.0:
        problems.append(
            f"binary+zlib reduction {rz}x < 3x on the 512-cell delta point"
        )
    for codec, parity in payload.get("delta_parity_by_codec", {}).items():
        if not parity["messages_identical"]:
            problems.append(f"delta on/off message counts differ under {codec}")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> WireSweepResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.wire_sweep",
        description="Run the wire-codec sweep and write BENCH_wire.json",
    )
    parser.add_argument(
        "--out", default="BENCH_wire.json", metavar="FILE",
        help="output JSON path (default: BENCH_wire.json)",
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--agents", type=int, default=10,
        help="travel agents in the fig4 workload (default: 10)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when an acceptance gate fails",
    )
    args = parser.parse_args(argv)
    result = run_wire_sweep(
        rounds=args.rounds,
        fig4_agents=args.agents,
        fig4_conflicting=max(1, args.agents // 2),
    )
    print(result.table())
    payload = bench_payload(result)
    print(
        f"push-heavy binary: {payload['push_heavy_reduction_binary']}x, "
        f"delta-point binary+zlib: {payload['delta_point_reduction_zlib']}x"
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    problems = check_acceptance(payload)
    if problems:
        print("ACCEPTANCE VIOLATIONS:", *problems, sep="\n  ")
        if args.check:
            raise SystemExit(1)
    else:
        print(
            "acceptance: OK (identity across codecs; binary >= 2x, "
            "binary+zlib >= 3x; delta parity preserved per codec)"
        )
    return result


if __name__ == "__main__":
    main()
