"""Parallel experiment engine: fan runs across worker processes.

The serial runner executes every experiment back to back in one
process.  This engine decomposes the suite into independent *tasks* —
whole experiments, one per requested seed, and (for experiments that
register a sweep shard spec) individual sweep points — and executes
them on a :mod:`multiprocessing` pool.  Results are merged and written
by the parent, ordered by (experiment name, seed), so a parallel run
produces byte-for-byte the same ``results/*.json`` as a serial run
except for the ``wall_seconds`` timing field.

Determinism contract: every task starts from a fresh message-id space
(:func:`~repro.net.message.reset_message_ids`), experiments derive all
randomness from their explicit seeds, and each sweep point builds its
own transport — so task results do not depend on which process ran
them or in what order.

Use via the runner CLI::

    python -m repro.experiments.runner --jobs 4
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import runner as runner_mod
from repro.net.message import reset_message_ids


@dataclass(frozen=True)
class ShardSpec:
    """How to split one experiment's sweep across workers.

    ``points()`` returns picklable point descriptors; ``run_point(point,
    seed)`` computes one point's partial result; ``merge(points,
    partials, seed)`` reassembles the exact object the experiment's
    serial entry point returns.
    """

    points: Callable[[], List[Any]]
    run_point: Callable[[Any, Optional[int]], Any]
    merge: Callable[[List[Any], List[Any], Optional[int]], Any]


def shard_specs() -> Dict[str, ShardSpec]:
    """Experiments that decompose into independent sweep points."""
    from repro.experiments import dm_profile as dmp
    from repro.experiments import dm_sched as dms
    from repro.experiments import durability_sweep as dura
    from repro.experiments import fig4_efficiency as f4
    from repro.experiments import scale_sweep as scale
    from repro.experiments import shard_sweep as shards

    return {
        "dm_profile": ShardSpec(
            points=dmp.sweep_points,
            run_point=dmp.run_sweep_point,
            merge=dmp.merge_dm_profile,
        ),
        "dm_sched": ShardSpec(
            points=dms.sweep_points,
            run_point=dms.run_sweep_point,
            merge=dms.merge_dm_sched,
        ),
        "fig4_efficiency": ShardSpec(
            points=f4.sweep_points,
            run_point=f4.run_fig4_point,
            merge=f4.merge_fig4,
        ),
        "shard_sweep": ShardSpec(
            points=shards.sweep_points,
            run_point=shards.run_sweep_point,
            merge=shards.merge_shard_sweep,
        ),
        "scale_sweep": ShardSpec(
            points=scale.sweep_points,
            run_point=scale.run_sweep_point,
            merge=scale.merge_scale_sweep,
        ),
        "durability_sweep": ShardSpec(
            points=dura.sweep_points,
            run_point=dura.run_sweep_point,
            merge=dura.merge_durability_sweep,
        ),
    }


# A task is a picklable tuple:
#   ("whole", name, seed)         - run the experiment end to end
#   ("shard", name, seed, index)  - run one sweep point of a sharded one
Task = Tuple[Any, ...]


def _run_task(task: Task) -> Tuple[Task, float, Any]:
    """Worker entry: execute one task, return (task, elapsed, payload)."""
    reset_message_ids()
    t0 = time.perf_counter()
    if task[0] == "whole":
        _, name, seed = task
        fn = runner_mod.EXPERIMENTS[name]
        result = fn() if seed is None else fn(seed=seed)
        payload = runner_mod._jsonable(result)
    else:
        _, name, seed, index = task
        spec = shard_specs()[name]
        payload = spec.run_point(spec.points()[index], seed)
    return task, time.perf_counter() - t0, payload


def build_tasks(
    names: Sequence[str], seeds: Optional[Sequence[int]]
) -> List[Task]:
    """Decompose the requested runs into worker tasks (shards first,
    so the long sweep points start before the short whole experiments
    and the pool drains evenly)."""
    sharded = shard_specs()
    shard_tasks: List[Task] = []
    whole_tasks: List[Task] = []
    for name in names:
        for seed in runner_mod.seeds_for(name, seeds):
            if name in sharded:
                n_points = len(sharded[name].points())
                shard_tasks.extend(
                    ("shard", name, seed, i) for i in range(n_points)
                )
            else:
                whole_tasks.append(("whole", name, seed))
    return shard_tasks + whole_tasks


def _merge_records(
    tasks: List[Task], outcomes: Dict[Task, Tuple[float, Any]]
) -> List[Dict[str, Any]]:
    """Fold task payloads into result records, ordered by (name, seed)."""
    sharded = shard_specs()
    runs: Dict[Tuple[str, Optional[int]], List[Task]] = {}
    for task in tasks:
        runs.setdefault((task[1], task[2]), []).append(task)
    records = []
    for (name, seed) in sorted(runs, key=lambda k: (k[0], k[1] is not None, k[1])):
        group = runs[(name, seed)]
        if group[0][0] == "whole":
            elapsed, payload = outcomes[group[0]]
            records.append(runner_mod.make_record(name, elapsed, payload, seed=seed))
        else:
            spec = sharded[name]
            points = spec.points()
            ordered = sorted(group, key=lambda t: t[3])
            partials = [outcomes[t][1] for t in ordered]
            # wall_seconds = summed point cost (the serial-equivalent time);
            # the field is excluded from result comparisons either way.
            elapsed = sum(outcomes[t][0] for t in ordered)
            result = spec.merge(points, partials, seed)
            records.append(
                runner_mod.make_record(
                    name, elapsed, runner_mod._jsonable(result), seed=seed
                )
            )
    return records


def run_parallel(
    names: Optional[Sequence[str]] = None,
    out_dir: str = "results",
    jobs: int = 2,
    seeds: Optional[Sequence[int]] = None,
) -> List[Dict[str, Any]]:
    """Run the requested experiments on ``jobs`` worker processes.

    Falls back to the serial path for ``jobs <= 1``.  Returns the
    result records sorted by (experiment name, seed), having written
    each to ``out_dir`` exactly as the serial runner would.
    """
    resolved = runner_mod.resolve_names(names)
    if jobs <= 1:
        return runner_mod.run_serial(resolved, out_dir, seeds=seeds)
    tasks = build_tasks(resolved, seeds)
    outcomes: Dict[Task, Tuple[float, Any]] = {}
    with multiprocessing.Pool(processes=jobs) as pool:
        for task, elapsed, payload in pool.imap_unordered(_run_task, tasks):
            outcomes[task] = (elapsed, payload)
            if task[0] == "whole":
                print(
                    f"done {runner_mod.record_key(task[1], task[2])} "
                    f"({elapsed:.3f}s)",
                    flush=True,
                )
    records = _merge_records(tasks, outcomes)
    out = Path(out_dir)
    for record in records:
        runner_mod.save_record(record, out)
    return records
