"""Experiment harness: one module per paper figure, plus ablations.

Every module exposes a ``run_*`` function returning a structured result
and a ``__main__`` entry point that prints the paper's rows/series::

    python -m repro.experiments.fig2_trace
    python -m repro.experiments.fig4_efficiency
    python -m repro.experiments.fig5_adaptability
    python -m repro.experiments.fig6_flexibility
    python -m repro.experiments.ablations

The corresponding pytest-benchmark wrappers live in ``benchmarks/``.
See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.experiments.report import Table, ascii_series

__all__ = ["Table", "ascii_series"]
