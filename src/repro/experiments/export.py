"""Export experiment results to CSV for downstream plotting.

Each exporter takes a result object from the corresponding ``run_*``
function and writes one tidy CSV (long format: one observation per
row), the shape pandas/R/gnuplot consume directly.  Used by
``python -m repro.experiments.export``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List

from repro.baselines.common import ProtocolName
from repro.experiments.ablations import Abl1Result, Abl2Result, Abl3Result, Abl4Result, Abl5Result
from repro.experiments.fig4_efficiency import Fig4Result
from repro.experiments.fig5_adaptability import Fig5Result
from repro.experiments.fig6_flexibility import Fig6Result


def _write(path: Path, header: List[str], rows: List[list]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig4(result: Fig4Result, path: Path) -> Path:
    rows = []
    for protocol in ProtocolName:
        for k, msgs in zip(result.conflicting_sweep, result.messages[protocol.value]):
            rows.append([protocol.value, k, msgs])
    return _write(path, ["protocol", "conflicting_agents", "messages"], rows)


def export_fig5(result: Fig5Result, path: Path) -> Path:
    rows = [
        [s.time, s.phase, s.duration, s.quality] for s in result.samples
    ]
    return _write(path, ["time", "phase", "method_duration", "unseen_updates"], rows)


def export_fig6(result: Fig6Result, path: Path) -> Path:
    rows = []
    for variant in (result.without_triggers, result.with_triggers):
        for t, q in variant.quality_series:
            rows.append([variant.label, t, q, variant.total_messages])
    return _write(
        path, ["variant", "time", "unseen_updates", "total_messages"], rows
    )


def export_abl2(result: Abl2Result, path: Path) -> Path:
    return _write(
        path,
        ["pull_period", "messages", "mean_unseen"],
        [list(p) for p in result.points],
    )


def export_abl4(result: Abl4Result, path: Path) -> Path:
    return _write(
        path,
        ["views", "centralized_functions", "decentralized_functions"],
        [list(p) for p in result.points],
    )


def export_abl5(result: Abl5Result, path: Path) -> Path:
    return _write(
        path,
        ["read_fraction", "rw_aware_messages", "write_only_messages"],
        [list(p) for p in result.points],
    )


def export_abl6(result, path: Path) -> Path:
    return _write(
        path,
        ["loss_rate", "retries", "messages", "all_committed"],
        [[loss, r, m, ok] for loss, r, m, ok in result.points],
    )


def export_ext1(result, path: Path) -> Path:
    return _write(
        path,
        ["buy_fraction", "messages", "browser_invalidations", "lost_sales"],
        [list(p) for p in result.points],
    )


def export_scalar_ablations(
    abl1: Abl1Result, abl3: Abl3Result, path: Path
) -> Path:
    return _write(
        path,
        ["ablation", "variant", "messages"],
        [
            ["abl1", "conservative-static", abl1.messages_conservative],
            ["abl1", "dynamic-properties", abl1.messages_dynamic],
            ["abl3", "coarse-granularity", abl3.messages_coarse],
            ["abl3", "fine-granularity", abl3.messages_fine],
        ],
    )


def export_all(out_dir: str = "results/csv") -> List[Path]:
    """Run every experiment and write its CSV; returns written paths."""
    from repro.experiments import ablations, fig4_efficiency, fig5_adaptability, fig6_flexibility

    from repro.experiments import mixed_workload

    out = Path(out_dir)
    written = [
        export_fig4(fig4_efficiency.run_fig4(), out / "fig4_efficiency.csv"),
        export_fig5(fig5_adaptability.run_fig5(), out / "fig5_adaptability.csv"),
        export_fig6(fig6_flexibility.run_fig6(), out / "fig6_flexibility.csv"),
        export_abl2(ablations.run_abl2(), out / "abl2_trigger_period.csv"),
        export_abl4(ablations.run_abl4(), out / "abl4_centralization.csv"),
        export_abl5(ablations.run_abl5(), out / "abl5_rw_semantics.csv"),
        export_abl6(ablations.run_abl6(), out / "abl6_loss_tolerance.csv"),
        export_ext1(mixed_workload.run_ext1(), out / "ext1_mixed_workload.csv"),
        export_scalar_ablations(
            ablations.run_abl1(), ablations.run_abl3(), out / "abl_scalars.csv"
        ),
    ]
    return written


if __name__ == "__main__":
    for p in export_all():
        print(p)
