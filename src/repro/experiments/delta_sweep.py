"""Delta-synchronization sweep: wire bytes and latency vs the full-image path.

Sweeps view size × write locality over a two-view workload (one writer
committing ``dirty_per_round`` cells per round, one reader pulling once
per round) and runs every point twice on strict-wire simulated
transports: once with delta synchronization enabled (version-filtered
pulls) and once with ``delta=False`` (every serve ships the complete
property slice — the paper's baseline wire format).

What the A/B comparison must show:

- **wire win** — at low write locality (large view, few dirty cells)
  the per-pull PULL_DATA payload shrinks by the view/dirty ratio;
- **parity** — when every cell is dirty each delta necessarily carries
  the whole slice, so per-pull bytes match the full-image path to
  within the DeltaImage framing overhead;
- **identity** — the paper's Fig-4 logical message counts and the final
  component/view state are *identical* between the two runs: delta
  synchronization changes payload contents, never the protocol.

``python -m repro.experiments.delta_sweep`` writes ``BENCH_delta.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import messages as M
from repro.core.system import FleccSystem, run_all_scripts
from repro.experiments.report import Table
from repro.net.sim_transport import SimTransport
from repro.sim.kernel import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


@dataclass
class DeltaPoint:
    """One sweep point: the same workload with delta on vs off."""

    n_cells: int
    dirty_per_round: int
    rounds: int
    pulls: int
    # Per-pull PULL_DATA payload bytes (encoded frame, strict wire).
    full_bytes_per_pull: float
    delta_bytes_per_pull: float
    bytes_reduction: float          # full / delta
    # Mean wall-clock per pull (request to applied), milliseconds.
    full_latency_ms: float
    delta_latency_ms: float
    # Image accounting from the delta run.
    images_full: int
    images_delta: int
    cells_sent: int
    cells_skipped: int
    delta_serves: int
    slice_index_hits: int
    # Invariants: both runs end in the same place via the same messages.
    state_identical: bool
    messages_identical: bool


@dataclass
class DeltaSweepResult:
    points: List[DeltaPoint] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            [
                "cells", "dirty/round", "bytes/pull full", "bytes/pull delta",
                "reduction", "lat full ms", "lat delta ms", "identical",
            ],
            title="DELTA — pull payload bytes and latency, delta vs full images",
        )
        for p in self.points:
            t.add_row(
                p.n_cells, p.dirty_per_round,
                f"{p.full_bytes_per_pull:.0f}", f"{p.delta_bytes_per_pull:.0f}",
                f"{p.bytes_reduction:.1f}x",
                f"{p.full_latency_ms:.3f}", f"{p.delta_latency_ms:.3f}",
                p.state_identical and p.messages_identical,
            )
        return t


def _run_workload(
    n_cells: int, dirty_per_round: int, rounds: int, delta: bool,
) -> Tuple[Store, Agent, Dict[str, int], Dict[str, int], List[float], Dict[str, int], Dict[str, int]]:
    """One serial run; returns final state and wire/latency measurements.

    The writer commits ``dirty_per_round`` rotating cells per round and
    the reader pulls once per round, offset into the writer's quiet
    period so the wall time around each ``pull_image`` measures the
    serve path (extract, encode, decode, apply) and nothing else.
    """
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=True)
    store = Store({f"c{i:04d}": i for i in range(n_cells)})
    system = FleccSystem(
        transport,
        store,
        extract_from_object,
        merge_into_object,
        delta=delta,
        extract_cells=extract_cells,
    )
    keys = sorted(store.cells)
    writer_agent = Agent()
    writer = system.add_view(
        "writer", writer_agent, props_for(keys),
        extract_from_view, merge_into_view,
    )
    reader_agent = Agent()
    reader = system.add_view(
        "reader", reader_agent, props_for(keys),
        extract_from_view, merge_into_view,
    )
    pull_wall: List[float] = []
    period = 10.0

    def writer_script():
        yield writer.start()
        yield writer.init_image()
        for r in range(rounds):
            yield writer.start_use_image()
            for j in range(dirty_per_round):
                key = keys[(r * dirty_per_round + j) % n_cells]
                writer_agent.local[key] = (r + 1) * 1_000_000 + j
            writer.end_use_image()
            yield writer.push_image()
            yield ("sleep", period)
        yield writer.kill_image()

    def reader_script():
        yield reader.start()
        yield reader.init_image()
        yield ("sleep", period / 2.0)  # land in the writer's quiet window
        for _ in range(rounds):
            t0 = time.perf_counter()
            yield reader.pull_image()
            pull_wall.append(time.perf_counter() - t0)
            yield ("sleep", period)
        yield reader.kill_image()

    run_all_scripts(transport, [writer_script(), reader_script()])
    stats = transport.stats
    image_stats = {
        "images_full": stats.images_full,
        "images_delta": stats.images_delta,
        "cells_sent": stats.cells_sent,
        "cells_skipped": stats.cells_skipped,
        "delta_serves": system.directory.counters["delta_serves"],
        "slice_index_hits": system.directory.counters["slice_index_hits"],
    }
    return (
        store,
        reader_agent,
        dict(stats.by_type),
        dict(stats.bytes_by_type),
        pull_wall,
        image_stats,
        {"pulls": stats.by_type.get(M.PULL_DATA, 0)},
    )


def _mean_ms(samples: List[float]) -> float:
    return (sum(samples) / len(samples)) * 1000.0 if samples else 0.0


def run_delta_sweep(
    sweep: Sequence[Tuple[int, int]] = ((64, 64), (256, 8), (512, 4), (512, 512)),
    rounds: int = 5,
) -> DeltaSweepResult:
    """A/B every sweep point: ``(n_cells, dirty_per_round)`` pairs."""
    result = DeltaSweepResult()
    for n_cells, dirty in sweep:
        full = _run_workload(n_cells, dirty, rounds, delta=False)
        dlt = _run_workload(n_cells, dirty, rounds, delta=True)
        f_store, f_reader, f_types, f_bytes, f_wall, _f_img, f_pulls = full
        d_store, d_reader, d_types, d_bytes, d_wall, d_img, d_pulls = dlt
        pulls = d_pulls["pulls"]
        full_per_pull = f_bytes.get(M.PULL_DATA, 0) / pulls if pulls else 0.0
        delta_per_pull = d_bytes.get(M.PULL_DATA, 0) / pulls if pulls else 0.0
        result.points.append(
            DeltaPoint(
                n_cells=n_cells,
                dirty_per_round=dirty,
                rounds=rounds,
                pulls=pulls,
                full_bytes_per_pull=full_per_pull,
                delta_bytes_per_pull=delta_per_pull,
                bytes_reduction=(
                    full_per_pull / delta_per_pull if delta_per_pull else 0.0
                ),
                full_latency_ms=_mean_ms(f_wall),
                delta_latency_ms=_mean_ms(d_wall),
                images_full=d_img["images_full"],
                images_delta=d_img["images_delta"],
                cells_sent=d_img["cells_sent"],
                cells_skipped=d_img["cells_skipped"],
                delta_serves=d_img["delta_serves"],
                slice_index_hits=d_img["slice_index_hits"],
                state_identical=(
                    f_store.cells == d_store.cells
                    and f_reader.local == d_reader.local
                ),
                messages_identical=f_types == d_types,
            )
        )
    return result


def bench_payload(result: DeltaSweepResult) -> Dict[str, object]:
    """The ``BENCH_delta.json`` document for one sweep."""
    low_locality = max(
        result.points, key=lambda p: p.n_cells / max(1, p.dirty_per_round)
    )
    all_dirty = [p for p in result.points if p.dirty_per_round >= p.n_cells]
    parity = all_dirty[-1] if all_dirty else None
    return {
        "description": (
            "Delta synchronization sweep: per-pull PULL_DATA payload bytes "
            "and latency, version-filtered delta images vs full slice images"
        ),
        "command": "python -m repro.experiments.delta_sweep",
        "low_locality_bytes_reduction": round(low_locality.bytes_reduction, 2),
        "all_dirty_bytes_ratio": (
            round(parity.delta_bytes_per_pull / parity.full_bytes_per_pull, 4)
            if parity and parity.full_bytes_per_pull else None
        ),
        "all_points_state_identical": all(p.state_identical for p in result.points),
        "all_points_messages_identical": all(
            p.messages_identical for p in result.points
        ),
        "points": [
            {
                "n_cells": p.n_cells,
                "dirty_per_round": p.dirty_per_round,
                "rounds": p.rounds,
                "pulls": p.pulls,
                "full_bytes_per_pull": round(p.full_bytes_per_pull, 1),
                "delta_bytes_per_pull": round(p.delta_bytes_per_pull, 1),
                "bytes_reduction": round(p.bytes_reduction, 2),
                "full_latency_ms": round(p.full_latency_ms, 4),
                "delta_latency_ms": round(p.delta_latency_ms, 4),
                "images_full": p.images_full,
                "images_delta": p.images_delta,
                "cells_sent": p.cells_sent,
                "cells_skipped": p.cells_skipped,
                "delta_serves": p.delta_serves,
                "slice_index_hits": p.slice_index_hits,
                "state_identical": p.state_identical,
                "messages_identical": p.messages_identical,
            }
            for p in result.points
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> DeltaSweepResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.delta_sweep",
        description="Run the delta-synchronization sweep and write BENCH_delta.json",
    )
    parser.add_argument(
        "--out", default="BENCH_delta.json", metavar="FILE",
        help="output JSON path (default: BENCH_delta.json)",
    )
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args(argv)
    result = run_delta_sweep(rounds=args.rounds)
    print(result.table())
    payload = bench_payload(result)
    print(
        f"low-locality reduction: {payload['low_locality_bytes_reduction']}x, "
        f"all-dirty ratio: {payload['all_dirty_bytes_ratio']}"
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return result


if __name__ == "__main__":
    main()
