"""FIG6 — flexibility: data quality with vs without pull triggers.

Paper §5.2 (Flexibility): "ten conflicting travel agents in weak mode,
with and without triggers ...  The upper graph represents a travel
agent which explicitly pulls the current data before executing four
methods.  The lower plot represents the same travel agent that uses a
time-based pull trigger in addition to explicit calls.  However, the
cost of the improved data quality is an increased number of messages
(116 - no triggers versus 182 - with triggers)."

Our reproduction: one observed agent performs a timeline of method
calls, explicitly pulling before every third one; the trigger variant
adds a periodic time-based pull trigger.  We report the per-method-call
unseen-update series for both variants and the total message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.apps.airline.app_spec import build_airline_system
from repro.apps.airline.workload import generate_flight_database, make_agent_groups
from repro.core.modes import Mode
from repro.core.quality import QualityProbe
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.experiments.report import Table, ascii_series


@dataclass
class VariantResult:
    label: str
    quality_series: List[Tuple[float, int]] = field(default_factory=list)
    total_messages: int = 0


@dataclass
class Fig6Result:
    without_triggers: VariantResult
    with_triggers: VariantResult

    def table(self) -> Table:
        t = Table(
            ["variant", "messages", "mean unseen", "max unseen"],
            title="FIG6 — pull triggers: data quality vs message cost",
        )
        for v in (self.without_triggers, self.with_triggers):
            quals = [q for _, q in v.quality_series]
            t.add_row(
                v.label, v.total_messages,
                sum(quals) / len(quals) if quals else 0.0,
                max(quals, default=0),
            )
        return t


def _run_variant(
    use_trigger: bool,
    n_agents: int,
    n_methods: int,
    explicit_pull_every: int,
    trigger_period: float,
    method_gap: float,
    seed: int,
) -> VariantResult:
    database = generate_flight_database(5, seed=seed)
    airline = build_airline_system(database, strict_wire=False)
    groups = make_agent_groups(n_agents, n_conflicting=n_agents)
    flight = groups[0][0]

    # The time-based pull trigger: fires at every poll once the clock
    # is running (the paper's Fig 3 uses the same shape, "(t > 1500)").
    # The poll period *is* the trigger period.
    triggers = TriggerSet(pull="t > 0") if use_trigger else None
    observed_agent, observed_cm = airline.add_travel_agent(
        "ta-000", groups[0], mode=Mode.WEAK,
        triggers=triggers, trigger_poll_period=trigger_period,
    )
    writers = [
        airline.add_travel_agent(f"ta-{i:03d}", served, mode=Mode.WEAK)
        for i, served in enumerate(groups[1:], start=1)
    ]
    probe = QualityProbe(airline.directory)
    variant = VariantResult(
        label="with pull trigger" if use_trigger else "explicit pulls only"
    )
    kernel = airline.kernel

    def observed_script():
        yield observed_cm.start()
        yield observed_cm.init_image()
        for i in range(n_methods):
            if i % explicit_pull_every == 0:
                yield observed_cm.pull_image()  # the paper's explicit call
            yield observed_cm.start_use_image()
            variant.quality_series.append(
                (kernel.now, probe.unseen(observed_cm.view_id))
            )
            observed_agent.confirm_tickets(1, flight)
            observed_cm.end_use_image()
            yield observed_cm.push_image()
            yield ("sleep", method_gap)
        yield observed_cm.kill_image()

    def writer_script(agent, cm):
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_methods):
            yield cm.start_use_image()
            agent.confirm_tickets(1, flight)
            cm.end_use_image()
            yield cm.push_image()
            yield ("sleep", method_gap)
        yield cm.kill_image()

    run_all_scripts(
        airline.transport,
        [observed_script()] + [writer_script(a, cm) for a, cm in writers],
    )
    variant.total_messages = airline.stats.total
    return variant


def run_fig6(
    n_agents: int = 10,
    n_methods: int = 12,
    explicit_pull_every: int = 3,
    trigger_period: float = 5.0,
    method_gap: float = 10.0,
    seed: int = 0,
) -> Fig6Result:
    common = dict(
        n_agents=n_agents,
        n_methods=n_methods,
        explicit_pull_every=explicit_pull_every,
        trigger_period=trigger_period,
        method_gap=method_gap,
        seed=seed,
    )
    return Fig6Result(
        without_triggers=_run_variant(use_trigger=False, **common),
        with_triggers=_run_variant(use_trigger=True, **common),
    )


def check_shape(result: Fig6Result) -> List[str]:
    problems = []
    no_t = result.without_triggers
    with_t = result.with_triggers
    if not with_t.total_messages > no_t.total_messages:
        problems.append(
            f"triggers did not cost messages "
            f"({with_t.total_messages} <= {no_t.total_messages})"
        )
    mean = lambda v: (
        sum(q for _, q in v.quality_series) / len(v.quality_series)
        if v.quality_series else 0.0
    )
    if not mean(with_t) < mean(no_t):
        problems.append(
            f"triggers did not improve quality "
            f"(mean unseen {mean(with_t):.2f} vs {mean(no_t):.2f})"
        )
    return problems


def main() -> None:
    result = run_fig6()
    print(result.table())
    print()
    for v in (result.without_triggers, result.with_triggers):
        print(ascii_series([q for _, q in v.quality_series],
                           label=f"{v.label:<22}"))
    print()
    problems = check_shape(result)
    if problems:
        print("SHAPE VIOLATIONS:", *problems, sep="\n  ")
    else:
        print(
            "shape check: OK (triggers -> more messages, better data "
            "quality; paper reported 116 vs 182 messages)"
        )


if __name__ == "__main__":
    main()
