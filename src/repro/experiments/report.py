"""Plain-text reporting for experiment results (tables and series).

The paper reports line charts; a terminal reproduction prints the same
series as aligned columns plus a coarse ASCII sparkline so trends are
visible in CI logs without plotting dependencies.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


class Table:
    """Fixed-column ASCII table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[Any]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def format(self) -> str:
        cells = [self.columns] + [
            [self._fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    def __str__(self) -> str:
        return self.format()


_BARS = " ▁▂▃▄▅▆▇█"


def ascii_series(
    values: Iterable[float], width: Optional[int] = None, label: str = ""
) -> str:
    """One-line sparkline for a numeric series."""
    vals = list(values)
    if not vals:
        return f"{label} (empty)"
    if width is not None and len(vals) > width:
        # Downsample by block means.
        block = len(vals) / width
        vals = [
            sum(vals[int(i * block):int((i + 1) * block) or 1])
            / max(1, len(vals[int(i * block):int((i + 1) * block)]))
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        bar = _BARS[1] * len(vals)
    else:
        bar = "".join(
            _BARS[1 + int((v - lo) / (hi - lo) * (len(_BARS) - 2))] for v in vals
        )
    prefix = f"{label} " if label else ""
    return f"{prefix}[{bar}] min={lo:.3g} max={hi:.3g}"
