"""Concurrent round scheduler: makespan vs the serial directory queue.

PR 10 replaces the directory manager's single in-flight op slot with a
conflict-aware round scheduler (``concurrent_rounds``): independent
rounds — those whose conflict scopes are disjoint — may overlap their
ACK waits instead of queueing behind one another.  This experiment
measures that win and polices the safety story:

- **Harness** — a *bare* :class:`~repro.core.directory.DirectoryManager`
  on a :class:`~repro.net.sim_transport.SimTransport`, driven by one
  fake cache-manager hub that *delays* its INVALIDATE/FETCH acks by a
  full simulated second.  The ack wait dwarfs every other latency, so
  the makespan of a burst of rounds is dominated by how many of those
  waits the scheduler can overlap — exactly the quantity the tentpole
  claims to improve.
- **Workload** — G independent pair groups (views ``2k``/``2k+1``
  share ``grp{k}``, nothing crosses groups).  The partner view of each
  group is pulled active, then every group leader ACQUIREs at once:
  G revocation rounds whose scopes are pairwise disjoint.  The serial
  queue serves them one ack wait at a time (makespan ~ G seconds of
  simulated time); the concurrent scheduler overlaps them (makespan
  ~ 1 second, or ~ G/N with a bound of N).
- **Legs** — ``serial`` (``concurrent_rounds=1``, the pre-PR
  discipline), ``bounded4`` (at most 4 in-flight rounds) and
  ``unbounded`` (0 = every independent round starts immediately).
  All three legs run the identical message program and must agree on
  Fig-4 message counts, end state and protocol invariants.
- **Randomized-interleaving parity** — a seeded program of drained
  batches, each batch issuing one op (pull/acquire/push/register) per
  randomly chosen group, replays on all three legs.  Because batches
  touch each group at most once and groups are mutually independent,
  the per-group histories are schedule-independent — so end state,
  message counts *and* conflict answers must match exactly, whatever
  interleaving the scheduler picked.  This is the ``--check`` gate the
  PR's acceptance criteria require on every run.

``python -m repro.experiments.dm_sched`` writes ``BENCH_dmsched.json``;
``--check`` exits non-zero when a gate fails (>= 2x rounds/sec for the
unbounded leg over serial, overlap actually witnessed via the
``concurrent_rounds_hwm`` gauge, and all parity gates green).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import DiscreteSet, Property, PropertySet
from repro.core import messages as M
from repro.core.directory import DirectoryManager
from repro.core.image import ObjectImage
from repro.experiments.report import Table
from repro.net.message import Message, reset_message_ids
from repro.net.sim_transport import SimTransport
from repro.sim import SimKernel

#: Independent conflict groups in the measured burst.  The acceptance
#: criterion asks for >= 8; 16 keeps the serial-vs-concurrent gap far
#: from the gate even with scheduling overheads.
N_GROUPS = 16

#: Simulated-time delay before the hub acknowledges an INVALIDATE or
#: FETCH_REQ — the "slow cache manager" whose ack wait the scheduler
#: should overlap.  Two orders of magnitude above the 0.01 hop latency.
ACK_DELAY = 1.0

#: (leg name, concurrent_rounds) — serial first: it is the baseline.
LEGS: Tuple[Tuple[str, int], ...] = (
    ("serial", 1),
    ("bounded4", 4),
    ("unbounded", 0),
)

#: Randomized-interleaving parity program shape.
PARITY_SEED = 1234
PARITY_GROUPS = 8
PARITY_BATCHES = 14


def _vid(i: int) -> str:
    return f"s{i:05d}"


def _props_of(i: int) -> PropertySet:
    """Disjoint-by-pairs properties: private cell + pair-group cell."""
    return PropertySet([
        Property("cells", DiscreteSet({f"own{i:05d}", f"grp{i // 2:05d}"}))
    ])


def _churn_props(g: int, c: int) -> PropertySet:
    """The c-th churn view of group g: joins that group's cell."""
    return PropertySet([
        Property("cells", DiscreteSet({f"churn{g:03d}x{c:03d}", f"grp{g:05d}"}))
    ])


def _extract(store: Dict[str, int], props: PropertySet) -> ObjectImage:
    """O(slice) extract over the property domain (mirrors dm_profile)."""
    img = ObjectImage()
    p = props.get("cells") if props is not None else None
    if p is None:
        for k, v in store.items():
            img.cells[k] = v
        return img
    for k in p.domain.values:
        if k in store:
            img.cells[k] = store[k]
    return img


def _merge(store: Dict[str, int], image: ObjectImage, props: PropertySet) -> None:
    for k in image.keys():
        store[k] = image.get(k)


class _SchedHarness:
    """One directory manager + one slow fake cache-manager hub.

    Identical to dm_profile's bare harness except that the hub's
    INVALIDATE/FETCH acks are *delayed* by ``ack_delay`` simulated
    seconds (scheduled on the sim kernel, not sent inline) — the round
    holds its op slot for the whole wait, which is what gives the
    concurrent scheduler something to overlap.
    """

    def __init__(self, concurrent_rounds: int, ack_delay: float = ACK_DELAY) -> None:
        self.kernel = SimKernel()
        self.transport = SimTransport(self.kernel, default_latency=0.01)
        self.ack_delay = ack_delay
        self.store: Dict[str, int] = {}
        self.dm = DirectoryManager(
            transport=self.transport,
            address="dir",
            component=self.store,
            extract_from_object=_extract,
            merge_into_object=_merge,
            static_map=None,
            profile=True,
            concurrent_rounds=concurrent_rounds,
        )
        self.replies: List[Message] = []
        self._seq: Dict[str, int] = {}
        self.endpoint = self.transport.bind("cmhub", self._on_message)

    def _on_message(self, msg: Message) -> None:
        if msg.msg_type == M.INVALIDATE:
            reply = msg.reply(
                M.INVALIDATE_ACK, {"view_id": msg.payload.get("view_id")}
            )
            self.transport.schedule(
                self.ack_delay, lambda r=reply: self.endpoint.send(r)
            )
        elif msg.msg_type == M.FETCH_REQ:
            reply = msg.reply(
                M.FETCH_REPLY,
                {"view_id": msg.payload.get("view_id"), "image": ObjectImage()},
            )
            self.transport.schedule(
                self.ack_delay, lambda r=reply: self.endpoint.send(r)
            )
        else:
            self.replies.append(msg)

    def drain(self) -> None:
        self.kernel.run()

    def now(self) -> float:
        return self.transport.now()

    # -- protocol verbs (sent from the hub) -----------------------------
    def register(self, view_id: str, props: PropertySet) -> None:
        self.endpoint.send(Message(M.REGISTER, "cmhub", "dir", {
            "view_id": view_id, "properties": props, "mode": "weak",
        }))

    def pull(self, view_id: str) -> None:
        self.endpoint.send(Message(
            M.PULL_REQ, "cmhub", "dir", {"view_id": view_id}
        ))

    def acquire(self, view_id: str) -> None:
        self.endpoint.send(Message(
            M.ACQUIRE, "cmhub", "dir", {"view_id": view_id}
        ))

    def push(self, view_id: str, cells: Dict[str, int]) -> None:
        seq = self._seq.get(view_id, 0) + 1
        self._seq[view_id] = seq
        self.endpoint.send(Message(M.PUSH, "cmhub", "dir", {
            "view_id": view_id, "image": ObjectImage(dict(cells)),
            "state_seq": seq,
        }))

    def state_digest(self) -> str:
        blob = repr(sorted(self.store.items())).encode()
        return hashlib.sha1(blob).hexdigest()

    def conflict_digest(self) -> str:
        """Fingerprint of every view's conflict answer (parity probe)."""
        answers = {
            vid: sorted(self.dm.conflict_set_of(vid))
            for vid in sorted(self.dm.views)
        }
        return hashlib.sha1(repr(answers).encode()).hexdigest()

    def close(self) -> None:
        self.dm.close()
        self.transport.close()


@dataclass
class DmSchedPoint:
    """One leg's measured burst of G independent revocation rounds."""

    leg: str                    # 'serial' | 'bounded4' | 'unbounded'
    concurrent_rounds: int      # the scheduler bound (1 / 4 / 0)
    n_groups: int
    makespan_s: float           # simulated time for the ACQUIRE burst
    rounds_per_sec: float       # n_groups / makespan (simulated time)
    concurrent_rounds_hwm: int  # high-water mark of in-flight rounds
    rounds_overlapped: int      # round starts that joined >= 1 in-flight
    sched_conflict_waits: int   # ops that waited on a conflicting round
    queue_wait_mean_ns: float   # profiler: enqueue -> round start
    queue_wait_count: int
    by_type: Dict[str, int]     # Fig-4 message counts for the point
    bytes_sent: int             # wire bytes (informational; msg-id digit
                                # counts permute across schedules)
    state_digest: str
    invariants_ok: bool
    elapsed_s: float


def _run_point(leg: str, limit: int, n_groups: int = N_GROUPS) -> DmSchedPoint:
    reset_message_ids()
    t_start = time.perf_counter()
    h = _SchedHarness(concurrent_rounds=limit)

    # Setup (drained, unmeasured): register both halves of every pair,
    # then pull each partner active so the leaders' ACQUIREs must run a
    # revocation round against them.
    for i in range(2 * n_groups):
        h.register(_vid(i), _props_of(i))
    h.drain()
    for k in range(n_groups):
        h.pull(_vid(2 * k + 1))
    h.drain()

    # Measured burst: one ACQUIRE per group, issued back to back.  Each
    # triggers an INVALIDATE round whose ack arrives ACK_DELAY later;
    # the scopes are pairwise disjoint, so a conflict-aware scheduler
    # may overlap all G waits.  Makespan is simulated time, so harness
    # CPU cost cancels out entirely.
    t0 = h.now()
    for k in range(n_groups):
        h.acquire(_vid(2 * k))
    h.drain()
    makespan = h.now() - t0

    # Post-burst (drained, deterministic): every leader pushes, so the
    # end-state digest witnesses that commits survived the scheduling.
    for k in range(n_groups):
        h.push(_vid(2 * k), {f"grp{k:05d}": k + 1, f"own{2 * k:05d}": k})
    h.drain()

    invariants_ok = True
    try:
        h.dm.check_invariants()
    except Exception:
        invariants_ok = False

    prof = h.dm.profiler
    qw = prof.phases.get("queue_wait")
    point = DmSchedPoint(
        leg=leg,
        concurrent_rounds=limit,
        n_groups=n_groups,
        makespan_s=makespan,
        rounds_per_sec=n_groups / makespan if makespan else 0.0,
        concurrent_rounds_hwm=h.dm.counters["concurrent_rounds_hwm"],
        rounds_overlapped=h.dm.counters["rounds_overlapped"],
        sched_conflict_waits=h.dm.counters["sched_conflict_waits"],
        queue_wait_mean_ns=qw.mean_ns if qw is not None else 0.0,
        queue_wait_count=qw.count if qw is not None else 0,
        by_type=dict(h.transport.stats.by_type),
        bytes_sent=h.transport.stats.bytes_sent,
        state_digest=h.state_digest(),
        invariants_ok=invariants_ok,
        elapsed_s=time.perf_counter() - t_start,
    )
    h.close()
    return point


# ---------------------------------------------------------------------------
# Randomized-interleaving parity
# ---------------------------------------------------------------------------

def _parity_program(
    seed: int, n_groups: int, batches: int
) -> List[List[Tuple[str, int]]]:
    """A seeded program of drained batches, one op per chosen group.

    Each batch picks a random subset of groups and one verb per group:
    ``pull_even`` / ``pull_odd`` / ``acquire_even`` / ``acquire_odd`` /
    ``push_even`` / ``push_odd`` / ``register_churn`` / ``pull_churn``.
    Batches are drained before the next begins.  Because a batch
    touches each group at most once and groups are mutually
    independent, every group's op history — and therefore its message
    counts and end state — is identical whatever order the scheduler
    interleaves the groups in.  That confluence is what makes *exact*
    cross-leg parity assertable on a randomized program.
    """
    rng = random.Random(seed)
    verbs = (
        "pull_even", "pull_odd", "acquire_even", "acquire_odd",
        "push_even", "push_odd", "register_churn", "pull_churn",
    )
    program: List[List[Tuple[str, int]]] = []
    for _ in range(batches):
        chosen = rng.sample(range(n_groups), k=rng.randint(1, n_groups))
        program.append([(rng.choice(verbs), g) for g in chosen])
    return program


def _replay_program(
    h: _SchedHarness, program: List[List[Tuple[str, int]]], n_groups: int
) -> None:
    churn_count: Dict[int, int] = {}
    for batch in program:
        for verb, g in batch:
            even, odd = _vid(2 * g), _vid(2 * g + 1)
            if verb == "pull_even":
                h.pull(even)
            elif verb == "pull_odd":
                h.pull(odd)
            elif verb == "acquire_even":
                h.acquire(even)
            elif verb == "acquire_odd":
                h.acquire(odd)
            elif verb == "push_even":
                h.push(even, {f"grp{g:05d}": len(churn_count) + 1})
            elif verb == "push_odd":
                h.push(odd, {f"own{2 * g + 1:05d}": g})
            elif verb == "register_churn":
                c = churn_count.get(g, 0)
                churn_count[g] = c + 1
                h.register(f"churn{g:03d}x{c:03d}", _churn_props(g, c))
            elif verb == "pull_churn":
                c = churn_count.get(g, 0)
                if c:
                    h.pull(f"churn{g:03d}x{c - 1:03d}")
        h.drain()
        h.dm.check_invariants()


def randomized_parity(
    seed: int = PARITY_SEED,
    n_groups: int = PARITY_GROUPS,
    batches: int = PARITY_BATCHES,
) -> Dict[str, Any]:
    """Replay one seeded interleaving program on all three legs.

    Returns per-leg fingerprints plus the three parity verdicts the
    acceptance gate checks: identical end state, identical Fig-4
    message counts, identical conflict answers.
    """
    program = _parity_program(seed, n_groups, batches)
    digests: List[str] = []
    by_types: List[Dict[str, int]] = []
    conflicts: List[str] = []
    invariants = True
    for leg, limit in LEGS:
        reset_message_ids()
        h = _SchedHarness(concurrent_rounds=limit)
        for i in range(2 * n_groups):
            h.register(_vid(i), _props_of(i))
        h.drain()
        try:
            _replay_program(h, program, n_groups)
        except Exception:
            invariants = False
        digests.append(h.state_digest())
        by_types.append(dict(h.transport.stats.by_type))
        conflicts.append(h.conflict_digest())
        h.close()
    return {
        "seed": seed,
        "n_groups": n_groups,
        "batches": batches,
        "state_identical": len(set(digests)) == 1,
        "counts_identical": all(bt == by_types[0] for bt in by_types),
        "conflicts_identical": len(set(conflicts)) == 1,
        "invariants_ok": invariants,
        "state_digest": digests[0],
        "by_type": by_types[0],
    }


@dataclass
class DmSchedResult:
    points: List[DmSchedPoint] = field(default_factory=list)
    parity: Dict[str, Any] = field(default_factory=dict)

    def table(self) -> Table:
        t = Table(
            [
                "leg", "bound", "groups", "makespan s", "rounds/s",
                "hwm", "overlapped", "waits", "qwait us",
            ],
            title="DM SCHED — concurrent rounds vs the serial queue",
        )
        for p in self.points:
            t.add_row(
                p.leg, p.concurrent_rounds, p.n_groups,
                f"{p.makespan_s:.2f}", f"{p.rounds_per_sec:.2f}",
                p.concurrent_rounds_hwm, p.rounds_overlapped,
                p.sched_conflict_waits,
                f"{p.queue_wait_mean_ns / 1000:.1f}",
            )
        return t


def sweep_points(
    n_groups: int = N_GROUPS,
) -> List[Tuple[str, int, int]]:
    """Picklable point descriptors: ``(leg, bound, n_groups)``."""
    return [(leg, limit, n_groups) for leg, limit in LEGS]


def run_sweep_point(
    point: Tuple[str, int, int], seed: Optional[int] = None
) -> DmSchedPoint:
    leg, limit, n_groups = point
    return _run_point(leg, limit, n_groups)


def merge_dm_sched(
    points: List[Tuple[str, int, int]],
    partials: List[DmSchedPoint],
    seed: Optional[int] = None,
) -> DmSchedResult:
    return DmSchedResult(
        points=list(partials),
        parity=randomized_parity(seed if seed is not None else PARITY_SEED),
    )


def run_dm_sched(
    n_groups: int = N_GROUPS, seed: Optional[int] = None
) -> DmSchedResult:
    points = sweep_points(n_groups)
    return merge_dm_sched(
        points, [run_sweep_point(p, seed) for p in points], seed
    )


def bench_payload(result: DmSchedResult) -> Dict[str, object]:
    """The ``BENCH_dmsched.json`` document for one run."""
    points = [
        {
            "leg": p.leg,
            "concurrent_rounds": p.concurrent_rounds,
            "n_groups": p.n_groups,
            "makespan_s": round(p.makespan_s, 4),
            "rounds_per_sec": round(p.rounds_per_sec, 3),
            "concurrent_rounds_hwm": p.concurrent_rounds_hwm,
            "rounds_overlapped": p.rounds_overlapped,
            "sched_conflict_waits": p.sched_conflict_waits,
            "queue_wait_mean_us": round(p.queue_wait_mean_ns / 1000, 2),
            "queue_wait_count": p.queue_wait_count,
            "by_type": dict(p.by_type),
            "bytes_sent": p.bytes_sent,
            "state_digest": p.state_digest,
            "invariants_ok": p.invariants_ok,
            "elapsed_s": round(p.elapsed_s, 2),
        }
        for p in result.points
    ]
    by_leg = {p["leg"]: p for p in points}
    serial = by_leg.get("serial")
    bounded = by_leg.get("bounded4")
    unbounded = by_leg.get("unbounded")

    def _speedup(fast: Optional[Dict[str, Any]]) -> float:
        if not serial or not fast or not fast["makespan_s"]:
            return 0.0
        return serial["makespan_s"] / fast["makespan_s"]

    return {
        "description": (
            "Concurrent directory rounds: conflict-aware scheduler "
            "makespan vs the serial FIFO on independent revocation "
            "rounds whose ACK waits dominate"
        ),
        "command": "python -m repro.experiments.dm_sched",
        "n_groups": serial["n_groups"] if serial else 0,
        "ack_delay_s": ACK_DELAY,
        "speedup_bounded4": round(_speedup(bounded), 2),
        "speedup_unbounded": round(_speedup(unbounded), 2),
        "serial_hwm": serial["concurrent_rounds_hwm"] if serial else 0,
        "unbounded_hwm": (
            unbounded["concurrent_rounds_hwm"] if unbounded else 0
        ),
        "leg_counts_identical": all(
            p["by_type"] == points[0]["by_type"] for p in points
        ),
        "leg_state_identical": all(
            p["state_digest"] == points[0]["state_digest"] for p in points
        ),
        "invariants_ok": all(p["invariants_ok"] for p in points),
        "randomized_parity": dict(result.parity),
        "points": points,
    }


def check_acceptance(payload: Dict[str, Any]) -> List[str]:
    """The PR's acceptance gates; returns a list of violations.

    All gates are armed on every run (there is no noise to hide from:
    makespan is simulated time):

    - the unbounded leg completes the burst >= 2x faster (rounds/sec)
      than the serial queue, on >= 8 independent conflict groups;
    - overlap actually happened (``concurrent_rounds_hwm`` > 1 on the
      unbounded leg) and never happened on the serial leg (hwm <= 1);
    - all legs agree exactly: Fig-4 message counts, end state, protocol
      invariants;
    - the randomized-interleaving program replayed identically on every
      leg: end state, message counts and conflict answers.
    """
    problems = []
    if payload["n_groups"] < 8:
        problems.append(
            f"burst ran {payload['n_groups']} conflict groups (need >= 8)"
        )
    if payload["speedup_unbounded"] < 2.0:
        problems.append(
            f"unbounded scheduler only {payload['speedup_unbounded']}x "
            f"faster than the serial queue (need >= 2x)"
        )
    if payload["serial_hwm"] > 1:
        problems.append(
            f"serial leg overlapped rounds (hwm={payload['serial_hwm']}): "
            f"concurrent_rounds=1 must keep the one-op discipline"
        )
    if payload["unbounded_hwm"] < 2:
        problems.append(
            "unbounded leg never overlapped rounds (hwm "
            f"{payload['unbounded_hwm']}): the speedup is not the "
            "scheduler's"
        )
    if not payload["leg_counts_identical"]:
        problems.append("legs produced different Fig-4 message counts")
    if not payload["leg_state_identical"]:
        problems.append("legs produced different end state")
    if not payload["invariants_ok"]:
        problems.append("protocol invariants violated on some leg")
    par = payload["randomized_parity"]
    if not par.get("state_identical"):
        problems.append("randomized interleaving: end state diverged")
    if not par.get("counts_identical"):
        problems.append("randomized interleaving: message counts diverged")
    if not par.get("conflicts_identical"):
        problems.append("randomized interleaving: conflict answers diverged")
    if not par.get("invariants_ok"):
        problems.append("randomized interleaving: invariant check failed")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> DmSchedResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.dm_sched",
        description=(
            "Measure concurrent-round scheduler makespan vs the serial "
            "queue and write BENCH_dmsched.json"
        ),
    )
    parser.add_argument(
        "--out", default="BENCH_dmsched.json", metavar="FILE",
        help="output JSON path (default: BENCH_dmsched.json)",
    )
    parser.add_argument(
        "--groups", type=int, default=N_GROUPS, metavar="G",
        help=f"independent conflict groups in the burst (default {N_GROUPS})",
    )
    parser.add_argument(
        "--seed", type=int, default=PARITY_SEED, metavar="S",
        help="seed for the randomized-interleaving parity program",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when an acceptance gate fails",
    )
    args = parser.parse_args(argv)
    result = run_dm_sched(n_groups=args.groups, seed=args.seed)
    print(result.table())
    payload = bench_payload(result)
    print(
        f"speedup over serial: bounded4 {payload['speedup_bounded4']}x, "
        f"unbounded {payload['speedup_unbounded']}x "
        f"(hwm {payload['unbounded_hwm']}) on {payload['n_groups']} "
        f"independent groups"
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    problems = check_acceptance(payload)
    if problems:
        print("ACCEPTANCE VIOLATIONS:", *problems, sep="\n  ")
        if args.check:
            raise SystemExit(1)
    else:
        print(
            "acceptance: OK (>= 2x rounds/sec with overlap witnessed; "
            "all legs byte-for-byte on counts, state, conflicts and "
            "invariants; randomized interleavings converge)"
        )
    return result


if __name__ == "__main__":
    main()
