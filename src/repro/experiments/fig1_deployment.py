"""FIG1 — the paper's deployment picture as a runnable scenario.

Figure 1 of the paper shows three domains connected to the Internet:
one runs the original component; the other two serve their local
clients through views whose working data is a subset of the original's.

This experiment builds that world end to end: the PSF planner places a
TravelAgent view in each remote domain (driven by the clients' latency
budgets), the deployment wires live Flecc cache managers over the WAN
topology, a strong-mode reservation workload runs in all three domains,
and the report shows where each client was served from, the latency it
got, and how much coherence traffic crossed the backbone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apps.airline.flights import (
    extract_from_database,
    merge_into_database,
)
from repro.apps.airline.travel_agent import (
    TravelAgent,
    extract_from_agent,
    lifecycle,
    merge_into_agent,
)
from repro.apps.airline.workload import generate_flight_database
from repro.apps.airline.app_spec import airline_spec
from repro.core import FleccSystem, Mode
from repro.core.system import run_all_scripts
from repro.net.sim_transport import SimTransport
from repro.net.topology import wan_topology
from repro.psf.environment import Environment
from repro.psf.planning import Planner
from repro.psf.qos import QoSRequirement
from repro.sim.kernel import SimKernel
from repro.experiments.report import Table


@dataclass
class Fig1Result:
    # client domain -> (serving type, node, latency)
    service: Dict[str, Tuple[str, str, float]] = field(default_factory=dict)
    total_messages: int = 0
    backbone_messages: int = 0
    reservations_made: int = 0
    seats_consistent: bool = False

    def table(self) -> Table:
        t = Table(
            ["client domain", "served by", "on node", "latency"],
            title="FIG1 — three-domain deployment (paper Figure 1)",
        )
        for domain in sorted(self.service):
            kind, node, lat = self.service[domain]
            t.add_row(domain, kind, node, lat)
        return t


def run_fig1(
    ops_per_domain: int = 4,
    internet_latency: float = 25.0,
    seed: int = 0,
) -> Fig1Result:
    # --- the Fig 1 world: three domains around the Internet ----------
    domains = {
        "domain1": ["origin-host", "d1-client"],
        "domain2": ["d2-host", "d2-client"],
        "domain3": ["d3-host", "d3-client"],
    }
    topo = wan_topology(
        domains, internet_latency=internet_latency, lan_latency=0.5,
        insecure_backbone=False,
    )
    env = Environment(topo)
    for hosts in domains.values():
        for h in hosts:
            topo.graph.nodes[h]["trusted"] = True
            topo.graph.nodes[h]["capacity"] = 4

    # --- PSF: plan view placement from the clients' QoS ------------------
    spec = airline_spec(database_node="origin-host")
    clients = [
        QoSRequirement(client_node="d1-client", max_latency=10.0),
        QoSRequirement(client_node="d2-client", max_latency=10.0),
        QoSRequirement(client_node="d3-client", max_latency=10.0),
    ]
    plan = Planner(spec, env).plan(clients)

    # --- deploy + wire Flecc over the WAN ------------------------------------
    kernel = SimKernel()
    transport = SimTransport(kernel, topology=topo, strict_wire=False)
    database = generate_flight_database(5, seed=seed)
    flecc = FleccSystem(
        transport, database, extract_from_database, merge_into_database
    )
    transport.place(flecc.directory.address, "origin-host")

    result = Fig1Result()
    agents: List[Tuple[TravelAgent, object, str]] = []
    for client in clients:
        serving = plan.placement_of(plan.client_bindings[client.client_node])
        domain = topo.node_attrs(client.client_node)["domain"]
        result.service[domain] = (
            serving.type_name,
            serving.node,
            plan.estimated_latency[client.client_node],
        )
        if serving.type_name == "TravelAgent":
            agent = TravelAgent(serving.instance_id, sorted(database.flights))
            cm = flecc.add_view(
                serving.instance_id, agent, agent.properties(),
                extract_from_agent, merge_into_agent, mode=Mode.STRONG,
            )
            transport.place(cm.address, serving.node)
            agents.append((agent, cm, domain))

    # --- the workload: every remote domain sells through its view ---------
    flight = sorted(database.flights)[0]
    seats_before = database.seats_available(flight)
    ops = [("reserve", flight, 1)] * ops_per_domain
    made = run_all_scripts(
        transport,
        [lifecycle(cm, agent, ops, think_time=1.0) for agent, cm, _ in agents],
    )
    result.reservations_made = sum(made)
    result.total_messages = transport.stats.total
    result.backbone_messages = _backbone_crossings(transport, topo)
    result.seats_consistent = (
        database.seats_available(flight) == seats_before - result.reservations_made
    )
    return result


def _backbone_crossings(transport: SimTransport, topo) -> int:
    """Messages whose endpoints sit in different domains."""
    def domain_of(address: str) -> str:
        node = transport.node_of(address)
        if node is None:
            return "?"
        return topo.node_attrs(node).get("domain", "?")

    return sum(
        n
        for (src, dst), n in transport.stats.by_pair.items()
        if domain_of(src) != domain_of(dst)
    )


def check_shape(result: Fig1Result) -> List[str]:
    problems = []
    if result.service.get("domain1", ("",))[0] != "FlightDatabase":
        problems.append("domain1 client not served by the original component")
    for d in ("domain2", "domain3"):
        if result.service.get(d, ("",))[0] != "TravelAgent":
            problems.append(f"{d} client not served by a view")
    if not result.seats_consistent:
        problems.append("strong-mode reservations lost across domains")
    if not all(lat <= 10.0 for _, _, lat in result.service.values()):
        problems.append("a client exceeded its latency budget")
    if result.backbone_messages == 0:
        problems.append("no coherence traffic crossed the backbone?!")
    return problems


def main() -> None:
    result = run_fig1()
    print(result.table())
    print()
    print(f"reservations committed across domains: {result.reservations_made}")
    print(f"one-copy consistency held: {result.seats_consistent}")
    print(f"total messages: {result.total_messages} "
          f"({result.backbone_messages} crossed the backbone)")
    problems = check_shape(result)
    if problems:
        print("SHAPE VIOLATIONS:", *problems, sep="\n  ")
    else:
        print("shape check: OK (views serve the remote domains within "
              "budget; coherence holds across the WAN)")


if __name__ == "__main__":
    main()
