"""Durability sweep: commit-path overhead, recovery time, kill parity.

Three point families exercise the durable directory plane
(:mod:`repro.core.durability`):

- **overhead** — the Fig-4-style mixed-mode workload plus a 256-commit
  push burst, run per fsync policy (volatile / ``off`` / ``batch`` /
  ``always``), each timed separately (min over repeats).  The gate:
  ``fsync=batch`` must cost at most 1.5x the volatile baseline on the
  fig4 workload.  The batch policy amortizes with ``batch_interval=64``
  (the bounded-loss window it trades for throughput); the burst leg
  reports the commit-bound ``us_per_commit`` per policy.
- **recovery** — recovery (restart) time vs WAL tail length, snapshots
  disabled so the whole tail replays: how long a directory that
  crashed with 64 / 256 / 1024 unsnapshotted commits takes to come
  back, and how many cells it replays.
- **kill** — the gate proper: >= 50 randomized DM kill/restart points
  at N ∈ {1, 4} shards under ``fsync=always``.  Each point kills one
  shard at a seeded random time, wipes the shard's owned cells from
  the in-process component (a *process* kill would lose exactly that
  volatile state — without the wipe the shared component would mask
  any recovery bug), optionally injects damage, restarts the shard
  mid-workload, and requires:

  - the finished run's primary copy equals a crash-free run's
    (**parity**), and
  - after a *final* crash of every shard with the component wiped
    again, recovery alone reproduces that state (**zero lost
    committed writes** — every acknowledged commit must come back
    from the lineage, with nobody left to re-push it).

  Injections: ``torn`` leaves garbage bytes after the WAL's durable
  end (the record a kill interrupted — recovery truncates it);
  ``snap`` truncates the newest snapshot file to model a kill during
  the snapshot write (the in-process write is atomic, so the torn
  on-disk state is modeled by post-crash truncation) — recovery must
  fall back to the previous snapshot and pay a longer replay.

``python -m repro.experiments.durability_sweep`` writes
``BENCH_durability.json``; ``--check`` exits non-zero when a gate
fails.
"""

from __future__ import annotations

import argparse
import json
import shutil
import struct
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import messages as M
from repro.core.directory import DirectoryManager
from repro.core.durability import DurabilitySpec, partitioner_fingerprint
from repro.core.image import ObjectImage
from repro.core.sharding import HashPartitioner, ShardedFleccSystem
from repro.core.system import FleccSystem, run_all_scripts
from repro.experiments.report import Table
from repro.experiments.shard_sweep import _fig4_workload
from repro.net.message import Message, reset_message_ids
from repro.net.sim_transport import SimTransport
from repro.sim.kernel import SimKernel
from repro.sim.rng import stream_for
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)

FSYNC_POLICIES = (None, "off", "batch", "always")  # None = no WAL at all
RECOVERY_TAILS = (64, 256, 1024)
KILL_POINTS = ((1, 28), (4, 24))  # (n_shards, points) -> 52 total
INJECTIONS = ("none", "torn", "snap")

# Torn-tail garbage: a record header declaring 64 payload bytes with
# only a fragment behind it — exactly what a kill mid-append leaves.
TORN_GARBAGE = struct.pack(">I", 64) + b"interrupted"

KILL_CELLS = [f"k{i:02d}" for i in range(8)]


# ---------------------------------------------------------------------------
# Point results
# ---------------------------------------------------------------------------
@dataclass
class OverheadPoint:
    policy: str                  # "volatile" | "off" | "batch" | "always"
    commits: int
    fig4_wall_ms: float          # fig4 workload alone, min over repeats
    burst_wall_ms: float         # 256-commit push burst, min over repeats
    us_per_commit: float         # burst time / burst commits
    wal_appends: int
    wal_syncs: int


@dataclass
class RecoveryPoint:
    tail_len: int                # WAL records replayed (commits)
    recovery_ms: float
    cells_replayed: int


@dataclass
class KillPoint:
    n_shards: int
    index: int
    kill_at: float
    downtime: float
    shard: int
    injection: str               # "none" | "torn" | "snap"
    parity: bool                 # post-run primary copy == crash-free run
    lost_writes: int             # cells final recovery failed to restore
    recoveries: int              # restarts recorded in MessageStats
    cells_replayed: int
    snapshots_skipped: int       # > 0 when the snap injection forced fallback
    torn_truncated: bool


@dataclass
class DurabilitySweepResult:
    overhead: List[OverheadPoint] = field(default_factory=list)
    recovery: List[RecoveryPoint] = field(default_factory=list)
    kills: List[KillPoint] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["family", "config", "metric", "value"],
            title="DURABILITY — commit overhead, recovery time, kill parity",
        )
        for p in self.overhead:
            t.add_row("overhead", p.policy, "us/commit", f"{p.us_per_commit:.1f}")
        for p in self.recovery:
            t.add_row("recovery", f"tail={p.tail_len}", "recovery_ms",
                      f"{p.recovery_ms:.2f}")
        bad = [p for p in self.kills if p.lost_writes or not p.parity]
        t.add_row("kill", f"{len(self.kills)} points", "failed", len(bad))
        return t


# ---------------------------------------------------------------------------
# Overhead family
# ---------------------------------------------------------------------------
def _commit_burst(kernel: SimKernel, transport: SimTransport, n: int) -> None:
    """Drive ``n`` single-cell PUSH commits straight at the directory."""
    replies: List[Message] = []
    ep = transport.bind("bench", replies.append)
    ep.send(Message(M.REGISTER, "bench", "dir",
                    {"view_id": "bench", "properties": props_for(["b00"]),
                     "mode": "weak"}))
    kernel.run()
    for i in range(n):
        ep.send(Message(M.PUSH, "bench", "dir",
                        {"view_id": "bench",
                         "image": ObjectImage({"b00": i}),
                         "state_seq": i + 1}))
        kernel.run()
    ep.close()


def run_overhead_point(
    policy: Optional[str], repeats: int = 7, burst: int = 256
) -> OverheadPoint:
    best_fig4 = best_burst = float("inf")
    commits = appends = syncs = 0
    for _ in range(repeats):
        reset_message_ids()
        root = Path(tempfile.mkdtemp(prefix="flecc-wal-"))
        try:
            kernel = SimKernel()
            transport = SimTransport(kernel, default_latency=1.0, strict_wire=True)
            store = Store({f"c{i:02d}": i for i in range(8)})
            dur = (
                DurabilitySpec(root=root, fsync=policy, batch_interval=64,
                               snapshot_every=256)
                if policy is not None else None
            )
            system = FleccSystem(
                transport, store, extract_from_object, merge_into_object,
                extract_cells=extract_cells, durability=dur,
            )
            t0 = time.perf_counter()
            _fig4_workload(system, sorted(store.cells))
            t1 = time.perf_counter()
            _commit_burst(kernel, transport, burst)
            t2 = time.perf_counter()
            best_fig4 = min(best_fig4, t1 - t0)
            best_burst = min(best_burst, t2 - t1)
            commits = system.directory.counters["commits"]
            d = system.directory.durability
            if d is not None:
                appends, syncs = d.counters["wal_appends"], d.counters["wal_syncs"]
            system.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return OverheadPoint(
        policy=policy or "volatile",
        commits=commits,
        fig4_wall_ms=best_fig4 * 1000.0,
        burst_wall_ms=best_burst * 1000.0,
        us_per_commit=best_burst * 1e6 / burst,
        wal_appends=appends,
        wal_syncs=syncs,
    )


# ---------------------------------------------------------------------------
# Recovery family
# ---------------------------------------------------------------------------
def run_recovery_point(tail_len: int) -> RecoveryPoint:
    reset_message_ids()
    root = Path(tempfile.mkdtemp(prefix="flecc-wal-"))
    try:
        spec = DurabilitySpec(root=root, fsync="batch", batch_interval=16,
                              snapshot_every=0)  # no snapshots: full replay
        kernel = SimKernel()
        transport = SimTransport(kernel, default_latency=1.0, strict_wire=True)
        store = Store()
        dm = DirectoryManager(
            transport, "dir", store, extract_from_object, merge_into_object,
            durability=spec,
        )
        replies: List[Message] = []
        ep = transport.bind("cm", replies.append)
        ep.send(Message(M.REGISTER, "cm", "dir",
                        {"view_id": "v",
                         "properties": props_for(f"c{i:03d}" for i in range(64)),
                         "mode": "weak"}))
        kernel.run()
        for i in range(tail_len):
            ep.send(Message(M.PUSH, "cm", "dir",
                            {"view_id": "v",
                             "image": ObjectImage({f"c{i % 64:03d}": i}),
                             "state_seq": i + 1}))
            kernel.run()
        dm.crash()
        store2 = Store()
        kernel2 = SimKernel()
        transport2 = SimTransport(kernel2)
        t0 = time.perf_counter()
        dm2 = DirectoryManager(
            transport2, "dir", store2, extract_from_object, merge_into_object,
            durability=spec,
        )
        recovery_ms = (time.perf_counter() - t0) * 1000.0
        cells = dm2.counters["cells_replayed"]
        dm2.close()
        return RecoveryPoint(tail_len=tail_len, recovery_ms=recovery_ms,
                             cells_replayed=cells)
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# Kill family
# ---------------------------------------------------------------------------
def _kill_workload(
    system: "ShardedFleccSystem",
    kernel: SimKernel,
    n_ops: int = 4,
    sleep: float = 6.0,
) -> Dict[str, Agent]:
    """Two strong writers over a spanning slice: each increments its own
    cell plus a shared contended cell ``n_ops`` times.  Retransmission
    (request_timeout x max_retries) rides out the DM downtime window."""
    agents: Dict[str, Agent] = {}
    scripts = []
    for i in range(2):
        agent = Agent()
        agents[f"w{i}"] = agent
        cm = system.add_view(
            f"w{i}", agent, props_for(KILL_CELLS),
            extract_from_view, merge_into_view, mode="strong",
            request_timeout=25.0, max_retries=16,
        )

        def script(cm=cm, agent=agent, i=i):
            yield cm.start()
            yield cm.init_image()
            yield ("sleep", i * 1.7)
            for _ in range(n_ops):
                yield cm.start_use_image()
                own = KILL_CELLS[i]
                agent.local[own] = agent.local.get(own, 0) + 1
                agent.local["k07"] = agent.local.get("k07", 0) + 1
                cm.end_use_image()
                yield ("sleep", sleep)
            yield cm.kill_image()

        scripts.append(script())
    run_all_scripts(system.transport, scripts)
    return agents


def _build_kill_system(
    root: Path, n_shards: int
) -> Tuple[SimKernel, ShardedFleccSystem, Store, HashPartitioner]:
    reset_message_ids()
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=True)
    store = Store({c: 0 for c in KILL_CELLS})
    partitioner = HashPartitioner(n_shards)
    system = ShardedFleccSystem(
        transport, store, extract_from_object, merge_into_object,
        n_shards=n_shards, partitioner=partitioner,
        extract_cells=extract_cells,
        durability=DurabilitySpec(root=root, fsync="always", snapshot_every=4),
    )
    return kernel, system, store, partitioner


def _wipe_owned(store: Store, partitioner: HashPartitioner, shard: int) -> None:
    """Drop the shard's owned cells from the shared in-process component
    — the volatile state a real process kill would lose.  Without this
    the surviving Python object would mask every recovery bug."""
    for key in [k for k in store.cells if partitioner.shard_of(k) == shard]:
        del store.cells[key]


def _truncate_newest_snapshot(lineage_dir: Path) -> bool:
    """Model a kill during the snapshot write: leave the newest snapshot
    file half-written.  Requires a fallback generation — snapshots are
    written tmp + atomic-replace, so a real kill mid-write can damage at
    most the newest generation, never the only one.  Returns False when
    fewer than two snapshots exist."""
    snaps = sorted(
        lineage_dir.glob("snap-*.bin"),
        key=lambda p: int(p.stem.split("-")[1]),
    )
    if len(snaps) < 2:
        return False
    newest = snaps[-1]
    size = newest.stat().st_size
    with open(newest, "r+b") as f:
        f.truncate(max(1, size // 2))
    return True


def run_kill_point(point: Tuple[str, int, int], seed: int = 0) -> KillPoint:
    _, n_shards, index = point
    rng = stream_for(seed, f"durability-kill-{n_shards}-{index}")
    kill_at = float(rng.uniform(6.0, 45.0))
    downtime = float(rng.uniform(10.0, 30.0))
    shard = int(rng.integers(n_shards))
    injection = INJECTIONS[index % len(INJECTIONS)]

    # Crash-free baseline: the same deterministic workload untouched.
    base_root = Path(tempfile.mkdtemp(prefix="flecc-wal-"))
    try:
        _, base_system, base_store, _ = _build_kill_system(base_root, n_shards)
        _kill_workload(base_system, None)
        baseline = dict(base_store.cells)
        base_system.close()
    finally:
        shutil.rmtree(base_root, ignore_errors=True)

    root = Path(tempfile.mkdtemp(prefix="flecc-wal-"))
    try:
        kernel, system, store, partitioner = _build_kill_system(root, n_shards)
        plane = system.plane
        injected = {"applied": injection}

        def do_crash() -> None:
            torn = TORN_GARBAGE if injection == "torn" else b""
            lineage = plane.shards[shard].durability.spec.directory
            plane.crash_shard(shard, torn_tail=torn)
            _wipe_owned(store, partitioner, shard)
            if injection == "snap" and not _truncate_newest_snapshot(lineage):
                injected["applied"] = "none"  # no fallback generation yet

        kernel.call_at(kill_at, do_crash)
        kernel.call_at(kill_at + downtime, lambda: plane.restart_shard(shard))
        _kill_workload(system, kernel)
        kernel.run()  # drain crash/restart events past the scripts' end
        parity = dict(store.cells) == baseline
        recoveries = system.transport.stats.recoveries
        cells_replayed = system.transport.stats.cells_replayed
        snapshots_skipped = sum(
            dm.durability.counters["snapshots_skipped"] for dm in plane.shards
        )
        torn_truncated = any(
            dm.durability.recovered.torn_tail_truncated for dm in plane.shards
        )

        # The zero-lost-committed-writes gate: kill EVERY shard after the
        # run, wipe the whole component, and require recovery alone to
        # reproduce the finished state — no CM is left to re-push.
        final = dict(store.cells)
        for i in range(n_shards):
            plane.crash_shard(i)
        store.cells.clear()
        for i in range(n_shards):
            plane.restart_shard(i)
        lost = sum(
            1 for k, v in final.items() if store.cells.get(k) != v
        )
        system.close()
        return KillPoint(
            n_shards=n_shards, index=index, kill_at=kill_at,
            downtime=downtime, shard=shard, injection=injected["applied"],
            parity=parity, lost_writes=lost, recoveries=recoveries,
            cells_replayed=cells_replayed,
            snapshots_skipped=snapshots_skipped,
            torn_truncated=torn_truncated,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# Sweep plumbing (runner + parallel registration)
# ---------------------------------------------------------------------------
def sweep_points(
    kill_points: Sequence[Tuple[int, int]] = KILL_POINTS,
) -> List[Tuple[Any, ...]]:
    """Picklable point descriptors for the parallel runner."""
    points: List[Tuple[Any, ...]] = [("overhead", p) for p in FSYNC_POLICIES]
    points += [("recovery", t) for t in RECOVERY_TAILS]
    for n_shards, count in kill_points:
        points += [("kill", n_shards, i) for i in range(count)]
    return points


def run_sweep_point(point: Tuple[Any, ...], seed: int = 0) -> Any:
    family = point[0]
    if family == "overhead":
        return run_overhead_point(point[1])
    if family == "recovery":
        return run_recovery_point(point[1])
    return run_kill_point(point, seed=seed)


def merge_durability_sweep(
    points: List[Tuple[Any, ...]],
    partials: List[Any],
    seed: int = 0,
) -> DurabilitySweepResult:
    result = DurabilitySweepResult()
    for p in partials:
        if isinstance(p, OverheadPoint):
            result.overhead.append(p)
        elif isinstance(p, RecoveryPoint):
            result.recovery.append(p)
        elif isinstance(p, KillPoint):
            result.kills.append(p)
    return result


def run_durability_sweep(
    kill_points: Sequence[Tuple[int, int]] = KILL_POINTS, seed: int = 0
) -> DurabilitySweepResult:
    points = sweep_points(kill_points)
    return merge_durability_sweep(
        points, [run_sweep_point(p, seed=seed) for p in points], seed=seed
    )


# ---------------------------------------------------------------------------
# BENCH payload + acceptance gates
# ---------------------------------------------------------------------------
def bench_payload(result: DurabilitySweepResult) -> Dict[str, object]:
    by_policy = {p.policy: p for p in result.overhead}
    volatile = by_policy.get("volatile")
    batch = by_policy.get("batch")
    batch_ratio = (
        batch.fig4_wall_ms / volatile.fig4_wall_ms
        if volatile and batch and volatile.fig4_wall_ms else 0.0
    )
    return {
        "description": (
            "Durable directory plane sweep: commit-path overhead per fsync "
            "policy, recovery time vs WAL-tail length, and randomized DM "
            "kill/restart parity (zero lost committed writes)"
        ),
        "command": "python -m repro.experiments.durability_sweep",
        "batch_overhead_ratio": round(batch_ratio, 3),
        "kill_points": len(result.kills),
        "kill_failures": sum(
            1 for p in result.kills if p.lost_writes or not p.parity
        ),
        "overhead": [
            {
                "policy": p.policy, "commits": p.commits,
                "fig4_wall_ms": round(p.fig4_wall_ms, 3),
                "burst_wall_ms": round(p.burst_wall_ms, 3),
                "us_per_commit": round(p.us_per_commit, 2),
                "wal_appends": p.wal_appends, "wal_syncs": p.wal_syncs,
            }
            for p in result.overhead
        ],
        "recovery": [
            {
                "tail_len": p.tail_len,
                "recovery_ms": round(p.recovery_ms, 3),
                "cells_replayed": p.cells_replayed,
            }
            for p in result.recovery
        ],
        "kills": [
            {
                "n_shards": p.n_shards, "index": p.index,
                "kill_at": round(p.kill_at, 2),
                "downtime": round(p.downtime, 2), "shard": p.shard,
                "injection": p.injection, "parity": p.parity,
                "lost_writes": p.lost_writes, "recoveries": p.recoveries,
                "cells_replayed": p.cells_replayed,
                "snapshots_skipped": p.snapshots_skipped,
                "torn_truncated": p.torn_truncated,
            }
            for p in result.kills
        ],
    }


def check_acceptance(payload: Dict[str, object]) -> List[str]:
    """The PR's acceptance gates; returns a list of violations."""
    problems: List[str] = []
    kills = payload["kills"]
    if len(kills) < 50:
        problems.append(f"only {len(kills)} kill points (need >= 50)")
    for p in kills:
        if p["lost_writes"]:
            problems.append(
                f"kill point N={p['n_shards']} #{p['index']}: "
                f"{p['lost_writes']} lost committed write(s)"
            )
        if not p["parity"]:
            problems.append(
                f"kill point N={p['n_shards']} #{p['index']}: recovered "
                f"state differs from crash-free run"
            )
    shard_counts = {p["n_shards"] for p in kills}
    for n in (1, 4):
        if n not in shard_counts:
            problems.append(f"no kill points at N={n} shards")
    injections = {p["injection"] for p in kills}
    for kind in ("torn", "snap"):
        if kind not in injections:
            problems.append(f"no kill point exercised the {kind!r} injection")
    if not any(p["torn_truncated"] for p in kills):
        problems.append("no kill point actually truncated a torn tail")
    if not any(p["snapshots_skipped"] for p in kills):
        problems.append(
            "no kill point actually fell back past a damaged snapshot"
        )
    ratio = payload.get("batch_overhead_ratio") or 0.0
    if not ratio or ratio > 1.5:
        problems.append(
            f"fsync=batch commit-path overhead {ratio}x the volatile "
            f"baseline (need <= 1.5x)"
        )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> DurabilitySweepResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.durability_sweep",
        description=(
            "Run the durability sweep and write BENCH_durability.json"
        ),
    )
    parser.add_argument(
        "--out", default="BENCH_durability.json", metavar="FILE",
        help="output JSON path (default: BENCH_durability.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when an acceptance gate fails",
    )
    args = parser.parse_args(argv)
    result = run_durability_sweep(seed=args.seed)
    print(result.table())
    payload = bench_payload(result)
    print(
        f"fsync=batch overhead: {payload['batch_overhead_ratio']}x volatile; "
        f"{payload['kill_points']} kill points, "
        f"{payload['kill_failures']} failures"
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    problems = check_acceptance(payload)
    if problems:
        print("ACCEPTANCE VIOLATIONS:", *problems, sep="\n  ")
        if args.check:
            raise SystemExit(1)
    else:
        print(
            "acceptance: OK (zero lost committed writes and full parity "
            "across all kill points; batch overhead within 1.5x)"
        )
    return result


if __name__ == "__main__":
    main()
