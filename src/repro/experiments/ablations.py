"""Ablation studies for the design choices DESIGN.md calls out.

- ABL1: static map vs dynamic property conflicts — false-conflict cost.
- ABL2: pull-trigger period sweep — the message/quality trade-off curve.
- ABL3: property granularity — whole-database vs per-agent flight sets.
- ABL4: centralized vs decentralized merge/extract specifications —
  the O(n) vs O(n^2) analysis from paper §4.1.
- ABL5: read/write semantics (§6 future work 1) — invalidations saved
  as the read fraction grows.
- ABL6: message-loss sweep — retransmission + dedup + state sequence
  numbers keep strong mode exact under lossy delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.apps.airline.app_spec import build_airline_system
from repro.apps.airline.travel_agent import lifecycle
from repro.apps.airline.workload import (
    flights_needed,
    generate_flight_database,
    make_agent_groups,
    reserve_operations,
)
from repro.core.modes import Mode
from repro.core.property import Property
from repro.core.property_set import PropertySet
from repro.core.quality import QualityProbe
from repro.core.static_map import Sharing, StaticSharingMap
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.experiments.report import Table


# ---------------------------------------------------------------------------
# ABL1 — static vs dynamic conflict detection
# ---------------------------------------------------------------------------

@dataclass
class Abl1Result:
    messages_conservative: int   # static map marks every pair SHARED
    messages_dynamic: int        # property-based dynConfl
    false_conflict_overhead: float

    def table(self) -> Table:
        t = Table(
            ["conflict policy", "messages"],
            title="ABL1 — conservative static map vs dynamic property conflicts",
        )
        t.add_row("all-pairs SHARED (conservative)", self.messages_conservative)
        t.add_row("dynConfl over properties", self.messages_dynamic)
        return t


def run_abl1(n_agents: int = 16, seed: int = 0) -> Abl1Result:
    """Half the agents conflict; a conservative static map that marks
    every pair SHARED triggers fetch rounds for disjoint agents too."""
    n_conflicting = n_agents // 2

    def run(conservative: bool) -> int:
        database = generate_flight_database(
            flights_needed(n_agents, n_conflicting), seed=seed
        )
        static_map = None
        if conservative:
            ids = [f"ta-{i:03d}" for i in range(n_agents)]
            static_map = StaticSharingMap(ids, default=Sharing.SHARED)
        airline = build_airline_system(database, strict_wire=False)
        if static_map is not None:
            airline.directory.static_map = static_map
            airline.directory.policy.static_map = static_map
            airline.directory.policy.invalidate()  # conflict inputs replaced
        groups = make_agent_groups(n_agents, n_conflicting)
        scripts = []
        for i, served in enumerate(groups):
            agent, cm = airline.add_travel_agent(
                f"ta-{i:03d}", served, triggers=TriggerSet(validity="true")
            )
            ops = reserve_operations(served, 2, seed=seed, agent_index=i)
            scripts.append(lifecycle(cm, agent, ops))
        run_all_scripts(airline.transport, scripts)
        return airline.stats.total

    conservative = run(True)
    dynamic = run(False)
    return Abl1Result(
        messages_conservative=conservative,
        messages_dynamic=dynamic,
        false_conflict_overhead=(conservative - dynamic) / dynamic,
    )


# ---------------------------------------------------------------------------
# ABL2 — trigger period sweep (messages vs quality)
# ---------------------------------------------------------------------------

@dataclass
class Abl2Result:
    # (period, total messages, mean unseen updates)
    points: List[Tuple[float, int, float]] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["pull period", "messages", "mean unseen"],
            title="ABL2 — pull-trigger period: message cost vs data quality",
        )
        for period, msgs, quality in self.points:
            t.add_row(period, msgs, quality)
        return t


def run_abl2(
    periods: Tuple[float, ...] = (5.0, 10.0, 20.0, 40.0, 80.0),
    n_agents: int = 6,
    n_methods: int = 10,
    method_gap: float = 10.0,
    seed: int = 0,
) -> Abl2Result:
    result = Abl2Result()
    for period in periods:
        database = generate_flight_database(5, seed=seed)
        airline = build_airline_system(database, strict_wire=False)
        groups = make_agent_groups(n_agents, n_conflicting=n_agents)
        flight = groups[0][0]
        observed_agent, observed_cm = airline.add_travel_agent(
            "ta-000", groups[0], mode=Mode.WEAK,
            triggers=TriggerSet(pull="t > 0"), trigger_poll_period=period,
        )
        writers = [
            airline.add_travel_agent(f"ta-{i:03d}", served)
            for i, served in enumerate(groups[1:], start=1)
        ]
        probe = QualityProbe(airline.directory)
        samples: List[int] = []
        kernel = airline.kernel

        def observed():
            yield observed_cm.start()
            yield observed_cm.init_image()
            for _ in range(n_methods):
                yield observed_cm.start_use_image()
                samples.append(probe.unseen(observed_cm.view_id))
                observed_agent.confirm_tickets(1, flight)
                observed_cm.end_use_image()
                yield ("sleep", method_gap)
            yield observed_cm.kill_image()

        def writer(agent, cm):
            yield cm.start()
            yield cm.init_image()
            for _ in range(n_methods):
                yield cm.start_use_image()
                agent.confirm_tickets(1, flight)
                cm.end_use_image()
                yield cm.push_image()
                yield ("sleep", method_gap)
            yield cm.kill_image()

        run_all_scripts(
            airline.transport,
            [observed()] + [writer(a, cm) for a, cm in writers],
        )
        result.points.append(
            (period, airline.stats.total, sum(samples) / len(samples))
        )
    return result


# ---------------------------------------------------------------------------
# ABL3 — property granularity
# ---------------------------------------------------------------------------

@dataclass
class Abl3Result:
    messages_coarse: int   # one whole-database property for every agent
    messages_fine: int     # per-agent flight-set properties

    def table(self) -> Table:
        t = Table(
            ["granularity", "messages"],
            title="ABL3 — property granularity: whole database vs per-agent flight sets",
        )
        t.add_row("coarse (whole database)", self.messages_coarse)
        t.add_row("fine (served flights)", self.messages_fine)
        return t


def run_abl3(n_agents: int = 12, seed: int = 0) -> Abl3Result:
    """Only 1/4 of the agents actually share flights.  Coarse properties
    make everyone conflict; fine properties confine the fetch rounds."""
    n_conflicting = max(1, n_agents // 4)

    def run(coarse: bool) -> int:
        database = generate_flight_database(
            flights_needed(n_agents, n_conflicting), seed=seed
        )
        airline = build_airline_system(database, strict_wire=False)
        groups = make_agent_groups(n_agents, n_conflicting)
        all_flights = sorted(database.flights.keys())
        scripts = []
        for i, served in enumerate(groups):
            agent, cm = airline.add_travel_agent(
                f"ta-{i:03d}", served, triggers=TriggerSet(validity="true")
            )
            if coarse:
                cm.properties = PropertySet(
                    [Property("Flights", set(all_flights))]
                )
            ops = reserve_operations(served, 2, seed=seed, agent_index=i)
            scripts.append(lifecycle(cm, agent, ops))
        run_all_scripts(airline.transport, scripts)
        return airline.stats.total

    return Abl3Result(messages_coarse=run(True), messages_fine=run(False))


# ---------------------------------------------------------------------------
# ABL5 — read/write semantics (the paper's §6 future-work direction 1)
# ---------------------------------------------------------------------------

@dataclass
class Abl5Result:
    # (read fraction, messages with RW semantics, messages without)
    points: List[Tuple[float, int, int]] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["read fraction", "rw-aware msgs", "write-only msgs"],
            title="ABL5 — read/write semantics: invalidations saved for readers",
        )
        for frac, rw, wo in self.points:
            t.add_row(frac, rw, wo)
        return t


def run_abl5(
    read_fractions: Tuple[float, ...] = (0.0, 0.5, 0.75, 1.0),
    n_agents: int = 6,
    n_ops: int = 6,
) -> Abl5Result:
    """Strong-mode agents over one shared cell; a fraction of their
    critical sections are reads.  The RW-aware directory lets readers
    share, so messages fall as the read fraction rises; the write-only
    baseline treats every use as a write."""
    from repro.core.rw_semantics import Access, RWCacheManager, RWDirectoryManager
    from repro.net.sim_transport import SimTransport
    from repro.sim.kernel import SimKernel

    class _Store:
        def __init__(self):
            self.cells = {"a": 0}

    def _extract(store, props):
        from repro.core.image import ObjectImage

        return ObjectImage(dict(store.cells))

    def _merge(store, image, props):
        for k in image.keys():
            store.cells[k] = image.get(k)

    class _View:
        def __init__(self):
            self.local = {}

    def _extract_view(view, props):
        from repro.core.image import ObjectImage

        return ObjectImage(dict(view.local))

    def _merge_view(view, image, props):
        for k in image.keys():
            view.local[k] = image.get(k)

    from repro.core.property import Property
    from repro.core.property_set import PropertySet
    from repro.core.system import run_all_scripts

    def run(read_fraction: float, rw_aware: bool) -> int:
        kernel = SimKernel()
        transport = SimTransport(kernel, default_latency=1.0, strict_wire=False)
        directory = RWDirectoryManager(
            transport=transport, address="dir", component=_Store(),
            extract_from_object=_extract, merge_into_object=_merge,
        )
        props = PropertySet([Property("cells", {"a"})])
        scripts = []
        for i in range(n_agents):
            view = _View()
            cm = RWCacheManager(
                transport=transport, directory_address="dir",
                view_id=f"v{i}", view=view, properties=props,
                extract_from_view=_extract_view, merge_into_view=_merge_view,
                mode="strong",
            )

            def script(cm=cm, view=view, index=i):
                yield cm.start()
                yield cm.init_image()
                for op in range(n_ops):
                    is_read = (op / n_ops) < read_fraction
                    access = (
                        Access.READ if (is_read and rw_aware) else Access.WRITE
                    )
                    yield cm.start_use_image(access=access)
                    if not is_read:
                        view.local["a"] = index * 100 + op
                    yield ("sleep", 2.0)
                    cm.end_use_image()
                    yield ("sleep", 3.0)
                yield cm.kill_image()

            scripts.append(script())
        run_all_scripts(transport, scripts)
        directory.check_invariants()
        return transport.stats.total

    result = Abl5Result()
    for frac in read_fractions:
        result.points.append((frac, run(frac, True), run(frac, False)))
    return result


# ---------------------------------------------------------------------------
# ABL6 — message loss vs retransmission (robustness beyond the paper)
# ---------------------------------------------------------------------------

@dataclass
class Abl6Result:
    # (loss rate, retries, total messages, counter correct?)
    points: List[Tuple[float, int, int, bool]] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["loss rate", "retries", "messages", "all updates committed"],
            title="ABL6 — request loss vs CM retransmission + DM dedup",
        )
        for loss, retries, msgs, ok in self.points:
            t.add_row(loss, retries, msgs, "yes" if ok else "NO")
        return t


def run_abl6(
    loss_rates: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    n_agents: int = 4,
    n_ops: int = 4,
    seed: int = 0,
) -> Abl6Result:
    """Strong-mode counter workload under probabilistic loss of the
    *retryable* message paths (CM requests and DM replies).  The
    retransmission layer (same msg id) plus the directory's dedup cache
    must keep the final counter exact at every loss rate."""
    from repro.core import messages as M
    from repro.core.cache_manager import CacheManager
    from repro.core.directory import DirectoryManager
    from repro.core.system import run_all_scripts
    from repro.net.sim_transport import SimTransport
    from repro.sim.kernel import SimKernel
    from repro.sim.rng import stream_for
    from repro.testing import (
        Agent,
        Store,
        extract_from_object,
        extract_from_view,
        merge_into_object,
        merge_into_view,
        props_for,
    )

    RETRYABLE = set(M.REQUESTS) | set(M.RESPONSES)

    result = Abl6Result()
    for loss in loss_rates:
        rng = stream_for(seed, "loss", int(loss * 1000))

        def fault(msg, loss=loss, rng=rng):
            if msg.msg_type in RETRYABLE and rng.random() < loss:
                return "drop"
            return "deliver"

        kernel = SimKernel()
        transport = SimTransport(
            kernel, default_latency=1.0, strict_wire=False, fault_policy=fault
        )
        store = Store({"a": 0})
        DirectoryManager(
            transport=transport, address="dir", component=store,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
        )
        cms = []
        for i in range(n_agents):
            agent = Agent()
            cm = CacheManager(
                transport=transport, directory_address="dir",
                view_id=f"v{i}", view=agent, properties=props_for(["a"]),
                extract_from_view=extract_from_view,
                merge_into_view=merge_into_view, mode="strong",
                request_timeout=25.0, max_retries=10,
            )
            cms.append((cm, agent))

        def script(cm, agent):
            yield cm.start()
            yield cm.init_image()
            for _ in range(n_ops):
                yield cm.start_use_image()
                agent.local["a"] += 1
                cm.end_use_image()
            yield cm.kill_image()

        run_all_scripts(transport, [script(cm, a) for cm, a in cms])
        retries = sum(cm.counters["retries"] for cm, _ in cms)
        correct = store.cells["a"] == n_agents * n_ops
        result.points.append((loss, retries, transport.stats.total, correct))
    return result


# ---------------------------------------------------------------------------
# ABL4 — centralized vs decentralized merge/extract specification count
# ---------------------------------------------------------------------------

@dataclass
class Abl4Result:
    # (n_views, centralized fn count, decentralized fn count)
    points: List[Tuple[int, int, int]] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["views", "centralized O(n)", "decentralized O(n^2)"],
            title="ABL4 — application-provided merge/extract functions (paper §4.1)",
        )
        for n, c, d in self.points:
            t.add_row(n, c, d)
        return t


def run_abl4(view_counts: Tuple[int, ...] = (2, 5, 10, 25, 50, 100)) -> Abl4Result:
    """Paper §4.1: the centralized protocol needs merge/extract only
    between each view and the original (4 functions per view: the Fig 3
    listing), while a decentralized peer design needs them per *pair*."""
    result = Abl4Result()
    for n in view_counts:
        centralized = 4 * n          # extract/merge x view<->original, both ways
        decentralized = 4 * (n * (n - 1) // 2) + 4 * n
        result.points.append((n, centralized, decentralized))
    return result


def main() -> None:
    a1 = run_abl1()
    print(a1.table())
    print(f"false-conflict overhead: {a1.false_conflict_overhead:.0%}")
    print()
    a2 = run_abl2()
    print(a2.table())
    print()
    a3 = run_abl3()
    print(a3.table())
    print()
    a4 = run_abl4()
    print(a4.table())
    print()
    a5 = run_abl5()
    print(a5.table())
    print()
    a6 = run_abl6()
    print(a6.table())


if __name__ == "__main__":
    main()
