"""FIG2 — reproduce the paper's Figure 2 protocol interaction trace.

The scenario: original component C holds property P over {x, y, z};
view V1 is deployed with P = {x, y}, view V2 with P = {x, z} (both in
STRONG mode).  V1 registers, initializes, and works; when V2 asks for
the data, the directory detects the conflict (the property intersection
{x} is non-empty), invalidates V1, and transfers control to V2; finally
both views announce their intention to stop.

``run_fig2()`` returns the recorded :class:`TraceLog`; the module entry
point prints the annotated step-by-step trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core import FleccSystem, Mode, ObjectImage, PropertySet, Property
from repro.core.messages import TraceLog
from repro.core.system import run_all_scripts
from repro.net.sim_transport import SimTransport
from repro.sim.kernel import SimKernel


class _Component:
    """The original component: three data items x, y, z."""

    def __init__(self) -> None:
        self.data: Dict[str, int] = {"x": 1, "y": 2, "z": 3}


def _extract(comp: _Component, props: PropertySet) -> ObjectImage:
    p = props.get("P")
    img = ObjectImage()
    for k, v in comp.data.items():
        if p is None or p.domain.contains(k):
            img.cells[k] = v
    return img


def _merge(comp: _Component, image: ObjectImage, props: PropertySet) -> None:
    for k in image.keys():
        comp.data[k] = image.get(k)


class _View:
    def __init__(self) -> None:
        self.local: Dict[str, int] = {}


def _extract_view(view: _View, props: PropertySet) -> ObjectImage:
    img = ObjectImage()
    img.cells.update(view.local)
    return img


def _merge_view(view: _View, image: ObjectImage, props: PropertySet) -> None:
    view.local.update(
        {k: image.get(k) for k in image.keys()}
    )


@dataclass
class Fig2Result:
    trace: TraceLog
    final_data: Dict[str, int]
    v1_was_invalidated: bool
    v2_saw_v1_update: bool


def run_fig2(latency: float = 1.0) -> Fig2Result:
    """Execute the Fig 2 scenario and return the trace + checks."""
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=latency)
    trace = TraceLog()
    component = _Component()
    system = FleccSystem(transport, component, _extract, _merge, trace=trace)

    v1, v2 = _View(), _View()
    cm1 = system.add_view(
        "V1", v1, PropertySet([Property("P", {"x", "y"})]),
        _extract_view, _merge_view, mode=Mode.STRONG,
    )
    cm2 = system.add_view(
        "V2", v2, PropertySet([Property("P", {"x", "z"})]),
        _extract_view, _merge_view, mode=Mode.STRONG,
    )

    observations = {}

    def v1_script():
        # Steps 1-5: create CM, register, ask for current data.
        yield cm1.start()
        yield cm1.init_image()
        # Steps 6-7: mark processing as mutually exclusive and work.
        yield cm1.start_use_image()
        v1.local["x"] = 100  # V1 modifies the shared item
        cm1.end_use_image()
        yield ("sleep", 40.0)
        observations["v1_invalidated"] = cm1.invalidated
        # Steps 20-21: announce intention to stop using the data.
        yield cm1.kill_image()

    def v2_script():
        yield cm2.start()
        yield ("sleep", 15.0)
        # Steps 12-14: V2 asks for data; the directory stops V1 and
        # gives control to V2.
        yield cm2.init_image()
        yield cm2.start_use_image()
        observations["v2_x"] = v2.local.get("x")
        v2.local["z"] = 300
        cm2.end_use_image()
        yield cm2.kill_image()

    run_all_scripts(transport, [v1_script(), v2_script()])
    return Fig2Result(
        trace=trace,
        final_data=dict(component.data),
        v1_was_invalidated=bool(observations.get("v1_invalidated")),
        v2_saw_v1_update=observations.get("v2_x") == 100,
    )


def main() -> None:
    from repro.core.trace_render import render_sequence

    result = run_fig2()
    print("FIG2 — strong-mode interaction trace (paper Figure 2)")
    print()
    print(render_sequence(result.trace, actors=["cm:V1", "dir", "cm:V2"]))
    print()
    print("full event log:")
    print(result.trace.format())
    print()
    print(f"final component data: {result.final_data}")
    print(f"V1 invalidated by V2's request: {result.v1_was_invalidated}")
    print(f"V2 observed V1's update to x:   {result.v2_saw_v1_update}")


if __name__ == "__main__":
    main()
