"""FIG4 — message counts: Flecc vs time-sharing vs multicast.

Paper §5.2 (Efficiency): "The experiment executes 100 travel agent
components deployed into a LAN and connected to a main database running
in the same LAN.  All travel agents execute the same sequence of
operations: (1) create the cache manager, (2) set the mode of operation
to weak, (3) initialize the data, (4) reserve tickets for a flight,
(5) kill the cache manager.  Each travel agent defines a property
('Flights') that contains a list of all the served flights.  The number
of travel agents that serve similar flights is initially 10, and
increases in increments of 10 up to 100.  The consistency requirements
of every travel agent is to always execute on the most current data."

The always-most-current requirement is expressed as a validity trigger
``true`` — every pull collects fresh state from the *conflicting*
active views (Flecc), from *all* views (multicast), or from nobody
(time-sharing, where serial execution makes the primary copy current by
construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.apps.airline.app_spec import build_airline_system
from repro.apps.airline.travel_agent import lifecycle
from repro.apps.airline.workload import (
    flights_needed,
    generate_flight_database,
    make_agent_groups,
    reserve_operations,
)
from repro.baselines.common import ProtocolName
from repro.baselines.time_sharing import TimeSharingRunner
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.experiments.report import Table


@dataclass
class Fig4Result:
    n_agents: int
    conflicting_sweep: List[int]
    # protocol name -> [message totals per sweep point]
    messages: Dict[str, List[int]] = field(default_factory=dict)

    def table(self) -> Table:
        t = Table(
            ["conflicting"] + [p.value for p in ProtocolName],
            title=f"FIG4 — control messages, {self.n_agents} travel agents on one LAN",
        )
        for i, k in enumerate(self.conflicting_sweep):
            t.add_row(k, *(self.messages[p.value][i] for p in ProtocolName))
        return t


def _run_point(
    protocol: ProtocolName,
    n_agents: int,
    n_conflicting: int,
    ops_per_agent: int,
    seed: int,
    stagger: float,
) -> int:
    """One sweep point: run the workload, return total message count."""
    flights_per_agent = 5
    database = generate_flight_database(
        flights_needed(n_agents, n_conflicting, flights_per_agent), seed=seed
    )
    airline = build_airline_system(database, protocol=protocol, strict_wire=False)
    groups = make_agent_groups(n_agents, n_conflicting, flights_per_agent)
    scripts = []
    for i, served in enumerate(groups):
        agent, cm = airline.add_travel_agent(
            f"ta-{i:03d}",
            served,
            # Step (2): weak mode.  Always-current data = validity true.
            mode="weak",
            triggers=TriggerSet(validity="true"),
        )
        ops = reserve_operations(served, ops_per_agent, seed=seed, agent_index=i)
        script = _staggered(lifecycle(cm, agent, ops, think_time=1.0), i * stagger)
        scripts.append(script)
    if protocol is ProtocolName.TIME_SHARING:
        TimeSharingRunner(airline.transport).run_serial(scripts)
    else:
        run_all_scripts(airline.transport, scripts)
    return airline.stats.total


def _staggered(script, delay: float):
    """Prefix a script with a start delay (arrival staggering)."""
    if delay > 0:
        yield ("sleep", delay)
    result = yield from script
    return result


def run_fig4(
    n_agents: int = 100,
    step: int = 10,
    ops_per_agent: int = 1,
    seed: int = 0,
    stagger: float = 2.0,
) -> Fig4Result:
    """Sweep the conflicting-agent count and measure per-protocol traffic."""
    sweep = list(range(step, n_agents + 1, step))
    result = Fig4Result(n_agents=n_agents, conflicting_sweep=sweep)
    for protocol in ProtocolName:
        totals = []
        for n_conflicting in sweep:
            totals.append(
                _run_point(
                    protocol, n_agents, n_conflicting, ops_per_agent, seed, stagger
                )
            )
        result.messages[protocol.value] = totals
    return result


# -- sweep sharding (parallel engine) ---------------------------------------
# Every (protocol, conflicting-count) sweep point builds its own airline
# system and transport, so points are independent and can run in
# separate worker processes; merge_fig4 reassembles the exact Fig4Result
# that run_fig4 produces serially.

def sweep_points(n_agents: int = 100, step: int = 10) -> List[tuple]:
    """Picklable descriptors for fig4's independent sweep points."""
    sweep = list(range(step, n_agents + 1, step))
    return [(p.value, k) for p in ProtocolName for k in sweep]


def run_fig4_point(
    point: tuple,
    seed: int | None = None,
    n_agents: int = 100,
    ops_per_agent: int = 1,
    stagger: float = 2.0,
) -> int:
    """Run one sweep point; returns its message total."""
    protocol_value, n_conflicting = point
    return _run_point(
        ProtocolName(protocol_value), n_agents, n_conflicting,
        ops_per_agent, 0 if seed is None else seed, stagger,
    )


def merge_fig4(
    points: List[tuple],
    partials: List[int],
    seed: int | None = None,
    n_agents: int = 100,
) -> Fig4Result:
    """Reassemble per-point totals into the serial run's result shape."""
    totals = dict(zip(points, partials))
    sweep = sorted({k for _, k in points})
    result = Fig4Result(n_agents=n_agents, conflicting_sweep=sweep)
    for protocol in ProtocolName:
        result.messages[protocol.value] = [
            totals[(protocol.value, k)] for k in sweep
        ]
    return result


def check_shape(result: Fig4Result) -> List[str]:
    """The paper's qualitative claims; returns a list of violations."""
    problems = []
    fl = result.messages[ProtocolName.FLECC.value]
    ts = result.messages[ProtocolName.TIME_SHARING.value]
    mc = result.messages[ProtocolName.MULTICAST.value]
    for i, k in enumerate(result.conflicting_sweep):
        if not ts[i] <= fl[i]:
            problems.append(f"time-sharing above flecc at k={k}")
        if not fl[i] <= mc[i] * 1.05:
            problems.append(f"flecc above multicast at k={k}")
    if not fl[0] < fl[-1]:
        problems.append("flecc does not grow with conflict-set size")
    mc_spread = (max(mc) - min(mc)) / max(mc)
    fl_spread = (fl[-1] - fl[0]) / max(fl)
    if mc_spread > fl_spread:
        problems.append("multicast more conflict-sensitive than flecc")
    return problems


def main() -> None:
    result = run_fig4()
    print(result.table())
    print()
    problems = check_shape(result)
    if problems:
        print("SHAPE VIOLATIONS:", *problems, sep="\n  ")
    else:
        print("shape check: OK (time-sharing <= flecc <= multicast; "
              "flecc grows with conflicts; multicast flat)")


if __name__ == "__main__":
    main()
