"""Chaos experiment: protocol correctness and overhead under faults.

Sweeps the wire-level fault rate (frame drops plus a fixed duplicate
rate) while a strong-mode counter workload and a weak-mode reader run
over the reliable-delivery sublayer (:mod:`repro.net.reliability`).
Faults are injected *below* the sublayer by a compiled
:class:`~repro.sim.faults.FaultScenario`, so what the experiment
measures is the cost of repairing the wire:

- **correctness** — every committed write must survive every loss rate
  (``lost_writes == 0``);
- **message overhead** — wire frames (envelopes + ACKs + retransmits)
  vs the logical protocol messages, which stay comparable to the
  paper's Fig 4 metric because the sublayer accounts them separately;
- **staleness** — the weak reader's lag behind the primary copy,
  sampled at each of its uses.

The 0-loss point doubles as a parity check: with no faults injected,
the logical message profile over the reliable transport must be
*identical*, type for type, to the same workload on the raw transport
(``parity_ok``), with the sublayer's ACK traffic reported separately.

``python -m repro.experiments.chaos`` writes ``BENCH_chaos.json``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache_manager import CacheManager
from repro.core.directory import DirectoryManager
from repro.core.durability import DurabilitySpec
from repro.core.system import run_all_scripts
from repro.core.triggers import TriggerSet
from repro.experiments.report import Table
from repro.net.reliability import ReliableTransport
from repro.net.sim_transport import SimTransport
from repro.sim.faults import DMCrashPlan, FaultInjector, FaultScenario
from repro.sim.kernel import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)


@dataclass
class ChaosPoint:
    """One sweep point: a full workload run at one fault configuration."""

    drop_rate: float
    duplicate_rate: float
    committed: int               # final value of the shared counter
    expected: int                # writers * ops
    lost_writes: int             # expected - committed (must be 0)
    logical_messages: int        # protocol messages (Fig-4 comparable)
    wire_frames: int             # envelopes + ACKs + retransmissions
    overhead_ratio: float        # wire_frames / logical_messages
    retransmits: int
    duplicates_suppressed: int
    acks_sent: int
    injected_drops: int
    injected_duplicates: int
    staleness_mean: float        # reader lag behind primary, per sample
    staleness_max: int
    reader_samples: int


@dataclass
class DMRestartPoint:
    """The directory crash/restart leg: durable-plane recovery accounting.

    ``state_parity`` compares the finished run's primary copy against
    the crash-free run's (the workload must converge to the same state
    despite the mid-run directory outage); ``recovered_parity`` then
    kills the directory *after* the run, wipes the component, and
    requires recovery alone to reproduce that state (every acknowledged
    commit must come back from the WAL/snapshot lineage).
    """

    committed: int               # final value of the shared counter
    expected: int                # writers * ops
    lost_writes: int             # expected - committed (must be 0)
    dm_crashes: int              # injected directory kills
    dm_restarts: int             # injected directory restarts
    recoveries: int              # MessageStats.recoveries (incl. final check)
    cells_replayed: int          # MessageStats.cells_replayed
    state_parity: bool           # final primary copy == crash-free run's
    recovered_parity: bool       # post-run recovery reproduces final state


@dataclass
class ChaosResult:
    points: List[ChaosPoint] = field(default_factory=list)
    # 0-loss logical profile over ReliableTransport == raw SimTransport?
    parity_ok: bool = False
    faultless_acks: int = 0      # sublayer ACK traffic at 0 loss (wire only)
    dm_restart: Optional[DMRestartPoint] = None

    def table(self) -> Table:
        t = Table(
            [
                "drop", "dup", "lost writes", "logical msgs", "wire frames",
                "overhead", "retransmits", "dups suppressed", "staleness mean",
            ],
            title="CHAOS — correctness and overhead vs injected wire faults",
        )
        for p in self.points:
            t.add_row(
                p.drop_rate, p.duplicate_rate, p.lost_writes,
                p.logical_messages, p.wire_frames,
                f"{p.overhead_ratio:.2f}x", p.retransmits,
                p.duplicates_suppressed, f"{p.staleness_mean:.2f}",
            )
        return t


def _workload(
    transport,
    store: Store,
    n_writers: int,
    n_ops: int,
    reader_samples: int,
    sample_gap: float,
    request_timeout: float = 400.0,
    durability: Optional[DurabilitySpec] = None,
    dm_injector: Optional[FaultInjector] = None,
    kernel: Optional[SimKernel] = None,
) -> Tuple[List[int], List[CacheManager], List[DirectoryManager]]:
    """Run the chaos workload on ``transport``; return (lags, cms, dm_box).

    ``n_writers`` strong-mode agents each increment the shared cell
    ``a`` ``n_ops`` times while a weak-mode reader with a pull trigger
    samples its lag behind the primary copy.

    When ``dm_injector`` carries :class:`~repro.sim.faults.DMCrashPlan`
    entries (and ``kernel`` is given), its crash events kill the
    directory *and wipe the component's cells* — everything a process
    death would take — and its restart events rebuild the directory
    over the same :class:`DurabilitySpec` lineage, so the primary copy
    must come back from the WAL/snapshot chain alone.  ``dm_box`` is a
    one-element list holding the current directory instance (restarts
    replace it in place).
    """
    dm_kwargs: Dict[str, object] = {}
    if durability is not None:
        dm_kwargs["durability"] = durability

    def build_dm() -> DirectoryManager:
        return DirectoryManager(
            transport=transport, address="dir", component=store,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
            **dm_kwargs,
        )

    dm_box = [build_dm()]
    if dm_injector is not None and kernel is not None:

        def crash(_shard: int, torn_tail: bytes) -> None:
            dm_box[0].crash(torn_tail=torn_tail)
            store.cells.clear()  # volatile state dies with the process

        def restart(_shard: int) -> None:
            dm_box[0] = build_dm()

        dm_injector.schedule_dm_crashes(kernel, crash, restart)
    cms: List[CacheManager] = []
    writers = []
    for i in range(n_writers):
        agent = Agent()
        cm = CacheManager(
            transport=transport, directory_address="dir",
            view_id=f"w{i}", view=agent, properties=props_for(["a"]),
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view, mode="strong",
            request_timeout=request_timeout, max_retries=8,
        )
        writers.append((cm, agent))
        cms.append(cm)
    reader_agent = Agent()
    reader = CacheManager(
        transport=transport, directory_address="dir",
        view_id="reader", view=reader_agent, properties=props_for(["a"]),
        extract_from_view=extract_from_view,
        merge_into_view=merge_into_view, mode="weak",
        triggers=TriggerSet(pull="t > 0"),
        trigger_poll_period=sample_gap / 2.0,
        request_timeout=request_timeout, max_retries=8,
    )
    cms.append(reader)

    lags: List[int] = []

    def writer_script(cm, agent):
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_ops):
            yield cm.start_use_image()
            agent.local["a"] += 1
            cm.end_use_image()
        yield cm.kill_image()

    def reader_script():
        yield reader.start()
        yield reader.init_image()
        for _ in range(reader_samples):
            yield reader.start_use_image()
            # .get: during a directory outage the component is wiped,
            # so the primary cell may be transiently absent.
            lags.append(store.cells.get("a", 0) - reader_agent.local["a"])
            reader.end_use_image()
            yield ("sleep", sample_gap)
        yield reader.kill_image()

    run_all_scripts(
        transport,
        [reader_script()] + [writer_script(cm, a) for cm, a in writers],
    )
    if kernel is not None:
        kernel.run()  # drain crash/restart events past the scripts' end
    return lags, cms, dm_box


def run_chaos(
    loss_rates: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    duplicate_rate: float = 0.05,
    n_writers: int = 3,
    n_ops: int = 4,
    reader_samples: int = 8,
    sample_gap: float = 40.0,
    seed: int = 0,
) -> ChaosResult:
    """The chaos sweep.  Faults apply to wire frames (R_DATA/R_ACK),
    so every repair the sublayer performs is visible in its counters
    while the logical message stream stays Fig-4 comparable."""
    result = ChaosResult()
    expected = n_writers * n_ops

    # Reference profile: same workload, raw transport, no faults.
    kernel = SimKernel()
    raw = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    raw_store = Store({"a": 0})
    _workload(raw, raw_store, n_writers, n_ops, reader_samples, sample_gap)
    raw_profile = dict(raw.stats.by_type)
    crash_free_state = dict(raw_store.cells)

    for loss in loss_rates:
        dup = duplicate_rate if loss > 0 else 0.0
        kernel = SimKernel()
        inner = SimTransport(kernel, default_latency=1.0, strict_wire=False)
        injector = FaultScenario(
            drop_rate=loss, duplicate_rate=dup, seed=seed
        ).compile().install(inner)
        transport = ReliableTransport(inner, ack_timeout=8.0, seed=seed)
        store = Store({"a": 0})
        lags, _cms, _dm = _workload(
            transport, store, n_writers, n_ops, reader_samples, sample_gap
        )
        if loss == 0:
            result.parity_ok = dict(transport.stats.by_type) == raw_profile
            result.faultless_acks = transport.stats.acks_sent
        logical = transport.stats.total
        wire = inner.stats.total
        result.points.append(
            ChaosPoint(
                drop_rate=loss,
                duplicate_rate=dup,
                committed=store.cells["a"],
                expected=expected,
                lost_writes=expected - store.cells["a"],
                logical_messages=logical,
                wire_frames=wire,
                overhead_ratio=wire / logical if logical else 0.0,
                retransmits=transport.stats.retransmits,
                duplicates_suppressed=transport.stats.duplicates_suppressed,
                acks_sent=transport.stats.acks_sent,
                injected_drops=injector.counters["drops"],
                injected_duplicates=injector.counters["duplicates"],
                staleness_mean=sum(lags) / len(lags) if lags else 0.0,
                staleness_max=max(lags) if lags else 0,
                reader_samples=len(lags),
            )
        )
        transport.close()

    result.dm_restart = _run_dm_restart(
        n_writers, n_ops, reader_samples, sample_gap,
        expected=expected, crash_free_state=crash_free_state, seed=seed,
    )
    return result


def _run_dm_restart(
    n_writers: int,
    n_ops: int,
    reader_samples: int,
    sample_gap: float,
    expected: int,
    crash_free_state: Dict[str, int],
    seed: int,
) -> DMRestartPoint:
    """The durability leg: kill and restart the directory mid-workload.

    The crash wipes the component (simulating process death), the
    restart recovers from the WAL/snapshot lineage, and the writers'
    retransmissions carry the outage — so the run must still converge
    to the crash-free run's primary copy.  A second, post-run
    crash+wipe+recover checks that every acknowledged commit is
    reproducible from the durable lineage alone.
    """
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=False)
    wal_root = Path(tempfile.mkdtemp(prefix="flecc-chaos-wal-"))
    try:
        spec = DurabilitySpec(
            root=wal_root, fsync="always", snapshot_every=4, name="chaos-dm"
        )
        # One mid-run kill while the writers are actively committing;
        # the outage (70) outlasts the request timeout (60) so at least
        # one retry lands during the outage and another after restart.
        injector = FaultScenario(
            dm_crashes=[DMCrashPlan(at=20.0, restart_at=90.0)], seed=seed
        ).compile()
        store = Store({"a": 0})
        _lags, _cms, dm_box = _workload(
            transport, store, n_writers, n_ops, reader_samples, sample_gap,
            request_timeout=60.0, durability=spec,
            dm_injector=injector, kernel=kernel,
        )
        final = dict(store.cells)
        committed = final.get("a", 0)
        # Post-run recovery: kill the directory, wipe the component,
        # and rebuild over the same lineage.  WAL + snapshots alone
        # must reproduce the final primary copy.
        dm_box[0].crash()
        store.cells.clear()
        dm_box[0] = DirectoryManager(
            transport=transport, address="dir", component=store,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
            durability=spec,
        )
        recovered_parity = dict(store.cells) == final
        dm_box[0].close()
        return DMRestartPoint(
            committed=committed,
            expected=expected,
            lost_writes=expected - committed,
            dm_crashes=injector.counters["dm_crashes"],
            dm_restarts=injector.counters["dm_restarts"],
            recoveries=transport.stats.recoveries,
            cells_replayed=transport.stats.cells_replayed,
            state_parity=final == crash_free_state,
            recovered_parity=recovered_parity,
        )
    finally:
        shutil.rmtree(wal_root, ignore_errors=True)


def bench_payload(result: ChaosResult) -> Dict[str, object]:
    """The ``BENCH_chaos.json`` document for one chaos run."""
    return {
        "description": (
            "Chaos sweep: strong-mode counter workload + weak reader over "
            "the reliable-delivery sublayer with wire-level fault injection"
        ),
        "command": "python -m repro.experiments.chaos",
        "parity_with_raw_transport_at_zero_loss": result.parity_ok,
        "faultless_ack_overhead_frames": result.faultless_acks,
        "points": [
            {
                "drop_rate": p.drop_rate,
                "duplicate_rate": p.duplicate_rate,
                "committed": p.committed,
                "expected": p.expected,
                "lost_writes": p.lost_writes,
                "logical_messages": p.logical_messages,
                "wire_frames": p.wire_frames,
                "overhead_ratio": round(p.overhead_ratio, 3),
                "retransmits": p.retransmits,
                "duplicates_suppressed": p.duplicates_suppressed,
                "acks_sent": p.acks_sent,
                "injected_drops": p.injected_drops,
                "injected_duplicates": p.injected_duplicates,
                "staleness_mean": round(p.staleness_mean, 3),
                "staleness_max": p.staleness_max,
                "reader_samples": p.reader_samples,
            }
            for p in result.points
        ],
        "dm_restart": (
            {
                "committed": result.dm_restart.committed,
                "expected": result.dm_restart.expected,
                "lost_writes": result.dm_restart.lost_writes,
                "dm_crashes": result.dm_restart.dm_crashes,
                "dm_restarts": result.dm_restart.dm_restarts,
                "recoveries": result.dm_restart.recoveries,
                "cells_replayed": result.dm_restart.cells_replayed,
                "state_parity": result.dm_restart.state_parity,
                "recovered_parity": result.dm_restart.recovered_parity,
            }
            if result.dm_restart is not None
            else None
        ),
    }


def main(argv: Optional[Sequence[str]] = None) -> ChaosResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.chaos",
        description="Run the chaos sweep and write BENCH_chaos.json",
    )
    parser.add_argument(
        "--out", default="BENCH_chaos.json", metavar="FILE",
        help="output JSON path (default: BENCH_chaos.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run_chaos(seed=args.seed)
    print(result.table())
    print(f"parity at 0 loss: {result.parity_ok} "
          f"(ACK-only overhead: {result.faultless_acks} frames)")
    if result.dm_restart is not None:
        d = result.dm_restart
        print(
            f"dm restart: lost={d.lost_writes} "
            f"state_parity={d.state_parity} "
            f"recovered_parity={d.recovered_parity} "
            f"(recoveries={d.recoveries}, cells_replayed={d.cells_replayed})"
        )
    Path(args.out).write_text(json.dumps(bench_payload(result), indent=2) + "\n")
    print(f"wrote {args.out}")
    return result


if __name__ == "__main__":
    main()
