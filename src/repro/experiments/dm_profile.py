"""Directory op-path profile: per-op cost vs registered-view count.

The scale sweep (PR 7) showed the directory manager — not the wire —
is the wall past a few thousand views, and PR 9's conflict index exists
to knock that wall down.  This experiment proves it, with the op-path
profiler (:mod:`repro.core.profiling`) as the measuring instrument:

- **Harness** — a *bare* :class:`~repro.core.directory.DirectoryManager`
  on a :class:`~repro.net.sim_transport.SimTransport`, driven by one
  fake cache-manager hub endpoint that auto-acks INVALIDATE/FETCH_REQ.
  No cache managers, no static map (its numpy row scans are O(V) by
  construction and would mask what the index does), so every measured
  nanosecond belongs to the directory's own op path.
- **Workload** — V views with *disjoint-by-pairs* properties: view ``i``
  holds a private cell plus a group cell shared with its pair partner,
  so the true conflict degree is 1 no matter how large V grows.  The
  pure-op phase issues PULL/ACQUIRE/PUSH traffic over a fixed sample of
  views; the churn-burst phase registers a fresh view into the full
  fleet and immediately operates on it — the worst case for the legacy
  whole-cache invalidation.
- **A/B legs** — ``conflict_index=True`` (the indexed default) vs
  ``conflict_index=False`` (the pre-index brute-force paths, preserved
  verbatim as the baseline).  Both legs run the identical message
  sequence; per-op directory cost comes from the profiler's phase
  totals (conflict lookup + target build + fan-out + serve), so sim
  latency and harness overhead cancel out.
- **Parity** — the legs must agree exactly: identical Fig-4 message
  counts per ramp point, identical end state, and — on the indexed
  leg — conflict-set answers identical to a fresh brute-force
  recomputation over the full registry.  A separate deterministic
  Fig-4-style workload on :class:`~repro.core.system.FleccSystem`
  replays with the index on and off and must match too.

``python -m repro.experiments.dm_profile`` writes
``BENCH_dmprofile.json``; ``--full`` adds the 10k-view point, which
arms the performance gates (>=5x over brute at the top, sub-linear
indexed growth, churn cost bounded by conflict degree not V).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import DiscreteSet, Property, PropertySet
from repro.core import messages as M
from repro.core.conflicts import ConflictPolicy
from repro.core.directory import DirectoryManager
from repro.core.image import ObjectImage
from repro.core.system import FleccSystem, run_all_scripts
from repro.experiments.report import Table
from repro.net.message import Message, reset_message_ids
from repro.net.sim_transport import SimTransport
from repro.net.transport import resolve_transport
from repro.sim import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)

#: Registered-view ramp; the 10k point rides only behind ``--full``.
DEFAULT_RAMP: Tuple[int, ...] = (100, 300, 1000, 3000)
FULL_RAMP: Tuple[int, ...] = (100, 300, 1000, 3000, 10000)
LEGS: Tuple[str, ...] = ("indexed", "brute")

#: The performance gates arm only when the ramp reaches this many views
#: (the full run): below it wall-clock noise dominates the deltas.
GATE_TOP = 10000

# Workload shape (identical across legs and ramp points, so phase-total
# deltas are comparable): ops run over a fixed-size view sample.
OP_SAMPLE = 200        # distinct views issuing pure-phase ops
OP_ROUNDS = 3          # passes over the sample (round 2+ = cache-hit path)
ACQ_SAMPLE = 24        # views that ACQUIRE (exercise invalidate rounds)
CHURN_CYCLES = 30      # churn-burst: REGISTER into full fleet + one op
PARITY_SAMPLE = 50     # views checked index-vs-brute-force per point

#: Profiler phases that make up "per-op directory cost" (commit/wal are
#: push-path phases, reported separately).
OP_PHASES = ("conflict", "targets", "fanout", "serve")


def _vid(i: int) -> str:
    return f"v{i:05d}"


def _props_of(i: int) -> PropertySet:
    """Disjoint-by-pairs properties: private cell + pair-group cell.

    Views ``2k`` and ``2k+1`` share ``grp{k}`` (conflict degree 1);
    any other pair of views shares nothing.
    """
    return PropertySet([
        Property("cells", DiscreteSet({f"own{i:05d}", f"grp{i // 2:05d}"}))
    ])


def _churn_props(v_base: int, c: int) -> PropertySet:
    """Properties of the c-th churn view: joins an existing pair group
    (constant conflict degree 2), plus its own private cell."""
    group = c % max(1, v_base // 2)
    return PropertySet([
        Property("cells", DiscreteSet({f"churn{c:05d}", f"grp{group:05d}"}))
    ])


def _extract(store: Dict[str, int], props: PropertySet) -> ObjectImage:
    """O(slice) extract: walks the property's *domain values*, not the
    store — a register/serve must not cost O(total cells), or the
    harness itself would be the O(V) term it is trying to measure."""
    img = ObjectImage()
    p = props.get("cells") if props is not None else None
    if p is None:
        for k, v in store.items():
            img.cells[k] = v
        return img
    for k in p.domain.values:
        if k in store:
            img.cells[k] = store[k]
    return img


def _merge(store: Dict[str, int], image: ObjectImage, props: PropertySet) -> None:
    for k in image.keys():
        store[k] = image.get(k)


class _BareDirHarness:
    """One directory manager + one fake cache-manager hub endpoint.

    Every view registers from the same hub address, so the directory's
    INVALIDATE/FETCH fan-out lands on one handler that auto-acks — the
    protocol sees live cache managers, the profiler sees only the
    directory.
    """

    def __init__(self, conflict_index: bool) -> None:
        self.kernel = SimKernel()
        self.transport = SimTransport(self.kernel, default_latency=0.01)
        self.store: Dict[str, int] = {}
        self.dm = DirectoryManager(
            transport=self.transport,
            address="dir",
            component=self.store,
            extract_from_object=_extract,
            merge_into_object=_merge,
            static_map=None,
            conflict_index=conflict_index,
            profile=True,
        )
        self.replies: List[Message] = []
        self._seq: Dict[str, int] = {}
        self.endpoint = self.transport.bind("cmhub", self._on_message)

    def _on_message(self, msg: Message) -> None:
        if msg.msg_type == M.INVALIDATE:
            self.endpoint.send(msg.reply(
                M.INVALIDATE_ACK, {"view_id": msg.payload.get("view_id")}
            ))
        elif msg.msg_type == M.FETCH_REQ:
            self.endpoint.send(msg.reply(
                M.FETCH_REPLY,
                {"view_id": msg.payload.get("view_id"), "image": ObjectImage()},
            ))
        else:
            self.replies.append(msg)

    def drain(self) -> None:
        self.kernel.run()

    # -- protocol verbs (sent from the hub) -----------------------------
    def register(self, view_id: str, props: PropertySet) -> None:
        self.endpoint.send(Message(M.REGISTER, "cmhub", "dir", {
            "view_id": view_id, "properties": props, "mode": "weak",
        }))

    def pull(self, view_id: str) -> None:
        self.endpoint.send(Message(
            M.PULL_REQ, "cmhub", "dir", {"view_id": view_id}
        ))

    def acquire(self, view_id: str) -> None:
        self.endpoint.send(Message(
            M.ACQUIRE, "cmhub", "dir", {"view_id": view_id}
        ))

    def push(self, view_id: str, cells: Dict[str, int]) -> None:
        seq = self._seq.get(view_id, 0) + 1
        self._seq[view_id] = seq
        self.endpoint.send(Message(M.PUSH, "cmhub", "dir", {
            "view_id": view_id, "image": ObjectImage(dict(cells)),
            "state_seq": seq,
        }))

    # -- profiler bookkeeping -------------------------------------------
    def phase_total(self, phases: Sequence[str]) -> int:
        return self.dm.profiler.total_ns(*phases)

    def state_digest(self) -> str:
        blob = repr(sorted(self.store.items())).encode()
        return hashlib.sha1(blob).hexdigest()


@dataclass
class DmProfilePoint:
    """One (leg, view count) measurement."""

    leg: str                       # 'indexed' | 'brute'
    n_views: int
    ops: int                       # queued ops the profiler timed
    register_mean_ns: float        # ramp registration, per REGISTER
    pure_op_ns: float              # conflict+targets+fanout+serve, per op
    pure_phases: Dict[str, float]  # per-op ns by phase
    commit_mean_ns: float          # push-path commit, per commit sample
    churn_cycle_ns: float          # REGISTER-into-full-fleet + one op
    index_candidates: int          # policy counter (0 on the brute leg)
    scoped_invalidations: int      # policy counter (0 on the brute leg)
    conflict_parity: bool          # index answers == brute recomputation
    by_type: Dict[str, int]        # Fig-4 message counts for the point
    state_digest: str              # end-state fingerprint
    elapsed_s: float


def _sample_ids(n_views: int, size: int) -> List[int]:
    step = max(1, n_views // size)
    return list(range(0, n_views, step))[:size]


def _conflict_parity(dm: DirectoryManager, sample: List[str]) -> bool:
    """Indexed conflict sets vs a fresh brute-force policy (no caches)."""
    if not dm.policy.indexed:
        return True
    brute = ConflictPolicy(dm.static_map, dm._properties_of, indexed=False)
    views = sorted(dm.views)
    for vid in sample:
        if set(dm.policy.conflict_set(vid)) != set(
            brute.conflict_set(vid, views)
        ):
            return False
    return True


def _run_point(leg: str, n_views: int) -> DmProfilePoint:
    reset_message_ids()
    t_start = time.perf_counter()
    h = _BareDirHarness(conflict_index=(leg == "indexed"))
    prof = h.dm.profiler

    # Phase 1 — registration ramp: V views join the directory.
    for i in range(n_views):
        h.register(_vid(i), _props_of(i))
    h.drain()
    reg_hist = prof.phases.get("register")
    register_mean = reg_hist.mean_ns if reg_hist is not None else 0.0

    # Phase 2 — pure-op workload at steady membership.  Deltas of the
    # phase totals isolate it from the registration ramp above.
    sample = [_vid(i) for i in _sample_ids(n_views, OP_SAMPLE)]
    acq = sample[:: max(1, len(sample) // ACQ_SAMPLE)][:ACQ_SAMPLE]
    t0 = h.phase_total(OP_PHASES)
    ops0 = prof.ops
    for _ in range(OP_ROUNDS):
        for vid in sample:
            h.pull(vid)
        h.drain()
        for vid in acq:
            h.acquire(vid)
        h.drain()
    for vid in sample:
        h.push(vid, {f"own{vid[1:]}": 1})
    h.drain()
    pure_ops = prof.ops - ops0
    pure_total = h.phase_total(OP_PHASES) - t0
    pure_phases = {
        p: (
            (prof.phases[p].total_ns if p in prof.phases else 0) / pure_ops
            if pure_ops else 0.0
        )
        for p in OP_PHASES
    }
    commit_hist = prof.phases.get("commit")
    commit_mean = commit_hist.mean_ns if commit_hist is not None else 0.0

    # Phase 3 — churn burst: a fresh view joins the *full* fleet, then
    # immediately operates.  Legacy mode pays a whole-cache invalidation
    # plus an O(V) recomputation per cycle; indexed mode pays O(degree).
    churn_phases = ("register",) + OP_PHASES
    t1 = h.phase_total(churn_phases)
    for c in range(CHURN_CYCLES):
        vid = f"churn{c:05d}"
        h.register(vid, _churn_props(n_views, c))
        h.pull(vid)
        h.drain()
    churn_total = h.phase_total(churn_phases) - t1

    parity_ids = [_vid(i) for i in _sample_ids(n_views, PARITY_SAMPLE)]
    parity = _conflict_parity(h.dm, parity_ids)
    point = DmProfilePoint(
        leg=leg,
        n_views=n_views,
        ops=prof.ops,
        register_mean_ns=register_mean,
        pure_op_ns=pure_total / pure_ops if pure_ops else 0.0,
        pure_phases=pure_phases,
        commit_mean_ns=commit_mean,
        churn_cycle_ns=churn_total / CHURN_CYCLES,
        index_candidates=h.dm.counters["index_candidates"],
        scoped_invalidations=h.dm.counters["scoped_invalidations"],
        conflict_parity=parity,
        by_type=dict(h.transport.stats.by_type),
        state_digest=h.state_digest(),
        elapsed_s=time.perf_counter() - t_start,
    )
    h.dm.close()
    h.transport.close()
    return point


# ---------------------------------------------------------------------------
# Fig-4-style A/B parity on the full system
# ---------------------------------------------------------------------------

def _fig4_parity_run(conflict_index: bool) -> Tuple[Dict[str, int], Dict[str, int]]:
    """One deterministic conflicting workload; returns (state, by_type).

    Two overlapping views (so conflict rounds actually fire) run
    single-actor phases back to back — message counts cannot depend on
    races, which is what makes exact count parity assertable.
    """
    reset_message_ids()
    transport = resolve_transport("sim")
    store = Store({"a": 10, "b": 20})
    system = FleccSystem(
        transport, store, extract_from_object, merge_into_object,
        extract_cells=extract_cells, conflict_index=conflict_index,
    )
    weak_agent, strong_agent = Agent(), Agent()
    weak = system.add_view(
        "weak-view", weak_agent, props_for(["a"]),
        extract_from_view, merge_into_view, mode="weak",
    )
    strong = system.add_view(
        "strong-view", strong_agent, props_for(["a", "b"]),
        extract_from_view, merge_into_view, mode="strong",
    )

    def weak_script():
        yield weak.start()
        yield weak.init_image()
        yield weak.start_use_image()
        weak_agent.local["a"] = 99
        weak.end_use_image()
        yield weak.push_image()

    def strong_script():
        yield strong.start()
        yield strong.init_image()
        yield strong.start_use_image()
        strong_agent.local["b"] = strong_agent.local.get("b", 0) + 1
        strong.end_use_image()
        yield strong.kill_image()

    def weak_exit_script():
        yield weak.kill_image()

    run_all_scripts(transport, [weak_script()])
    run_all_scripts(transport, [strong_script()])  # revokes the weak view
    run_all_scripts(transport, [weak_exit_script()])
    state = dict(store.cells)
    by_type = dict(transport.stats.by_type)
    system.close()
    transport.close()
    return state, by_type


def fig4_parity() -> Tuple[bool, bool, Dict[str, int]]:
    """Indexed vs brute on the system workload.

    Returns (state_identical, counts_identical, reference by_type)."""
    state_on, counts_on = _fig4_parity_run(True)
    state_off, counts_off = _fig4_parity_run(False)
    return state_on == state_off, counts_on == counts_off, counts_on


@dataclass
class DmProfileResult:
    points: List[DmProfilePoint] = field(default_factory=list)
    fig4_state_identical: bool = True
    fig4_counts_identical: bool = True
    fig4_by_type: Dict[str, int] = field(default_factory=dict)

    def table(self) -> Table:
        t = Table(
            [
                "leg", "views", "reg us", "op us", "churn us",
                "idx cand", "scoped", "parity",
            ],
            title="DM PROFILE — per-op directory cost vs registered views",
        )
        for p in self.points:
            t.add_row(
                p.leg, p.n_views,
                f"{p.register_mean_ns / 1000:.1f}",
                f"{p.pure_op_ns / 1000:.1f}",
                f"{p.churn_cycle_ns / 1000:.1f}",
                p.index_candidates, p.scoped_invalidations,
                "ok" if p.conflict_parity else "DIVERGED",
            )
        return t


def sweep_points(
    ramp: Sequence[int] = DEFAULT_RAMP,
) -> List[Tuple[str, int]]:
    """Picklable point descriptors: ``(leg, n_views)``."""
    return [(leg, n) for leg in LEGS for n in ramp]


def run_sweep_point(
    point: Tuple[str, int], seed: Optional[int] = None
) -> DmProfilePoint:
    leg, n_views = point
    return _run_point(leg, n_views)


def merge_dm_profile(
    points: List[Tuple[str, int]],
    partials: List[DmProfilePoint],
    seed: Optional[int] = None,
) -> DmProfileResult:
    result = DmProfileResult(points=list(partials))
    (
        result.fig4_state_identical,
        result.fig4_counts_identical,
        result.fig4_by_type,
    ) = fig4_parity()
    return result


def run_dm_profile(
    ramp: Optional[Sequence[int]] = None, full: bool = False
) -> DmProfileResult:
    if ramp is None:
        ramp = FULL_RAMP if full else DEFAULT_RAMP
    points = sweep_points(ramp)
    return merge_dm_profile(points, [run_sweep_point(p) for p in points])


def _leg_points(
    payload_points: List[Dict[str, Any]], leg: str
) -> List[Dict[str, Any]]:
    return sorted(
        (p for p in payload_points if p["leg"] == leg),
        key=lambda p: p["n_views"],
    )


def _growth(points: List[Dict[str, Any]], key: str) -> float:
    """top-point / bottom-point ratio of one metric (0 when undefined)."""
    if len(points) < 2 or not points[0][key]:
        return 0.0
    return points[-1][key] / points[0][key]


def bench_payload(result: DmProfileResult) -> Dict[str, object]:
    """The ``BENCH_dmprofile.json`` document for one run."""
    points = [
        {
            "leg": p.leg,
            "n_views": p.n_views,
            "ops": p.ops,
            "register_mean_us": round(p.register_mean_ns / 1000, 2),
            "pure_op_us": round(p.pure_op_ns / 1000, 2),
            "pure_phases_us": {
                k: round(v / 1000, 2) for k, v in p.pure_phases.items()
            },
            "commit_mean_us": round(p.commit_mean_ns / 1000, 2),
            "churn_cycle_us": round(p.churn_cycle_ns / 1000, 2),
            "index_candidates": p.index_candidates,
            "scoped_invalidations": p.scoped_invalidations,
            "conflict_parity": p.conflict_parity,
            "by_type": dict(p.by_type),
            "state_digest": p.state_digest,
            "elapsed_s": round(p.elapsed_s, 2),
        }
        for p in result.points
    ]
    indexed = _leg_points(points, "indexed")
    brute = _leg_points(points, "brute")
    ramp_top = max((p["n_views"] for p in points), default=0)
    ramp_bottom = min((p["n_views"] for p in points), default=0)
    v_ratio = ramp_top / ramp_bottom if ramp_bottom else 0.0
    top_indexed = indexed[-1] if indexed else None
    top_brute = next(
        (p for p in brute if top_indexed and p["n_views"] == top_indexed["n_views"]),
        None,
    )
    speedup = (
        top_brute["pure_op_us"] / top_indexed["pure_op_us"]
        if top_indexed and top_brute and top_indexed["pure_op_us"]
        else 0.0
    )
    churn_speedup = (
        top_brute["churn_cycle_us"] / top_indexed["churn_cycle_us"]
        if top_indexed and top_brute and top_indexed["churn_cycle_us"]
        else 0.0
    )
    # Cross-leg parity at matched ramp points: the identical workload
    # must produce identical Fig-4 message counts and end state.
    leg_counts_identical = all(
        i["by_type"] == b["by_type"]
        for i in indexed for b in brute if i["n_views"] == b["n_views"]
    )
    leg_state_identical = all(
        i["state_digest"] == b["state_digest"]
        for i in indexed for b in brute if i["n_views"] == b["n_views"]
    )
    return {
        "description": (
            "Directory op-path profile: per-op cost (conflict lookup + "
            "target build + fan-out + serve) vs registered-view count, "
            "indexed conflict policy vs pre-index brute force"
        ),
        "command": "python -m repro.experiments.dm_profile --full",
        "ramp_top": ramp_top,
        "ramp_bottom": ramp_bottom,
        "view_ratio": round(v_ratio, 1),
        "speedup_at_top": round(speedup, 2),
        "churn_speedup_at_top": round(churn_speedup, 2),
        "indexed_pure_growth": round(_growth(indexed, "pure_op_us"), 2),
        "brute_pure_growth": round(_growth(brute, "pure_op_us"), 2),
        "indexed_churn_growth": round(_growth(indexed, "churn_cycle_us"), 2),
        "brute_churn_growth": round(_growth(brute, "churn_cycle_us"), 2),
        "conflict_parity": all(p["conflict_parity"] for p in points),
        "leg_counts_identical": leg_counts_identical,
        "leg_state_identical": leg_state_identical,
        "fig4_state_identical": result.fig4_state_identical,
        "fig4_counts_identical": result.fig4_counts_identical,
        "fig4_by_type": dict(result.fig4_by_type),
        "points": points,
    }


def check_acceptance(payload: Dict[str, Any]) -> List[str]:
    """The PR's acceptance gates; returns a list of violations.

    Parity is enforced on every run (any ramp).  The performance gates
    arm only when the ramp reaches ``GATE_TOP`` views — the full run —
    because below that the deltas sit inside wall-clock noise:

    - indexed per-op cost >= 5x cheaper than brute force at the top;
    - indexed per-op growth sub-linear in V (<= 0.5x the view ratio);
    - indexed churn-burst growth bounded by conflict degree, not V.
    """
    problems = []
    if not payload["conflict_parity"]:
        problems.append(
            "indexed conflict sets diverged from brute-force recomputation"
        )
    if not payload["leg_counts_identical"]:
        problems.append(
            "indexed vs brute legs produced different Fig-4 message counts"
        )
    if not payload["leg_state_identical"]:
        problems.append("indexed vs brute legs produced different end state")
    if not payload["fig4_state_identical"]:
        problems.append(
            "system workload end state differs with conflict_index on/off"
        )
    if not payload["fig4_counts_identical"]:
        problems.append(
            "system workload Fig-4 counts differ with conflict_index on/off"
        )
    if payload["ramp_top"] >= GATE_TOP:
        v_ratio = payload["view_ratio"]
        if payload["speedup_at_top"] < 5.0:
            problems.append(
                f"indexed per-op cost only {payload['speedup_at_top']}x "
                f"cheaper than brute force at {payload['ramp_top']} views "
                f"(need >= 5x)"
            )
        if payload["indexed_pure_growth"] > 0.5 * v_ratio:
            problems.append(
                f"indexed per-op cost grew {payload['indexed_pure_growth']}x "
                f"over a {v_ratio}x view ramp (need sub-linear: <= "
                f"{0.5 * v_ratio}x)"
            )
        churn_bound = max(8.0, 0.1 * v_ratio)
        if payload["indexed_churn_growth"] > churn_bound:
            problems.append(
                f"indexed churn-burst cost grew "
                f"{payload['indexed_churn_growth']}x over a {v_ratio}x view "
                f"ramp (need bounded by conflict degree: <= {churn_bound}x)"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> DmProfileResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.dm_profile",
        description=(
            "Profile directory per-op cost vs view count and write "
            "BENCH_dmprofile.json"
        ),
    )
    parser.add_argument(
        "--out", default="BENCH_dmprofile.json", metavar="FILE",
        help="output JSON path (default: BENCH_dmprofile.json)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="include the 10k-view point (arms the performance gates)",
    )
    parser.add_argument(
        "--max-views", type=int, default=None, metavar="N",
        help="cap the ramp at N views (CI smoke uses 2000); N itself is "
             "appended as the top point when not already in the ramp",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when an acceptance gate fails",
    )
    args = parser.parse_args(argv)
    ramp: List[int] = list(FULL_RAMP if args.full else DEFAULT_RAMP)
    if args.max_views is not None:
        ramp = [n for n in ramp if n <= args.max_views]
        if args.max_views not in ramp:
            ramp.append(args.max_views)
    result = run_dm_profile(ramp=ramp)
    print(result.table())
    payload = bench_payload(result)
    print(
        f"per-op speedup at {payload['ramp_top']} views: "
        f"{payload['speedup_at_top']}x (churn "
        f"{payload['churn_speedup_at_top']}x); indexed growth "
        f"{payload['indexed_pure_growth']}x vs brute "
        f"{payload['brute_pure_growth']}x over a {payload['view_ratio']}x ramp"
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    problems = check_acceptance(payload)
    if problems:
        print("ACCEPTANCE VIOLATIONS:", *problems, sep="\n  ")
        if args.check:
            raise SystemExit(1)
    else:
        print(
            "acceptance: OK (index == brute force on every conflict "
            "answer, message count and end state; perf gates "
            + ("enforced at the 10k point)" if payload["ramp_top"] >= GATE_TOP
               else "armed only at the 10k ramp point)")
        )
    return result


if __name__ == "__main__":
    main()
