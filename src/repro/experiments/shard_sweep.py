"""Sharded-directory sweep: conflict-round throughput vs shard count.

Runs the same contended workload — per group, a strong writer
ping-ponging ownership against a weak reader's pulls — against a
:class:`~repro.core.sharding.ShardedDirectoryPlane` at N ∈ {1, 2, 4, 8}
shards and measures, in *simulated* time on a strict-wire transport:

- **aggregate round throughput** — completed directory operations
  (acquires + pulls, each forcing a conflict round) per simulated
  second across the whole plane;
- **acquire latency** — p50/p99 from ``start_use_image`` to grant,
  including directory queueing delay.

Two workload shapes bracket the design space:

- **shard-local** — views grouped so every property set falls inside
  one shard's domain range (the ``DomainRangePartitioner`` answers
  ``shards_for`` by domain overlap, exactly like ``dynConfl``).  Each
  shard serializes only its own groups' rounds, so throughput scales
  with N; this is the point of the sharded plane.
- **all-spanning (worst case)** — every view's property set covers the
  whole key space, so every acquire fans out to all N shards and waits
  on the merge barrier.  No parallelism is available and the barrier
  plus cross-shard conflict handling make N > 1 at best break even.

The ``--check`` gate also replays a mixed-mode Fig-4-style workload on
the unsharded :class:`~repro.core.system.FleccSystem` and on the plane
at N=1 and requires byte-for-byte message parity: one shard must be the
identity configuration.

``python -m repro.experiments.shard_sweep`` writes ``BENCH_shard.json``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import DiscreteSet, DomainRangePartitioner
from repro.core.system import FleccSystem, run_all_scripts
from repro.core.sharding import ShardedFleccSystem
from repro.experiments.report import Table
from repro.net.message import reset_message_ids
from repro.net.sim_transport import SimTransport
from repro.sim.kernel import SimKernel
from repro.testing import (
    Agent,
    Store,
    extract_cells,
    extract_from_object,
    extract_from_view,
    merge_into_object,
    merge_into_view,
    props_for,
)

# 8 groups x 8 cells; group g's cells live in exactly one shard for
# every N in {1, 2, 4, 8} because shard ranges are unions of groups.
N_GROUPS = 8
CELLS_PER_GROUP = 8
CELLS = [f"c{i:02d}" for i in range(N_GROUPS * CELLS_PER_GROUP)]


def _group_cells(group: int) -> List[str]:
    lo = group * CELLS_PER_GROUP
    return CELLS[lo:lo + CELLS_PER_GROUP]


def _partitioner(n_shards: int) -> Optional[DomainRangePartitioner]:
    """Shard i owns the cells of groups [i*8/N, (i+1)*8/N)."""
    if n_shards == 1:
        return None
    per_shard = N_GROUPS // n_shards
    ranges = [
        DiscreteSet(
            {c for g in range(i * per_shard, (i + 1) * per_shard)
             for c in _group_cells(g)}
        )
        for i in range(n_shards)
    ]
    return DomainRangePartitioner(ranges)


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


@dataclass
class ShardPoint:
    """One sweep point: a workload shape at one shard count."""

    n_shards: int
    workload: str                  # "shard-local" | "spanning"
    views: int
    rounds_per_view: int
    ops: int                       # completed acquires + pulls
    makespan: float                # simulated time to drain all scripts
    rounds_per_sec: float          # completed ops / makespan
    acquire_p50: float             # simulated time, start_use -> grant
    acquire_p99: float
    plane_rounds: int              # per-shard DM conflict rounds, summed
    shard_local_rounds: int
    cross_shard_rounds: int
    router_fanouts: int
    acquire_retries: int


@dataclass
class ShardSweepResult:
    points: List[ShardPoint] = field(default_factory=list)
    # N=1 plane vs unsharded FleccSystem on the Fig-4-style workload.
    n1_state_identical: bool = True
    n1_messages_identical: bool = True

    def table(self) -> Table:
        t = Table(
            [
                "workload", "shards", "views", "ops", "makespan",
                "rounds/s", "p50", "p99", "x-shard", "retries",
            ],
            title="SHARD — conflict-round throughput and acquire latency vs shard count",
        )
        for p in self.points:
            t.add_row(
                p.workload, p.n_shards, p.views, p.ops,
                f"{p.makespan:.1f}", f"{p.rounds_per_sec:.3f}",
                f"{p.acquire_p50:.1f}", f"{p.acquire_p99:.1f}",
                p.cross_shard_rounds, p.acquire_retries,
            )
        return t


def _run_point(
    n_shards: int,
    spanning: bool,
    rounds: int,
    spanning_groups: int = 2,
) -> ShardPoint:
    """One workload run; all timing is simulated (strict wire, lat 1.0).

    Each group pairs a strong writer with a weak reader over the same
    cells: every ``pull_image`` must revoke the exclusive writer and
    every re-acquire must invalidate the reader's fresh copy, so *all*
    conflict work flows through the directory — no view can streak on a
    locally-retained owner token and bypass the serialization this
    sweep is measuring.  The spanning variant keeps the same pairing
    but gives every view the whole key space (fewer groups: all their
    rounds collide on every shard).
    """
    reset_message_ids()
    kernel = SimKernel()
    transport = SimTransport(kernel, default_latency=1.0, strict_wire=True)
    store = Store({c: 0 for c in CELLS})
    system = ShardedFleccSystem(
        transport, store, extract_from_object, merge_into_object,
        n_shards=n_shards, partitioner=_partitioner(n_shards),
        extract_cells=extract_cells,
    )
    latencies: List[float] = []
    ops = [0]
    sleep, stagger = 0.5, 0.3
    groups = spanning_groups if spanning else N_GROUPS
    scripts = []
    for g in range(groups):
        cells = CELLS if spanning else _group_cells(g)
        writer_agent, reader_agent = Agent(), Agent()
        writer = system.add_view(
            f"g{g}w", writer_agent, props_for(cells),
            extract_from_view, merge_into_view, mode="strong",
        )
        reader = system.add_view(
            f"g{g}r", reader_agent, props_for(cells),
            extract_from_view, merge_into_view, mode="weak",
        )

        def writer_script(cm=writer, agent=writer_agent, cells=cells, g=g):
            yield cm.start()
            yield cm.init_image()
            yield ("sleep", g * stagger)  # deterministic desync
            for _ in range(rounds):
                t0 = kernel.now
                yield cm.start_use_image()
                latencies.append(kernel.now - t0)
                ops[0] += 1
                for c in cells:
                    agent.local[c] = agent.local.get(c, 0) + 1
                cm.end_use_image()
                yield ("sleep", sleep)
            yield cm.kill_image()

        def reader_script(cm=reader, g=g):
            yield cm.start()
            yield cm.init_image()
            yield ("sleep", g * stagger + sleep / 2.0)
            for _ in range(rounds):
                yield cm.pull_image()
                ops[0] += 1
                yield ("sleep", sleep)
            yield cm.kill_image()

        scripts.append(writer_script())
        scripts.append(reader_script())
    run_all_scripts(system.transport, scripts)
    makespan = kernel.now
    counters = system.plane.counters
    system.close()
    return ShardPoint(
        n_shards=n_shards,
        workload="spanning" if spanning else "shard-local",
        views=2 * groups,
        rounds_per_view=rounds,
        ops=ops[0],
        makespan=makespan,
        rounds_per_sec=ops[0] / makespan if makespan else 0.0,
        acquire_p50=_percentile(latencies, 0.50),
        acquire_p99=_percentile(latencies, 0.99),
        plane_rounds=counters.get("rounds", 0),
        shard_local_rounds=counters.get("shard_local_rounds", 0),
        cross_shard_rounds=counters.get("cross_shard_rounds", 0),
        router_fanouts=counters.get("router_fanouts", 0),
        acquire_retries=counters.get("acquire_retries", 0),
    )


def _fig4_workload(system: Any, cells: List[str]) -> None:
    """A mixed-mode Fig-4-style workload on an already-built system."""
    writer_agent, reader_agent, late_agent = Agent(), Agent(), Agent()
    writer = system.add_view(
        "writer", writer_agent, props_for(cells),
        extract_from_view, merge_into_view, mode="strong",
    )
    reader = system.add_view(
        "reader", reader_agent, props_for(cells),
        extract_from_view, merge_into_view, mode="weak",
    )
    late = system.add_view(
        "late", late_agent, props_for(cells),
        extract_from_view, merge_into_view, mode="strong",
    )

    def writer_script():
        yield writer.start()
        yield writer.init_image()
        for _ in range(2):
            yield writer.start_use_image()
            for c in cells:
                writer_agent.local[c] = writer_agent.local.get(c, 0) + 1
            writer.end_use_image()
            yield ("sleep", 8.0)
        yield writer.kill_image()

    def reader_script():
        yield reader.start()
        yield reader.init_image()
        yield ("sleep", 30.0)
        yield reader.pull_image()
        reader_agent.local[cells[0]] += 100
        yield reader.push_image()
        yield reader.kill_image()

    def late_script():
        yield late.start()
        yield ("sleep", 12.0)
        yield late.init_image()
        yield late.start_use_image()
        late_agent.local[cells[-1]] = late_agent.local.get(cells[-1], 0) + 1000
        late.end_use_image()
        yield late.kill_image()

    run_all_scripts(system.transport, [writer_script(), reader_script(), late_script()])


def _n1_parity() -> Tuple[bool, bool]:
    """Plane at N=1 vs the unsharded builder: same state, same wire."""
    def run(sharded: bool):
        reset_message_ids()
        kernel = SimKernel()
        transport = SimTransport(kernel, default_latency=1.0, strict_wire=True)
        record: List[Tuple[str, str, str]] = []
        transport.fault_policy = (
            lambda msg: record.append((msg.msg_type, msg.src, msg.dst))
            or "deliver"
        )
        store = Store({f"c{i:02d}": i for i in range(8)})
        if sharded:
            system = ShardedFleccSystem(
                transport, store, extract_from_object, merge_into_object,
                n_shards=1, extract_cells=extract_cells,
            )
        else:
            system = FleccSystem(
                transport, store, extract_from_object, merge_into_object,
                extract_cells=extract_cells,
            )
        _fig4_workload(system, sorted(store.cells))
        system.close()
        return dict(store.cells), record, dict(transport.stats.bytes_by_type)

    base_state, base_record, base_bytes = run(sharded=False)
    plane_state, plane_record, plane_bytes = run(sharded=True)
    return (
        base_state == plane_state,
        base_record == plane_record and base_bytes == plane_bytes,
    )


def sweep_points(
    shards: Sequence[int] = (1, 2, 4, 8), rounds: int = 4
) -> List[Tuple[int, bool, int]]:
    """Picklable point descriptors: ``(n_shards, spanning, rounds)``."""
    points = [(n, False, rounds) for n in shards]
    # The worst case: every view spans every shard (skip the N=1 dup of
    # "no parallelism available" only in the sense that N=1 is its own
    # baseline — we still run it to anchor the ratio).
    points += [(n, True, rounds) for n in shards]
    return points


def run_sweep_point(
    point: Tuple[int, bool, int], seed: Optional[int] = None
) -> ShardPoint:
    n_shards, spanning, rounds = point
    return _run_point(n_shards, spanning, rounds)


def merge_shard_sweep(
    points: List[Tuple[int, bool, int]],
    partials: List[ShardPoint],
    seed: Optional[int] = None,
) -> ShardSweepResult:
    result = ShardSweepResult(points=list(partials))
    result.n1_state_identical, result.n1_messages_identical = _n1_parity()
    return result


def run_shard_sweep(
    shards: Sequence[int] = (1, 2, 4, 8), rounds: int = 4
) -> ShardSweepResult:
    points = sweep_points(shards, rounds)
    return merge_shard_sweep(points, [run_sweep_point(p) for p in points])


def _point(result: ShardSweepResult, workload: str, n: int) -> Optional[ShardPoint]:
    for p in result.points:
        if p.workload == workload and p.n_shards == n:
            return p
    return None


def bench_payload(result: ShardSweepResult) -> Dict[str, object]:
    """The ``BENCH_shard.json`` document for one sweep."""
    local1 = _point(result, "shard-local", 1)
    local4 = _point(result, "shard-local", 4)
    span1 = _point(result, "spanning", 1)
    span4 = _point(result, "spanning", 4)
    speedup4 = (
        local4.rounds_per_sec / local1.rounds_per_sec
        if local1 and local4 and local1.rounds_per_sec else 0.0
    )
    spanning_ratio = (
        span4.rounds_per_sec / span1.rounds_per_sec
        if span1 and span4 and span1.rounds_per_sec else 0.0
    )
    return {
        "description": (
            "Sharded directory plane sweep: aggregate conflict-round "
            "throughput and acquire latency vs shard count, shard-local "
            "vs all-spanning workloads (simulated time, strict wire)"
        ),
        "command": "python -m repro.experiments.shard_sweep",
        "local_speedup_4_shards": round(speedup4, 2),
        "spanning_ratio_4_shards": round(spanning_ratio, 2),
        "n1_state_identical": result.n1_state_identical,
        "n1_messages_identical": result.n1_messages_identical,
        "points": [
            {
                "workload": p.workload,
                "n_shards": p.n_shards,
                "views": p.views,
                "rounds_per_view": p.rounds_per_view,
                "ops": p.ops,
                "makespan": round(p.makespan, 2),
                "rounds_per_sec": round(p.rounds_per_sec, 4),
                "acquire_p50": round(p.acquire_p50, 2),
                "acquire_p99": round(p.acquire_p99, 2),
                "plane_rounds": p.plane_rounds,
                "shard_local_rounds": p.shard_local_rounds,
                "cross_shard_rounds": p.cross_shard_rounds,
                "router_fanouts": p.router_fanouts,
                "acquire_retries": p.acquire_retries,
            }
            for p in result.points
        ],
    }


def check_acceptance(payload: Dict[str, object]) -> List[str]:
    """The PR's acceptance gates; returns a list of violations."""
    problems = []
    speedup = payload.get("local_speedup_4_shards") or 0.0
    if speedup < 2.0:
        problems.append(
            f"shard-local rounds/sec at 4 shards only {speedup}x of 1 shard "
            f"(need >= 2x)"
        )
    if not payload["n1_state_identical"]:
        problems.append("N=1 plane end state differs from unsharded system")
    if not payload["n1_messages_identical"]:
        problems.append(
            "N=1 plane message sequence/bytes differ from unsharded system"
        )
    for p in payload["points"]:
        if p["workload"] == "shard-local" and p["cross_shard_rounds"]:
            problems.append(
                f"shard-local workload fanned out at N={p['n_shards']}"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> ShardSweepResult:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.shard_sweep",
        description="Run the sharded-directory sweep and write BENCH_shard.json",
    )
    parser.add_argument(
        "--out", default="BENCH_shard.json", metavar="FILE",
        help="output JSON path (default: BENCH_shard.json)",
    )
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when an acceptance gate fails",
    )
    args = parser.parse_args(argv)
    result = run_shard_sweep(rounds=args.rounds)
    print(result.table())
    payload = bench_payload(result)
    print(
        f"shard-local speedup at 4 shards: {payload['local_speedup_4_shards']}x, "
        f"spanning (worst case) ratio: {payload['spanning_ratio_4_shards']}x"
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    problems = check_acceptance(payload)
    if problems:
        print("ACCEPTANCE VIOLATIONS:", *problems, sep="\n  ")
        if args.check:
            raise SystemExit(1)
    else:
        print(
            "acceptance: OK (>= 2x rounds/sec at 4 shards on the "
            "shard-local workload; N=1 plane is message-identical)"
        )
    return result


if __name__ == "__main__":
    main()
