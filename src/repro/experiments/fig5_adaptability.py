"""FIG5 — adaptability: method time vs data quality across mode switches.

Paper §5.2 (Adaptability): "ten conflicting travel agents connected to
the main database, all running in the same LAN.  Initially, they start
in weak mode and execute in a loop the 'reserve tickets' operation.
After that, the travel agents switch to strong mode, and execute the
same set of operations.  In the last phase, the travel agents switch
back to weak ...  We measure the time to execute a method and the
quality of the data used during the execution."

Expected trade-off (the paper's Figure 5): WEAK phases have small
method times but decaying data quality (unseen remote updates grow);
the STRONG phase has larger method times but perfect quality (0 unseen
updates at each method start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.apps.airline.app_spec import build_airline_system
from repro.apps.airline.workload import generate_flight_database, make_agent_groups
from repro.core.modes import Mode
from repro.core.quality import QualityProbe
from repro.core.system import run_all_scripts
from repro.experiments.report import Table, ascii_series


@dataclass
class MethodSample:
    time: float
    phase: str            # 'weak-1' | 'strong' | 'weak-2'
    duration: float       # sim time to execute the reserve method
    quality: int          # unseen remote updates at method start


@dataclass
class Fig5Result:
    samples: List[MethodSample] = field(default_factory=list)

    def phase_stats(self) -> Table:
        t = Table(
            ["phase", "methods", "mean time", "max time", "mean unseen", "max unseen"],
            title="FIG5 — per-phase method execution time and data quality",
        )
        for phase in ("weak-1", "strong", "weak-2"):
            chosen = [s for s in self.samples if s.phase == phase]
            if not chosen:
                continue
            durs = np.array([s.duration for s in chosen])
            quals = np.array([s.quality for s in chosen])
            t.add_row(
                phase, len(chosen),
                float(durs.mean()), float(durs.max()),
                float(quals.mean()), int(quals.max()),
            )
        return t

    def series(self, what: str) -> List[float]:
        return [getattr(s, what) for s in self.samples]


def run_fig5(
    n_agents: int = 10,
    ops_per_phase: int = 10,
    seed: int = 0,
    think_time: float = 1.0,
    inter_op_gap: float = 5.0,
) -> Fig5Result:
    """Run the three-phase WEAK -> STRONG -> WEAK experiment.

    All agents serve the same flight block (fully conflicting).  The
    observed agent is ``ta-000``; the others generate the remote updates
    whose visibility the quality metric tracks.
    """
    database = generate_flight_database(5, seed=seed)
    airline = build_airline_system(database, strict_wire=False)
    groups = make_agent_groups(n_agents, n_conflicting=n_agents)
    agents = [
        airline.add_travel_agent(f"ta-{i:03d}", served, mode=Mode.WEAK)
        for i, served in enumerate(groups)
    ]
    probe = QualityProbe(airline.directory)
    result = Fig5Result()
    flight = groups[0][0]
    kernel = airline.kernel

    def agent_script(index: int, agent, cm):
        observed = index == 0
        yield cm.start()
        yield cm.init_image()
        for phase, mode in (
            ("weak-1", Mode.WEAK), ("strong", Mode.STRONG), ("weak-2", Mode.WEAK),
        ):
            if cm.mode is not mode:
                yield cm.set_mode(mode)
            for _ in range(ops_per_phase):
                t0 = kernel.now
                # The "reserve tickets" method under the current mode:
                # weak works on the local copy and pushes; strong
                # acquires exclusive ownership first (fresh data).
                yield cm.start_use_image()
                # Quality of the data *used during the execution*
                # (paper §5.2): sampled once the method holds its data.
                quality = probe.unseen(cm.view_id) if observed else 0
                agent.confirm_tickets(1, flight)
                if think_time:
                    yield ("sleep", think_time)
                cm.end_use_image()
                yield cm.push_image()
                if observed:
                    result.samples.append(
                        MethodSample(
                            time=t0,
                            phase=phase,
                            duration=kernel.now - t0,
                            quality=quality,
                        )
                    )
                yield ("sleep", inter_op_gap)
        yield cm.kill_image()

    run_all_scripts(
        airline.transport,
        [agent_script(i, agent, cm) for i, (agent, cm) in enumerate(agents)],
    )
    return result


def check_shape(result: Fig5Result) -> List[str]:
    """The paper's qualitative claims; returns violations."""
    problems = []
    by_phase = {
        phase: [s for s in result.samples if s.phase == phase]
        for phase in ("weak-1", "strong", "weak-2")
    }
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    weak_time = mean(
        [s.duration for s in by_phase["weak-1"] + by_phase["weak-2"]]
    )
    strong_time = mean([s.duration for s in by_phase["strong"]])
    if not strong_time > weak_time:
        problems.append(
            f"strong methods ({strong_time:.2f}) not slower than weak ({weak_time:.2f})"
        )
    # Strong phase: perfect data quality at every method start.
    strong_quality = [s.quality for s in by_phase["strong"]]
    # The first strong op may still observe pre-switch staleness.
    if any(q != 0 for q in strong_quality[1:]):
        problems.append(f"strong-phase quality not perfect: {strong_quality}")
    weak_quality = [s.quality for s in by_phase["weak-1"] + by_phase["weak-2"]]
    if max(weak_quality, default=0) == 0:
        problems.append("weak-phase quality never decayed (no unseen updates)")
    return problems


def main() -> None:
    result = run_fig5()
    print(result.phase_stats())
    print()
    print(ascii_series(result.series("duration"), label="method time  "))
    print(ascii_series(result.series("quality"), label="unseen updates"))
    print()
    problems = check_shape(result)
    if problems:
        print("SHAPE VIOLATIONS:", *problems, sep="\n  ")
    else:
        print(
            "shape check: OK (strong slower + quality pinned at 0; "
            "weak fast + quality decays)"
        )


if __name__ == "__main__":
    main()
