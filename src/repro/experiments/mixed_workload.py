"""EXT1 — the introduction's motivating scenario, quantified.

Paper §1: "an airline reservation system might allow users to browse
flights, buy tickets, and switch between the two modes of operation.
In general, users accept stale data during browsing (weak consistency),
but require most current data when buying tickets (strong
consistency)."

This experiment sweeps the buy fraction of a mixed browse/buy client
population.  Each client switches its travel agent's mode per operation
kind (browse -> WEAK, buy -> STRONG via ``Operation.implied_mode``).
Reported per sweep point:

- control messages (the cost of consistency),
- invalidations absorbed by the observed browser (strong buyers revoke
  weak browsers, dragging them fresh — the hidden cost browsers pay),
- sold - committed (lost sales; must be 0 because buys are strong).

Expected shape: more buying -> more messages and more browser
invalidations, but zero lost sales at every point.  (Browse staleness
itself stays ~0 here precisely *because* the buyers' invalidations
force the browsers to refresh — one-copy semantics protecting even the
weak participants.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.apps.airline.app_spec import build_airline_system
from repro.apps.airline.workload import generate_flight_database, make_agent_groups
from repro.core.modes import Mode
from repro.core.system import run_all_scripts
from repro.experiments.report import Table
from repro.psf.qos import Operation
from repro.sim.rng import stream_for


@dataclass
class Ext1Result:
    # (buy fraction, messages, browser invalidations, lost sales)
    points: List[Tuple[float, int, int, int]] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["buy fraction", "messages", "browser invalidations", "lost sales"],
            title="EXT1 — browse/buy mix: consistency cost vs correctness",
        )
        for frac, msgs, inv, lost in self.points:
            t.add_row(frac, msgs, inv, lost)
        return t


def _run_point(
    buy_fraction: float, n_clients: int, n_ops: int, seed: int
) -> Tuple[int, int, int]:
    database = generate_flight_database(5, seed=seed)
    airline = build_airline_system(database, strict_wire=False)
    groups = make_agent_groups(n_clients, n_conflicting=n_clients)
    flight = groups[0][0]
    seats_before = database.seats_available(flight)
    sold = [0]
    observer_cm = [None]

    def client(index: int):
        agent, cm = airline.add_travel_agent(
            f"client-{index:02d}", groups[index], mode=Mode.WEAK
        )
        if index == 0:
            observer_cm[0] = cm
        rng = stream_for(seed, "mix", index)
        yield cm.start()
        yield cm.init_image()
        for _ in range(n_ops):
            buying = rng.random() < buy_fraction
            op = Operation.BUY if buying else Operation.BROWSE
            if cm.mode is not op.implied_mode:
                yield cm.set_mode(op.implied_mode)
            yield cm.start_use_image()
            if buying:
                agent.confirm_tickets(1, flight)
                sold[0] += 1
            else:
                agent.browse(flight)
            cm.end_use_image()
            if buying and cm.mode is Mode.WEAK:
                yield cm.push_image()
            yield ("sleep", 5.0)
        yield cm.kill_image()

    run_all_scripts(airline.transport, [client(i) for i in range(n_clients)])
    committed = seats_before - database.seats_available(flight)
    lost = sold[0] - committed
    invalidations = observer_cm[0].counters["invalidations"]
    return airline.stats.total, invalidations, lost


def run_ext1(
    buy_fractions: Tuple[float, ...] = (0.0, 0.2, 0.5, 1.0),
    n_clients: int = 8,
    n_ops: int = 6,
    seed: int = 0,
) -> Ext1Result:
    result = Ext1Result()
    for frac in buy_fractions:
        msgs, invalidations, lost = _run_point(frac, n_clients, n_ops, seed)
        result.points.append((frac, msgs, invalidations, lost))
    return result


def check_shape(result: Ext1Result) -> List[str]:
    problems = []
    if any(lost != 0 for _, _, _, lost in result.points):
        problems.append("strong-mode buys lost sales")
    msgs = [m for _, m, _, _ in result.points]
    if not msgs[-1] > msgs[0]:
        problems.append("all-buy workload not costlier than all-browse")
    inv = [i for _, _, i, _ in result.points]
    if not (inv[0] == 0 and max(inv[1:], default=0) > 0):
        problems.append("buyers never invalidated the observed browser")
    return problems


def main() -> None:
    result = run_ext1()
    print(result.table())
    print()
    problems = check_shape(result)
    if problems:
        print("SHAPE VIOLATIONS:", *problems, sep="\n  ")
    else:
        print("shape check: OK (buying costs messages, never sales; "
              "browsing is cheap and tolerates staleness)")


if __name__ == "__main__":
    main()
