"""Experiment execution utilities: timing, JSON persistence, registry, CLI.

``python -m repro.experiments.runner`` runs every experiment at paper
scale and writes ``results/<name>.json`` — the artifact EXPERIMENTS.md
is compiled from.

CLI::

    python -m repro.experiments.runner                  # everything, serial
    python -m repro.experiments.runner --jobs 4         # parallel engine
    python -m repro.experiments.runner --only fig2_trace --only abl1_static_vs_dynamic
    python -m repro.experiments.runner --out /tmp/r --seeds 0 1 2

``--jobs 1`` (the default) is the plain serial path; anything higher
hands the run to :mod:`repro.experiments.parallel`, which fans whole
experiments — and sweep shards within an experiment — across worker
processes and merges the results deterministically.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    ablations,
    chaos,
    delta_sweep,
    dm_profile,
    dm_sched,
    durability_sweep,
    fig1_deployment,
    fig2_trace,
    fig4_efficiency,
    fig5_adaptability,
    fig6_flexibility,
    scale_sweep,
    shard_sweep,
    wire_sweep,
)
from repro.net.message import reset_message_ids


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of experiment results to JSON."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        # Deterministic JSON for unordered collections: a sorted list
        # (sets used to fall through to str(), losing the elements).
        vals = [_jsonable(v) for v in obj]
        try:
            return sorted(vals)
        except TypeError:  # mixed element types: total order via repr
            return sorted(vals, key=repr)
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "sequence"):  # TraceLog
        return [f"{a}:{e}" for a, e in obj.sequence()]
    return str(obj)


def record_key(name: str, seed: Optional[int] = None) -> str:
    """Output-file stem for one (experiment, seed) run."""
    return name if seed is None else f"{name}.seed{seed}"


def make_record(
    name: str,
    elapsed: float,
    result_json: Any,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """The persisted result envelope (shared by serial + parallel paths)."""
    record: Dict[str, Any] = {
        "experiment": name,
        "wall_seconds": round(elapsed, 3),
        "result": result_json,
    }
    if seed is not None:
        record["seed"] = seed
    return record


def save_record(record: Dict[str, Any], out_dir: Path) -> None:
    key = record_key(record["experiment"], record.get("seed"))
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{key}.json").write_text(json.dumps(record, indent=2))


def run_and_save(
    name: str,
    fn: Callable[[], Any],
    out_dir: Path,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    # Fresh message-id space per experiment: output stays independent of
    # whatever ran earlier in this process (serial == multiprocess).
    reset_message_ids()
    t0 = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - t0
    record = make_record(name, elapsed, _jsonable(result), seed=seed)
    save_record(record, Path(out_dir))
    return record


def _late_import_ext1():
    from repro.experiments.mixed_workload import run_ext1

    return run_ext1()


EXPERIMENTS: Dict[str, Callable[[], Any]] = {
    "fig1_deployment": fig1_deployment.run_fig1,
    "fig2_trace": fig2_trace.run_fig2,
    "fig4_efficiency": fig4_efficiency.run_fig4,
    "fig5_adaptability": fig5_adaptability.run_fig5,
    "fig6_flexibility": fig6_flexibility.run_fig6,
    "abl1_static_vs_dynamic": ablations.run_abl1,
    "abl2_trigger_period": ablations.run_abl2,
    "abl3_granularity": ablations.run_abl3,
    "abl4_centralization": ablations.run_abl4,
    "abl5_rw_semantics": ablations.run_abl5,
    "abl6_loss_tolerance": ablations.run_abl6,
    "ext1_mixed_workload": _late_import_ext1,
    "chaos": chaos.run_chaos,
    "delta_sweep": delta_sweep.run_delta_sweep,
    "wire_sweep": wire_sweep.run_wire_sweep,
    "shard_sweep": shard_sweep.run_shard_sweep,
    "scale_sweep": scale_sweep.run_scale_sweep,
    "durability_sweep": durability_sweep.run_durability_sweep,
    "dm_profile": dm_profile.run_dm_profile,
    "dm_sched": dm_sched.run_dm_sched,
}


def accepts_seed(name: str) -> bool:
    """Whether the experiment function takes a ``seed`` keyword."""
    try:
        return "seed" in inspect.signature(EXPERIMENTS[name]).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return False


def seeds_for(name: str, seeds: Optional[Sequence[int]]) -> List[Optional[int]]:
    """The seed sweep for one experiment (``[None]`` = default run)."""
    if seeds and accepts_seed(name):
        return list(seeds)
    return [None]


def resolve_names(only: Optional[Sequence[str]]) -> List[str]:
    """Validate ``--only`` selections against the registry (keeps registry order)."""
    if not only:
        return list(EXPERIMENTS)
    unknown = [n for n in only if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from: {', '.join(EXPERIMENTS)}"
        )
    return [n for n in EXPERIMENTS if n in set(only)]


def run_serial(
    names: Optional[Sequence[str]] = None,
    out_dir: str = "results",
    seeds: Optional[Sequence[int]] = None,
) -> List[Dict[str, Any]]:
    """Run experiments one after another in this process."""
    records = []
    for name in resolve_names(names):
        for seed in seeds_for(name, seeds):
            fn = EXPERIMENTS[name]
            call = fn if seed is None else (lambda f=fn, s=seed: f(seed=s))
            print(f"running {record_key(name, seed)} ...", flush=True)
            records.append(run_and_save(name, call, Path(out_dir), seed=seed))
            print(f"  done in {records[-1]['wall_seconds']}s")
    return records


def main(argv: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Run the paper's experiments and save results/<name>.json",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        help="run only this experiment (repeatable)",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default: results)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; 1 = serial (default)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", metavar="SEED",
        help="seed sweep: run each seed-aware experiment once per seed",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.jobs == 1:
        return run_serial(args.only, args.out, seeds=args.seeds)
    from repro.experiments.parallel import run_parallel

    return run_parallel(
        names=args.only, out_dir=args.out, jobs=args.jobs, seeds=args.seeds
    )


if __name__ == "__main__":
    main()
