"""Experiment execution utilities: timing, JSON persistence, registry.

``python -m repro.experiments.runner`` runs every experiment at paper
scale and writes ``results/<name>.json`` — the artifact EXPERIMENTS.md
is compiled from.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

from repro.experiments import (
    ablations,
    fig1_deployment,
    fig2_trace,
    fig4_efficiency,
    fig5_adaptability,
    fig6_flexibility,
)


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of experiment results to JSON."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "sequence"):  # TraceLog
        return [f"{a}:{e}" for a, e in obj.sequence()]
    return str(obj)


def run_and_save(
    name: str,
    fn: Callable[[], Any],
    out_dir: Path,
) -> Dict[str, Any]:
    t0 = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - t0
    record = {
        "experiment": name,
        "wall_seconds": round(elapsed, 3),
        "result": _jsonable(result),
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{name}.json").write_text(json.dumps(record, indent=2))
    return record


def _late_import_ext1():
    from repro.experiments.mixed_workload import run_ext1

    return run_ext1()


EXPERIMENTS: Dict[str, Callable[[], Any]] = {
    "fig1_deployment": fig1_deployment.run_fig1,
    "fig2_trace": fig2_trace.run_fig2,
    "fig4_efficiency": fig4_efficiency.run_fig4,
    "fig5_adaptability": fig5_adaptability.run_fig5,
    "fig6_flexibility": fig6_flexibility.run_fig6,
    "abl1_static_vs_dynamic": ablations.run_abl1,
    "abl2_trigger_period": ablations.run_abl2,
    "abl3_granularity": ablations.run_abl3,
    "abl4_centralization": ablations.run_abl4,
    "abl5_rw_semantics": ablations.run_abl5,
    "abl6_loss_tolerance": ablations.run_abl6,
    "ext1_mixed_workload": _late_import_ext1,
}


def main(out_dir: str = "results") -> List[Dict[str, Any]]:
    records = []
    for name, fn in EXPERIMENTS.items():
        print(f"running {name} ...", flush=True)
        records.append(run_and_save(name, fn, Path(out_dir)))
        print(f"  done in {records[-1]['wall_seconds']}s")
    return records


if __name__ == "__main__":
    main()
