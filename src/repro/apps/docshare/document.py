"""The shared document — the docshare app's original component.

A document is a set of named sections; each section is one Flecc cell
holding its text.  Editors declare the sections they work on through a
``Sections`` data property, so two editors conflict exactly when their
section sets overlap.

The application conflict rule, :func:`line_merge_resolver`, unions the
*lines* of divergent section texts — concurrent edits to the same
section both survive (order-normalized), which is the behavior a
collaborative editor wants from a state-based merge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.image import ObjectImage
from repro.core.property import Property
from repro.core.property_set import PropertySet
from repro.errors import ReproError


class DocumentError(ReproError):
    """Invalid document operation."""


class SharedDocument:
    """The primary copy: section name -> text."""

    def __init__(self, sections: Dict[str, str] | None = None) -> None:
        self.sections: Dict[str, str] = dict(sections or {})

    def add_section(self, name: str, text: str = "") -> None:
        if name in self.sections:
            raise DocumentError(f"section exists: {name}")
        self.sections[name] = text

    def text_of(self, name: str) -> str:
        try:
            return self.sections[name]
        except KeyError:
            raise DocumentError(f"no such section: {name}") from None

    def word_count(self) -> int:
        return sum(len(t.split()) for t in self.sections.values())

    def line_count(self) -> int:
        return sum(
            len([l for l in t.splitlines() if l.strip()])
            for t in self.sections.values()
        )


def sections_property(section_names: Iterable[str]) -> PropertySet:
    """The ``Sections`` data property: which sections an editor touches."""
    return PropertySet([Property("Sections", set(section_names))])


def _covered(names: Iterable[str], props: PropertySet) -> List[str]:
    p = props.get("Sections")
    if p is None:
        return sorted(names)
    return sorted(n for n in names if p.domain.contains(n))


def extract_from_document(doc: SharedDocument, props: PropertySet) -> ObjectImage:
    img = ObjectImage()
    for name in _covered(doc.sections.keys(), props):
        img.cells[name] = doc.sections[name]
    return img


def merge_into_document(
    doc: SharedDocument, image: ObjectImage, props: PropertySet
) -> None:
    for name in image.keys():
        doc.sections[name] = image.get(name)


def line_merge_resolver(section: str, current: str, pushed: str) -> str:
    """Union the lines of two divergent section texts.

    Lines common to both appear once; lines unique to either side are
    kept.  Relative order follows the current text first, then pushed
    additions in their own order — deterministic regardless of which
    side is "current" up to that ordering rule.
    """
    current_lines = [l for l in current.splitlines() if l.strip()]
    pushed_lines = [l for l in pushed.splitlines() if l.strip()]
    seen = set(current_lines)
    merged = list(current_lines)
    for line in pushed_lines:
        if line not in seen:
            seen.add(line)
            merged.append(line)
    return "\n".join(merged)
