"""A second case-study application: collaborative document editing.

The paper's central claim is that Flecc is *application-neutral*: any
component-based application can use it by supplying data properties,
triggers, and extract/merge functions.  The airline system exercises a
transactional workload; this package exercises a collaborative-editing
one — shared documents whose sections are edited concurrently, with an
application merge rule (line-set union) resolving write-write races —
without a single change to the protocol.

- :mod:`repro.apps.docshare.document` — the shared document (original
  component) and its Flecc functions.
- :mod:`repro.apps.docshare.editor` — the editor view.
"""

from repro.apps.docshare.document import (
    SharedDocument,
    extract_from_document,
    line_merge_resolver,
    merge_into_document,
    sections_property,
)
from repro.apps.docshare.editor import (
    EditorView,
    extract_from_editor,
    merge_into_editor,
)

__all__ = [
    "SharedDocument",
    "extract_from_document",
    "merge_into_document",
    "sections_property",
    "line_merge_resolver",
    "EditorView",
    "extract_from_editor",
    "merge_into_editor",
]
