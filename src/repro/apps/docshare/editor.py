"""The editor view: a local working copy of a subset of sections."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.apps.docshare.document import DocumentError, sections_property
from repro.core.cache_manager import CacheManager
from repro.core.image import ObjectImage
from repro.core.modes import Mode
from repro.core.property_set import PropertySet
from repro.core.system import FleccSystem
from repro.core.triggers import TriggerSet


class EditorView:
    """One collaborator's working copy.

    Trigger expressions may reference ``unsaved_edits`` via reflection
    (e.g. ``push="unsaved_edits >= 5"`` — autosave after five edits).
    """

    def __init__(self, editor_id: str, sections: Iterable[str]) -> None:
        self.editor_id = editor_id
        self.my_sections: List[str] = sorted(sections)
        self.local: Dict[str, str] = {}
        self.unsaved_edits = 0

    # -- editing -----------------------------------------------------------
    def append_line(self, section: str, line: str) -> None:
        if section not in self.local:
            raise DocumentError(
                f"editor {self.editor_id} has no local copy of {section!r}"
            )
        text = self.local[section]
        self.local[section] = f"{text}\n{line}" if text else line
        self.unsaved_edits += 1

    def read(self, section: str) -> str:
        if section not in self.local:
            raise DocumentError(
                f"editor {self.editor_id} has no local copy of {section!r}"
            )
        return self.local[section]

    def lines(self, section: str) -> List[str]:
        return [l for l in self.read(section).splitlines() if l.strip()]

    # -- Flecc view interface ------------------------------------------------
    def properties(self) -> PropertySet:
        return sections_property(self.my_sections)

    def mark_saved(self) -> None:
        self.unsaved_edits = 0


def extract_from_editor(editor: EditorView, props: PropertySet) -> ObjectImage:
    img = ObjectImage()
    img.cells.update(editor.local)
    return img


def merge_into_editor(
    editor: EditorView, image: ObjectImage, props: PropertySet
) -> None:
    for name in image.keys():
        editor.local[name] = image.get(name)


def attach_editor(
    system: FleccSystem,
    editor: EditorView,
    mode: Mode | str = Mode.WEAK,
    triggers: Optional[TriggerSet] = None,
    trigger_poll_period: float = 50.0,
) -> CacheManager:
    """Wire an editor into a Flecc system (one call, like Fig 3)."""
    return system.add_view(
        editor.editor_id,
        editor,
        editor.properties(),
        extract_from_editor,
        merge_into_editor,
        mode=mode,
        triggers=triggers,
        trigger_poll_period=trigger_poll_period,
    )
