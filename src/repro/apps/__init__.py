"""Case-study applications built on the public repro API."""
