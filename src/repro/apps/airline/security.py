"""Encryptor/decryptor components (paper §5.1).

"The privacy of a transaction is ensured by deploying encryptor/
decryptor pairs around insecure links."

The cipher is a toy (keyed byte rotation) — what matters for the
reproduction is the *component shape*: a stateless transformer the PSF
planner can inject onto a node, with counters experiments can assert
on.  The pair is self-inverse under the same key, and tampering is
detectable through a checksum.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.errors import ReproError


class CipherError(ReproError):
    """Decryption failed (wrong key or corrupted payload)."""


def _key_stream(key: str, n: int) -> bytes:
    """Deterministic keystream: iterated SHA-256 blocks of the key."""
    out = bytearray()
    block = key.encode("utf-8")
    while len(out) < n:
        block = hashlib.sha256(block).digest()
        out.extend(block)
    return bytes(out[:n])


class Encryptor:
    """Encrypts payload strings traversing an insecure link."""

    def __init__(self, key: str = "psf-default-key") -> None:
        self.key = key
        self.processed = 0

    def encrypt(self, plaintext: str) -> str:
        data = plaintext.encode("utf-8")
        digest = hashlib.sha256(data).hexdigest()[:8]
        stream = _key_stream(self.key, len(data))
        ciphered = bytes(b ^ s for b, s in zip(data, stream))
        self.processed += 1
        return f"{digest}:{ciphered.hex()}"


class Decryptor:
    """Inverse of :class:`Encryptor` under the same key."""

    def __init__(self, key: str = "psf-default-key") -> None:
        self.key = key
        self.processed = 0

    def decrypt(self, ciphertext: str) -> str:
        try:
            digest, hexdata = ciphertext.split(":", 1)
            ciphered = bytes.fromhex(hexdata)
        except ValueError as exc:
            raise CipherError(f"malformed ciphertext: {exc}") from exc
        stream = _key_stream(self.key, len(ciphered))
        data = bytes(b ^ s for b, s in zip(ciphered, stream))
        if hashlib.sha256(data).hexdigest()[:8] != digest:
            raise CipherError("checksum mismatch: wrong key or tampered data")
        self.processed += 1
        return data.decode("utf-8")


def make_pair(key: str = "psf-default-key") -> Tuple[Encryptor, Decryptor]:
    return Encryptor(key), Decryptor(key)
