"""The travel agent — a replicated view of the flight database.

Mirrors the paper's Fig 3 listing: the agent owns a local working copy
of its served flights, exposes the reservation interface to clients,
and implements the extract/merge functions Flecc calls.  The
``lifecycle`` generator reproduces Fig 3's run() flow (create cache
manager, init, loop of pull/use/confirm/push, kill).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.apps.airline.flights import Flight, ReservationError, flights_property
from repro.core.cache_manager import CacheManager
from repro.core.image import ObjectImage
from repro.core.modes import Mode
from repro.core.property_set import PropertySet
from repro.core.system import FleccSystem
from repro.core.triggers import TriggerSet


class TravelAgent:
    """View object: a local copy of the flights it serves.

    Trigger expressions may reference ``reservations_made`` and
    ``browse_count`` via reflection (paper §4.1's view variables).
    """

    def __init__(self, agent_id: str, served_flights: Iterable[str]) -> None:
        self.agent_id = agent_id
        self.served_flights: List[str] = sorted(served_flights)
        self.local: Dict[str, Flight] = {}
        # View variables available to quality triggers.
        self.reservations_made = 0
        self.browse_count = 0

    # -- client-facing operations -----------------------------------------
    def browse(self, number: str) -> Flight:
        self.browse_count += 1
        try:
            return self.local[number]
        except KeyError:
            raise ReservationError(
                f"agent {self.agent_id} does not serve flight {number}"
            ) from None

    def confirm_tickets(self, seats: int, number: str) -> None:
        """The paper's ``ars.confirmTickets(1, flightNumber)``."""
        flight = self.browse(number)
        if flight.seats_available < seats:
            raise ReservationError(
                f"flight {number} sold out at agent {self.agent_id}"
            )
        flight.seats_available -= seats
        self.reservations_made += seats

    def seats_available(self, number: str) -> int:
        return self.browse(number).seats_available

    # -- Flecc view interface (Fig 3 lines 41-44) ------------------------------
    def merge_into_view(self, image: ObjectImage, props: PropertySet) -> None:
        for number in image.keys():
            self.local[number] = Flight.from_cell(image.get(number))

    def extract_from_view(self, props: PropertySet) -> ObjectImage:
        img = ObjectImage()
        for number, flight in self.local.items():
            img.cells[number] = flight.to_cell()
        return img

    def properties(self) -> PropertySet:
        return flights_property(self.served_flights)


# Module-level adapters with the CacheManager's expected signatures.
def extract_from_agent(agent: TravelAgent, props: PropertySet) -> ObjectImage:
    return agent.extract_from_view(props)


def merge_into_agent(
    agent: TravelAgent, image: ObjectImage, props: PropertySet
) -> None:
    agent.merge_into_view(image, props)


def attach_cache_manager(
    system: FleccSystem,
    agent: TravelAgent,
    mode: Mode | str = Mode.WEAK,
    triggers: Optional[TriggerSet] = None,
    trigger_poll_period: float = 100.0,
) -> CacheManager:
    """Create the agent's cache manager inside a FleccSystem."""
    return system.add_view(
        agent.agent_id,
        agent,
        agent.properties(),
        extract_from_agent,
        merge_into_agent,
        mode=mode,
        triggers=triggers,
        trigger_poll_period=trigger_poll_period,
    )


def lifecycle(
    cm: CacheManager,
    agent: TravelAgent,
    operations: Iterable[tuple],
    think_time: float = 1.0,
):
    """Fig 3's run() as a transport-agnostic view script.

    ``operations`` is a sequence of ``("reserve", flight, seats)`` /
    ``("browse", flight)`` / ``("set_mode", mode)`` / ``("pull",)`` /
    ``("push",)`` steps.  Each reserve does pull -> use -> push like the
    paper's loop; the pull/push steps exist for trigger experiments that
    sync explicitly.
    """
    yield cm.start()
    yield cm.init_image()
    for op in operations:
        kind = op[0]
        if kind == "reserve":
            _, number, seats = op
            yield cm.pull_image()
            yield cm.start_use_image()
            agent.confirm_tickets(seats, number)
            if think_time:
                yield ("sleep", think_time)
            cm.end_use_image()
            yield cm.push_image()
        elif kind == "browse":
            _, number = op
            yield cm.start_use_image()
            agent.browse(number)
            cm.end_use_image()
        elif kind == "set_mode":
            yield cm.set_mode(op[1])
        elif kind == "pull":
            yield cm.pull_image()
        elif kind == "push":
            yield cm.push_image()
        elif kind == "sleep":
            yield ("sleep", op[1])
        else:
            raise ValueError(f"unknown operation {op!r}")
    yield cm.kill_image()
    return agent.reservations_made
