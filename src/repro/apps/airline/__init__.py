"""The airline reservation system (paper §5.1).

"The main components are reservation clients of different capabilities
(viewers and buyers), a main flight database that contains all
information about existing flights, and travel agents that can be
replicated as necessary to assist the reservation clients when browsing
the database or buying tickets."

- :mod:`repro.apps.airline.flights` — the flight database (original
  component) and its Flecc extract/merge functions.
- :mod:`repro.apps.airline.travel_agent` — the travel-agent view and
  its Fig 3-style lifecycle.
- :mod:`repro.apps.airline.clients` — viewer/buyer client behaviors.
- :mod:`repro.apps.airline.security` — encryptor/decryptor components.
- :mod:`repro.apps.airline.workload` — seeded workload generators for
  the Fig 4/5/6 experiments.
- :mod:`repro.apps.airline.app_spec` — the PSF declarative spec +
  deployment wiring.
"""

from repro.apps.airline.flights import (
    Flight,
    FlightDatabase,
    extract_from_database,
    flights_property,
    merge_into_database,
)
from repro.apps.airline.travel_agent import (
    TravelAgent,
    extract_from_agent,
    merge_into_agent,
)
from repro.apps.airline.clients import Buyer, Viewer
from repro.apps.airline.security import Decryptor, Encryptor
from repro.apps.airline.workload import (
    generate_flight_database,
    make_agent_groups,
)
from repro.apps.airline.app_spec import airline_spec, build_airline_system
from repro.apps.airline.service import RemoteClient, TravelAgentService

__all__ = [
    "Flight",
    "FlightDatabase",
    "extract_from_database",
    "merge_into_database",
    "flights_property",
    "TravelAgent",
    "extract_from_agent",
    "merge_into_agent",
    "Viewer",
    "Buyer",
    "Encryptor",
    "Decryptor",
    "generate_flight_database",
    "make_agent_groups",
    "airline_spec",
    "build_airline_system",
    "RemoteClient",
    "TravelAgentService",
]
