"""PSF declarative spec + Flecc wiring for the airline application.

Two entry points:

- :func:`airline_spec` — the declarative :class:`ApplicationSpec`
  (flight database + travel-agent view + codec types) that the PSF
  planner consumes.
- :func:`build_airline_system` — the coherence-layer shortcut used by
  the experiments: a FleccSystem over a LAN of travel agents, matching
  the paper's testbed ("travel agents deployed into a LAN and connected
  to a main database running in the same LAN").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.apps.airline.flights import (
    extract_cells_from_database,
    FlightDatabase,
    extract_from_database,
    merge_into_database,
    seat_conflict_resolver,
)
from repro.apps.airline.security import Decryptor, Encryptor
from repro.apps.airline.travel_agent import TravelAgent, attach_cache_manager
from repro.baselines.common import ProtocolName, make_system
from repro.core.cache_manager import CacheManager
from repro.core.messages import TraceLog
from repro.core.modes import Mode
from repro.core.sharding import Partitioner, ShardedFleccSystem
from repro.core.system import FleccSystem
from repro.core.triggers import TriggerSet
from repro.net.sim_transport import SimTransport
from repro.net.topology import lan_topology
from repro.psf.component import ComponentType, Interface
from repro.psf.specification import ApplicationSpec
from repro.psf.view import ViewKind, derive_view
from repro.sim.kernel import SimKernel


def airline_spec(database_node: str = "db-server") -> ApplicationSpec:
    """The §5.1 application as a PSF declarative specification."""
    database = ComponentType.make(
        "FlightDatabase",
        implements=[Interface.make("AirlineReservation", role="primary")],
        functions={"browse", "reserve", "confirm_tickets"},
        variables={"flights"},
        sensitive=True,
        pinned_to=database_node,
    )
    travel_agent = derive_view(
        database,
        ViewKind.CUSTOMIZATION,
        name="TravelAgent",
        functions={"browse", "confirm_tickets"},
        variables={"flights"},
    )
    encryptor = ComponentType.make(
        "Encryptor", implements=[Interface.make("LinkCodec", direction="encrypt")]
    )
    decryptor = ComponentType.make(
        "Decryptor", implements=[Interface.make("LinkCodec", direction="decrypt")]
    )
    return ApplicationSpec.build(
        "airline-reservation",
        [database, travel_agent, encryptor, decryptor],
        service_interface="AirlineReservation",
        encryptor="Encryptor",
        decryptor="Decryptor",
    )


class AirlineSystem:
    """A runnable airline deployment: kernel + transport + Flecc + agents."""

    def __init__(
        self,
        kernel: Optional[SimKernel],
        transport,
        system: FleccSystem,
        database: FlightDatabase,
    ) -> None:
        self.kernel = kernel
        self.transport = transport
        self.system = system
        self.database = database
        self.agents: Dict[str, TravelAgent] = {}
        self.cache_managers: Dict[str, CacheManager] = {}

    def add_travel_agent(
        self,
        agent_id: str,
        served_flights: Iterable[str],
        mode: Mode | str = Mode.WEAK,
        triggers: Optional[TriggerSet] = None,
        trigger_poll_period: float = 100.0,
        node: Optional[str] = None,
    ) -> Tuple[TravelAgent, CacheManager]:
        agent = TravelAgent(agent_id, served_flights)
        cm = attach_cache_manager(
            self.system, agent, mode=mode, triggers=triggers,
            trigger_poll_period=trigger_poll_period,
        )
        if node is not None and getattr(self.transport, "topology", None) is not None:
            self.transport.place(cm.address, node)
        self.agents[agent_id] = agent
        self.cache_managers[agent_id] = cm
        return agent, cm

    @property
    def directory(self):
        return self.system.directory

    @property
    def stats(self):
        return self.transport.stats


def build_airline_system(
    database: FlightDatabase,
    n_agent_hosts: int = 0,
    protocol: ProtocolName | str = ProtocolName.FLECC,
    lan_latency: float = 0.5,
    use_conflict_resolver: bool = True,
    trace: Optional[TraceLog] = None,
    strict_wire: bool = True,
    delta: Optional[bool] = None,
    codec: Optional[object] = None,
    n_shards: int = 1,
    partitioner: Optional[Partitioner] = None,
    transport: object = "sim",
    durability: Optional[object] = None,
) -> AirlineSystem:
    """The paper's LAN testbed as a simulated system.

    A star LAN hosts the database (``db-server``) and, optionally,
    ``agent-<i>`` hosts; the Flecc directory lives with the database.
    With ``n_shards > 1`` (or an explicit ``partitioner``) the Flecc
    primary copy is partitioned across a sharded directory plane —
    every shard still lives on ``db-server``, matching the paper's
    single-database deployment while parallelizing conflict rounds.

    ``transport`` picks the backend (a :func:`resolve_transport` spec
    or instance).  The default ``"sim"`` builds the simulated LAN; with
    ``"tcp"`` / ``"aio"`` the same system runs over real sockets —
    there is no topology to place endpoints on (everything is
    localhost), and ``kernel`` on the returned system is ``None``.
    """
    from repro.net.transport import resolve_transport

    if transport == "sim":
        kernel = SimKernel()
        hosts = ["db-server"] + [f"agent-{i}" for i in range(n_agent_hosts)]
        topology = lan_topology(hosts, latency=lan_latency)
        transport = SimTransport(
            kernel, topology=topology, strict_wire=strict_wire, codec=codec
        )
    elif isinstance(transport, str):
        transport = resolve_transport(transport, codec=codec)
        kernel = getattr(transport, "kernel", None)
    else:
        transport = resolve_transport(transport)
        if codec is not None:
            transport.set_codec(codec)
        kernel = getattr(transport, "kernel", None)
    sharded = n_shards > 1 or partitioner is not None
    if sharded and ProtocolName(protocol) is not ProtocolName.FLECC:
        raise ValueError(
            "sharded directory plane is a Flecc feature; baseline "
            f"protocol {protocol!r} cannot be sharded"
        )
    if sharded:
        system: FleccSystem | ShardedFleccSystem = ShardedFleccSystem(
            transport,
            database,
            extract_from_database,
            merge_into_database,
            n_shards=n_shards,
            partitioner=partitioner,
            conflict_resolver=(
                seat_conflict_resolver if use_conflict_resolver else None
            ),
            trace=trace,
            delta=delta,
            extract_cells=extract_cells_from_database,
            durability=durability,
        )
        if getattr(transport, "topology", None) is not None:
            for address in system.plane.addresses:
                transport.place(address, "db-server")
    else:
        system = make_system(
            protocol,
            transport,
            database,
            extract_from_database,
            merge_into_database,
            conflict_resolver=(
                seat_conflict_resolver if use_conflict_resolver else None
            ),
            trace=trace,
            delta=delta,
            extract_cells=extract_cells_from_database,
            durability=durability,
        )
        if getattr(transport, "topology", None) is not None:
            transport.place(system.directory.address, "db-server")
    return AirlineSystem(kernel, transport, system, database)
