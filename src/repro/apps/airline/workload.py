"""Seeded workload generators for the airline experiments.

The Fig 4 experiment: "100 travel agent components deployed into a LAN
... Each travel agent defines a property ('Flights') that contains a
list of all the served flights.  The number of travel agents that serve
similar flights is initially 10, and increases in increments of 10 up
to 100."

:func:`make_agent_groups` builds that structure: ``n_conflicting``
agents all serving one shared flight block, the rest serving disjoint
per-agent blocks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.airline.flights import Flight, FlightDatabase
from repro.sim.rng import stream_for

_CITIES = [
    "NYC", "BOS", "SFO", "LAX", "ORD", "SEA", "MIA", "DEN", "AUS", "IAD",
]


def generate_flight_database(
    n_flights: int,
    seed: int = 0,
    capacity_range: Tuple[int, int] = (100, 300),
) -> FlightDatabase:
    """A database of ``n_flights`` synthetic flights (deterministic)."""
    rng = stream_for(seed, "flights")
    db = FlightDatabase()
    for i in range(n_flights):
        origin, dest = rng.choice(len(_CITIES), size=2, replace=False)
        capacity = int(rng.integers(capacity_range[0], capacity_range[1] + 1))
        db.add_flight(
            Flight(
                number=f"FL{i:04d}",
                origin=_CITIES[origin],
                destination=_CITIES[dest],
                capacity=capacity,
                seats_available=capacity,
                price=float(np.round(50 + 450 * rng.random(), 2)),
            )
        )
    return db


def make_agent_groups(
    n_agents: int,
    n_conflicting: int,
    flights_per_agent: int = 5,
) -> List[List[str]]:
    """Served-flight lists: first ``n_conflicting`` agents share one
    block; the others get disjoint blocks (no overlap anywhere else).

    Flight numbers follow :func:`generate_flight_database` naming, so a
    database of ``flights_for_groups(...)`` size covers them all.
    """
    if not 0 <= n_conflicting <= n_agents:
        raise ValueError(
            f"n_conflicting={n_conflicting} out of range [0, {n_agents}]"
        )
    shared_block = [f"FL{i:04d}" for i in range(flights_per_agent)]
    groups: List[List[str]] = []
    next_flight = flights_per_agent
    for i in range(n_agents):
        if i < n_conflicting:
            groups.append(list(shared_block))
        else:
            groups.append(
                [f"FL{j:04d}" for j in range(next_flight, next_flight + flights_per_agent)]
            )
            next_flight += flights_per_agent
    return groups


def flights_needed(n_agents: int, n_conflicting: int, flights_per_agent: int = 5) -> int:
    """Database size that covers every group from make_agent_groups."""
    disjoint = n_agents - n_conflicting
    return flights_per_agent * (1 + disjoint)


def reserve_operations(
    served_flights: Sequence[str],
    n_ops: int,
    seed: int = 0,
    agent_index: int = 0,
    seats: int = 1,
) -> List[tuple]:
    """A reserve-only op sequence over the agent's served flights."""
    rng = stream_for(seed, "ops", agent_index)
    ops: List[tuple] = []
    for _ in range(n_ops):
        number = served_flights[int(rng.integers(0, len(served_flights)))]
        ops.append(("reserve", number, seats))
    return ops


def zipf_reserve_operations(
    served_flights: Sequence[str],
    n_ops: int,
    skew: float = 1.2,
    seed: int = 0,
    agent_index: int = 0,
) -> List[tuple]:
    """Reserve ops with Zipf-distributed flight popularity.

    Real reservation traffic concentrates on a few popular flights;
    ``skew`` > 1 controls how sharply (rank-r flight drawn with weight
    r^-skew).  Deterministic per (seed, agent_index).
    """
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    rng = stream_for(seed, "zipf", agent_index)
    ranks = np.arange(1, len(served_flights) + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    ops: List[tuple] = []
    for _ in range(n_ops):
        idx = int(rng.choice(len(served_flights), p=weights))
        ops.append(("reserve", served_flights[idx], 1))
    return ops


def browse_buy_mix(
    served_flights: Sequence[str],
    n_ops: int,
    buy_fraction: float = 0.2,
    seed: int = 0,
    agent_index: int = 0,
) -> List[tuple]:
    """A browse-heavy mix with occasional buys (intro's viewer/buyer mix)."""
    rng = stream_for(seed, "mix", agent_index)
    ops: List[tuple] = []
    for _ in range(n_ops):
        number = served_flights[int(rng.integers(0, len(served_flights)))]
        if rng.random() < buy_fraction:
            ops.append(("reserve", number, 1))
        else:
            ops.append(("browse", number))
    return ops
