"""Networked client access to travel agents (paper Fig 1).

In the paper's deployment picture, reservation clients reach their
domain's travel agent *over the network*.  This module adds that last
hop: a :class:`TravelAgentService` binds a transport endpoint next to a
travel agent and serves BROWSE / BUY / SWITCH_MODE requests, running
the agent's cache-manager protocol underneath; a :class:`RemoteClient`
issues those requests from anywhere on the transport.

The request handlers are fully asynchronous (completion chains), so the
service works identically on the simulated and TCP transports.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.apps.airline.flights import ReservationError
from repro.apps.airline.travel_agent import TravelAgent
from repro.core.cache_manager import CacheManager
from repro.core.modes import Mode
from repro.errors import ProtocolError
from repro.net.message import Message
from repro.net.transport import Completion, Transport

BROWSE = "SVC_BROWSE"
BUY = "SVC_BUY"
SWITCH_MODE = "SVC_SWITCH_MODE"
SVC_OK = "SVC_OK"
SVC_ERROR = "SVC_ERROR"


class TravelAgentService:
    """Serves client requests against one travel agent + cache manager."""

    def __init__(
        self,
        transport: Transport,
        agent: TravelAgent,
        cache_manager: CacheManager,
        address: Optional[str] = None,
    ) -> None:
        self.transport = transport
        self.agent = agent
        self.cm = cache_manager
        self.address = address or f"svc:{agent.agent_id}"
        self.requests_served = 0
        self._lock = threading.RLock()
        self.endpoint = transport.bind(self.address, self._on_message)

    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        with self._lock:
            handler = {
                BROWSE: self._h_browse,
                BUY: self._h_buy,
                SWITCH_MODE: self._h_switch_mode,
            }.get(msg.msg_type)
            if handler is None:
                self.endpoint.send(
                    msg.reply(SVC_ERROR, {"error": f"unknown request {msg.msg_type}"})
                )
                return
            self.requests_served += 1
            handler(msg)

    def _finish(self, msg: Message, payload: Dict[str, Any]) -> None:
        self.endpoint.send(msg.reply(SVC_OK, payload))

    def _fail(self, msg: Message, error: str) -> None:
        self.endpoint.send(msg.reply(SVC_ERROR, {"error": error}))

    # -- handlers ------------------------------------------------------------
    def _h_browse(self, msg: Message) -> None:
        """Browse tolerates staleness: use the local copy directly."""
        flight_number = msg.payload.get("flight")

        def in_use(use: Completion) -> None:
            try:
                use.value
                flight = self.agent.browse(flight_number)
                payload = {"flight": flight.to_cell()}
            except (ReservationError, ProtocolError) as exc:
                self.cm.end_use_image()
                self._fail(msg, str(exc))
                return
            self.cm.end_use_image()
            self._finish(msg, payload)

        self.cm.start_use_image().then(in_use)

    def _h_buy(self, msg: Message) -> None:
        """Buy needs fresh data; in strong mode start_use acquires it,
        in weak mode we pull first (the client chose its consistency)."""
        flight_number = msg.payload.get("flight")
        seats = int(msg.payload.get("seats", 1))

        def after_sync(_sync: Optional[Completion]) -> None:
            def in_use(use: Completion) -> None:
                try:
                    use.value
                    self.agent.confirm_tickets(seats, flight_number)
                    left = self.agent.seats_available(flight_number)
                except (ReservationError, ProtocolError) as exc:
                    self.cm.end_use_image()
                    self._fail(msg, str(exc))
                    return
                self.cm.end_use_image()

                def after_push(push: Completion) -> None:
                    try:
                        push.value
                    except BaseException as exc:
                        self._fail(msg, str(exc))
                        return
                    self._finish(
                        msg, {"flight": flight_number, "seats": seats,
                              "seats_left": left}
                    )

                self.cm.push_image().then(after_push)

            self.cm.start_use_image().then(in_use)

        if self.cm.mode is Mode.WEAK:
            self.cm.pull_image().then(after_sync)
        else:
            after_sync(None)

    def _h_switch_mode(self, msg: Message) -> None:
        mode = msg.payload.get("mode", "weak")

        def done(comp: Completion) -> None:
            try:
                comp.value
            except BaseException as exc:
                self._fail(msg, str(exc))
                return
            self._finish(msg, {"mode": self.cm.mode.value})

        self.cm.set_mode(mode).then(done)

    def close(self) -> None:
        self.endpoint.close()


class RemoteClient:
    """A reservation client reaching a service endpoint over the network."""

    def __init__(
        self, transport: Transport, client_id: str, service_address: str
    ) -> None:
        self.transport = transport
        self.client_id = client_id
        self.service_address = service_address
        self.address = f"client:{client_id}"
        self._pending: Dict[int, Completion] = {}
        self._lock = threading.RLock()
        self.endpoint = transport.bind(self.address, self._on_message)

    def _on_message(self, msg: Message) -> None:
        with self._lock:
            comp = self._pending.pop(msg.reply_to, None)
        if comp is None:
            return
        if msg.msg_type == SVC_ERROR:
            comp.fail(ReservationError(msg.payload.get("error", "service error")))
        else:
            comp.resolve(msg.payload)

    def _request(self, msg_type: str, payload: Dict[str, Any]) -> Completion:
        msg = Message(msg_type, self.address, self.service_address, payload)
        comp = self.transport.completion(f"{self.client_id}.{msg_type}")
        with self._lock:
            self._pending[msg.msg_id] = comp
        self.endpoint.send(msg)
        return comp

    # -- client API (each returns a Completion) ---------------------------
    def browse(self, flight: str) -> Completion:
        return self._request(BROWSE, {"flight": flight})

    def buy(self, flight: str, seats: int = 1) -> Completion:
        return self._request(BUY, {"flight": flight, "seats": seats})

    def switch_mode(self, mode: Mode | str) -> Completion:
        mode = Mode.parse(mode)
        return self._request(SWITCH_MODE, {"mode": mode.value})

    def set_operation(self, operation: "Operation | str") -> Completion:
        """Switch between browsing and buying (paper §1): the QoS
        operation type implies the consistency mode the travel agent
        should run under (browse -> weak, buy -> strong)."""
        from repro.psf.qos import Operation

        op = Operation(operation)
        return self.switch_mode(op.implied_mode)

    def close(self) -> None:
        self.endpoint.close()
