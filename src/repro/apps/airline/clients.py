"""Reservation clients: viewers and buyers (paper §5.1).

"In general, users accept stale data during browsing (weak
consistency), but require most current data when buying tickets (strong
consistency)."  A :class:`Viewer` drives its travel agent in weak mode;
a :class:`Buyer` in strong mode; ``Viewer.become_buyer`` performs the
run-time switch the paper calls out ("a viewer can become at any point
a buyer").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.apps.airline.flights import ReservationError
from repro.apps.airline.travel_agent import TravelAgent
from repro.core.cache_manager import CacheManager
from repro.core.modes import Mode


@dataclass
class ClientLog:
    """What a client observed, for assertions and experiment series."""

    browses: List[Tuple[str, int]] = field(default_factory=list)  # (flight, seats seen)
    purchases: List[Tuple[str, int]] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)


class Viewer:
    """A browsing client: tolerates stale data (weak consistency)."""

    def __init__(self, client_id: str, agent: TravelAgent, cm: CacheManager) -> None:
        self.client_id = client_id
        self.agent = agent
        self.cm = cm
        self.log = ClientLog()

    def session(self, flights: Iterable[str], think_time: float = 1.0):
        """Browse a sequence of flights through the agent (view script)."""
        if self.cm.mode is not Mode.WEAK:
            yield self.cm.set_mode(Mode.WEAK)
        for number in flights:
            yield self.cm.start_use_image()
            try:
                flight = self.agent.browse(number)
                self.log.browses.append((number, flight.seats_available))
            except ReservationError as exc:
                self.log.failures.append(str(exc))
            finally:
                self.cm.end_use_image()
            if think_time:
                yield ("sleep", think_time)
        return self.log

    def become_buyer(self) -> "Buyer":
        """Upgrade to buying capability (the §1 mode transition)."""
        return Buyer(self.client_id, self.agent, self.cm, log=self.log)


class Buyer:
    """A purchasing client: needs fresh data (strong consistency)."""

    def __init__(
        self,
        client_id: str,
        agent: TravelAgent,
        cm: CacheManager,
        log: Optional[ClientLog] = None,
    ) -> None:
        self.client_id = client_id
        self.agent = agent
        self.cm = cm
        self.log = log or ClientLog()

    def session(self, purchases: Iterable[Tuple[str, int]], think_time: float = 1.0):
        """Buy (flight, seats) pairs under one-copy semantics (view script)."""
        if self.cm.mode is not Mode.STRONG:
            yield self.cm.set_mode(Mode.STRONG)
        for number, seats in purchases:
            yield self.cm.start_use_image()
            try:
                self.agent.confirm_tickets(seats, number)
                self.log.purchases.append((number, seats))
            except ReservationError as exc:
                self.log.failures.append(str(exc))
            finally:
                self.cm.end_use_image()
            if think_time:
                yield ("sleep", think_time)
        return self.log
