"""The flight database — the airline app's *original component*.

Each flight is one Flecc data cell (granularity: per flight), so two
travel agents conflict exactly when their served flight sets overlap —
the sharing structure the paper's Fig 4 experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.image import ObjectImage
from repro.core.property import Property
from repro.core.property_set import PropertySet
from repro.errors import ReproError


class ReservationError(ReproError):
    """A reservation could not be satisfied (e.g. sold out)."""


@dataclass
class Flight:
    """One flight record (one Flecc cell)."""

    number: str
    origin: str
    destination: str
    capacity: int
    seats_available: int
    price: float

    def to_cell(self) -> dict:
        """Wire representation (a plain dict cell value)."""
        return {
            "number": self.number,
            "origin": self.origin,
            "destination": self.destination,
            "capacity": self.capacity,
            "seats_available": self.seats_available,
            "price": self.price,
        }

    @classmethod
    def from_cell(cls, d: dict) -> "Flight":
        return cls(
            number=d["number"],
            origin=d["origin"],
            destination=d["destination"],
            capacity=d["capacity"],
            seats_available=d["seats_available"],
            price=d["price"],
        )


class FlightDatabase:
    """The primary copy of all flight state."""

    def __init__(self, flights: Iterable[Flight] = ()) -> None:
        self.flights: Dict[str, Flight] = {}
        for f in flights:
            self.add_flight(f)

    def add_flight(self, flight: Flight) -> None:
        if flight.number in self.flights:
            raise ReservationError(f"duplicate flight {flight.number}")
        if flight.seats_available > flight.capacity or flight.seats_available < 0:
            raise ReservationError(
                f"flight {flight.number}: seats {flight.seats_available} "
                f"outside [0, {flight.capacity}]"
            )
        self.flights[flight.number] = flight

    # -- query/update API (used directly by locally-served clients) ------
    def browse(
        self, origin: Optional[str] = None, destination: Optional[str] = None
    ) -> List[Flight]:
        out = [
            f for f in self.flights.values()
            if (origin is None or f.origin == origin)
            and (destination is None or f.destination == destination)
        ]
        return sorted(out, key=lambda f: f.number)

    def seats_available(self, number: str) -> int:
        return self._get(number).seats_available

    def reserve(self, number: str, seats: int = 1) -> None:
        """Atomically take seats; raises when not enough remain."""
        f = self._get(number)
        if seats < 1:
            raise ReservationError(f"invalid seat count {seats}")
        if f.seats_available < seats:
            raise ReservationError(
                f"flight {number} has {f.seats_available} seats, wanted {seats}"
            )
        f.seats_available -= seats

    def release(self, number: str, seats: int = 1) -> None:
        f = self._get(number)
        if f.seats_available + seats > f.capacity:
            raise ReservationError(f"release overflows capacity on {number}")
        f.seats_available += seats

    def total_seats_available(self) -> int:
        return sum(f.seats_available for f in self.flights.values())

    def _get(self, number: str) -> Flight:
        try:
            return self.flights[number]
        except KeyError:
            raise ReservationError(f"unknown flight {number}") from None


# ---------------------------------------------------------------------------
# Flecc integration (the functions of paper Fig 3, lines 34-44)
# ---------------------------------------------------------------------------

def flights_property(flight_numbers: Iterable[str]) -> PropertySet:
    """The "Flights" data property from the Fig 4 experiment: the set of
    flights a travel agent serves."""
    return PropertySet([Property("Flights", set(flight_numbers))])


def flight_index_property(lo: int, hi: int) -> PropertySet:
    """An *interval* flight property: serve flights ``FL{lo}..FL{hi}``.

    Exercises the paper's other domain kind (``D_p = [d_min, d_max]``,
    Definition 3): two agents conflict iff their index ranges overlap.
    The extract/merge functions interpret the interval against the
    numeric part of the flight number.
    """
    return PropertySet([Property("FlightIndex", (lo, hi))])


def _flight_index(number: str) -> Optional[int]:
    """Numeric part of an FLxxxx flight number, or None."""
    if number.startswith("FL") and number[2:].isdigit():
        return int(number[2:])
    return None


def _served_numbers(db_or_all: Iterable[str], props: PropertySet) -> List[str]:
    by_name = props.get("Flights")
    by_index = props.get("FlightIndex")
    if by_name is None and by_index is None:
        return sorted(db_or_all)
    out = []
    for n in db_or_all:
        if by_name is not None and by_name.domain.contains(n):
            out.append(n)
            continue
        if by_index is not None:
            idx = _flight_index(n)
            if idx is not None and by_index.domain.contains(idx):
                out.append(n)
    return sorted(out)


def extract_from_database(db: FlightDatabase, props: PropertySet) -> ObjectImage:
    """``extractFromObject``: snapshot the served flights as cells."""
    img = ObjectImage()
    for number in _served_numbers(db.flights.keys(), props):
        img.cells[number] = db.flights[number].to_cell()
    return img


def extract_cells_from_database(
    db: FlightDatabase, props: PropertySet, keys: Iterable[str]
) -> ObjectImage:
    """Partial extract for delta serves: only ``keys``, no full scan."""
    img = ObjectImage()
    for number in _served_numbers(
        (k for k in keys if k in db.flights), props
    ):
        img.cells[number] = db.flights[number].to_cell()
    return img


def merge_into_database(
    db: FlightDatabase, image: ObjectImage, props: PropertySet
) -> None:
    """``mergeIntoObject``: apply pushed flight cells to the primary copy."""
    for number in image.keys():
        db.flights[number] = Flight.from_cell(image.get(number))


def seat_conflict_resolver(key: str, current: dict, pushed: dict) -> dict:
    """Domain conflict rule for write-write races on a flight cell.

    A stale push (the pusher had not seen the latest committed update)
    must never *increase* seats_available — that would resurrect seats
    another agent already sold.  Taking the minimum keeps the seat count
    monotone non-increasing under reservation workloads.  Note this is
    state-based resolution (Coda/Bayou style, paper §4.1): perfectly
    simultaneous equal decrements still collapse to one — eliminating
    that requires STRONG mode, which is the paper's point.
    """
    if current["seats_available"] <= pushed["seats_available"]:
        merged = dict(current)
    else:
        merged = dict(pushed)
    merged["seats_available"] = min(
        current["seats_available"], pushed["seats_available"]
    )
    return merged
