"""Command-line entry: list and run the paper's experiments.

Usage::

    python -m repro                    # list experiments
    python -m repro fig4               # run one (fuzzy name match)
    python -m repro all                # run everything, save results/
"""

from __future__ import annotations

import sys

from repro.experiments import runner


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        print("available experiments:")
        for name in runner.EXPERIMENTS:
            print(f"  {name}")
        return 0
    target = argv[0].lower()
    if target == "all":
        # Forward any extra flags (--jobs/--out/--seeds) to the runner CLI.
        runner.main(argv[1:])
        return 0
    matches = [n for n in runner.EXPERIMENTS if target in n]
    if not matches:
        print(f"no experiment matches {target!r}; try one of:")
        for name in runner.EXPERIMENTS:
            print(f"  {name}")
        return 1
    for name in matches:
        print(f"== {name} ==")
        result = runner.EXPERIMENTS[name]()
        table = getattr(result, "table", None)
        if callable(table):
            print(table())
        elif hasattr(result, "phase_stats"):
            print(result.phase_stats())
        else:
            print(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
