"""repro — reproduction of *Flecc: A Flexible Cache Coherence Protocol
for Dynamic Component-Based Systems* (Ivan & Karamcheti, IPDPS 2004).

Subpackages:

- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.net` — messages, codecs, transports (sim + TCP), topology.
- :mod:`repro.core` — the Flecc protocol (the paper's contribution).
- :mod:`repro.baselines` — time-sharing and multicast comparators.
- :mod:`repro.psf` — the Partitionable Services Framework substrate.
- :mod:`repro.apps.airline` — the §5.1 airline reservation case study.
- :mod:`repro.experiments` — harnesses regenerating every paper figure.

See README.md for a quickstart and DESIGN.md for the full map from
paper sections to modules.
"""

__version__ = "1.0.0"
__paper__ = (
    "Anca Ivan and Vijay Karamcheti. Flecc: A Flexible Cache Coherence "
    "Protocol for Dynamic Component-Based Systems. IPDPS 2004."
)
