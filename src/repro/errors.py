"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class ProcessKilled(SimulationError):
    """Raised inside a simulated process when it is forcibly terminated."""


class TransportError(ReproError):
    """Errors raised by the network substrate (sim or TCP transports)."""


class CodecError(TransportError):
    """A message could not be encoded or decoded."""


class ProtocolError(ReproError):
    """A Flecc protocol invariant was violated or a message was malformed."""


class TriggerSyntaxError(ReproError):
    """A quality-trigger expression failed to lex or parse."""


class TriggerEvalError(ReproError):
    """A quality-trigger expression failed to evaluate."""


class PropertyError(ReproError):
    """An invalid data property or property set was constructed."""


class PlanningError(ReproError):
    """The PSF planner could not satisfy the requested deployment."""


class DeploymentError(ReproError):
    """The PSF deployer failed to instantiate a plan."""


class ViewError(ReproError):
    """An invalid view definition or view operation."""
