"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event engine in the
spirit of SimPy, used as the substrate under the simulated network
transport.  The paper's prototype ran on a real LAN; the simulation
kernel lets the same protocol code run deterministically at laptop scale
(see DESIGN.md, section 2).

Public surface:

- :class:`~repro.sim.kernel.SimKernel` — the event loop / clock.
- :class:`~repro.sim.process.Process` — a running generator process.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout` —
  awaitable occurrences (``yield`` them from process generators).
- :class:`~repro.sim.resources.Mutex`,
  :class:`~repro.sim.resources.Store` — synchronization primitives.
- :func:`~repro.sim.rng.make_rng` — seeded random streams.
- :class:`~repro.sim.faults.FaultScenario`,
  :class:`~repro.sim.faults.FaultInjector` — declarative, seedable
  fault injection compiled into transport fault policies + sim events.
"""

from repro.sim.events import Event, Timeout
from repro.sim.faults import CrashPlan, FaultInjector, FaultScenario, Partition
from repro.sim.kernel import SimKernel
from repro.sim.process import Process
from repro.sim.resources import Mutex, Store
from repro.sim.rng import make_rng, spawn_rng

__all__ = [
    "Event",
    "Timeout",
    "SimKernel",
    "Process",
    "Mutex",
    "Store",
    "make_rng",
    "spawn_rng",
    "CrashPlan",
    "FaultInjector",
    "FaultScenario",
    "Partition",
]
