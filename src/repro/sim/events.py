"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on by
``yield``-ing it.  Once triggered it carries a value (or an exception)
and wakes every waiter.  :class:`Timeout` is an event pre-scheduled to
trigger after a fixed delay.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import SimKernel

_event_ids = itertools.count()


class Event:
    """A one-shot occurrence that simulated processes can wait on.

    Events move through three states: *pending* (created), *triggered*
    (scheduled to fire at the current instant), and *processed* (all
    callbacks run).  A process waits by ``yield``-ing the event from its
    generator; the kernel resumes the process with the event's value, or
    throws the event's exception into it.
    """

    def __init__(self, kernel: "SimKernel", name: str = "") -> None:
        self.kernel = kernel
        self.eid = next(_event_ids)
        self.name = name or f"event-{self.eid}"
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        # Callbacks receive the event itself.
        self.callbacks: List[Callable[["Event"], None]] = []
        # Optional hook invoked when the (sole) waiting process is
        # killed before the event fires — lets resources like Mutex
        # remove the dead waiter from their queues.
        self.cancel_hook: Optional[Callable[[], None]] = None

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have all run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event triggered with a value, not an exception."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event carried; raises if it failed."""
        if not self._triggered:
            raise SimulationError(f"{self.name}: value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value`` at the current sim time."""
        if self._triggered:
            raise SimulationError(f"{self.name} already triggered")
        self._triggered = True
        self._value = value
        self.kernel._enqueue_triggered(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes have ``exc`` thrown into their generator.
        """
        if self._triggered:
            raise SimulationError(f"{self.name} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"{self.name}: fail() needs an exception")
        self._triggered = True
        self._exception = exc
        self.kernel._enqueue_triggered(self)
        return self

    def _process(self) -> None:
        """Run all callbacks (kernel-internal)."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` once the event is processed.

        If the event already fired, the callback runs immediately — this
        keeps "wait on an already-done event" race-free.
        """
        if self._processed:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "triggered" if self._triggered else "pending"
        )
        return f"<Event {self.name} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    def __init__(self, kernel: "SimKernel", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(kernel, name=f"timeout({delay})")
        self.delay = delay
        self._value = value
        self._triggered = True  # pre-triggered; fires when its time comes
        kernel._schedule_at(kernel.now + delay, self)


class AnyOf(Event):
    """Fires when *any* of the given events has fired.

    The value is the first event that completed.  Failures propagate.
    """

    def __init__(self, kernel: "SimKernel", events: List[Event]) -> None:
        super().__init__(kernel, name="any_of")
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        self._done = False
        for ev in events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._done:
            return
        self._done = True
        if ev.ok:
            self.succeed(ev)
        else:
            assert ev.exception is not None
            self.fail(ev.exception)


class AllOf(Event):
    """Fires when *all* of the given events have fired.

    The value is the list of child values in construction order.  The
    first failure fails the composite immediately.
    """

    def __init__(self, kernel: "SimKernel", events: List[Event]) -> None:
        super().__init__(kernel, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        self._failed = False
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._failed or self.triggered:
            return
        if not ev.ok:
            self._failed = True
            assert ev.exception is not None
            self.fail(ev.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])
