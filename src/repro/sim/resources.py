"""Synchronization primitives for simulated processes.

- :class:`Mutex` — FIFO mutual exclusion (used for the paper's
  ``startUseImage``/``endUseImage`` critical sections, Fig 2 steps 6-7).
- :class:`Store` — an unbounded FIFO message store (the mailbox under
  the simulated transport endpoints).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import SimKernel


class Mutex:
    """FIFO mutual-exclusion lock for simulated processes.

    Usage from a process generator::

        yield mutex.acquire()
        try:
            ...critical section...
        finally:
            mutex.release()
    """

    def __init__(self, kernel: "SimKernel", name: str = "mutex") -> None:
        self.kernel = kernel
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for the lock."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once the caller holds the lock."""
        ev = self.kernel.event(name=f"{self.name}.acquire")
        if not self._locked:
            self._locked = True
            ev.succeed(self)
        else:
            self._waiters.append(ev)
            # If the waiting process dies before being granted the
            # lock, drop it from the queue (otherwise release() would
            # hand ownership to a corpse and the lock would leak).
            ev.cancel_hook = lambda: self._forget_waiter(ev)
        return ev

    def _forget_waiter(self, ev: Event) -> None:
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass  # already granted or already removed

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._locked:
            return False
        self._locked = True
        return True

    def release(self) -> None:
        """Release the lock, waking the next FIFO waiter if any."""
        if not self._locked:
            raise SimulationError(f"{self.name}: release of an unlocked mutex")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed(self)  # lock stays held, ownership transfers
        else:
            self._locked = False


class Store:
    """Unbounded FIFO store: ``put`` items, processes ``get`` them in order.

    Multiple getters are served FIFO; an item put while getters wait goes
    to the oldest waiter immediately.
    """

    def __init__(self, kernel: "SimKernel", name: str = "store") -> None:
        self.kernel = kernel
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item, waking the oldest waiting getter if present."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = self.kernel.event(name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
            # A killed getter must not swallow the next put item.
            ev.cancel_hook = lambda: self._forget_getter(ev)
        return ev

    def _forget_getter(self, ev: Event) -> None:
        try:
            self._getters.remove(ev)
        except ValueError:
            pass

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None
