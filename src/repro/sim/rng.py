"""Seeded random-number streams for reproducible experiments.

All stochastic choices in the library draw from ``numpy`` Generators
created here, so a single experiment seed replays the entire run
(workload arrivals, flight choices, link jitter).  Independent
subsystems get *spawned* child streams rather than sharing one
generator, so adding draws in one subsystem never perturbs another.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create the root generator for an experiment."""
    return np.random.default_rng(seed)


def spawn_rng(parent: np.random.Generator, n: int = 1) -> List[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(n)]


def stream_for(root_seed: int, *path: str | int) -> np.random.Generator:
    """Derive a named substream deterministically from a root seed.

    ``stream_for(42, "workload", 3)`` always yields the same stream,
    regardless of what other streams were derived before it.
    """
    entropy: Iterable[int] = [root_seed] + [
        p if isinstance(p, int) else _name_to_int(p) for p in path
    ]
    return np.random.default_rng(np.random.SeedSequence(list(entropy)))


def _name_to_int(name: str) -> int:
    """Stable string -> int mapping (independent of PYTHONHASHSEED)."""
    acc = 0
    for ch in name:
        acc = (acc * 131 + ord(ch)) % (2**63)
    return acc
