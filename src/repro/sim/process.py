"""Generator-based simulated processes.

A :class:`Process` wraps a generator that ``yield``s
:class:`~repro.sim.events.Event` objects.  Each yielded event suspends
the process until the event fires; the process is then resumed with the
event's value (or the event's exception is thrown into the generator).
A process is itself an event, so processes can wait on each other.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import SimKernel

_proc_ids = itertools.count()


class Process(Event):
    """A running simulated process; also an event that fires on completion."""

    def __init__(
        self, kernel: "SimKernel", gen: Generator[Event, Any, Any], name: str = ""
    ) -> None:
        pid = next(_proc_ids)
        super().__init__(kernel, name=name or f"process-{pid}")
        self.pid = pid
        self._gen = gen
        self._waiting_on: Event | None = None
        self._killed = False
        # Bootstrap: resume the generator at the current instant.
        boot = Event(kernel, name=f"{self.name}-boot")
        boot.add_callback(self._resume)
        boot.succeed(None)

    # -- state -------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the process has finished (normally or with an error)."""
        return self.triggered

    @property
    def result(self) -> Any:
        """The generator's return value; raises its exception if it failed."""
        return self.value

    # -- control ------------------------------------------------------------
    def kill(self, reason: str = "") -> None:
        """Forcibly terminate the process.

        A :class:`ProcessKilled` is thrown into the generator so that
        ``finally`` blocks run.  If the generator swallows the kill and
        keeps yielding, that is an error.
        """
        if self.done:
            return
        self._killed = True
        exc = ProcessKilled(reason or f"{self.name} killed")
        # Let the awaited resource forget this waiter (e.g. a Mutex
        # removes it from its FIFO so ownership is never handed to a
        # dead process).
        waiting = self._waiting_on
        if waiting is not None and waiting.cancel_hook is not None and not waiting.triggered:
            waiting.cancel_hook()
        # Detach from whatever it is waiting on, then resume with the error.
        try:
            self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled:
            self.fail(exc)
            return
        except BaseException as other:  # generator raised something else
            self.fail(other)
            return
        raise SimulationError(f"{self.name} ignored kill() and kept running")

    # -- kernel callbacks -----------------------------------------------------
    def _resume(self, completed: Event) -> None:
        """Advance the generator with the completed event's outcome."""
        if self.done:
            return
        self._waiting_on = None
        try:
            if completed.ok:
                target = self._gen.send(completed.value)
            else:
                assert completed.exception is not None
                target = self._gen.throw(completed.exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"{self.name} yielded {target!r}; processes must yield Events"
            )
            try:
                self._gen.throw(err)
            except BaseException:
                pass
            self.fail(err)
            return
        if target.kernel is not self.kernel:
            self.fail(
                SimulationError(f"{self.name} yielded event from another kernel")
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)
