"""The discrete-event simulation kernel (clock + event loop).

The kernel keeps a heap of ``(time, priority, seq, event)`` entries and
processes them in order, advancing a floating-point clock.  Determinism:
ties at the same instant are broken by insertion sequence, so two runs
with the same seeds replay identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

# Priorities: URGENT events (immediate triggers) run before NORMAL events
# scheduled at the same instant, matching SimPy semantics where
# `succeed()` completions land ahead of same-time timeouts.
_URGENT = 0
_NORMAL = 1


class SimKernel:
    """Deterministic discrete-event loop with a floating-point clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._processes: List["Process"] = []

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- scheduling (kernel internal) ------------------------------------
    def _schedule_at(self, when: float, event: Event, priority: int = _NORMAL) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self._now}"
            )
        heapq.heappush(self._heap, (when, priority, next(self._seq), event))

    def _enqueue_triggered(self, event: Event) -> None:
        """Queue a just-triggered event to process at the current instant."""
        heapq.heappush(self._heap, (self._now, _URGENT, next(self._seq), event))

    # -- public event constructors ---------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` units from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when``; returns the underlying event."""
        if when < self._now:
            raise SimulationError(f"call_at in the past: {when} < {self._now}")
        ev = Event(self, name=f"call_at({when})")
        ev._triggered = True
        ev.add_callback(lambda _ev: fn())
        self._schedule_at(when, ev)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` time units."""
        return self.call_at(self._now + delay, fn)

    # -- processes --------------------------------------------------------
    def spawn(
        self, gen: Generator[Event, Any, Any], name: str = ""
    ) -> "Process":
        """Start a generator as a simulated process.

        The generator ``yield``s events; the kernel resumes it with each
        event's value (or throws the event's failure exception into it).
        """
        from repro.sim.process import Process  # local import: cycle guard

        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        return proc

    # -- main loop ----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulation time.  ``max_events`` guards against
        runaway self-scheduling loops (raises :class:`SimulationError`).
        """
        remaining = max_events
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            if remaining <= 0:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling loop"
                )
            remaining -= 1
            self.step()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_complete(self, proc: "Process", max_events: int = 10_000_000) -> Any:
        """Run the loop until ``proc`` finishes; return its value."""
        remaining = max_events
        while not proc.done:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: {proc.name} not done but event queue is empty"
                )
            if remaining <= 0:
                raise SimulationError(f"exceeded max_events={max_events}")
            remaining -= 1
            self.step()
        return proc.result
