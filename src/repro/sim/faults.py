"""Deterministic, seedable fault-injection scenarios.

A :class:`FaultScenario` is a *declarative* description of what goes
wrong on the network and when: probabilistic frame drops/duplicates,
delay (and hence reorder) windows, link partitions over sim-time
intervals, and scheduled cache-manager crashes/restarts.  Compiling a
scenario produces a :class:`FaultInjector` whose ``policy`` plugs into
``SimTransport(fault_policy=...)`` and whose ``schedule_crashes``
turns the crash plan into kernel events.

Determinism: all randomness comes from a named substream of the
scenario seed (:func:`repro.sim.rng.stream_for`), so the same scenario
over the same workload replays fault-for-fault identically — the
property that makes chaos experiments and regression tests of failure
handling reproducible.

Example::

    scenario = FaultScenario(
        drop_rate=0.1,
        duplicate_rate=0.05,
        partitions=[Partition(start=100.0, end=200.0,
                              group_a={"dir"}, group_b={"cm:v1"})],
        crashes=[CrashPlan(at=150.0, view_id="v1", restart_at=400.0)],
        seed=0,
    )
    injector = scenario.compile()
    transport = SimTransport(kernel, fault_policy=injector.policy)
    injector.schedule_crashes(kernel, {"v1": cm1})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.net.message import Message
from repro.sim.kernel import SimKernel
from repro.sim.rng import stream_for

# The fault action vocabulary understood by SimTransport.
FaultAction = object  # "deliver" | "drop" | "duplicate" | ("delay", dt)
FaultPolicy = Callable[[Message], FaultAction]


@dataclass(frozen=True)
class Partition:
    """A link partition over a sim-time interval.

    While ``start <= now < end``, every frame between an address in
    ``group_a`` and one in ``group_b`` (either direction) is dropped.
    Addresses appearing in neither group are unaffected.
    """

    start: float
    end: float
    group_a: FrozenSet[str]
    group_b: FrozenSet[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_a", frozenset(self.group_a))
        object.__setattr__(self, "group_b", frozenset(self.group_b))
        if self.end <= self.start:
            raise SimulationError(
                f"partition interval empty: [{self.start}, {self.end})"
            )

    def severs(self, src: str, dst: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass(frozen=True)
class CrashPlan:
    """A scheduled cache-manager crash (and optional restart)."""

    at: float
    view_id: str
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at:
            raise SimulationError(
                f"{self.view_id}: restart_at {self.restart_at} must be "
                f"after crash at {self.at}"
            )


@dataclass(frozen=True)
class DMCrashPlan:
    """A scheduled directory-manager (shard) crash and optional restart.

    ``shard`` selects the shard on a sharded plane (0 on an unsharded
    system).  ``torn_tail`` bytes, when given, are left behind the
    crashed WAL's durable end — a record the kill interrupted mid-write
    — exercising the recovery path's torn-tail truncation.
    """

    at: float
    restart_at: Optional[float] = None
    shard: int = 0
    torn_tail: bytes = b""

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at:
            raise SimulationError(
                f"shard {self.shard}: restart_at {self.restart_at} must "
                f"be after crash at {self.at}"
            )


@dataclass(frozen=True)
class FaultScenario:
    """Declarative description of injected network faults.

    Rates are per-frame probabilities, evaluated in order drop →
    duplicate → delay (at most one fault per frame).  ``delay_range``
    is the uniform window of extra delivery delay (reordering frames
    behind later sends).  ``exempt_types`` lets a scenario protect
    e.g. transport-internal frame types from injection.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_range: Tuple[float, float] = (0.0, 0.0)
    partitions: Sequence[Partition] = field(default_factory=tuple)
    crashes: Sequence[CrashPlan] = field(default_factory=tuple)
    dm_crashes: Sequence[DMCrashPlan] = field(default_factory=tuple)
    exempt_types: FrozenSet[str] = frozenset()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "dm_crashes", tuple(self.dm_crashes))
        object.__setattr__(self, "exempt_types", frozenset(self.exempt_types))
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {rate}")
        lo, hi = self.delay_range
        if lo < 0 or hi < lo:
            raise SimulationError(f"bad delay_range: {self.delay_range}")

    def compile(self) -> "FaultInjector":
        """Build the deterministic injector for this scenario."""
        return FaultInjector(self)


class FaultInjector:
    """A compiled scenario: the ``fault_policy`` callable + sim events.

    The injector needs a clock to evaluate partitions; it reads it from
    the transport the policy is installed on (``install``) or from the
    kernel passed to ``schedule_crashes`` — whichever it learns first.
    Counters record every injected fault by kind.
    """

    def __init__(self, scenario: FaultScenario) -> None:
        self.scenario = scenario
        self._rng = stream_for(scenario.seed, "fault-injection")
        self._now: Callable[[], float] = lambda: 0.0
        self.counters: Dict[str, int] = {
            "drops": 0, "duplicates": 0, "delays": 0,
            "partition_drops": 0, "crashes": 0, "restarts": 0,
            "dm_crashes": 0, "dm_restarts": 0,
        }

    # -- wiring ----------------------------------------------------------
    def install(self, transport) -> "FaultInjector":
        """Set this injector as ``transport.fault_policy``; returns self."""
        transport.fault_policy = self.policy
        self._now = transport.now
        return self

    def schedule_crashes(self, kernel: SimKernel, cache_managers: Dict[str, object]) -> None:
        """Turn the scenario's crash plan into kernel events.

        ``cache_managers`` maps view_id -> CacheManager (anything with
        ``crash()`` and ``recover()``).  Unknown view ids are an error —
        a silently ignored crash would make a chaos run vacuously green.
        """
        self._now = lambda: kernel.now
        for plan in self.scenario.crashes:
            cm = cache_managers.get(plan.view_id)
            if cm is None:
                raise SimulationError(
                    f"crash plan names unknown view {plan.view_id!r}"
                )
            kernel.call_at(plan.at, lambda c=cm: self._crash(c))
            if plan.restart_at is not None:
                kernel.call_at(plan.restart_at, lambda c=cm: self._restart(c))

    def _crash(self, cm) -> None:
        self.counters["crashes"] += 1
        cm.crash()

    def _restart(self, cm) -> None:
        self.counters["restarts"] += 1
        cm.recover()

    def schedule_dm_crashes(
        self,
        kernel: SimKernel,
        crash: Callable[[int, bytes], None],
        restart: Callable[[int], None],
    ) -> None:
        """Turn the scenario's DM crash plan into kernel events.

        ``crash(shard, torn_tail)`` kills one directory shard (e.g.
        ``plane.crash_shard`` or a wrapper that also wipes the shard's
        in-process component state); ``restart(shard)`` brings it back
        through its durable lineage (e.g. ``plane.restart_shard``).
        """
        self._now = lambda: kernel.now
        for plan in self.scenario.dm_crashes:
            kernel.call_at(plan.at, lambda p=plan: self._dm_crash(crash, p))
            if plan.restart_at is not None:
                kernel.call_at(
                    plan.restart_at, lambda p=plan: self._dm_restart(restart, p)
                )

    def _dm_crash(self, crash: Callable[[int, bytes], None], plan: DMCrashPlan) -> None:
        self.counters["dm_crashes"] += 1
        crash(plan.shard, plan.torn_tail)

    def _dm_restart(self, restart: Callable[[int], None], plan: DMCrashPlan) -> None:
        self.counters["dm_restarts"] += 1
        restart(plan.shard)

    # -- the policy ------------------------------------------------------
    def policy(self, msg: Message) -> FaultAction:
        s = self.scenario
        if msg.msg_type in s.exempt_types:
            return "deliver"
        now = self._now()
        for part in s.partitions:
            if part.severs(msg.src, msg.dst, now):
                self.counters["partition_drops"] += 1
                return "drop"
        # One rng draw per probabilistic fault class keeps the stream
        # layout stable: adding a partition (no draws) never shifts the
        # drop/duplicate/delay decisions of an existing scenario.
        if s.drop_rate and self._rng.random() < s.drop_rate:
            self.counters["drops"] += 1
            return "drop"
        if s.duplicate_rate and self._rng.random() < s.duplicate_rate:
            self.counters["duplicates"] += 1
            return "duplicate"
        if s.delay_rate and self._rng.random() < s.delay_rate:
            lo, hi = s.delay_range
            self.counters["delays"] += 1
            return ("delay", float(lo + (hi - lo) * self._rng.random()))
        return "deliver"

    @property
    def total_injected(self) -> int:
        return sum(self.counters.values())
