"""Network topology model backed by ``networkx``.

The paper deploys components over environments described as "a set of
nodes and links associated with their own properties" (§3.1); its
experiments run on a LAN.  :class:`Topology` carries per-link latency
and security attributes; the simulated transport reads end-to-end
latency from shortest paths, and the PSF planner reads link security to
decide where encryptor/decryptor pairs go.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import TransportError


class Topology:
    """An undirected graph of named nodes and attributed links."""

    def __init__(self) -> None:
        self._g = nx.Graph()
        self._path_cache: Dict[Tuple[str, str], Tuple[float, List[str]]] = {}

    # -- construction ----------------------------------------------------
    def add_node(self, name: str, **attrs: Any) -> None:
        self._g.add_node(name, **attrs)

    def add_link(
        self,
        a: str,
        b: str,
        latency: float = 1.0,
        bandwidth: float = float("inf"),
        secure: bool = True,
        **attrs: Any,
    ) -> None:
        """Add a bidirectional link; ``latency`` is one-way per message."""
        if latency < 0:
            raise TransportError(f"negative latency on link {a}-{b}")
        self._g.add_edge(a, b, latency=latency, bandwidth=bandwidth, secure=secure, **attrs)
        self._path_cache.clear()

    # -- queries -----------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        return self._g

    def nodes(self) -> List[str]:
        return list(self._g.nodes)

    def has_node(self, name: str) -> bool:
        return self._g.has_node(name)

    def node_attrs(self, name: str) -> Dict[str, Any]:
        return dict(self._g.nodes[name])

    def link_attrs(self, a: str, b: str) -> Dict[str, Any]:
        return dict(self._g.edges[a, b])

    def neighbors(self, name: str) -> List[str]:
        return list(self._g.neighbors(name))

    def path(self, src: str, dst: str) -> Tuple[float, List[str]]:
        """Minimum-latency path; returns ``(total_latency, node_list)``."""
        if src == dst:
            return 0.0, [src]
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        try:
            length, nodes = nx.single_source_dijkstra(
                self._g, src, dst, weight="latency"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise TransportError(f"no path {src} -> {dst}") from exc
        self._path_cache[key] = (length, nodes)
        self._path_cache[(dst, src)] = (length, list(reversed(nodes)))
        return length, nodes

    def latency(self, src: str, dst: str) -> float:
        return self.path(src, dst)[0]

    def insecure_links_on_path(self, src: str, dst: str) -> List[Tuple[str, str]]:
        """Links along the min-latency path with ``secure=False``."""
        _, nodes = self.path(src, dst)
        out = []
        for a, b in zip(nodes, nodes[1:]):
            if not self._g.edges[a, b].get("secure", True):
                out.append((a, b))
        return out


def lan_topology(
    node_names: Iterable[str],
    hub: str = "lan-switch",
    latency: float = 0.5,
    secure: bool = True,
) -> Topology:
    """Star LAN: every node hangs off one switch (paper's testbed shape).

    End-to-end latency between any two hosts is ``2 * latency``.
    """
    topo = Topology()
    topo.add_node(hub, kind="switch")
    for name in node_names:
        topo.add_node(name, kind="host")
        topo.add_link(name, hub, latency=latency, secure=secure)
    return topo


def wan_topology(
    domains: Dict[str, Iterable[str]],
    internet_latency: float = 20.0,
    lan_latency: float = 0.5,
    insecure_backbone: bool = True,
) -> Topology:
    """Multiple LAN domains joined through an "Internet" core (paper Fig 1).

    Each domain gets its own switch; switches connect to a shared core
    node.  Backbone links may be marked insecure so the PSF planner must
    insert encryptor/decryptor pairs around them.
    """
    topo = Topology()
    core = "internet"
    topo.add_node(core, kind="core")
    for domain, hosts in domains.items():
        switch = f"{domain}-switch"
        topo.add_node(switch, kind="switch", domain=domain)
        topo.add_link(
            switch, core, latency=internet_latency, secure=not insecure_backbone
        )
        for h in hosts:
            topo.add_node(h, kind="host", domain=domain)
            topo.add_link(h, switch, latency=lan_latency, secure=True)
    return topo


def uniform_topology(default_latency: float = 1.0) -> Optional[Topology]:
    """Sentinel for "no topology": the sim transport then applies
    ``default_latency`` between any pair of distinct addresses."""
    return None
