"""Deterministic simulated transport over the discrete-event kernel.

Delivery latency comes from a :class:`~repro.net.topology.Topology`
(minimum-latency path between the nodes the endpoints are placed on) or
a uniform default.  Optional *strict wire* mode round-trips every
message through the JSON codec so that anything that would break on the
TCP transport also breaks (loudly) in simulation.

Fault injection: a ``fault_policy(msg) -> "deliver" | "drop" |
"duplicate" | ("delay", extra)`` hook supports the failure-injection
tests and the declarative scenarios in :mod:`repro.sim.faults` — the
tuple form adds ``extra`` time units to the modelled delivery delay,
which is how scenarios express delay/reorder windows.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Dict, Optional

from repro.errors import TransportError
from repro.net.message import BATCH, Message, split_batch
from repro.net.topology import Topology
from repro.net.transport import Completion, TimerHandle, Transport
from repro.sim.kernel import SimKernel


class SimCompletion(Completion):
    """Completion backed by a kernel event (awaitable from sim processes)."""

    def __init__(self, kernel: SimKernel, name: str = "") -> None:
        self._event = kernel.event(name=name or "completion")

    def resolve(self, value: Any = None) -> None:
        self._event.succeed(value)

    def fail(self, exc: BaseException) -> None:
        self._event.fail(exc)

    def then(self, callback: Callable[[Completion], None]) -> None:
        self._event.add_callback(lambda _ev: callback(self))

    @property
    def done(self) -> bool:
        return self._event.triggered

    @property
    def value(self) -> Any:
        return self._event.value

    def sim_event(self):
        """The kernel event to ``yield`` from a simulated process."""
        return self._event


class SimTransport(Transport):
    """Routes messages through the event kernel with modelled latency."""

    def __init__(
        self,
        kernel: SimKernel,
        topology: Optional[Topology] = None,
        default_latency: float = 1.0,
        strict_wire: bool = True,
        fault_policy: Optional[Callable[[Message], str]] = None,
        model_bandwidth: bool = False,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        codec: Any = None,
    ) -> None:
        super().__init__()
        if default_latency < 0:
            raise TransportError("default_latency must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise TransportError("jitter must be in [0, 1)")
        if model_bandwidth and not strict_wire:
            raise TransportError(
                "model_bandwidth needs strict_wire (message sizes come "
                "from the encoded frame)"
            )
        self.kernel = kernel
        self.topology = topology
        self.default_latency = default_latency
        self.strict_wire = strict_wire
        self.fault_policy = fault_policy
        # When enabled, delivery delay = path latency + frame_bytes /
        # bottleneck_bandwidth along the min-latency path (bandwidth in
        # bytes per time unit, from the topology's link attributes).
        self.model_bandwidth = model_bandwidth
        # Per-message latency jitter: delay is scaled by a seeded
        # uniform factor in [1-jitter, 1+jitter].  Deterministic (own
        # substream) so jittered runs still replay exactly.
        self.jitter = jitter
        from repro.sim.rng import stream_for

        self._jitter_rng = stream_for(jitter_seed, "transport-jitter")
        # logical endpoint address -> topology node it is placed on
        self._placement: Dict[str, str] = {}
        self.set_codec(codec)

    # -- codec -------------------------------------------------------------
    @property
    def codec(self) -> Any:
        """The wire codec strict-wire mode round-trips frames through."""
        return self._codec

    def set_codec(self, codec: Any) -> None:
        """Swap the wire codec (``"json"`` | ``"binary"`` | instance).

        The sim transport has no peer to negotiate with — both “ends”
        share this object — so the chosen codec simply applies to every
        strict-wire round-trip.
        """
        from repro.net.binary_codec import resolve_codec

        self._codec = resolve_codec(codec)
        # Route per-frame compression accounting into this transport's
        # counters (no-op for codecs that never compress).
        self._codec.stats = self.stats

    # -- placement ---------------------------------------------------------
    def place(self, address: str, node: str) -> None:
        """Pin a logical endpoint address onto a topology node."""
        if self.topology is None:
            raise TransportError("place() requires a topology")
        if not self.topology.has_node(node):
            raise TransportError(f"unknown topology node: {node}")
        self._placement[address] = node

    def node_of(self, address: str) -> Optional[str]:
        """Topology node an address resolves to (explicit placement wins,
        then an identically-named topology node, else None)."""
        if address in self._placement:
            return self._placement[address]
        if self.topology is not None and self.topology.has_node(address):
            return address
        return None

    def latency_between(self, src: str, dst: str) -> float:
        a, b = self.node_of(src), self.node_of(dst)
        if self.topology is None or a is None or b is None:
            return self.default_latency if src != dst else 0.0
        return self.topology.latency(a, b)

    def bottleneck_bandwidth(self, src: str, dst: str) -> float:
        """Minimum link bandwidth along the min-latency path."""
        a, b = self.node_of(src), self.node_of(dst)
        if self.topology is None or a is None or b is None or a == b:
            return float("inf")
        _, nodes = self.topology.path(a, b)
        return min(
            (
                self.topology.link_attrs(x, y).get("bandwidth", float("inf"))
                for x, y in zip(nodes, nodes[1:])
            ),
            default=float("inf"),
        )

    def delivery_delay(self, msg: Message, frame_bytes: int) -> float:
        delay = self.latency_between(msg.src, msg.dst)
        if self.model_bandwidth:
            bw = self.bottleneck_bandwidth(msg.src, msg.dst)
            if bw != float("inf") and bw > 0:
                delay += frame_bytes / bw
        if self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * self._jitter_rng.random() - 1.0)
        return delay

    # -- Transport API --------------------------------------------------------
    def send(self, msg: Message) -> None:
        frame_bytes = 0
        if self.strict_wire:
            t0 = perf_counter_ns()
            raw = self._codec.encode(msg)
            # Size from the returned bytes — codecs keep no per-encode
            # state, so a shared codec stays race-free.
            frame_bytes = len(raw)
            self.stats.record_encode(frame_bytes, perf_counter_ns() - t0)
            wire_msg = self._codec.decode(raw)
        else:
            wire_msg = msg
        self.stats.record(msg, size=frame_bytes if self.strict_wire else None)
        action = self.fault_policy(msg) if self.fault_policy else "deliver"
        extra_delay = 0.0
        if isinstance(action, tuple):
            # ("delay", extra): hold the frame for extra time units on
            # top of the modelled latency (reordering it behind later
            # sends on the same link).
            if len(action) != 2 or action[0] != "delay" or action[1] < 0:
                raise TransportError(f"fault policy returned {action!r}")
            extra_delay = float(action[1])
            action = "deliver"
        if action == "drop":
            self.stats.record_drop(msg)
            return
        copies = 1
        if action == "duplicate":
            self.stats.record_duplicate(msg)
            copies = 2
        elif action != "deliver":
            raise TransportError(f"fault policy returned {action!r}")
        delay = self.delivery_delay(msg, frame_bytes) + extra_delay
        for _ in range(copies):
            self.kernel.call_in(delay, lambda m=wire_msg: self._deliver(m))

    def _deliver(self, msg: Message) -> None:
        if msg.msg_type == BATCH:
            # Coalesced frame: one delivery fans out to each sub-message's
            # own endpoint, so protocol handlers never see BATCH itself.
            for sub in split_batch(msg):
                self._deliver(sub)
            return
        ep = self._endpoints.get(msg.dst)
        if ep is None or ep.closed:
            # Destination vanished (e.g. view killed) — message is lost,
            # mirroring a connection refused on the TCP backend.
            self.stats.record_drop(msg)
            return
        ep.handler(msg)

    def now(self) -> float:
        return self.kernel.now

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        state = {"cancelled": False}

        def run() -> None:
            if not state["cancelled"]:
                fn()

        self.kernel.call_in(delay, run)
        return TimerHandle(lambda: state.__setitem__("cancelled", True))

    def completion(self, name: str = "") -> SimCompletion:
        return SimCompletion(self.kernel, name)
