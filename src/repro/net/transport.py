"""Transport abstraction shared by the simulated and TCP backends.

Protocol engines (directory manager, cache managers, baselines) are
written against this interface only, so the same engine code runs
deterministically in simulation and over real sockets.  The interface
deliberately mirrors what the paper's Java/RMI runtime offered:
message delivery, a clock, timers (for quality triggers), and a way to
wait for a reply.

A :class:`Completion` is the cross-backend future: in simulation it
wraps a kernel event (``yield comp.sim_event()`` from a process); in
thread mode it wraps a ``threading.Event`` (``comp.wait()``).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional

from repro.errors import TransportError
from repro.net.message import Message
from repro.net.stats import MessageStats

MessageHandler = Callable[[Message], None]


class Completion(abc.ABC):
    """A one-shot future usable from sim processes or real threads."""

    @abc.abstractmethod
    def resolve(self, value: Any = None) -> None:
        """Complete successfully with ``value``."""

    @abc.abstractmethod
    def fail(self, exc: BaseException) -> None:
        """Complete with an error."""

    @abc.abstractmethod
    def then(self, callback: Callable[["Completion"], None]) -> None:
        """Invoke ``callback(self)`` once done (immediately if already)."""

    @property
    @abc.abstractmethod
    def done(self) -> bool: ...

    @property
    @abc.abstractmethod
    def value(self) -> Any:
        """The result; raises the failure exception if failed."""

    # Backend-specific waiting -----------------------------------------
    def sim_event(self):  # pragma: no cover - overridden in sim backend
        raise TransportError(f"{type(self).__name__} cannot be awaited in sim")

    def wait(self, timeout: Optional[float] = None) -> Any:  # pragma: no cover
        raise TransportError(f"{type(self).__name__} cannot block a thread")


class TimerHandle:
    """Cancellable handle for a scheduled timer callback."""

    def __init__(self, cancel_fn: Callable[[], None]) -> None:
        self._cancel_fn = cancel_fn
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._cancel_fn()


class Endpoint:
    """A named attachment point on a transport.

    Incoming messages addressed to ``address`` are dispatched to the
    ``handler`` callback.  ``send`` routes through the owning transport.
    """

    def __init__(self, transport: "Transport", address: str, handler: MessageHandler):
        self.transport = transport
        self.address = address
        self.handler = handler
        self.closed = False

    def send(self, msg: Message) -> None:
        if self.closed:
            raise TransportError(f"endpoint {self.address} is closed")
        if msg.src != self.address:
            raise TransportError(
                f"endpoint {self.address} cannot send as {msg.src}"
            )
        self.transport.send(msg)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.transport._unbind(self.address)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Endpoint {self.address} on {type(self.transport).__name__}>"


class Transport(abc.ABC):
    """Message routing + clock + timers + completion factory."""

    def __init__(self) -> None:
        self.stats = MessageStats()
        self._endpoints: Dict[str, Endpoint] = {}

    # -- endpoints -------------------------------------------------------
    def bind(self, address: str, handler: MessageHandler) -> Endpoint:
        """Attach a handler under ``address``; returns the endpoint."""
        if address in self._endpoints:
            raise TransportError(f"address already bound: {address}")
        ep = Endpoint(self, address, handler)
        self._endpoints[address] = ep
        self._on_bind(ep)
        return ep

    def _unbind(self, address: str) -> None:
        ep = self._endpoints.pop(address, None)
        if ep is not None:
            self._on_unbind(ep)

    def endpoints(self) -> List[str]:
        return list(self._endpoints)

    def is_bound(self, address: str) -> bool:
        return address in self._endpoints

    # Backend hooks (optional overrides) --------------------------------
    def _on_bind(self, ep: Endpoint) -> None: ...

    def _on_unbind(self, ep: Endpoint) -> None: ...

    # -- abstract services ------------------------------------------------
    @abc.abstractmethod
    def send(self, msg: Message) -> None:
        """Route ``msg`` to its destination endpoint (async delivery)."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in transport time units."""

    @abc.abstractmethod
    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn()`` after ``delay`` time units; cancellable."""

    @abc.abstractmethod
    def completion(self, name: str = "") -> Completion:
        """New unresolved completion bound to this backend."""

    def close(self) -> None:
        """Release backend resources (sockets, threads)."""
        for addr in list(self._endpoints):
            self._endpoints[addr].close()


# ---------------------------------------------------------------------------
# Transport factory
# ---------------------------------------------------------------------------
# Mirrors ``resolve_codec``: a spec string names a backend, an instance
# passes through.  The factories import lazily so this module stays the
# bottom of the dependency graph (sim_transport, tcp_transport, and
# aio_transport all import *us*).

#: Spec names understood by :func:`resolve_transport`.
TRANSPORT_SIM = "sim"
TRANSPORT_TCP = "tcp"
TRANSPORT_AIO = "aio"


def _make_sim(**kwargs: Any) -> "Transport":
    from repro.net.sim_transport import SimTransport

    if kwargs.get("kernel") is None:
        from repro.sim.kernel import SimKernel

        kwargs["kernel"] = SimKernel()
    return SimTransport(**kwargs)


def _make_tcp(**kwargs: Any) -> "Transport":
    from repro.net.tcp_transport import TcpTransport

    return TcpTransport(**kwargs)


def _make_aio(**kwargs: Any) -> "Transport":
    from repro.net.aio_transport import AioTcpTransport

    return AioTcpTransport(**kwargs)


_TRANSPORT_SPECS: Dict[str, Callable[..., "Transport"]] = {
    TRANSPORT_SIM: _make_sim,
    TRANSPORT_TCP: _make_tcp,
    TRANSPORT_AIO: _make_aio,
    # Common aliases.
    "asyncio": _make_aio,
    "aio-tcp": _make_aio,
}


def resolve_transport(spec: Any, **kwargs: Any) -> "Transport":
    """Build a transport from a spec, mirroring ``resolve_codec``.

    ``spec`` is one of:

    - a :class:`Transport` instance — passed through unchanged
      (``kwargs`` must be empty: an already-built backend cannot be
      reconfigured here);
    - ``"sim"`` — a :class:`~repro.net.sim_transport.SimTransport`; a
      fresh :class:`~repro.sim.kernel.SimKernel` is created unless one
      is passed as ``kernel=``;
    - ``"tcp"`` — a threaded :class:`~repro.net.tcp_transport.TcpTransport`;
    - ``"aio"`` (aliases ``"asyncio"``, ``"aio-tcp"``) — an event-loop
      :class:`~repro.net.aio_transport.AioTcpTransport`.

    Extra ``kwargs`` are forwarded to the backend constructor.
    """
    if isinstance(spec, Transport):
        if kwargs:
            raise TransportError(
                f"cannot apply constructor options {sorted(kwargs)} to an "
                f"already-built {type(spec).__name__}"
            )
        return spec
    if isinstance(spec, str):
        factory = _TRANSPORT_SPECS.get(spec)
        if factory is None:
            raise TransportError(
                f"unknown transport spec {spec!r}; choose from "
                f"{sorted(_TRANSPORT_SPECS)} or pass a Transport instance"
            )
        return factory(**kwargs)
    raise TransportError(f"not a transport: {spec!r}")


def transport_name(transport: "Transport") -> str:
    """The spec name a transport instance answers to (best effort)."""
    from repro.net.sim_transport import SimTransport

    if isinstance(transport, SimTransport):
        return TRANSPORT_SIM
    try:
        from repro.net.aio_transport import AioTcpTransport

        if isinstance(transport, AioTcpTransport):
            return TRANSPORT_AIO
    except ImportError:  # pragma: no cover - aio backend always ships
        pass
    from repro.net.tcp_transport import TcpTransport

    if isinstance(transport, TcpTransport):
        return TRANSPORT_TCP
    return type(transport).__name__
