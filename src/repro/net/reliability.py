"""Reliable-delivery sublayer: ACK + retransmit over any transport.

The Flecc FSMs (paper §4.2) assume reliable, ordered delivery between
the directory manager and the cache managers.  The raw transports do
not guarantee that — :class:`~repro.net.sim_transport.SimTransport`
supports injected drops/duplicates/delays and the TCP backend can lose
frames to a vanished endpoint.  :class:`ReliableTransport` wraps any
inner :class:`~repro.net.transport.Transport` and restores the FSMs'
assumptions:

- **At-least-once**: every protocol message rides an ``R_DATA``
  envelope carrying a per-link sequence number.  The receiver answers
  with ``R_ACK``; an unacknowledged envelope is retransmitted with
  exponential backoff (plus seeded jitter, so synchronized retry storms
  de-correlate deterministically) up to ``max_attempts`` times.
- **At-most-once**: the receiver keeps a per-link cursor of the last
  in-order sequence delivered plus a bounded window of seen envelope
  msg_ids; duplicate frames (retransmissions whose ACK was lost, or
  duplicates injected below the sublayer) are suppressed and re-ACKed.
- **In-order handoff**: out-of-order arrivals are buffered and handed
  to the destination endpoint in send order, so delayed/reordered
  frames cannot interleave a round's replies.

Accounting: ``self.stats`` records the *logical* messages the protocol
sent — exactly what a raw transport would record for the same run, so
the paper's Fig 4 efficiency metric is unchanged by the sublayer.  The
wire overhead (envelopes, ACKs, retransmissions) is visible separately
in ``inner.stats`` and in this layer's ``retransmits`` /
``duplicates_suppressed`` / ``acks_sent`` counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.message import BATCH, Message, split_batch
from repro.net.transport import Completion, Endpoint, TimerHandle, Transport

# Envelope vocabulary of the sublayer.  Protocol engines never see
# either type: R_DATA is unwrapped before handoff, R_ACK terminates at
# the sublayer.
R_DATA = "R_DATA"
R_ACK = "R_ACK"

Link = Tuple[str, str]  # (sender address, receiver address)


class _Outgoing:
    """Sender-side state for one unacknowledged envelope."""

    __slots__ = ("envelope", "attempts", "timer")

    def __init__(self, envelope: Message) -> None:
        self.envelope = envelope
        self.attempts = 0
        self.timer: Optional[TimerHandle] = None


class _LinkReceiver:
    """Receiver-side state for one directed link."""

    __slots__ = ("delivered_upto", "pending", "seen_ids")

    def __init__(self) -> None:
        self.delivered_upto = 0            # highest contiguously delivered seq
        self.pending: Dict[int, Message] = {}  # out-of-order buffer
        self.seen_ids: "OrderedDict[int, None]" = OrderedDict()


class ReliableTransport(Transport):
    """ACK/retransmit + dedup + in-order handoff over an inner transport.

    Endpoints bind on this transport exactly as on a raw one; each bind
    is mirrored onto the inner transport, where the sublayer's frames
    actually travel.  ``now``/``schedule``/``completion`` delegate to
    the inner backend, so the same engine code runs on both.
    """

    def __init__(
        self,
        inner: Transport,
        ack_timeout: float = 10.0,
        max_attempts: int = 12,
        backoff: float = 1.5,
        jitter: float = 0.1,
        seed: int = 0,
        dedup_window: int = 1024,
        max_backoff: float = 200.0,
    ) -> None:
        super().__init__()
        if ack_timeout <= 0:
            raise TransportError("ack_timeout must be > 0")
        if max_attempts < 1:
            raise TransportError("max_attempts must be >= 1")
        if backoff < 1.0:
            raise TransportError("backoff must be >= 1.0")
        if not 0.0 <= jitter < 1.0:
            raise TransportError("jitter must be in [0, 1)")
        self.inner = inner
        self.ack_timeout = ack_timeout
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.jitter = jitter
        self.max_backoff = max_backoff
        self._dedup_window = dedup_window
        from repro.sim.rng import stream_for

        self._jitter_rng = stream_for(seed, "reliability-jitter")
        self._inner_eps: Dict[str, Endpoint] = {}
        self._next_seq: Dict[Link, int] = {}
        self._in_flight: Dict[Link, Dict[int, _Outgoing]] = {}
        self._receivers: Dict[Link, _LinkReceiver] = {}
        self._closed = False

    # -- binding ---------------------------------------------------------
    def _on_bind(self, ep: Endpoint) -> None:
        self._inner_eps[ep.address] = self.inner.bind(ep.address, self._on_frame)

    def _on_unbind(self, ep: Endpoint) -> None:
        inner_ep = self._inner_eps.pop(ep.address, None)
        if inner_ep is not None:
            inner_ep.close()
        # Abandon retransmissions originating from the closed address.
        for link in [l for l in self._in_flight if l[0] == ep.address]:
            for out in self._in_flight.pop(link).values():
                if out.timer is not None:
                    out.timer.cancel()

    # -- sending ---------------------------------------------------------
    def send(self, msg: Message) -> None:
        if self._closed:
            raise TransportError("reliable transport closed")
        # Logical accounting: what the protocol sent, envelope-free.
        self.stats.record(msg)
        link = (msg.src, msg.dst)
        seq = self._next_seq.get(link, 0) + 1
        self._next_seq[link] = seq
        envelope = Message(
            R_DATA, msg.src, msg.dst, {"seq": seq, "inner": msg.to_dict()}
        )
        out = _Outgoing(envelope)
        self._in_flight.setdefault(link, {})[seq] = out
        self._transmit(link, out)

    def _transmit(self, link: Link, out: _Outgoing) -> None:
        out.attempts += 1
        if out.attempts > 1:
            self.stats.record_retransmit(out.envelope)
        try:
            self.inner.send(out.envelope)
        except TransportError:
            # The wire refused the frame (e.g. TCP peer vanished mid
            # send); the retransmit timer below is the recovery path.
            self.inner.stats.record_drop(out.envelope)
        if out.attempts >= self.max_attempts:
            # Out of attempts: behave like a raw transport losing the
            # message (the protocol's own watchdogs take over).
            out.timer = self.inner.schedule(
                self._retry_delay(out.attempts), lambda: self._give_up(link, out)
            )
            return
        out.timer = self.inner.schedule(
            self._retry_delay(out.attempts), lambda: self._maybe_retransmit(link, out)
        )

    def _retry_delay(self, attempts: int) -> float:
        delay = min(
            self.ack_timeout * (self.backoff ** (attempts - 1)), self.max_backoff
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * self._jitter_rng.random() - 1.0)
        return delay

    def _maybe_retransmit(self, link: Link, out: _Outgoing) -> None:
        if self._closed:
            return
        seq = out.envelope.payload["seq"]
        if self._in_flight.get(link, {}).get(seq) is not out:
            return  # acknowledged meanwhile
        self._transmit(link, out)

    def _give_up(self, link: Link, out: _Outgoing) -> None:
        seq = out.envelope.payload["seq"]
        if self._in_flight.get(link, {}).get(seq) is not out:
            return
        del self._in_flight[link][seq]
        self.stats.record_drop(out.envelope)

    # -- receiving -------------------------------------------------------
    def _on_frame(self, frame: Message) -> None:
        if frame.msg_type == R_ACK:
            self._on_ack(frame)
        elif frame.msg_type == R_DATA:
            self._on_data(frame)
        else:  # a raw message that bypassed the sublayer — hand off as-is
            self._handoff(frame)

    def _on_ack(self, frame: Message) -> None:
        # The ACK travels dst -> src, so the data link is the reverse.
        link = (frame.dst, frame.src)
        out = self._in_flight.get(link, {}).pop(frame.payload.get("seq"), None)
        if out is not None and out.timer is not None:
            out.timer.cancel()

    def _on_data(self, frame: Message) -> None:
        link = (frame.src, frame.dst)
        seq = frame.payload["seq"]
        # Always (re-)ACK — the previous ACK may have been the lost frame.
        ack = Message(R_ACK, frame.dst, frame.src, {"seq": seq})
        self.stats.record_ack(ack)
        try:
            self.inner.send(ack)
        except TransportError:
            self.inner.stats.record_drop(ack)
        recv = self._receivers.setdefault(link, _LinkReceiver())
        if (
            seq <= recv.delivered_upto
            or seq in recv.pending
            or frame.msg_id in recv.seen_ids
        ):
            self.stats.record_duplicate_suppressed(frame)
            return
        recv.seen_ids[frame.msg_id] = None
        while len(recv.seen_ids) > self._dedup_window:
            recv.seen_ids.popitem(last=False)
        recv.pending[seq] = Message.from_dict(frame.payload["inner"])
        # In-order handoff: flush the contiguous prefix.
        while recv.delivered_upto + 1 in recv.pending:
            recv.delivered_upto += 1
            self._handoff(recv.pending.pop(recv.delivered_upto))

    def _handoff(self, msg: Message) -> None:
        if msg.msg_type == BATCH:
            # Coalesced frame: fan out locally so protocol handlers
            # never see BATCH itself (same contract as the raw backends).
            for sub in split_batch(msg):
                self._handoff(sub)
            return
        ep = self._endpoints.get(msg.dst)
        if ep is None or ep.closed:
            self.stats.record_drop(msg)
            return
        ep.handler(msg)

    # -- introspection ---------------------------------------------------
    def in_flight_count(self) -> int:
        """Envelopes awaiting acknowledgement (for tests/monitoring)."""
        return sum(len(m) for m in self._in_flight.values())

    def node_of(self, address: str) -> Optional[str]:
        """Topology placement passthrough (round coalescing support)."""
        fn = getattr(self.inner, "node_of", None)
        return fn(address) if fn is not None else None

    def place(self, address: str, node: str) -> None:
        fn = getattr(self.inner, "place", None)
        if fn is None:
            raise TransportError(f"{type(self.inner).__name__} has no placement")
        fn(address, node)

    def set_codec(self, codec: Any) -> None:
        """Codec passthrough: R_DATA/R_ACK envelopes are ordinary
        messages on the inner transport, so they automatically ride
        whatever codec the underlying link negotiated."""
        fn = getattr(self.inner, "set_codec", None)
        if fn is None:
            raise TransportError(
                f"{type(self.inner).__name__} has no codec selection"
            )
        fn(codec)

    # -- delegated backend services --------------------------------------
    def now(self) -> float:
        return self.inner.now()

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        return self.inner.schedule(delay, fn)

    def completion(self, name: str = "") -> Completion:
        return self.inner.completion(name)

    def close(self) -> None:
        self._closed = True
        for pending in self._in_flight.values():
            for out in pending.values():
                if out.timer is not None:
                    out.timer.cancel()
        self._in_flight.clear()
        super().close()  # closes reliable endpoints -> unbinds inner ones
        self.inner.close()
