"""Wire codec: JSON with an extensible type registry.

Payloads may contain registered domain objects (property sets, object
images, version vectors...).  Registered types are encoded as
``{"__type__": tag, "data": <jsonable>}`` so the TCP transport can carry
the same payloads that the in-process simulated transport passes by
value.  The registry is the single source of truth for what may cross
the wire — anything else raises :class:`~repro.errors.CodecError`
instead of silently pickling arbitrary objects.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple, Type

from repro.errors import CodecError
from repro.net.message import Message

# tag -> (cls, to_jsonable, from_jsonable)
_REGISTRY: Dict[str, Tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}
# cls -> tag (reverse index)
_BY_CLASS: Dict[type, str] = {}


def register_codec_type(
    tag: str,
    cls: Type[Any],
    to_jsonable: Callable[[Any], Any],
    from_jsonable: Callable[[Any], Any],
) -> None:
    """Register a domain type for wire transport.

    Re-registering the same ``(tag, cls)`` pair is an idempotent no-op so
    modules can register at import time; conflicting registrations raise.
    """
    if tag in _REGISTRY:
        existing_cls = _REGISTRY[tag][0]
        if existing_cls is cls:
            return
        raise CodecError(f"codec tag {tag!r} already bound to {existing_cls}")
    _REGISTRY[tag] = (cls, to_jsonable, from_jsonable)
    _BY_CLASS[cls] = tag


def registered_tags() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


class JsonCodec:
    """Encode/decode :class:`Message` to length-prefix-friendly bytes."""

    def encode(self, msg: Message) -> bytes:
        try:
            return json.dumps(self._lower(msg.to_dict())).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot encode {msg}: {exc}") from exc

    def decode(self, raw: bytes) -> Message:
        try:
            d = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"cannot decode frame: {exc}") from exc
        if not isinstance(d, dict) or "msg_type" not in d:
            raise CodecError(f"frame is not a message: {d!r}")
        return Message.from_dict(self._raise_types(d))

    # -- recursive lowering/raising ------------------------------------
    # A plain user dict may itself contain the reserved "__type__" key;
    # such dicts are escaped as a pair list so they can never be
    # mistaken for a tagged object on decode.
    _DICT_ESCAPE_TAG = "codec.escaped-dict"

    def _lower(self, obj: Any) -> Any:
        """Replace registered objects with tagged JSON-able dicts."""
        tag = _BY_CLASS.get(type(obj))
        if tag is not None:
            _, to_jsonable, _ = _REGISTRY[tag]
            return {"__type__": tag, "data": self._lower(to_jsonable(obj))}
        if isinstance(obj, dict):
            lowered = {str(k): self._lower(v) for k, v in obj.items()}
            if "__type__" in lowered:
                return {
                    "__type__": self._DICT_ESCAPE_TAG,
                    "data": [[k, v] for k, v in lowered.items()],
                }
            return lowered
        if isinstance(obj, (list, tuple)):
            return [self._lower(v) for v in obj]
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        raise CodecError(
            f"type {type(obj).__name__} is not wire-encodable; "
            f"register it with register_codec_type()"
        )

    def _raise_types(self, obj: Any) -> Any:
        """Reconstruct registered objects from tagged dicts."""
        if isinstance(obj, dict):
            if "__type__" in obj:
                tag = obj["__type__"]
                if tag == self._DICT_ESCAPE_TAG:
                    return {
                        k: self._raise_types(v) for k, v in obj.get("data", [])
                    }
                if not isinstance(tag, str) or tag not in _REGISTRY:
                    raise CodecError(f"unknown codec tag {tag!r} in frame")
                _, _, from_jsonable = _REGISTRY[tag]
                return from_jsonable(self._raise_types(obj.get("data")))
            return {k: self._raise_types(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [self._raise_types(v) for v in obj]
        return obj


def roundtrip(msg: Message) -> Message:
    """Encode then decode (test helper; also used by the sim transport's
    optional *strict wire* mode to guarantee sim/TCP parity)."""
    codec = JsonCodec()
    return codec.decode(codec.encode(msg))
