"""Wire codec: JSON with an extensible type registry.

Payloads may contain registered domain objects (property sets, object
images, version vectors...).  Registered types are encoded as
``{"__type__": tag, "data": <jsonable>}`` so the TCP transport can carry
the same payloads that the in-process simulated transport passes by
value.  The registry is the single source of truth for what may cross
the wire — anything else raises :class:`~repro.errors.CodecError`
instead of silently pickling arbitrary objects.

Hot-path note: strict-wire simulation round-trips *every* message
through this codec, so encoding cost is protocol-tick cost.  The
encoder is single-pass — it streams JSON text fragments while walking
the payload once, instead of first lowering to an intermediate jsonable
tree and then having :func:`json.dumps` walk that tree again — and
registry dispatch is memoized per concrete class.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import CodecError
from repro.net.message import Message

# tag -> (cls, to_jsonable, from_jsonable)
_REGISTRY: Dict[str, Tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}
# cls -> tag (reverse index)
_BY_CLASS: Dict[type, str] = {}
# cls -> (tag, to_jsonable) | None — memoized dispatch for the encoder.
# Also caches negative answers for plain classes (dict, list, str, ...)
# so the common case is a single dict hit.
_DISPATCH: Dict[type, Optional[Tuple[str, Callable[[Any], Any]]]] = {}
# Guards registration against concurrent dispatch-memo population: the
# TCP listener thread can be decoding (and memoizing negative answers)
# while an application module's import-time register_codec_type runs.
# Without the lock a racing _dispatch_for could re-cache a stale
# negative entry for a freshly registered class after the clear().
_registry_lock = threading.RLock()


def _same_converter(f: Callable[[Any], Any], g: Callable[[Any], Any]) -> bool:
    """Best-effort sameness for converter callables.

    Identity first (covers module-level functions and methods, which are
    the same objects on re-import); for distinct function objects —
    typically lambdas re-created by a re-executed registration — compare
    compiled code so *equivalent* re-registrations stay idempotent while
    *behaviorally different* ones are caught.
    """
    if f is g:
        return True
    fc = getattr(f, "__code__", None)
    gc = getattr(g, "__code__", None)
    if fc is None or gc is None:
        return False
    return (
        fc.co_code == gc.co_code
        and fc.co_consts == gc.co_consts
        and fc.co_names == gc.co_names
        and getattr(f, "__defaults__", None) == getattr(g, "__defaults__", None)
    )


def register_codec_type(
    tag: str,
    cls: Type[Any],
    to_jsonable: Callable[[Any], Any],
    from_jsonable: Callable[[Any], Any],
) -> None:
    """Register a domain type for wire transport.

    Re-registering the same ``(tag, cls)`` pair with the same converters
    is an idempotent no-op so modules can register at import time;
    conflicting registrations — a different class for the tag, or the
    same pair with *different* converter functions — raise instead of
    silently keeping whichever registration ran first.
    """
    with _registry_lock:
        if tag in _REGISTRY:
            existing_cls, existing_to, existing_from = _REGISTRY[tag]
            if existing_cls is not cls:
                raise CodecError(
                    f"codec tag {tag!r} already bound to {existing_cls}"
                )
            if _same_converter(existing_to, to_jsonable) and _same_converter(
                existing_from, from_jsonable
            ):
                return
            raise CodecError(
                f"codec tag {tag!r} re-registered with different "
                f"to_jsonable/from_jsonable converters"
            )
        _REGISTRY[tag] = (cls, to_jsonable, from_jsonable)
        _BY_CLASS[cls] = tag
        _DISPATCH.clear()  # drop any memoized negative answer for cls


def registered_tags() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def _dispatch_for(cls: type) -> Optional[Tuple[str, Callable[[Any], Any]]]:
    try:
        return _DISPATCH[cls]
    except KeyError:
        # Populate under the registry lock so a concurrent late
        # registration cannot interleave between our registry lookup and
        # the memo store (which would pin a stale negative answer).
        with _registry_lock:
            tag = _BY_CLASS.get(cls)
            entry = (tag, _REGISTRY[tag][1]) if tag is not None else None
            _DISPATCH[cls] = entry
        return entry


# C-accelerated string escaper — the same one json.dumps uses with the
# default ensure_ascii=True, so the fast path emits identical bytes.
_escape_str = json.encoder.encode_basestring_ascii

# Non-finite floats spelled the way json.dumps (allow_nan=True) spells them.
_FLOAT_INF = float("inf")


def _format_float(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == _FLOAT_INF:
        return "Infinity"
    if value == -_FLOAT_INF:
        return "-Infinity"
    return float.__repr__(value)


class JsonCodec:
    """Encode/decode :class:`Message` to length-prefix-friendly bytes."""

    # Optional MessageStats hook (set by the owning transport).  The
    # JSON codec never compresses, so it only carries the attribute for
    # interface parity with BinaryCodec.
    stats: Optional[Any] = None

    def encode(self, msg: Message) -> bytes:
        try:
            parts: List[str] = []
            self._encode_into(msg.to_dict(), parts)
            return "".join(parts).encode("utf-8")
        except CodecError:
            raise
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot encode {msg}: {exc}") from exc

    def decode(self, raw: bytes) -> Message:
        try:
            d = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"cannot decode frame: {exc}") from exc
        if not isinstance(d, dict) or "msg_type" not in d:
            raise CodecError(f"frame is not a message: {d!r}")
        return Message.from_dict(self._raise_types(d))

    # -- single-pass lowering + serialization ---------------------------
    # A plain user dict may itself contain the reserved "__type__" key;
    # such dicts are escaped as a pair list so they can never be
    # mistaken for a tagged object on decode.
    _DICT_ESCAPE_TAG = "codec.escaped-dict"

    def _encode_into(self, obj: Any, out: List[str]) -> None:
        """Append the JSON text of ``obj`` to ``out`` (one traversal).

        Byte-identical to ``json.dumps(self._lower(obj))`` — the test
        suite diffs the two — but without materializing the lowered
        intermediate tree.  Scalars use the C escaper/formatters the
        stdlib encoder uses.
        """
        cls = obj.__class__
        if cls is str:
            out.append(_escape_str(obj))
            return
        if cls is int:
            out.append(int.__repr__(obj))
            return
        if cls is float:
            out.append(_format_float(obj))
            return
        if cls is bool:
            out.append("true" if obj else "false")
            return
        if obj is None:
            out.append("null")
            return
        entry = _dispatch_for(cls)
        if entry is not None:
            tag, to_jsonable = entry
            out.append('{"__type__": ')
            out.append(_escape_str(tag))
            out.append(', "data": ')
            self._encode_into(to_jsonable(obj), out)
            out.append("}")
            return
        if isinstance(obj, dict):
            self._encode_dict(obj, out)
            return
        if isinstance(obj, (list, tuple)):
            out.append("[")
            first = True
            for v in obj:
                if not first:
                    out.append(", ")
                first = False
                self._encode_into(v, out)
            out.append("]")
            return
        if isinstance(obj, (bool, int, float, str)):
            # Scalar subclasses (IntEnum, str subclasses, ...) — rare;
            # format through json.dumps like the reference pass does.
            out.append(json.dumps(self._lower(obj)))
            return
        raise CodecError(
            f"type {type(obj).__name__} is not wire-encodable; "
            f"register it with register_codec_type()"
        )

    def _encode_dict(self, obj: dict, out: List[str]) -> None:
        escape = "__type__" in obj
        if not escape:
            for k in obj:
                if type(k) is not str and str(k) == "__type__":
                    escape = True
                    break
        if escape:
            # Rare path: the dict contains the reserved "__type__" key —
            # emit the escaped pair-list form so decode cannot mistake
            # it for a tagged object.
            out.append('{"__type__": ')
            out.append(_escape_str(self._DICT_ESCAPE_TAG))
            out.append(', "data": [')
            first = True
            for k, v in obj.items():
                if not first:
                    out.append(", ")
                first = False
                out.append("[")
                out.append(_escape_str(k if type(k) is str else str(k)))
                out.append(", ")
                self._encode_into(v, out)
                out.append("]")
            out.append("]}")
            return
        out.append("{")
        first = True
        for k, v in obj.items():
            if not first:
                out.append(", ")
            first = False
            out.append(_escape_str(k if type(k) is str else str(k)))
            out.append(": ")
            self._encode_into(v, out)
        out.append("}")

    # -- legacy two-pass lowering (kept as the reference implementation;
    #    the codec equivalence tests diff it against the fast path) ------
    def _lower(self, obj: Any) -> Any:
        """Replace registered objects with tagged JSON-able dicts."""
        entry = _dispatch_for(type(obj))
        if entry is not None:
            tag, to_jsonable = entry
            return {"__type__": tag, "data": self._lower(to_jsonable(obj))}
        if isinstance(obj, dict):
            lowered = {str(k): self._lower(v) for k, v in obj.items()}
            if "__type__" in lowered:
                return {
                    "__type__": self._DICT_ESCAPE_TAG,
                    "data": [[k, v] for k, v in lowered.items()],
                }
            return lowered
        if isinstance(obj, (list, tuple)):
            return [self._lower(v) for v in obj]
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        raise CodecError(
            f"type {type(obj).__name__} is not wire-encodable; "
            f"register it with register_codec_type()"
        )

    def _raise_types(self, obj: Any) -> Any:
        """Reconstruct registered objects from tagged dicts."""
        if isinstance(obj, dict):
            if "__type__" in obj:
                tag = obj["__type__"]
                if tag == self._DICT_ESCAPE_TAG:
                    return {
                        k: self._raise_types(v) for k, v in obj.get("data", [])
                    }
                if not isinstance(tag, str) or tag not in _REGISTRY:
                    raise CodecError(f"unknown codec tag {tag!r} in frame")
                _, _, from_jsonable = _REGISTRY[tag]
                return from_jsonable(self._raise_types(obj.get("data")))
            return {k: self._raise_types(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [self._raise_types(v) for v in obj]
        return obj


def roundtrip(msg: Message, codec: Optional[Any] = None) -> Message:
    """Encode then decode (test helper; also used by the sim transport's
    optional *strict wire* mode to guarantee sim/TCP parity).  Uses a
    fresh :class:`JsonCodec` unless ``codec`` is given."""
    codec = JsonCodec() if codec is None else codec
    return codec.decode(codec.encode(msg))
