"""Event-loop TCP transport: multiplexed links, coalesced writes,
bounded send queues.

``TcpTransport`` spends one listening socket per endpoint and one
reader thread per connection — faithful to the paper's prototype, but
it collapses around a few hundred cache managers.  ``AioTcpTransport``
keeps the same wire contract (4-byte length-prefixed frames, JSON
``CODEC_HELLO``/``CODEC_WELCOME`` negotiation, process-local address
book, ``ThreadCompletion`` futures) while changing the machinery
underneath:

- **Multiplexing** — all endpoints bound on one transport share a
  single asyncio server and a single mux connection; ``bind`` is a
  dict insert, not a socket.  10k endpoints cost 10k dict entries and
  one socket pair instead of ~30k file descriptors and 10k threads.
- **Write coalescing** — the writer coroutine drains whatever has
  queued since the last flush and ships it in one ``write()`` +
  ``drain()``; with ``wrap_batches=True`` adjacent messages are
  additionally wrapped in one ``BATCH`` envelope (the PR-2 machinery),
  paying one codec pass and one frame for the whole flush.
- **Backpressure** — the send queue is bounded (``max_queue``).  A
  send against a full queue is *refused* with a ``TransportError``
  and counted in ``stats.backpressure_stalls``; stacked layers that
  already handle lossy links (``ReliableTransport`` catches the error
  and recovers via its retransmit timer) turn that refusal into flow
  control instead of unbounded buffering.

Threaded callers are first-class: ``send``/``schedule``/``close`` may
be called from any thread, and ``completion()`` returns the same
``ThreadCompletion`` the threaded backend uses, resolved from handler
code running on the loop.  Handlers themselves run on the loop thread,
one at a time — the same one-at-a-time semantics the sim kernel and
the per-endpoint TCP locks provide — so engine code runs unchanged.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import CodecError, TransportError
from repro.net.codec import JsonCodec
from repro.net.message import BATCH, Message, make_batch, split_batch
from repro.net.tcp_transport import (
    _LEN,
    _MAX_FRAME,
    CODEC_HELLO,
    CODEC_WELCOME,
    ThreadCompletion,
)
from repro.net.transport import Endpoint, TimerHandle, Transport


class _Link:
    """The mux connection: one bounded queue + one writer coroutine."""

    def __init__(self, max_queue: int) -> None:
        self.max_queue = max_queue
        self.queue: Deque[Message] = deque()
        self.lock = threading.Lock()
        # Created off-loop (safe on 3.10+: Event binds its loop on first
        # await); set via call_soon_threadsafe from sender threads.
        self.wake = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.codec_name: Optional[str] = None
        self.error: Optional[BaseException] = None


class AioTcpTransport(Transport):
    """Asyncio localhost TCP backend; drop-in for ``TcpTransport``.

    ``time_scale``/``codec`` mean what they mean on ``TcpTransport``.
    ``max_queue`` bounds the mux send queue (full queue ⇒ the send is
    refused with ``TransportError`` + a ``backpressure_stalls`` tick).
    ``max_flush`` caps frames coalesced into one ``drain()``.
    ``wrap_batches`` additionally wraps each multi-frame flush in a
    single ``BATCH`` envelope: one codec pass and one frame per flush,
    with logical per-message counts (the Fig-4 metric) unchanged —
    bytes are then accounted per envelope, not per message, so leave it
    off when per-type wire-byte attribution matters.
    """

    def __init__(
        self,
        time_scale: float = 1000.0,
        codec: Any = None,
        max_queue: int = 4096,
        max_flush: int = 128,
        wrap_batches: bool = False,
    ) -> None:
        super().__init__()
        self.time_scale = time_scale
        self.max_queue = max_queue
        self.max_flush = max_flush
        self.wrap_batches = wrap_batches
        self._t0 = time.monotonic()
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._server_writers: set = set()
        self._port: Optional[int] = None
        self._link: Optional[_Link] = None
        # Writer gate for deterministic backpressure tests: cleared by
        # pause_writes(), the writer coroutine parks before its next
        # flush until resume_writes().
        self._gate = asyncio.Event()
        self._gate.set()
        #: (msg_type, exception) pairs from handlers that raised — a bad
        #: handler must not kill the shared mux connection, but the
        #: failure has to stay observable.
        self.handler_errors: List[Tuple[str, BaseException]] = []
        self.set_codec(codec)

    # -- codec selection & negotiation ------------------------------------
    def set_codec(self, codec: Any) -> None:
        """Swap the preferred wire codec; the mux link is dropped so the
        next send renegotiates.  Quiesce traffic first: frames still
        queued on the old link are discarded with it."""
        from repro.net.binary_codec import codec_name, resolve_codec

        preferred = resolve_codec(codec)
        preferred.stats = self.stats
        name = codec_name(preferred)
        if name == "json":
            json_codec = preferred
        else:
            json_codec = getattr(self, "json_codec", None) or JsonCodec()
        self.json_codec = json_codec
        self._codecs: Dict[str, Any] = {"json": json_codec, name: preferred}
        self._preferred_name = name
        self.codec = preferred
        self._reset_link()

    @property
    def preferred_codec(self) -> str:
        return self._preferred_name

    @property
    def supported_codecs(self) -> Tuple[str, ...]:
        return tuple(sorted(self._codecs))

    def negotiated_codec(self, src: str, dst: str) -> Optional[str]:
        """Codec name the mux link agreed on (all (src, dst) pairs share
        the one link; None before any send established it)."""
        link = self._link
        return link.codec_name if link is not None else None

    def _choose_codec(self, payload: Any) -> str:
        if not isinstance(payload, dict):
            return "json"
        prefer = payload.get("prefer")
        if isinstance(prefer, str) and prefer in self._codecs:
            return prefer
        for name in payload.get("supported") or ():
            if isinstance(name, str) and name in self._codecs:
                return name
        return "json"

    # -- loop lifecycle ---------------------------------------------------
    def _ensure_loop(self) -> None:
        if self._loop is not None:
            return
        with self._lifecycle_lock:
            if self._loop is not None:
                return
            if self._closed:
                raise TransportError("transport closed")
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=self._run_loop, args=(loop,), name="aio-transport",
                daemon=True,
            )
            thread.start()
            fut = asyncio.run_coroutine_threadsafe(self._start_server(), loop)
            self._port = fut.result(timeout=10.0)
            self._loop = loop
            self._loop_thread = thread

    def _run_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_forever()
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            except Exception:
                pass
            loop.close()

    async def _start_server(self) -> int:
        self._server = await asyncio.start_server(
            self._serve_conn, "127.0.0.1", 0
        )
        return self._server.sockets[0].getsockname()[1]

    @property
    def port(self) -> Optional[int]:
        """The shared server port (None until the loop has started)."""
        return self._port

    # -- server side ------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._server_writers.add(writer)
        codec: Any = self.json_codec
        negotiated = False
        try:
            while True:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                if length > _MAX_FRAME:
                    raise TransportError(f"frame too large: {length}")
                body = await reader.readexactly(length)
                if not negotiated:
                    negotiated = True
                    msg, codec = self._first_frame(writer, body, codec)
                    if msg is None:  # hello consumed, welcome written
                        await writer.drain()
                        continue
                else:
                    msg = codec.decode(body)
                self._dispatch(msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except (TransportError, CodecError):
            pass
        finally:
            self._server_writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    def _first_frame(
        self, writer: asyncio.StreamWriter, body: bytes, codec: Any
    ) -> Tuple[Optional[Message], Any]:
        """Same contract as ``TcpTransport._first_frame``: a hello is
        answered and consumed, anything else is a legacy JSON frame."""
        try:
            msg = self.json_codec.decode(body)
        except CodecError:
            return codec.decode(body), codec
        if msg.msg_type != CODEC_HELLO:
            return msg, codec
        chosen = self._choose_codec(msg.payload)
        welcome = Message(
            CODEC_WELCOME,
            src="aio-server",
            dst=msg.src,
            payload={"use": chosen, "supported": sorted(self._codecs)},
        )
        raw = self.json_codec.encode(welcome)
        writer.write(_LEN.pack(len(raw)) + raw)
        return None, self._codecs[chosen]

    def _dispatch(self, msg: Message) -> None:
        """Deliver one inbound message on the loop thread.

        BATCH frames (protocol-level coalescing or ``wrap_batches``
        envelopes) are split recursively so handlers never see them.
        Handler exceptions are recorded, not propagated — one bad
        handler must not tear down the shared mux connection.
        """
        if msg.msg_type == BATCH:
            for sub in split_batch(msg):
                self._dispatch(sub)
            return
        ep = self._endpoints.get(msg.dst)
        if ep is None or ep.closed:
            self.stats.record_drop(msg)
            return
        try:
            ep.handler(msg)
        except Exception as exc:  # noqa: BLE001 - observability list
            self.handler_errors.append((msg.msg_type, exc))

    # -- client (writer) side ---------------------------------------------
    async def _client_handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> str:
        hello = Message(
            CODEC_HELLO,
            src="aio-mux",
            dst="aio-server",
            payload={
                "supported": sorted(self._codecs),
                "prefer": self._preferred_name,
            },
        )
        raw = self.json_codec.encode(hello)
        writer.write(_LEN.pack(len(raw)) + raw)
        await writer.drain()
        try:
            header = await reader.readexactly(_LEN.size)
            (length,) = _LEN.unpack(header)
            if length > _MAX_FRAME:
                return "json"
            body = await reader.readexactly(length)
            welcome = self.json_codec.decode(body)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, CodecError):
            return "json"
        if welcome.msg_type != CODEC_WELCOME:
            return "json"
        use = welcome.payload.get("use") if welcome.payload else None
        return use if isinstance(use, str) and use in self._codecs else "json"

    async def _run_link(self, link: _Link) -> None:
        link.task = asyncio.current_task()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", self._port
            )
        except OSError as exc:
            link.error = exc
            return
        try:
            link.codec_name = await self._client_handshake(reader, writer)
            codec = self._codecs.get(link.codec_name, self.json_codec)
            while True:
                while not link.queue:
                    link.wake.clear()
                    await link.wake.wait()
                await self._gate.wait()
                msgs: List[Message] = []
                with link.lock:
                    while link.queue and len(msgs) < self.max_flush:
                        msgs.append(link.queue.popleft())
                if not msgs:
                    continue
                writer.write(self._encode_flush(msgs, codec))
                await writer.drain()
                if len(msgs) > 1:
                    self.stats.record_coalesced_flush(len(msgs) - 1)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError, CodecError, TransportError) as exc:
            link.error = exc
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _encode_flush(self, msgs: List[Message], codec: Any) -> bytes:
        """Encode one flush worth of messages into wire bytes.

        Stats contract: each logical message is recorded exactly once
        (identical ``by_type``/``by_pair``/``total`` to the threaded
        backend).  In ``wrap_batches`` mode the flush ships as one
        BATCH envelope, so bytes are accounted per envelope and the
        envelope itself stays out of ``by_type`` — it is transport
        framing, not a protocol message.
        """
        stats = self.stats
        if self.wrap_batches and len(msgs) >= 2:
            env = make_batch(msgs[0].src, msgs[0].dst, msgs)
            t0 = time.perf_counter_ns()
            raw = codec.encode(env)
            stats.record_encode(len(raw), time.perf_counter_ns() - t0)
            for m in msgs:
                stats.record(m)
            stats.bytes_sent += len(raw)
            stats.batches_sent += 1
            stats.messages_coalesced += len(msgs)
            return _LEN.pack(len(raw)) + raw
        parts: List[bytes] = []
        for m in msgs:
            t0 = time.perf_counter_ns()
            raw = codec.encode(m)
            size = len(raw)
            stats.record_encode(size, time.perf_counter_ns() - t0)
            stats.record(m, size=size)
            parts.append(_LEN.pack(size) + raw)
        return b"".join(parts)

    def _link_for(self) -> _Link:
        link = self._link
        if link is not None:
            return link
        with self._lifecycle_lock:
            link = self._link
            if link is not None:
                return link
            link = _Link(self.max_queue)
            self._link = link
        loop = self._loop
        assert loop is not None  # _ensure_loop ran first
        asyncio.run_coroutine_threadsafe(self._run_link(link), loop)
        return link

    def _reset_link(self) -> None:
        with self._lifecycle_lock:
            link, self._link = self._link, None
        loop = self._loop
        if link is None or loop is None:
            return

        def kill() -> None:
            if link.task is not None:
                link.task.cancel()

        try:
            loop.call_soon_threadsafe(kill)
        except RuntimeError:
            pass  # loop already gone

    # -- test hooks -------------------------------------------------------
    def pause_writes(self) -> None:
        """Park the writer before its next flush (deterministic
        backpressure tests: queued sends accumulate until the bound)."""
        self._ensure_loop()
        self._loop.call_soon_threadsafe(self._gate.clear)

    def resume_writes(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._gate.set)

    # -- Transport hooks --------------------------------------------------
    def _on_bind(self, ep: Endpoint) -> None:
        # Binding is a dict insert (the base class did it); the shared
        # server just has to exist so peers have somewhere to frame to.
        self._ensure_loop()

    # -- Transport API ----------------------------------------------------
    def send(self, msg: Message) -> None:
        if self._closed:
            raise TransportError("transport closed")
        if msg.dst not in self._endpoints:
            # Same semantics as sim/TCP: message to a vanished endpoint
            # is lost (and there is no link to size the frame with).
            self.stats.record(msg)
            self.stats.record_drop(msg)
            return
        self._ensure_loop()
        link = self._link_for()
        with link.lock:
            if len(link.queue) >= link.max_queue:
                self.stats.record_backpressure_stall()
                raise TransportError(
                    f"send queue full ({link.max_queue}) for {msg.msg_type} "
                    f"{msg.src}->{msg.dst}: receiver is slower than sender"
                )
            link.queue.append(msg)
            depth = len(link.queue)
        self.stats.record_queue_depth(depth)
        try:
            self._loop.call_soon_threadsafe(link.wake.set)
        except RuntimeError:
            pass  # loop shut down under us; close() owns cleanup

    def now(self) -> float:
        return (time.monotonic() - self._t0) * self.time_scale

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        self._ensure_loop()
        loop = self._loop
        state: Dict[str, Any] = {"cancelled": False, "handle": None}

        def run() -> None:
            if state["cancelled"] or self._closed:
                return
            try:
                fn()
            except (TransportError, OSError):
                # Timer fired in the close() race window; the transport
                # is (or is becoming) dead, so the failure is expected.
                if not self._closed:
                    raise

        def create() -> None:
            if not state["cancelled"]:
                state["handle"] = loop.call_later(delay / self.time_scale, run)

        def cancel() -> None:
            state["cancelled"] = True
            try:
                loop.call_soon_threadsafe(
                    lambda: state["handle"] and state["handle"].cancel()
                )
            except RuntimeError:
                pass

        try:
            loop.call_soon_threadsafe(create)
        except RuntimeError:
            raise TransportError("transport closed")
        return TimerHandle(cancel)

    def completion(self, name: str = "") -> ThreadCompletion:
        return ThreadCompletion(name)

    def close(self, join_timeout: float = 2.0) -> None:
        if self._closed:
            return
        self._closed = True
        super().close()
        loop, thread = self._loop, self._loop_thread
        if loop is None:
            return
        if thread is threading.current_thread():
            # close() from a handler/timer on the loop itself: blocking
            # on the shutdown future would deadlock — fire and return
            # (run_forever's finally cancels whatever remains).
            loop.create_task(self._shutdown())
            loop.call_soon(loop.stop)
            return
        try:
            fut = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
            fut.result(timeout=join_timeout)
        except Exception:
            pass
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:
            pass
        if thread is not None and thread is not threading.current_thread():
            thread.join(join_timeout)

    async def _shutdown(self) -> None:
        link = self._link
        if link is not None and link.task is not None:
            link.task.cancel()
            try:
                await link.task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
        for writer in list(self._server_writers):
            try:
                writer.close()
            except Exception:
                pass
